#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "model/cost_table.hpp"
#include "model/cost_table_cache.hpp"
#include "util/parallel.hpp"

namespace dbsp::model {
namespace {

TEST(AccessFunctionKey, ClosedFormsDistinguishParameters) {
    EXPECT_TRUE(AccessFunction::polynomial(0.5).same_function(
        AccessFunction::polynomial(0.5)));
    EXPECT_FALSE(AccessFunction::polynomial(0.5).same_function(
        AccessFunction::polynomial(0.35)));
    EXPECT_FALSE(AccessFunction::polynomial(0.5).same_function(
        AccessFunction::logarithmic()));
    EXPECT_NE(AccessFunction::polynomial(0.5).key(),
              AccessFunction::polynomial(0.35).key());
    EXPECT_NE(AccessFunction::constant(1.0).key(), AccessFunction::constant(2.0).key());
}

TEST(AccessFunctionKey, CustomsWithSameNameDontAlias) {
    const auto sqrt_fn = [](double x) { return std::sqrt(x + 1.0); };
    const auto cbrt_fn = [](double x) { return std::cbrt(x + 1.0); };
    const auto a = AccessFunction::custom("mystery", sqrt_fn, sqrt_fn);
    const auto b = AccessFunction::custom("mystery", cbrt_fn, cbrt_fn);
    EXPECT_FALSE(a.same_function(b));
    EXPECT_NE(a.key(), b.key());
    // Identical charged behaviour under the same name does alias — by design:
    // the fingerprint is over charged values, not lambda identity.
    const auto c = AccessFunction::custom("mystery", sqrt_fn, sqrt_fn);
    EXPECT_TRUE(a.same_function(c));
}

TEST(CostTableCache, HitsSlicesAndBuilds) {
    CostTableCache& cache = CostTableCache::global();
    ScopedCostTableCache enabled(true);
    cache.clear();
    const auto f = AccessFunction::polynomial(0.45);
    const auto before = cache.stats();

    const auto big = cache.get(f, 4096);
    const auto hit = cache.get(f, 4096);
    const auto small = cache.get(f, 512);
    const auto after = cache.stats();

    EXPECT_EQ(after.builds - before.builds, 1u);
    EXPECT_EQ(after.hits - before.hits, 1u);
    EXPECT_EQ(after.slices - before.slices, 1u);
    EXPECT_EQ(big.get(), hit.get());  // exact hits share the object

    // The slice is bit-identical to a fresh build at the smaller capacity.
    const CostTable fresh(f, 512);
    for (std::uint64_t x = 0; x < 512; ++x) {
        EXPECT_EQ(small->cost(x), fresh.cost(x)) << "x=" << x;
    }
    EXPECT_EQ(small->capacity(), 512u);

    // A larger request rebuilds and replaces the cached entry.
    const auto bigger = cache.get(f, 8192);
    EXPECT_EQ(bigger->capacity(), 8192u);
    for (std::uint64_t x = 0; x < 4096; ++x) {
        ASSERT_EQ(bigger->cost(x), big->cost(x)) << "x=" << x;
    }
}

TEST(CostTableCache, DisabledAlwaysBuildsFresh) {
    CostTableCache& cache = CostTableCache::global();
    ScopedCostTableCache disabled(false);
    const auto before = cache.stats();
    const auto f = AccessFunction::polynomial(0.45);
    const auto a = cache.get(f, 256);
    const auto b = cache.get(f, 256);
    const auto after = cache.stats();
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(after.builds - before.builds, 2u);
    EXPECT_EQ(after.hits, before.hits);
}

TEST(CostTableCache, DisableInOneWorkerCannotInvalidateConcurrentTables) {
    // Regression guard for the parallel_sweep scenario: one worker toggling
    // ScopedCostTableCache(false) clears the cache's *own* references, but a
    // table is handed out as shared_ptr<const CostTable>, so every table a
    // concurrent worker already holds (or obtains mid-toggle) stays alive and
    // immutable. See the "Disabling" note in cost_table_cache.hpp.
    CostTableCache& cache = CostTableCache::global();
    ScopedCostTableCache enabled(true);
    cache.clear();
    const auto f = AccessFunction::polynomial(0.43);
    const CostTable reference(f, 1024);
    util::parallel_for(
        64,
        [&](std::size_t i) {
            if (i % 8 == 3) {
                // This worker briefly disables (and thereby clears) the cache
                // while the others are reading tables obtained from it.
                ScopedCostTableCache disabled(false);
                const auto t = cache.get(f, 256);
                if (t->cost(255) != reference.cost(255)) {
                    throw std::logic_error("fresh table drifted");
                }
                return;
            }
            const auto t = cache.get(f, 1024);
            for (std::uint64_t x = 0; x < t->capacity(); x += 13) {
                if (t->cost(x) != reference.cost(x)) {
                    throw std::logic_error("cached table dropped or drifted");
                }
            }
        },
        8);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> touched(n);
    util::parallel_for(n, [&](std::size_t i) { touched[i].fetch_add(1); }, 4);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ParallelFor, PropagatesExceptions) {
    EXPECT_THROW(
        util::parallel_for(
            100, [](std::size_t i) { if (i == 37) throw std::runtime_error("boom"); }, 4),
        std::runtime_error);
}

TEST(ParallelFor, ConcurrentCacheAccessIsSafe) {
    CostTableCache& cache = CostTableCache::global();
    ScopedCostTableCache enabled(true);
    cache.clear();
    const auto f = AccessFunction::polynomial(0.41);
    const CostTable reference(f, 2048);
    util::parallel_for(
        64,
        [&](std::size_t i) {
            const auto t = cache.get(f, 64 + 32 * (i % 48));
            for (std::uint64_t x = 0; x < t->capacity(); x += 17) {
                if (t->cost(x) != reference.cost(x)) {
                    throw std::logic_error("cache returned a drifting table");
                }
            }
        },
        8);
}

}  // namespace
}  // namespace dbsp::model
