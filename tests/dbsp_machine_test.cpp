#include <gtest/gtest.h>

#include <numeric>

#include "algos/collectives.hpp"
#include "algos/permutation.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

namespace dbsp {
namespace {

using algo::BroadcastProgram;
using algo::PrefixSumProgram;
using algo::RandomRoutingProgram;
using algo::ReduceProgram;
using model::AccessFunction;
using model::DbspMachine;
using model::Word;

TEST(DbspMachine, BroadcastReachesEveryone) {
    for (std::uint64_t v : {1u, 2u, 8u, 64u}) {
        BroadcastProgram prog(v, 0xABCDu);
        DbspMachine machine(AccessFunction::logarithmic());
        const auto result = machine.run(prog);
        for (std::uint64_t p = 0; p < v; ++p) {
            EXPECT_EQ(result.data_of(p)[0], 0xABCDu) << "v=" << v << " p=" << p;
        }
    }
}

TEST(DbspMachine, ReduceComputesSum) {
    SplitMix64 rng(11);
    for (std::uint64_t v : {1u, 4u, 32u, 256u}) {
        std::vector<Word> in(v);
        Word expected = 0;
        for (auto& x : in) {
            x = rng.next();
            expected += x;
        }
        ReduceProgram prog(in);
        DbspMachine machine(AccessFunction::polynomial(0.5));
        const auto result = machine.run(prog);
        EXPECT_EQ(result.data_of(0)[0], expected) << "v=" << v;
    }
}

TEST(DbspMachine, PrefixSumMatchesSerial) {
    SplitMix64 rng(12);
    for (std::uint64_t v : {1u, 2u, 16u, 128u}) {
        std::vector<Word> in(v);
        for (auto& x : in) x = rng.next_below(1000);
        PrefixSumProgram prog(in);
        DbspMachine machine(AccessFunction::logarithmic());
        const auto result = machine.run(prog);
        Word acc = 0;
        for (std::uint64_t p = 0; p < v; ++p) {
            EXPECT_EQ(result.data_of(p)[0], acc) << "v=" << v << " p=" << p;
            acc += in[p];
        }
    }
}

TEST(DbspMachine, RoutingFollowsPermutations) {
    RandomRoutingProgram prog(64, {0, 2, 5, 1, 6, 0}, /*seed=*/99);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto result = machine.run(prog);
    for (std::uint64_t p = 0; p < 64; ++p) {
        EXPECT_EQ(result.data_of(p)[0], prog.expected(p));
    }
}

TEST(DbspMachine, CostModelChargesPerSuperstepFormula) {
    // One routing round at label 2 on 16 processors, h = 1:
    // cost = (tau_0 + 1*g(mu*4)) + (tau_1 + 0) for the final sync.
    RandomRoutingProgram prog(16, {2}, 5);
    const auto g = AccessFunction::polynomial(0.5);
    DbspMachine machine(g);
    const auto result = machine.run(prog);
    ASSERT_EQ(result.supersteps.size(), 2u);
    const auto& s0 = result.supersteps[0];
    EXPECT_EQ(s0.label, 2u);
    EXPECT_EQ(s0.h, 1u);
    const double mu = static_cast<double>(prog.context_words());
    EXPECT_DOUBLE_EQ(s0.comm_arg, mu * 4.0);
    EXPECT_DOUBLE_EQ(s0.cost, static_cast<double>(s0.tau) + g.at(mu * 4.0));
    EXPECT_DOUBLE_EQ(result.time, result.supersteps[0].cost + result.supersteps[1].cost);
}

TEST(DbspMachine, LocalOpsRaiseTau) {
    RandomRoutingProgram cheap(16, {0}, 5, /*local_ops=*/0);
    RandomRoutingProgram heavy(16, {0}, 5, /*local_ops=*/500);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto r_cheap = machine.run(cheap);
    const auto r_heavy = machine.run(heavy);
    EXPECT_GT(r_heavy.supersteps[0].tau, r_cheap.supersteps[0].tau + 400);
    EXPECT_GT(r_heavy.time, r_cheap.time + 400);
    // Same functional result regardless of local work.
    for (std::uint64_t p = 0; p < 16; ++p) {
        EXPECT_EQ(r_cheap.data_of(p)[0], r_heavy.data_of(p)[0]);
    }
}

TEST(DbspMachine, CommunicationVsComputationSplit) {
    RandomRoutingProgram prog(32, {0, 1}, 3);
    DbspMachine machine(AccessFunction::polynomial(0.35));
    const auto result = machine.run(prog);
    EXPECT_NEAR(result.communication_time() + result.computation_time(), result.time,
                1e-9);
    EXPECT_GT(result.communication_time(), 0.0);
}

}  // namespace
}  // namespace dbsp
