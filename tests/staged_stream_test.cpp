#include <gtest/gtest.h>

#include <cmath>

#include "bt/primitives.hpp"
#include "util/rng.hpp"

namespace dbsp::bt {
namespace {

using model::AccessFunction;
using model::Word;

TEST(StageTower, SingleLevelForSmallChunks) {
    Machine m(AccessFunction::logarithmic(), 4096);
    StageTower t(m, 0, 16, 1, 0, 1);
    EXPECT_EQ(t.levels.size(), 1u);
    EXPECT_EQ(t.levels[0].addr, 0u);
    EXPECT_EQ(t.levels[0].capacity, 16u);
}

TEST(StageTower, BuildsMultipleLevelsForDeepChunks) {
    Machine m(AccessFunction::polynomial(0.5), 1 << 20);
    StageTower t(m, 0, 4096, 1, 0, 1);
    ASSERT_GE(t.levels.size(), 2u);
    // Inner levels shrink and sit shallower than outer ones.
    for (std::size_t k = 1; k < t.levels.size(); ++k) {
        EXPECT_LT(t.levels[k].capacity, t.levels[k - 1].capacity);
        EXPECT_LT(t.levels[k].addr, t.levels[k - 1].addr);
    }
    // The innermost level starts at the stage base.
    EXPECT_EQ(t.levels.back().addr, 0u);
    // Total footprint is exactly the chunk.
    std::uint64_t total = 0;
    for (const auto& level : t.levels) total += level.capacity;
    EXPECT_EQ(total, 4096u);
}

TEST(StageTower, CapacitiesRespectAlignment) {
    Machine m(AccessFunction::polynomial(0.5), 1 << 20);
    StageTower t(m, 0, 4095, 5, 0, 1);  // chunk multiple of 5
    for (const auto& level : t.levels) EXPECT_EQ(level.capacity % 5, 0u);
}

TEST(StageTower, LanesInterleaveDepthwise) {
    Machine m(AccessFunction::polynomial(0.5), 1 << 20);
    StageTower a(m, 0, 1024, 1, 0, 3);
    StageTower b(m, 0, 1024, 1, 1, 3);
    StageTower c(m, 0, 1024, 1, 2, 3);
    ASSERT_EQ(a.levels.size(), b.levels.size());
    ASSERT_EQ(a.levels.size(), c.levels.size());
    for (std::size_t k = 0; k < a.levels.size(); ++k) {
        // Same capacities, adjacent addresses per level.
        EXPECT_EQ(a.levels[k].capacity, b.levels[k].capacity);
        EXPECT_EQ(b.levels[k].addr, a.levels[k].addr + a.levels[k].capacity);
        EXPECT_EQ(c.levels[k].addr, b.levels[k].addr + b.levels[k].capacity);
    }
    // All three innermost buffers sit in front of any outer buffer.
    EXPECT_LT(c.levels.back().addr + c.levels.back().capacity,
              a.levels.front().addr + 1);
}

TEST(StagedStream, RoundTripLargeRegion) {
    const std::uint64_t n = 100000;
    Machine m(AccessFunction::polynomial(0.5), 3 * n + 8192);
    {
        StagedWriter wr(m, 8192, n, 0, 512);
        for (std::uint64_t i = 0; i < n; ++i) wr.push(i * 7 + 1);
    }
    StagedReader rd(m, 8192, n, 0, 512);
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ(rd.peek(), i * 7 + 1) << i;
        rd.advance(1);
    }
    EXPECT_TRUE(rd.done());
}

TEST(StagedStream, AmortizedCostPerWordIsSmall) {
    // The whole point of the tower: streaming n words from depth costs
    // O(n) + small, even under x^0.5 where direct reads would cost n*f(n).
    const auto f = AccessFunction::polynomial(0.5);
    const std::uint64_t n = 1 << 17;
    Machine m(f, 2 * n + 8192);
    m.reset_cost();
    const std::uint64_t chunk = chunk_words(m, 8192 + n, 2048);
    StagedReader rd(m, 8192, n, 0, chunk);
    Word acc = 0;
    while (!rd.done()) {
        acc ^= rd.peek();
        rd.advance(1);
    }
    const double per_word = m.cost() / static_cast<double>(n);
    EXPECT_LT(per_word, 12.0);  // vs f(n) ~ 360 for direct reads
    const double direct_per_word = f(8192 + n / 2);
    EXPECT_LT(per_word, direct_per_word / 20.0);
}

TEST(StagedStream, ThreeLaneMergePattern) {
    // Reproduce the merge access pattern: two readers + one writer on shared
    // lanes; interleaved consumption must stay correct.
    const std::uint64_t n = 5000;
    Machine m(AccessFunction::polynomial(0.35), 4 * n + 4096);
    auto raw = m.raw();
    for (std::uint64_t i = 0; i < n; ++i) {
        raw[4096 + i] = 2 * i;          // evens
        raw[4096 + n + i] = 2 * i + 1;  // odds
    }
    const std::uint64_t chunk = 120;
    StagedReader ra(m, 4096, n, 0, chunk, 1, 0, 3);
    StagedReader rb(m, 4096 + n, n, 0, chunk, 1, 1, 3);
    StagedWriter out(m, 4096 + 2 * n, 2 * n, 0, chunk, 1, 2, 3);
    while (!ra.done() || !rb.done()) {
        if (!ra.done() && (rb.done() || ra.peek() <= rb.peek())) {
            out.push(ra.peek());
            ra.advance(1);
        } else {
            out.push(rb.peek());
            rb.advance(1);
        }
    }
    out.flush();
    for (std::uint64_t i = 0; i < 2 * n; ++i) {
        ASSERT_EQ(m.raw()[4096 + 2 * n + i], i);
    }
}

TEST(StagedStream, WriterDestructorFlushesPartial) {
    Machine m(AccessFunction::logarithmic(), 4096);
    {
        StagedWriter wr(m, 2048, 33, 0, 64);
        for (int i = 0; i < 33; ++i) wr.push(i);
    }
    for (int i = 0; i < 33; ++i) EXPECT_EQ(m.raw()[2048 + i], static_cast<Word>(i));
}

TEST(StagedStream, RecordPeeksNeverStraddle) {
    // Records of 5 with chunk a multiple of 5: peek(0..4) always valid.
    const std::uint64_t recs = 999, rw = 5;
    Machine m(AccessFunction::polynomial(0.5), 2 * recs * rw + 4096);
    auto raw = m.raw();
    for (std::uint64_t i = 0; i < recs * rw; ++i) raw[4096 + i] = i;
    StagedReader rd(m, 4096, recs * rw, 0, 125, rw);
    for (std::uint64_t r = 0; r < recs; ++r) {
        for (std::uint64_t t = 0; t < rw; ++t) {
            ASSERT_EQ(rd.peek(t), r * rw + t);
        }
        rd.advance(rw);
    }
}

}  // namespace
}  // namespace dbsp::bt
