#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "algos/collectives.hpp"
#include "algos/permutation.hpp"
#include "algos/serial_reference.hpp"
#include "bt/machine.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/self_simulator.hpp"
#include "core/smoothing.hpp"
#include "hmm/machine.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dbsp {
namespace {

using model::AccessFunction;
using model::DbspMachine;
using model::Word;

// --- machine edge cases ------------------------------------------------------

TEST(EdgeCases, HmmZeroLengthBulkOpsAreFree) {
    hmm::Machine m(AccessFunction::polynomial(0.5), 64);
    m.swap_blocks(0, 32, 0);
    m.copy_block(0, 32, 0);
    m.charge_range(10, 10);
    EXPECT_DOUBLE_EQ(m.cost(), 0.0);
}

TEST(EdgeCases, BtZeroLengthBlockCopyIsFree) {
    bt::Machine m(AccessFunction::logarithmic(), 64);
    m.block_copy(0, 32, 0);
    EXPECT_DOUBLE_EQ(m.cost(), 0.0);
    EXPECT_EQ(m.block_transfers(), 0u);
}

TEST(EdgeCases, BtCostBreakdownSumsToTotal) {
    bt::Machine m(AccessFunction::polynomial(0.5), 1024);
    m.write(100, 1);
    m.block_copy(100, 0, 32);
    m.charge(5.0);
    (void)m.read(3);
    EXPECT_NEAR(m.transfer_latency_cost() + m.transfer_volume_cost() +
                    m.word_access_cost() + m.unit_op_cost(),
                m.cost(), 1e-9);
}

TEST(EdgeCases, AdjacentBlocksAreDisjointEnough) {
    // Exactly adjacent ranges must be accepted by the disjointness check.
    hmm::Machine m(AccessFunction::constant(), 64);
    m.swap_blocks(0, 8, 8);
    bt::Machine b(AccessFunction::constant(), 64);
    b.block_copy(0, 8, 8);
    SUCCEED();
}

// --- access-function edge cases ---------------------------------------------

TEST(EdgeCases, CustomAccessFunction) {
    // A two-level "cache" cost function: 1 up to 256, then 10.
    const auto f = AccessFunction::custom(
        "two-level", [](double x) { return x < 256 ? 1.0 : 10.0; },
        [](double x) { return x < 256 ? 0.0 : 10.0; });
    EXPECT_DOUBLE_EQ(f(0), 1.0);
    EXPECT_DOUBLE_EQ(f(1000), 10.0);
    EXPECT_TRUE(f.is_nondecreasing(1 << 12));
    // Usable end-to-end by the HMM simulator.
    algo::RandomRoutingProgram prog(32, {1, 4, 0}, 3);
    auto smoothed = core::smooth(prog, core::full_label_set(32));
    const auto res = core::HmmSimulator(f).simulate(*smoothed);
    DbspMachine machine(AccessFunction::constant());
    algo::RandomRoutingProgram prog2(32, {1, 4, 0}, 3);
    const auto direct = machine.run(prog2);
    for (std::uint64_t p = 0; p < 32; ++p) {
        EXPECT_EQ(res.data_of(p), direct.data_of(p));
    }
}

// --- program edge cases -------------------------------------------------------

TEST(EdgeCases, ProgramWithOnlyFinalSync) {
    // Zero-communication program: one 0-superstep doing nothing.
    algo::RandomRoutingProgram prog(16, {}, 1);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto run = machine.run(prog);
    EXPECT_EQ(run.supersteps.size(), 1u);
    EXPECT_EQ(run.supersteps[0].h, 0u);
    for (std::uint64_t p = 0; p < 16; ++p) EXPECT_EQ(run.data_of(p)[0], p);
}

TEST(EdgeCases, SelfSendIsLegalAtEveryLabel) {
    // dest == proc is within every cluster, including label log v.
    class SelfSend final : public model::Program {
    public:
        std::string name() const override { return "self-send"; }
        std::uint64_t num_processors() const override { return 8; }
        std::size_t data_words() const override { return 1; }
        std::size_t max_messages() const override { return 1; }
        model::StepIndex num_supersteps() const override { return 2; }
        unsigned label(model::StepIndex s) const override { return s == 0 ? 3 : 0; }
        void step(model::StepIndex s, model::ProcId p, model::StepContext& ctx) override {
            if (s == 0) {
                ctx.send(p, p * 11);
            } else {
                EXPECT_EQ(ctx.inbox_size(), 1u);
                ctx.store(0, ctx.inbox(0).payload0);
            }
        }
    } prog;
    DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto run = machine.run(prog);
    for (std::uint64_t p = 0; p < 8; ++p) EXPECT_EQ(run.data_of(p)[0], p * 11);
    // And through both simulators.
    SelfSend prog2, prog3;
    auto sh = core::smooth(prog2, core::full_label_set(8));
    const auto hs = core::HmmSimulator(AccessFunction::polynomial(0.5)).simulate(*sh);
    auto sb = core::smooth(prog3, core::full_label_set(8));
    const auto bs = core::BtSimulator(AccessFunction::polynomial(0.5)).simulate(*sb);
    for (std::uint64_t p = 0; p < 8; ++p) {
        EXPECT_EQ(hs.data_of(p), run.data_of(p));
        EXPECT_EQ(bs.data_of(p), run.data_of(p));
    }
}

TEST(EdgeCases, InboxPersistsAcrossNonReadingSupersteps) {
    // A message sent in superstep 0 is read three supersteps later; the
    // intervening steps never touch the inbox.
    class DelayedRead final : public model::Program {
    public:
        std::string name() const override { return "delayed-read"; }
        std::uint64_t num_processors() const override { return 4; }
        std::size_t data_words() const override { return 1; }
        std::size_t max_messages() const override { return 1; }
        model::StepIndex num_supersteps() const override { return 4; }
        unsigned label(model::StepIndex) const override { return 0; }
        void step(model::StepIndex s, model::ProcId p, model::StepContext& ctx) override {
            if (s == 0) ctx.send(p ^ 1, 500 + p);
            if (s == 3) {
                EXPECT_EQ(ctx.inbox_size(), 1u);
                ctx.store(0, ctx.inbox(0).payload0);
            }
        }
    } prog;
    DbspMachine machine(AccessFunction::logarithmic());
    const auto run = machine.run(prog);
    for (std::uint64_t p = 0; p < 4; ++p) EXPECT_EQ(run.data_of(p)[0], 500 + (p ^ 1));
    // Same through the HMM simulator (the dummy-superstep-safety property).
    DelayedRead prog2;
    auto smoothed = core::smooth(prog2, core::full_label_set(4));
    const auto sim = core::HmmSimulator(AccessFunction::logarithmic()).simulate(*smoothed);
    for (std::uint64_t p = 0; p < 4; ++p) EXPECT_EQ(sim.data_of(p), run.data_of(p));
}

// --- fill-message (full program) semantics ------------------------------------

TEST(EdgeCases, FillMessagesRaiseHWithoutChangingResults) {
    algo::RandomRoutingProgram lean(64, {2, 0, 5}, 7, 0, 0);
    algo::RandomRoutingProgram full(64, {2, 0, 5}, 7, 0, 4);
    DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto r_lean = machine.run(lean);
    const auto r_full = machine.run(full);
    EXPECT_EQ(r_full.supersteps[0].h, 5u);
    EXPECT_EQ(r_lean.supersteps[0].h, 1u);
    for (std::uint64_t p = 0; p < 64; ++p) {
        EXPECT_EQ(r_lean.data_of(p)[0], r_full.data_of(p)[0]);
    }
}

TEST(EdgeCases, FullProgramSimulatesEquivalently) {
    algo::RandomRoutingProgram direct_prog(32, {1, 3, 0}, 8, 2, 3);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto direct = machine.run(direct_prog);

    algo::RandomRoutingProgram sim_prog(32, {1, 3, 0}, 8, 2, 3);
    auto smoothed = core::smooth(
        sim_prog, core::hmm_label_set(AccessFunction::logarithmic(),
                                      sim_prog.context_words(), 32));
    const auto sim = core::HmmSimulator(AccessFunction::logarithmic()).simulate(*smoothed);
    for (std::uint64_t p = 0; p < 32; ++p) {
        ASSERT_EQ(sim.data_of(p), direct.data_of(p));
    }
}

// --- self-simulation edge cases ------------------------------------------------

TEST(EdgeCases, SelfSimWithVPrimeEqualsOneMatchesHmmStyleCosting) {
    // v' = 1 runs everything as one local run on a single host HMM.
    algo::RandomRoutingProgram prog(32, {2, 4, 0}, 9);
    const core::SelfSimulator sim(AccessFunction::polynomial(0.5), 1);
    const auto host = sim.simulate(prog);
    EXPECT_EQ(host.global_supersteps, 0u);
    EXPECT_EQ(host.local_runs, 1u);
    EXPECT_GT(host.host_time, 0.0);
}

TEST(EdgeCases, SelfSimPrefixSumAllHostSizes) {
    SplitMix64 rng(10);
    std::vector<Word> in(32);
    for (auto& x : in) x = rng.next_below(100);
    const auto expected = algo::serial_exclusive_prefix(in);
    for (std::uint64_t vp : {1u, 2u, 8u, 32u}) {
        algo::PrefixSumProgram prog(in);
        const core::SelfSimulator sim(AccessFunction::logarithmic(), vp);
        const auto host = sim.simulate(prog);
        for (std::uint64_t p = 0; p < 32; ++p) {
            ASSERT_EQ(host.data_of(p)[0], expected[p]) << "vp=" << vp;
        }
    }
}

// --- smoothing edge cases -------------------------------------------------------

TEST(EdgeCases, SmoothingSingleProcessorMachine) {
    algo::BroadcastProgram prog(1, 9);
    auto smoothed = core::smooth(prog, core::full_label_set(1));
    EXPECT_TRUE(core::is_smooth(*smoothed, core::full_label_set(1)));
    DbspMachine machine(AccessFunction::logarithmic());
    const auto run = machine.run(*smoothed);
    EXPECT_EQ(run.data_of(0)[0], 9u);
}

TEST(EdgeCases, LabelSetsShrinkWithLargerC2) {
    const auto f = AccessFunction::polynomial(0.5);
    const auto tight = core::hmm_label_set(f, 16, 1 << 12, 0.75);
    const auto loose = core::hmm_label_set(f, 16, 1 << 12, 0.25);
    EXPECT_GE(tight.size(), loose.size());
}

TEST(EdgeCases, BtLabelSetDegenerateSmallMachine) {
    for (std::uint64_t v : {1u, 2u, 4u}) {
        const auto labels =
            core::bt_label_set(AccessFunction::logarithmic(), 8, v);
        EXPECT_EQ(labels.front(), 0u);
        EXPECT_EQ(labels.back(), ilog2(v));
    }
}

}  // namespace
}  // namespace dbsp
