#include <gtest/gtest.h>

#include <complex>
#include <memory>

#include "algos/bitonic_sort.hpp"
#include "algos/collectives.hpp"
#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include "algos/matmul.hpp"
#include "algos/odd_even_sort.hpp"
#include "algos/permutation.hpp"
#include "algos/transpose_program.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/self_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/cost_table_cache.hpp"
#include "model/dbsp_machine.hpp"
#include "model/superstep_exec.hpp"
#include "util/rng.hpp"

namespace dbsp {
namespace {

using model::AccessFunction;
using model::DbspMachine;
using model::Program;
using model::Word;

/// The consistency matrix: every workload under every case-study access
/// function must produce identical data words on all four executors (direct,
/// HMM simulator, BT simulator, self-simulator at v' = v/4). This is the
/// repository's master invariant, swept broadly in one place.
struct CrossCase {
    const char* workload;
    std::size_t f_index;  ///< into case-study functions {x^0.35, x^0.5, log}
};

void PrintTo(const CrossCase& c, std::ostream* os) {
    *os << c.workload << "/f" << c.f_index;
}

AccessFunction function_at(std::size_t i) {
    switch (i) {
        case 0: return AccessFunction::polynomial(0.35);
        case 1: return AccessFunction::polynomial(0.5);
        default: return AccessFunction::logarithmic();
    }
}

std::unique_ptr<Program> make_workload(const std::string& name) {
    constexpr std::uint64_t v = 64;
    SplitMix64 rng(2026);
    if (name == "bitonic" || name == "oddeven") {
        std::vector<Word> keys(v);
        for (auto& k : keys) k = rng.next();
        if (name == "bitonic") return std::make_unique<algo::BitonicSortProgram>(keys);
        return std::make_unique<algo::OddEvenTranspositionSortProgram>(keys);
    }
    if (name == "matmul") {
        std::vector<Word> a(v), b(v);
        for (auto& x : a) x = rng.next_below(1 << 12);
        for (auto& x : b) x = rng.next_below(1 << 12);
        return std::make_unique<algo::MatMulProgram>(a, b);
    }
    if (name == "fft") {
        std::vector<std::complex<double>> x(v);
        for (auto& c : x) c = {rng.next_double(), rng.next_double()};
        return std::make_unique<algo::FftDirectProgram>(x);
    }
    if (name == "transpose") {
        std::vector<Word> values(v);
        for (auto& x : values) x = rng.next();
        return std::make_unique<algo::TransposeProgram>(values, 2);
    }
    if (name == "prefix") {
        std::vector<Word> in(v);
        for (auto& x : in) x = rng.next_below(1000);
        return std::make_unique<algo::PrefixSumProgram>(in);
    }
    // mixed-label routing with filler traffic
    return std::make_unique<algo::RandomRoutingProgram>(
        v, std::vector<unsigned>{0, 4, 2, 6, 1, 5}, 77, 1, 2);
}

class CrossExecutor : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossExecutor, AllExecutorsAgreeBitForBit) {
    const auto& c = GetParam();
    const auto f = function_at(c.f_index);
    const std::uint64_t v = 64;

    auto direct_prog = make_workload(c.workload);
    DbspMachine machine(f);
    const auto direct = machine.run(*direct_prog);

    auto hmm_prog = make_workload(c.workload);
    auto hs = core::smooth(*hmm_prog, core::hmm_label_set(f, hmm_prog->context_words(), v));
    const auto hmm = core::HmmSimulator(f).simulate(*hs);

    auto bt_prog = make_workload(c.workload);
    auto bs = core::smooth(*bt_prog, core::bt_label_set(f, bt_prog->context_words(), v));
    const auto bt = core::BtSimulator(f).simulate(*bs);

    auto self_prog = make_workload(c.workload);
    const core::SelfSimulator self_sim(f, v / 4);
    const auto host = self_sim.simulate(*self_prog);

    for (std::uint64_t p = 0; p < v; ++p) {
        ASSERT_EQ(hmm.data_of(p), direct.data_of(p)) << "HMM p=" << p;
        ASSERT_EQ(bt.data_of(p), direct.data_of(p)) << "BT p=" << p;
        ASSERT_EQ(host.data_of(p), direct.data_of(p)) << "self p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrossExecutor,
    ::testing::Values(CrossCase{"bitonic", 0}, CrossCase{"bitonic", 1},
                      CrossCase{"bitonic", 2}, CrossCase{"oddeven", 0},
                      CrossCase{"oddeven", 2}, CrossCase{"matmul", 0},
                      CrossCase{"matmul", 1}, CrossCase{"matmul", 2},
                      CrossCase{"fft", 0}, CrossCase{"fft", 1}, CrossCase{"fft", 2},
                      CrossCase{"transpose", 0}, CrossCase{"transpose", 2},
                      CrossCase{"prefix", 0}, CrossCase{"prefix", 1},
                      CrossCase{"prefix", 2}, CrossCase{"routing", 0},
                      CrossCase{"routing", 1}, CrossCase{"routing", 2}));

/// The bulk-access fast path and the shared cost-table cache are pure
/// optimizations: with them on (the default) every charged cost and every
/// final context must equal the per-word, fresh-table seed path bit for bit.
/// EXPECT_EQ on doubles is deliberate — any rounding drift is a bug.
class BulkPathEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BulkPathEquivalence, CostsAndContextsBitIdenticalToPerWordPath) {
    const auto f = function_at(GetParam());
    constexpr std::uint64_t v = 64;
    // A randomized mixed-label routing program: exercises every level of the
    // cluster tree, partially filled out-buffers, and stale inboxes.
    const std::vector<unsigned> labels{0, 4, 2, 6, 1, 5, 3, 2};

    struct Run {
        double hmm_cost, bt_cost;
        double self_host, self_local, self_comm;
        std::vector<std::vector<Word>> hmm_ctx, bt_ctx, self_ctx;
    };
    auto run_all = [&](bool fast_paths) {
        model::ScopedBulkAccess bulk(fast_paths);
        model::ScopedCostTableCache cache(fast_paths);
        Run r;
        algo::RandomRoutingProgram hmm_prog(v, labels, 913, 1, 2);
        auto hs =
            core::smooth(hmm_prog, core::hmm_label_set(f, hmm_prog.context_words(), v));
        auto hmm = core::HmmSimulator(f).simulate(*hs);
        r.hmm_cost = hmm.hmm_cost;
        r.hmm_ctx = std::move(hmm.contexts);

        algo::RandomRoutingProgram bt_prog(v, labels, 913, 1, 2);
        auto bs = core::smooth(bt_prog, core::bt_label_set(f, bt_prog.context_words(), v));
        auto bt = core::BtSimulator(f).simulate(*bs);
        r.bt_cost = bt.bt_cost;
        r.bt_ctx = std::move(bt.contexts);

        algo::RandomRoutingProgram self_prog(v, labels, 913, 1, 2);
        auto host = core::SelfSimulator(f, v / 4).simulate(self_prog);
        r.self_host = host.host_time;
        r.self_local = host.local_time;
        r.self_comm = host.communication_time;
        r.self_ctx = std::move(host.contexts);
        return r;
    };

    const Run fast = run_all(true);
    const Run slow = run_all(false);

    EXPECT_EQ(fast.hmm_cost, slow.hmm_cost);
    EXPECT_EQ(fast.bt_cost, slow.bt_cost);
    EXPECT_EQ(fast.self_host, slow.self_host);
    EXPECT_EQ(fast.self_local, slow.self_local);
    EXPECT_EQ(fast.self_comm, slow.self_comm);
    EXPECT_EQ(fast.hmm_ctx, slow.hmm_ctx);
    EXPECT_EQ(fast.bt_ctx, slow.bt_ctx);
    EXPECT_EQ(fast.self_ctx, slow.self_ctx);
}

INSTANTIATE_TEST_SUITE_P(CaseStudyFunctions, BulkPathEquivalence,
                         ::testing::Values(0u, 1u, 2u));

TEST(CrossExecutor, RationalDeliveryAgreesOnRecursiveFft) {
    SplitMix64 rng(4);
    std::vector<std::complex<double>> x(256);
    for (auto& c : x) c = {rng.next_double(), rng.next_double()};
    const auto f = AccessFunction::polynomial(0.35);

    algo::FftRecursiveProgram direct_prog(x);
    DbspMachine machine(f);
    const auto direct = machine.run(direct_prog);

    for (bool rational : {false, true}) {
        algo::FftRecursiveProgram prog(x);
        auto smoothed = core::smooth(prog, core::bt_label_set(f, prog.context_words(), 256));
        core::BtSimulator::Options options;
        options.use_rational_permutations = rational;
        options.check_invariants = true;
        const auto res = core::BtSimulator(f, options).simulate(*smoothed);
        for (std::uint64_t p = 0; p < 256; ++p) {
            ASSERT_EQ(res.data_of(p), direct.data_of(p)) << "rational=" << rational;
        }
    }
}

}  // namespace
}  // namespace dbsp
