#include <gtest/gtest.h>

#include <complex>
#include <memory>

#include "algos/bitonic_sort.hpp"
#include "algos/collectives.hpp"
#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include "algos/matmul.hpp"
#include "algos/odd_even_sort.hpp"
#include "algos/permutation.hpp"
#include "algos/transpose_program.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/self_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

namespace dbsp {
namespace {

using model::AccessFunction;
using model::DbspMachine;
using model::Program;
using model::Word;

/// The consistency matrix: every workload under every case-study access
/// function must produce identical data words on all four executors (direct,
/// HMM simulator, BT simulator, self-simulator at v' = v/4). This is the
/// repository's master invariant, swept broadly in one place.
struct CrossCase {
    const char* workload;
    std::size_t f_index;  ///< into case-study functions {x^0.35, x^0.5, log}
};

void PrintTo(const CrossCase& c, std::ostream* os) {
    *os << c.workload << "/f" << c.f_index;
}

AccessFunction function_at(std::size_t i) {
    switch (i) {
        case 0: return AccessFunction::polynomial(0.35);
        case 1: return AccessFunction::polynomial(0.5);
        default: return AccessFunction::logarithmic();
    }
}

std::unique_ptr<Program> make_workload(const std::string& name) {
    constexpr std::uint64_t v = 64;
    SplitMix64 rng(2026);
    if (name == "bitonic" || name == "oddeven") {
        std::vector<Word> keys(v);
        for (auto& k : keys) k = rng.next();
        if (name == "bitonic") return std::make_unique<algo::BitonicSortProgram>(keys);
        return std::make_unique<algo::OddEvenTranspositionSortProgram>(keys);
    }
    if (name == "matmul") {
        std::vector<Word> a(v), b(v);
        for (auto& x : a) x = rng.next_below(1 << 12);
        for (auto& x : b) x = rng.next_below(1 << 12);
        return std::make_unique<algo::MatMulProgram>(a, b);
    }
    if (name == "fft") {
        std::vector<std::complex<double>> x(v);
        for (auto& c : x) c = {rng.next_double(), rng.next_double()};
        return std::make_unique<algo::FftDirectProgram>(x);
    }
    if (name == "transpose") {
        std::vector<Word> values(v);
        for (auto& x : values) x = rng.next();
        return std::make_unique<algo::TransposeProgram>(values, 2);
    }
    if (name == "prefix") {
        std::vector<Word> in(v);
        for (auto& x : in) x = rng.next_below(1000);
        return std::make_unique<algo::PrefixSumProgram>(in);
    }
    // mixed-label routing with filler traffic
    return std::make_unique<algo::RandomRoutingProgram>(
        v, std::vector<unsigned>{0, 4, 2, 6, 1, 5}, 77, 1, 2);
}

class CrossExecutor : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossExecutor, AllExecutorsAgreeBitForBit) {
    const auto& c = GetParam();
    const auto f = function_at(c.f_index);
    const std::uint64_t v = 64;

    auto direct_prog = make_workload(c.workload);
    DbspMachine machine(f);
    const auto direct = machine.run(*direct_prog);

    auto hmm_prog = make_workload(c.workload);
    auto hs = core::smooth(*hmm_prog, core::hmm_label_set(f, hmm_prog->context_words(), v));
    const auto hmm = core::HmmSimulator(f).simulate(*hs);

    auto bt_prog = make_workload(c.workload);
    auto bs = core::smooth(*bt_prog, core::bt_label_set(f, bt_prog->context_words(), v));
    const auto bt = core::BtSimulator(f).simulate(*bs);

    auto self_prog = make_workload(c.workload);
    const core::SelfSimulator self_sim(f, v / 4);
    const auto host = self_sim.simulate(*self_prog);

    for (std::uint64_t p = 0; p < v; ++p) {
        ASSERT_EQ(hmm.data_of(p), direct.data_of(p)) << "HMM p=" << p;
        ASSERT_EQ(bt.data_of(p), direct.data_of(p)) << "BT p=" << p;
        ASSERT_EQ(host.data_of(p), direct.data_of(p)) << "self p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrossExecutor,
    ::testing::Values(CrossCase{"bitonic", 0}, CrossCase{"bitonic", 1},
                      CrossCase{"bitonic", 2}, CrossCase{"oddeven", 0},
                      CrossCase{"oddeven", 2}, CrossCase{"matmul", 0},
                      CrossCase{"matmul", 1}, CrossCase{"matmul", 2},
                      CrossCase{"fft", 0}, CrossCase{"fft", 1}, CrossCase{"fft", 2},
                      CrossCase{"transpose", 0}, CrossCase{"transpose", 2},
                      CrossCase{"prefix", 0}, CrossCase{"prefix", 1},
                      CrossCase{"prefix", 2}, CrossCase{"routing", 0},
                      CrossCase{"routing", 1}, CrossCase{"routing", 2}));

TEST(CrossExecutor, RationalDeliveryAgreesOnRecursiveFft) {
    SplitMix64 rng(4);
    std::vector<std::complex<double>> x(256);
    for (auto& c : x) c = {rng.next_double(), rng.next_double()};
    const auto f = AccessFunction::polynomial(0.35);

    algo::FftRecursiveProgram direct_prog(x);
    DbspMachine machine(f);
    const auto direct = machine.run(direct_prog);

    for (bool rational : {false, true}) {
        algo::FftRecursiveProgram prog(x);
        auto smoothed = core::smooth(prog, core::bt_label_set(f, prog.context_words(), 256));
        core::BtSimulator::Options options;
        options.use_rational_permutations = rational;
        options.check_invariants = true;
        const auto res = core::BtSimulator(f, options).simulate(*smoothed);
        for (std::uint64_t p = 0; p < 256; ++p) {
            ASSERT_EQ(res.data_of(p), direct.data_of(p)) << "rational=" << rational;
        }
    }
}

}  // namespace
}  // namespace dbsp
