/// Tests for the observability/report layer (src/report/): the strict JSON
/// parser and writer, the ExperimentResult artifact round-trip, check
/// verdict evaluation, the combined conformance report, and the regression
/// gate that dbsp_report --check runs in CI.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "report/conformance.hpp"
#include "report/experiment.hpp"
#include "report/json.hpp"
#include "report/provenance.hpp"

namespace {

using namespace dbsp;
using report::Check;
using report::CombinedReport;
using report::ExperimentResult;
using report::GateOptions;
using report::Json;
using report::MicroData;
using report::Provenance;
using report::Series;

// --- JSON value + parser ----------------------------------------------------

TEST(Json, DumpParseRoundTripPreservesValuesAndOrder) {
    Json doc = Json::object();
    doc.set("name", "e1");
    doc.set("pi", 3.141592653589793);
    doc.set("big", std::uint64_t{1} << 52);
    doc.set("neg", -0.0625);
    doc.set("flag", true);
    doc.set("nothing", nullptr);
    Json arr = Json::array();
    arr.push_back(1);
    arr.push_back("two");
    arr.push_back(Json::object().set("k", "v"));
    doc.set("arr", std::move(arr));
    doc.set("text", std::string("quote \" backslash \\ newline \n tab \t unicode \xc3\xa9"));

    const auto parsed = Json::parse(doc.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->dump(), doc.dump());
    EXPECT_DOUBLE_EQ((*parsed)["pi"].as_double(), 3.141592653589793);
    EXPECT_DOUBLE_EQ((*parsed)["big"].as_double(), static_cast<double>(std::uint64_t{1} << 52));
    EXPECT_TRUE((*parsed)["flag"].as_bool());
    EXPECT_TRUE((*parsed)["nothing"].is_null());
    EXPECT_EQ((*parsed)["arr"].items().size(), 3u);
    EXPECT_EQ((*parsed)["text"].as_string(),
              "quote \" backslash \\ newline \n tab \t unicode \xc3\xa9");
    // Insertion order survives the round trip (members_, not a sorted map).
    EXPECT_EQ(parsed->members().front().first, "name");
    EXPECT_EQ(parsed->members().back().first, "text");
}

TEST(Json, ParserRejectsMalformedDocuments) {
    for (const char* bad : {
             "",                          // empty
             "{",                         // unterminated object
             "[1, 2",                     // unterminated array
             "{\"a\": 1,}",               // trailing comma
             "{\"a\": 1} trailing",       // trailing garbage
             "{\"a\": 1, \"a\": 2}",      // duplicate key
             "\"unterminated",            // unterminated string
             "{\"a\": 01}",               // leading zero
             "nan",                       // non-finite
             "1e999",                     // overflows to inf
             "{\"a\" 1}",                 // missing colon
             "'single'",                  // wrong quotes
             "{\"\x01\": 1}",             // control char in string
         }) {
        std::string error;
        EXPECT_FALSE(Json::parse(bad, &error).has_value()) << "accepted: " << bad;
        EXPECT_FALSE(error.empty()) << "no diagnostic for: " << bad;
    }
}

TEST(Json, ParserAcceptsEscapesAndNesting) {
    const auto j = Json::parse(R"({"s": "aé\n\t\"\\b", "n": [[1], [2, [3]]]})");
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ((*j)["s"].as_string(), "a\xc3\xa9\n\t\"\\b");
    EXPECT_DOUBLE_EQ((*j)["n"].items()[1].items()[1].items()[0].as_double(), 3.0);
}

TEST(Json, LoadFileDistinguishesMissingFromMalformed) {
    std::string error;
    EXPECT_FALSE(Json::load_file("/nonexistent/dbsp.json", &error).has_value());
    EXPECT_FALSE(error.empty());
}

// --- check evaluation -------------------------------------------------------

TEST(Check, EvaluateImplementsAllFourKinds) {
    EXPECT_TRUE(Check::evaluate("exponent", 1.52, 1.5, 0.05));
    EXPECT_FALSE(Check::evaluate("exponent", 1.58, 1.5, 0.05));
    EXPECT_TRUE(Check::evaluate("band", 1.8, 1.0, 2.0));   // spread under tolerance
    EXPECT_FALSE(Check::evaluate("band", 2.3, 1.0, 2.0));
    EXPECT_TRUE(Check::evaluate("min", 1.2, 1.1, 0.0));
    EXPECT_FALSE(Check::evaluate("min", 1.0, 1.1, 0.0));
    EXPECT_TRUE(Check::evaluate("max", 0.9, 1.0, 0.0));
    EXPECT_FALSE(Check::evaluate("max", 1.1, 1.0, 0.0));
    EXPECT_FALSE(Check::evaluate("bogus", 1.0, 1.0, 1.0));
    EXPECT_FALSE(Check::evaluate("exponent", std::nan(""), 1.5, 10.0));
}

TEST(Check, SlugifyProducesStableIds) {
    EXPECT_EQ(ExperimentResult::slugify("touching cost vs n [x^0.35]"),
              "touching-cost-vs-n-x-0-35");
    EXPECT_EQ(ExperimentResult::slugify("  Weird---Label!!  "), "weird-label");
    EXPECT_EQ(ExperimentResult::slugify("???"), "check");
}

// --- ExperimentResult round trip --------------------------------------------

ExperimentResult sample_experiment() {
    ExperimentResult e;
    e.id = "e1";
    e.title = "E1 sample";
    e.claim = "the measured exponent matches the theorem";
    Series s;
    s.name = "cost vs n";
    s.xs = {16.0, 64.0, 256.0};
    s.ys = {100.0, 1600.0, 25600.0};
    e.series.push_back(s);
    Check c;
    c.id = "slope-cost-vs-n";
    c.label = "slope: cost vs n";
    c.kind = "exponent";
    c.measured = 2.0;
    c.predicted = 2.0;
    c.tolerance = 0.05;
    c.r_squared = 1.0;
    c.max_residual = 0.001;
    c.pass = true;
    e.checks.push_back(c);
    return e;
}

TEST(ExperimentResult, JsonRoundTripIsLossless) {
    const ExperimentResult e = sample_experiment();
    const Json j = e.to_json(Provenance::collect(), /*with_metrics=*/true);
    EXPECT_EQ(j["schema"].as_string(), report::kExperimentSchema);
    EXPECT_TRUE(j["metrics"].is_object());
    EXPECT_TRUE(j["provenance"]["git_sha"].is_string());

    // Through text and back.
    const auto reparsed = Json::parse(j.dump());
    ASSERT_TRUE(reparsed.has_value());
    std::string error;
    const auto back = ExperimentResult::from_json(*reparsed, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->id, e.id);
    EXPECT_EQ(back->title, e.title);
    EXPECT_EQ(back->claim, e.claim);
    ASSERT_EQ(back->series.size(), 1u);
    EXPECT_EQ(back->series[0].xs, e.series[0].xs);
    EXPECT_EQ(back->series[0].ys, e.series[0].ys);
    ASSERT_EQ(back->checks.size(), 1u);
    EXPECT_EQ(back->checks[0].id, "slope-cost-vs-n");
    EXPECT_DOUBLE_EQ(back->checks[0].measured, 2.0);
    EXPECT_DOUBLE_EQ(back->checks[0].max_residual, 0.001);
    EXPECT_TRUE(back->checks[0].pass);
    EXPECT_TRUE(back->pass());
}

TEST(ExperimentResult, FromJsonRejectsMalformedArtifacts) {
    const ExperimentResult e = sample_experiment();
    const Json good = e.to_json(Provenance::collect(), false);
    std::string error;

    {  // wrong schema tag
        Json j = good;
        j.set("schema", "somebody-elses-schema");
        EXPECT_FALSE(ExperimentResult::from_json(j, &error).has_value());
        EXPECT_NE(error.find("schema"), std::string::npos);
    }
    {  // missing id
        Json j = Json::object();
        j.set("title", "t");
        j.set("claim", "c");
        EXPECT_FALSE(ExperimentResult::from_json(j, &error).has_value());
    }
    {  // empty checks array: an experiment that checks nothing is malformed
        Json j = good;
        j.set("checks", Json::array());
        EXPECT_FALSE(ExperimentResult::from_json(j, &error).has_value());
        EXPECT_NE(error.find("checks"), std::string::npos);
    }
    {  // check with an unknown kind
        Json j = good;
        Json checks = Json::array();
        Json c = good["checks"].items()[0];
        c.set("kind", "vibes");
        checks.push_back(std::move(c));
        j.set("checks", std::move(checks));
        EXPECT_FALSE(ExperimentResult::from_json(j, &error).has_value());
        EXPECT_NE(error.find("kind"), std::string::npos);
    }
    {  // non-numeric series entry
        Json j = good;
        Json series = Json::array();
        Json s = Json::object();
        s.set("name", "bad");
        s.set("xs", Json::array().push_back("not a number"));
        s.set("ys", Json::array().push_back(1));
        series.push_back(std::move(s));
        j.set("series", std::move(series));
        EXPECT_FALSE(ExperimentResult::from_json(j, &error).has_value());
    }
    {  // recorded pass flag contradicting the checks
        Json j = good;
        j.set("pass", false);  // checks all pass
        EXPECT_FALSE(ExperimentResult::from_json(j, &error).has_value());
        EXPECT_NE(error.find("contradicts"), std::string::npos);
    }
}

TEST(Provenance, FromJsonDefaultsMissingFields) {
    const Provenance p = Provenance::from_json(Json::object());
    EXPECT_EQ(p.git_sha, "unknown");
    EXPECT_EQ(p.threads, 0u);

    const Provenance collected = Provenance::collect();
    EXPECT_FALSE(collected.compiler.empty());
    EXPECT_GE(collected.threads, 1u);
    const Provenance round = Provenance::from_json(collected.to_json());
    EXPECT_EQ(round.git_sha, collected.git_sha);
    EXPECT_EQ(round.build_type, collected.build_type);
    EXPECT_EQ(round.timestamp, collected.timestamp);
}

// --- combined report + gate -------------------------------------------------

Json micro_doc(double words_per_sec, bool bit_identical = true, bool trace_exact = true) {
    Json bulk = Json::object();
    bulk.set("words_per_sec", words_per_sec);
    Json measurements = Json::object();
    measurements.set("bulk_with_cache", std::move(bulk));
    Json doc = Json::object();
    doc.set("measurements", std::move(measurements));
    doc.set("speedup_bulk_vs_per_word", 5.0);
    doc.set("tracing_overhead_pct", 10.0);
    doc.set("costs_bit_identical", bit_identical);
    doc.set("trace_total_equals_cost", trace_exact);
    return doc;
}

CombinedReport sample_report() {
    CombinedReport r;
    r.provenance = Provenance::collect();
    r.experiments.push_back(sample_experiment());
    std::string error;
    auto micro = MicroData::from_json(micro_doc(1e6), &error);
    r.micro = std::move(*micro);
    return r;
}

TEST(CombinedReport, JsonRoundTripAndPassFlag) {
    const CombinedReport r = sample_report();
    EXPECT_TRUE(r.pass());
    const Json j = r.to_json();
    EXPECT_EQ(j["schema"].as_string(), report::kCombinedSchema);
    EXPECT_DOUBLE_EQ(j["checks_total"].as_double(), 1.0);
    EXPECT_TRUE(j["pass"].as_bool());

    std::string error;
    const auto back = CombinedReport::from_json(*Json::parse(j.dump()), &error);
    ASSERT_TRUE(back.has_value()) << error;
    ASSERT_EQ(back->experiments.size(), 1u);
    EXPECT_NE(back->find("e1"), nullptr);
    EXPECT_EQ(back->find("e2"), nullptr);
    ASSERT_TRUE(back->micro.has_value());
    EXPECT_DOUBLE_EQ(back->micro->bulk_words_per_sec, 1e6);
    EXPECT_TRUE(back->pass());
}

TEST(CombinedReport, FromJsonRejectsDuplicateExperiments) {
    CombinedReport r = sample_report();
    Json j = r.to_json();
    Json exps = j["experiments"];
    exps.push_back(exps.items()[0]);
    j.set("experiments", std::move(exps));
    std::string error;
    EXPECT_FALSE(CombinedReport::from_json(j, &error).has_value());
    EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(MicroData, RejectsDocumentWithoutWordsPerSec) {
    std::string error;
    EXPECT_FALSE(MicroData::from_json(Json::object(), &error).has_value());
    EXPECT_NE(error.find("words_per_sec"), std::string::npos);
    EXPECT_FALSE(MicroData::from_json(Json("not an object"), &error).has_value());
}

TEST(Gate, PassesAgainstItselfAndCatchesEachRegressionKind) {
    const CombinedReport base = sample_report();
    const GateOptions opts;
    EXPECT_TRUE(report::gate_violations(base, base, opts).empty());

    {  // exponent drift beyond tolerance
        CombinedReport cur = base;
        cur.experiments[0].checks[0].measured = 2.1;  // drift 0.1 > 0.05
        const auto v = report::gate_violations(cur, base, opts);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_NE(v[0].find("exponent drifted"), std::string::npos);
    }
    {  // non-exponent value drift, relative
        CombinedReport cur = base;
        cur.experiments[0].checks[0].kind = "band";
        cur.experiments[0].checks[0].measured = 2.0;
        cur.experiments[0].checks[0].tolerance = 10.0;
        CombinedReport b2 = base;
        b2.experiments[0].checks[0].kind = "band";
        b2.experiments[0].checks[0].measured = 1.0;
        b2.experiments[0].checks[0].tolerance = 10.0;
        const auto v = report::gate_violations(cur, b2, opts);  // 100% > 25%
        ASSERT_EQ(v.size(), 1u);
        EXPECT_NE(v[0].find("value drifted"), std::string::npos);
    }
    {  // a failing check at head is a violation even with zero drift
        CombinedReport cur = base;
        cur.experiments[0].checks[0].pass = false;
        const auto v = report::gate_violations(cur, base, opts);
        ASSERT_GE(v.size(), 1u);
        EXPECT_NE(v[0].find("FAILED"), std::string::npos);
    }
    {  // missing experiment, honoured and waived by subset_ok
        CombinedReport cur = base;
        cur.experiments.clear();
        EXPECT_EQ(report::gate_violations(cur, base, opts).size(), 1u);
        GateOptions subset = opts;
        subset.subset_ok = true;
        EXPECT_TRUE(report::gate_violations(cur, base, subset).empty());
    }
    {  // missing check within a present experiment
        CombinedReport cur = base;
        cur.experiments[0].checks[0].id = "renamed-check";
        const auto v = report::gate_violations(cur, base, opts);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_NE(v[0].find("missing from current"), std::string::npos);
        GateOptions subset = opts;
        subset.subset_ok = true;
        EXPECT_TRUE(report::gate_violations(cur, base, subset).empty());
    }
    {  // perf drop beyond the wall-clock tolerance
        CombinedReport cur = base;
        std::string error;
        cur.micro = *MicroData::from_json(micro_doc(1e6 * 0.5), &error);  // -50% < -35%
        const auto v = report::gate_violations(cur, base, opts);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_NE(v[0].find("words/sec regressed"), std::string::npos);
        GateOptions wide = opts;
        wide.perf_drop_pct = 60.0;
        EXPECT_TRUE(report::gate_violations(cur, base, wide).empty());
    }
    {  // broken cost invariants in the micro artifact
        CombinedReport cur = base;
        std::string error;
        cur.micro = *MicroData::from_json(micro_doc(1e6, false, false), &error);
        EXPECT_FALSE(cur.pass());
        const auto v = report::gate_violations(cur, base, opts);
        EXPECT_EQ(v.size(), 2u);  // bit-identical + trace mirror
    }
}

TEST(Gate, MinCheckHonorsItsDeclaredAbsoluteDriftTolerance) {
    // A min/max check that declares a non-zero tolerance opts out of the
    // default relative-drift rule in favor of that absolute allowance — the
    // escape hatch for exact but fold-order-sensitive values like locality
    // scores (see GateOptions).
    CombinedReport base = sample_report();
    Check& bc = base.experiments[0].checks[0];
    bc.kind = "min";
    bc.measured = 0.10;
    bc.predicted = 0.05;
    bc.tolerance = 0.05;
    bc.pass = true;
    const GateOptions opts;
    {
        // 40% relative drift would trip the default rule; 0.04 absolute is
        // within the declared allowance.
        CombinedReport cur = base;
        cur.experiments[0].checks[0].measured = 0.14;
        EXPECT_TRUE(report::gate_violations(cur, base, opts).empty());
    }
    {
        CombinedReport cur = base;
        cur.experiments[0].checks[0].measured = 0.16;  // 0.06 absolute > 0.05
        const auto v = report::gate_violations(cur, base, opts);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_NE(v[0].find("absolute"), std::string::npos);
    }
    {
        // Without a declared tolerance the relative rule still applies.
        CombinedReport b2 = base;
        b2.experiments[0].checks[0].tolerance = 0.0;
        CombinedReport cur = b2;
        cur.experiments[0].checks[0].measured = 0.14;
        const auto v = report::gate_violations(cur, b2, opts);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_NE(v[0].find("value drifted"), std::string::npos);
    }
}

TEST(Gate, LocalityOverheadCeilingsAreAbsoluteBoundsOnHead) {
    const CombinedReport base = sample_report();
    const GateOptions opts;
    const auto with_locality = [&](double exact_pct, double sampled_pct,
                                   double score_err) {
        CombinedReport cur = base;
        Json doc = micro_doc(1e6);
        doc.set("locality_enabled_overhead_pct", exact_pct);
        doc.set("locality_sampled_overhead_pct", sampled_pct);
        doc.set("locality_sampled_score_abs_err", score_err);
        std::string error;
        cur.micro = *MicroData::from_json(doc, &error);
        return cur;
    };
    EXPECT_TRUE(
        report::gate_violations(with_locality(3000, 250, 0.2), base, opts).empty());
    {
        const auto v = report::gate_violations(with_locality(4500, 250, 0.2), base, opts);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_NE(v[0].find("exact locality profiling overhead"), std::string::npos);
    }
    {
        const auto v = report::gate_violations(with_locality(3000, 450, 0.2), base, opts);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_NE(v[0].find("sampled locality profiling overhead"), std::string::npos);
    }
    {
        const auto v = report::gate_violations(with_locality(3000, 250, 0.7), base, opts);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_NE(v[0].find("score error"), std::string::npos);
    }
    // The ceilings are configurable like every other gate knob.
    GateOptions tight = opts;
    tight.locality_enabled_overhead_max_pct = 1000.0;
    EXPECT_EQ(
        report::gate_violations(with_locality(3000, 250, 0.2), base, tight).size(), 1u);
}

TEST(Check, WaivedChecksRoundTripAndRejectContradictions) {
    CombinedReport r = sample_report();
    Check waived;
    waived.label = "measured L1d rank";
    waived.id = "measured-l1d-rank";
    waived.kind = "min";
    waived.predicted = 0.0;
    waived.pass = true;
    waived.waived = true;
    waived.waive_reason = "perf_event_open failed: EACCES";
    r.experiments[0].checks.push_back(waived);
    EXPECT_TRUE(r.pass());

    const Json j = r.to_json();
    std::string error;
    const auto back = CombinedReport::from_json(*Json::parse(j.dump()), &error);
    ASSERT_TRUE(back.has_value()) << error;
    const Check& c = back->experiments[0].checks[1];
    EXPECT_TRUE(c.waived);
    EXPECT_TRUE(c.pass);
    EXPECT_EQ(c.waive_reason, "perf_event_open failed: EACCES");
    // Non-waived checks must not grow the fields in their serialized form.
    EXPECT_FALSE(j["experiments"].items()[0]["checks"].items()[0].contains("waived"));

    // A waiver that still records a failure is a contradiction: waiving
    // forces pass, so such a document was hand-edited or corrupted.
    Json bad = j["experiments"].items()[0];
    Json checks = bad["checks"];
    Json broken = checks.items()[1];
    broken.set("pass", false);
    Json rebuilt = Json::array();
    rebuilt.push_back(checks.items()[0]);
    rebuilt.push_back(std::move(broken));
    bad.set("checks", std::move(rebuilt));
    bad.set("pass", false);
    EXPECT_FALSE(report::ExperimentResult::from_json(bad, &error).has_value());
    EXPECT_NE(error.find("waived"), std::string::npos);
}

TEST(Gate, WaivedChecksAreExcusedFromDriftComparison) {
    // A measured check recorded on a PMU-enabled machine vs a head run where
    // counters were denied (or vice versa): drift has no meaning when one
    // side carries no measurement, so the gate skips the pair entirely.
    CombinedReport base = sample_report();
    Check& bc = base.experiments[0].checks[0];
    bc.kind = "min";
    bc.measured = 0.8;
    bc.tolerance = 0.0;
    const GateOptions opts;
    {  // head waived, baseline measured: huge nominal drift, no violation
        CombinedReport cur = base;
        Check& cc = cur.experiments[0].checks[0];
        cc.measured = 0.0;
        cc.pass = true;
        cc.waived = true;
        cc.waive_reason = "disabled by DBSP_NO_PERF";
        EXPECT_TRUE(report::gate_violations(cur, base, opts).empty());
    }
    {  // baseline waived, head measured: same
        CombinedReport b2 = base;
        Check& wb = b2.experiments[0].checks[0];
        wb.measured = 0.0;
        wb.pass = true;
        wb.waived = true;
        wb.waive_reason = "disabled by DBSP_NO_PERF";
        CombinedReport cur = base;
        cur.experiments[0].checks[0].measured = 123.0;
        EXPECT_TRUE(report::gate_violations(cur, b2, opts).empty());
    }
    {  // neither waived: the drift rule still bites
        CombinedReport cur = base;
        cur.experiments[0].checks[0].measured = 123.0;
        EXPECT_EQ(report::gate_violations(cur, base, opts).size(), 1u);
    }
}

TEST(Gate, CounterLegCostIdentityIsGatedAndAvailabilityIsNot) {
    const CombinedReport base = sample_report();
    const GateOptions opts;
    {
        // Counters unavailable is a waiver, never a violation.
        CombinedReport cur = base;
        Json doc = micro_doc(1e6);
        Json counters = Json::object();
        counters.set("available", false);
        counters.set("reason", "perf_event_open failed: ENOENT");
        doc.set("counters", std::move(counters));
        std::string error;
        cur.micro = *MicroData::from_json(doc, &error);
        EXPECT_FALSE(cur.micro->counters_available);
        EXPECT_EQ(cur.micro->counters_reason, "perf_event_open failed: ENOENT");
        EXPECT_TRUE(cur.pass());
        EXPECT_TRUE(report::gate_violations(cur, base, opts).empty());
    }
    {
        // The counter leg charging a different cost is a hard violation
        // regardless of counter availability: observation changed behavior.
        CombinedReport cur = base;
        Json doc = micro_doc(1e6);
        doc.set("costs_bit_identical_counters", false);
        std::string error;
        cur.micro = *MicroData::from_json(doc, &error);
        EXPECT_FALSE(cur.pass());
        const auto v = report::gate_violations(cur, base, opts);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_NE(v[0].find("hardware counters"), std::string::npos);
    }
}

TEST(Gate, MarkdownDashboardCarriesVerdictsAndBaselineDeltas) {
    const CombinedReport base = sample_report();
    CombinedReport cur = base;
    cur.experiments[0].checks[0].measured = 2.04;
    const std::string md = cur.markdown(&base);
    EXPECT_NE(md.find("# Conformance dashboard"), std::string::npos);
    EXPECT_NE(md.find("E1 sample"), std::string::npos);
    EXPECT_NE(md.find("1/1 checks pass"), std::string::npos);
    EXPECT_NE(md.find("0.040"), std::string::npos);  // delta vs baseline
    EXPECT_NE(md.find("words/s"), std::string::npos);
    const std::string md_nobase = cur.markdown(nullptr);
    EXPECT_EQ(md_nobase.find("baseline:"), std::string::npos);

    // Waived checks render their reason and suppress the measured value.
    Check waived;
    waived.label = "measured L1d rank";
    waived.id = "measured-l1d-rank";
    waived.kind = "min";
    waived.pass = true;
    waived.waived = true;
    waived.waive_reason = "no PMU";
    cur.experiments[0].checks.push_back(waived);
    const std::string md_waived = cur.markdown(&base);
    EXPECT_NE(md_waived.find("waived (no PMU)"), std::string::npos);
}

}  // namespace
