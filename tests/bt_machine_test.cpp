#include <gtest/gtest.h>

#include "bt/machine.hpp"
#include "core/bounds.hpp"

namespace dbsp::bt {
namespace {

using model::AccessFunction;

TEST(BtMachine, BlockCopyCostIsMaxAccessPlusLength) {
    Machine m(AccessFunction::polynomial(0.5), 4096);
    for (int i = 0; i < 16; ++i) m.raw()[1000 + i] = 70 + i;
    m.reset_cost();
    m.block_copy(1000, 0, 16);
    EXPECT_EQ(m.raw()[0], 70u);
    EXPECT_EQ(m.raw()[15], 85u);
    // max(f(1015), f(15)) + 16.
    const double expected = AccessFunction::polynomial(0.5)(1015) + 16.0;
    EXPECT_NEAR(m.cost(), expected, 1e-9);
    EXPECT_EQ(m.block_transfers(), 1u);
}

TEST(BtMachine, BlockCopyCheaperThanElementwise) {
    // The whole point of the model: moving b cells from depth x costs
    // f(x) + b, not sum of f over the range.
    const auto f = AccessFunction::polynomial(0.5);
    Machine m(f, 1 << 16);
    m.reset_cost();
    m.block_copy((1 << 16) - 4096, 0, 4096);
    const double block_cost = m.cost();
    double elementwise = 0;
    for (std::uint64_t i = 0; i < 4096; ++i) elementwise += f((1 << 16) - 4096 + i);
    EXPECT_LT(block_cost, elementwise / 30.0);
}

TEST(BtMachineDeathTest, OverlappingBlockCopyAborts) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine m(AccessFunction::constant(), 64);
    EXPECT_DEATH(m.block_copy(0, 4, 8), "Precondition");
}

TEST(BtMachine, ReadWriteStillChargeHmmCosts) {
    Machine m(AccessFunction::logarithmic(), 1024);
    m.write(14, 3);
    EXPECT_DOUBLE_EQ(m.cost(), 4.0);  // log2(14+2)
    EXPECT_EQ(m.read(14), 3u);
    EXPECT_DOUBLE_EQ(m.cost(), 8.0);
}

TEST(BtMachine, ChargeAccumulates) {
    Machine m(AccessFunction::constant(), 16);
    m.charge(2.5);
    m.charge(0.5);
    EXPECT_DOUBLE_EQ(m.cost(), 3.0);
}

}  // namespace
}  // namespace dbsp::bt
