#include <gtest/gtest.h>

#include <cmath>

#include "util/bits.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dbsp {
namespace {

TEST(Bits, IsPow2) {
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(2));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_TRUE(is_pow2(1ull << 40));
    EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Bits, Ilog2) {
    EXPECT_EQ(ilog2(1), 0u);
    EXPECT_EQ(ilog2(2), 1u);
    EXPECT_EQ(ilog2(3), 1u);
    EXPECT_EQ(ilog2(4), 2u);
    EXPECT_EQ(ilog2(1ull << 50), 50u);
}

TEST(Bits, NextPow2) {
    EXPECT_EQ(next_pow2(1), 1u);
    EXPECT_EQ(next_pow2(2), 2u);
    EXPECT_EQ(next_pow2(3), 4u);
    EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bits, ReverseBits) {
    EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
    EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
    EXPECT_EQ(reverse_bits(5, 0), 0u);
    // Involution property.
    for (std::uint64_t x = 0; x < 64; ++x) {
        EXPECT_EQ(reverse_bits(reverse_bits(x, 6), 6), x);
    }
}

TEST(Bits, MortonRoundTrip) {
    for (std::uint32_t r = 0; r < 20; ++r) {
        for (std::uint32_t c = 0; c < 20; ++c) {
            const auto code = morton_encode(r, c);
            const auto rc = morton_decode(code);
            EXPECT_EQ(rc.row, r);
            EXPECT_EQ(rc.col, c);
        }
    }
}

TEST(Bits, MortonQuadrantStructure) {
    // The two top bits of a Morton code over a 2^k x 2^k grid select the
    // quadrant: (row msb << 1) | col msb.
    const std::uint32_t side = 8;
    for (std::uint32_t r = 0; r < side; ++r) {
        for (std::uint32_t c = 0; c < side; ++c) {
            const auto code = morton_encode(r, c);
            const auto quadrant = (code >> 4) & 3;  // 64 cells -> 6 bits
            EXPECT_EQ(quadrant, ((r >> 2) << 1) | (c >> 2));
        }
    }
}

TEST(Bits, Ipow) {
    EXPECT_EQ(ipow(2, 10), 1024u);
    EXPECT_EQ(ipow(3, 0), 1u);
    EXPECT_EQ(ipow(10, 3), 1000u);
}

TEST(Rng, Deterministic) {
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowRange) {
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_below(13), 13u);
    }
}

TEST(Rng, NextBelowCoversRange) {
    SplitMix64 rng(7);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i) ++seen[rng.next_below(8)];
    for (int count : seen) EXPECT_GT(count, 300);  // roughly uniform
}

TEST(Rng, NextDoubleUnit) {
    SplitMix64 rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Stats, FitLogLogRecoversExponent) {
    std::vector<double> xs, ys;
    for (double x : {16.0, 64.0, 256.0, 1024.0, 8192.0}) {
        xs.push_back(x);
        ys.push_back(3.0 * std::pow(x, 1.5));
    }
    const auto fit = fit_loglog(xs, ys);
    EXPECT_NEAR(fit.slope, 1.5, 1e-9);
    EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
    EXPECT_NEAR(fit.max_residual, 0.0, 1e-9);  // exact power law: no residual
}

TEST(Stats, FitLogLogMaxResidualIsWorstLogDeviation) {
    // Perfect x^2 line with one point perturbed by a factor of e: the fitted
    // line moves a little, but the worst log-residual must stay near 1 (and
    // strictly positive), and R^2 must drop below 1.
    std::vector<double> xs, ys;
    for (double x : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0}) {
        xs.push_back(x);
        ys.push_back(x * x);
    }
    ys[3] *= std::exp(1.0);
    const auto fit = fit_loglog(xs, ys);
    EXPECT_GT(fit.max_residual, 0.5);
    EXPECT_LT(fit.max_residual, 1.0);  // the fit absorbs part of the bump
    EXPECT_LT(fit.r_squared, 1.0);
    EXPECT_GT(fit.r_squared, 0.9);
}

TEST(Stats, FitLogLogDegeneratesGracefullyOnEqualXs) {
    // All-equal xs make the slope undefined (denominator 0); the fit must
    // return the horizontal line through the mean of log(ys), not NaNs.
    const auto fit = fit_loglog({32.0, 32.0, 32.0}, {2.0, 8.0, 4.0});
    EXPECT_TRUE(std::isfinite(fit.slope));
    EXPECT_TRUE(std::isfinite(fit.intercept));
    EXPECT_TRUE(std::isfinite(fit.r_squared));
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_NEAR(std::exp(fit.intercept), 4.0, 1e-12);  // geomean of ys
    EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);
    EXPECT_DOUBLE_EQ(fit.max_residual, 0.0);  // no line fitted, no residuals

    // Two identical points: same degenerate shape.
    const auto two = fit_loglog({7.0, 7.0}, {5.0, 5.0});
    EXPECT_DOUBLE_EQ(two.slope, 0.0);
    EXPECT_NEAR(std::exp(two.intercept), 5.0, 1e-12);
}

TEST(Stats, MeanAndGeometricMean) {
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(Stats, Spread) {
    EXPECT_DOUBLE_EQ(spread({2.0, 8.0, 4.0}), 4.0);
    EXPECT_DOUBLE_EQ(spread({5.0}), 1.0);
}

TEST(ParseThreadCount, AcceptsOnlyFullPositiveIntegers) {
    // The DBSP_BENCH_THREADS / DBSP_THREADS override must be parsed strictly:
    // "abc" and "4x" used to be treated as unset with no diagnostic.
    EXPECT_EQ(util::parse_thread_count("1"), 1u);
    EXPECT_EQ(util::parse_thread_count("8"), 8u);
    EXPECT_EQ(util::parse_thread_count("64"), 64u);

    EXPECT_EQ(util::parse_thread_count(""), std::nullopt);
    EXPECT_EQ(util::parse_thread_count("0"), std::nullopt);
    EXPECT_EQ(util::parse_thread_count("abc"), std::nullopt);
    EXPECT_EQ(util::parse_thread_count("4x"), std::nullopt);
    EXPECT_EQ(util::parse_thread_count("x4"), std::nullopt);
    EXPECT_EQ(util::parse_thread_count("-2"), std::nullopt);
    EXPECT_EQ(util::parse_thread_count("+4"), std::nullopt);
    EXPECT_EQ(util::parse_thread_count(" 4"), std::nullopt);
    EXPECT_EQ(util::parse_thread_count("4 "), std::nullopt);
    EXPECT_EQ(util::parse_thread_count("0x4"), std::nullopt);
    EXPECT_EQ(util::parse_thread_count("3.5"), std::nullopt);
}

TEST(Table, RendersAlignedRows) {
    Table t({"n", "cost", "ratio"});
    t.add_row({"16", "123", "1.0"});
    t.add_row_values({1024, 5.5, 0.333333});
    const std::string s = t.str();
    EXPECT_NE(s.find("cost"), std::string::npos);
    EXPECT_NE(s.find("1024"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FmtModes) {
    EXPECT_EQ(Table::fmt(42), "42");
    EXPECT_EQ(Table::fmt(2.5), "2.5000");
    EXPECT_EQ(Table::fmt(12345678.0), "12345678");  // integral: no notation
    EXPECT_NE(Table::fmt(1.234567891e9 + 0.25).find("e"), std::string::npos);
    EXPECT_NE(Table::fmt(0.0001).find("e"), std::string::npos);
}

}  // namespace
}  // namespace dbsp
