#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "bt/machine.hpp"
#include "check/differential.hpp"
#include "check/program_gen.hpp"
#include "check/shrinker.hpp"
#include "check/trace_io.hpp"
#include "hmm/machine.hpp"
#include "model/context_layout.hpp"
#include "model/dbsp_machine.hpp"
#include "model/recorded_program.hpp"
#include "util/rng.hpp"

namespace dbsp::check {
namespace {

using model::AccessFunction;
using model::ContextLayout;
using model::Word;

TEST(ProgramGen, DeterministicAcrossCalls) {
    const GenConfig config;
    for (std::uint64_t seed : {1ull, 7ull, 1234ull, 999983ull}) {
        const ProgramSpec a = generate_spec(config, seed);
        const ProgramSpec b = generate_spec(config, seed);
        EXPECT_EQ(serialize_spec(a), serialize_spec(b)) << "seed " << seed;
    }
    // Different seeds must not collapse onto one program.
    EXPECT_NE(serialize_spec(generate_spec(config, 1)),
              serialize_spec(generate_spec(config, 2)));
}

TEST(ProgramGen, GeneratesValidSpecs) {
    const GenConfig config;
    for (std::uint64_t seed = 1; seed <= 300; ++seed) {
        const ProgramSpec spec = generate_spec(config, seed);
        std::string why;
        EXPECT_TRUE(spec_valid(spec, &why)) << "seed " << seed << ": " << why;
        EXPECT_FALSE(spec.describe().empty());
    }
}

TEST(ProgramGen, CoversAdversarialGeometries) {
    // The generator's whole value is edge coverage; lock in that a modest
    // seed range actually hits the geometries the oracle needs to exercise.
    const GenConfig config;
    bool tiny = false, large = false, multi_step = false;
    bool descent = false, empty_step = false, unread_inbox = false;
    for (std::uint64_t seed = 1; seed <= 300; ++seed) {
        const ProgramSpec spec = generate_spec(config, seed);
        tiny = tiny || spec.processors == 1;
        large = large || spec.processors >= 8;
        multi_step = multi_step || spec.labels.size() >= 4;
        for (std::size_t s = 0; s + 1 < spec.labels.size(); ++s) {
            descent = descent || spec.labels[s] > spec.labels[s + 1];
        }
        for (std::size_t s = 0; s < spec.labels.size(); ++s) {
            std::uint64_t sends = 0, reads = 0;
            for (const auto& ev : spec.events[s]) {
                sends += ev.sends.size();
                reads += ev.read_inbox ? 1 : 0;
            }
            empty_step = empty_step || sends == 0;
            // A superstep that receives but never reads leaves the inbox to
            // survive cluster scheduling — the stale-message edge case.
            unread_inbox = unread_inbox || (sends > 0 && reads == 0);
        }
    }
    EXPECT_TRUE(tiny);
    EXPECT_TRUE(large);
    EXPECT_TRUE(multi_step);
    EXPECT_TRUE(descent);
    EXPECT_TRUE(empty_step);
    EXPECT_TRUE(unread_inbox);
}

TEST(DifferentialOracle, CleanOnGeneratedPrograms) {
    const GenConfig config;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const DiffReport report = check_spec(generate_spec(config, seed));
        EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.summary();
    }
}

/// A deliberately impure program: every step() invocation stores a fresh
/// counter value, so re-running it yields a different memory image. The
/// executors require pure step callbacks; the oracle re-runs the program once
/// per mode combination, so impurity must surface as a mode-axis divergence.
class ImpureProgram final : public model::Program {
public:
    std::string name() const override { return "impure"; }
    std::uint64_t num_processors() const override { return 2; }
    std::size_t data_words() const override { return 2; }
    std::size_t max_messages() const override { return 1; }
    model::StepIndex num_supersteps() const override { return 1; }
    unsigned label(model::StepIndex) const override { return 0; }
    void init(model::ProcId, std::span<Word> data) const override {
        for (Word& w : data) w = 0;
    }
    void step(model::StepIndex, model::ProcId, model::StepContext& ctx) override {
        ctx.store(0, ++counter_);
    }

private:
    Word counter_ = 0;
};

TEST(DifferentialOracle, FlagsImpureProgramAsModeDivergence) {
    // Sensitivity check: a program whose observable state differs between two
    // runs must trip the image cross-checks — if this passes clean, the
    // oracle is comparing nothing.
    ImpureProgram program;
    const DiffReport report = check_program(program);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has_tag("direct-image-mode")) << report.summary();
}

/// Impure in cost only: charges one more op on every invocation. Must trip
/// the bit-identical cost cross-check, not the image check.
class ImpureCostProgram final : public model::Program {
public:
    std::string name() const override { return "impure-cost"; }
    std::uint64_t num_processors() const override { return 2; }
    std::size_t data_words() const override { return 2; }
    std::size_t max_messages() const override { return 1; }
    model::StepIndex num_supersteps() const override { return 1; }
    unsigned label(model::StepIndex) const override { return 0; }
    void init(model::ProcId, std::span<Word> data) const override {
        for (Word& w : data) w = 0;
    }
    void step(model::StepIndex, model::ProcId, model::StepContext& ctx) override {
        ctx.charge_ops(++calls_);
    }

private:
    std::uint64_t calls_ = 0;
};

TEST(DifferentialOracle, FlagsImpureCostAsCostDivergence) {
    ImpureCostProgram program;
    const DiffReport report = check_program(program);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has_tag("direct-cost-mode")) << report.summary();
}

TEST(Shrinker, MinimizesAgainstSyntheticPredicate) {
    // A hand-built spec with one "interesting" send (payload0 == 42) buried
    // in noise. The predicate is synthetic so the expected minimum is exact:
    // every reduction pass must fire, leaving one superstep, one message,
    // D = B = 1, and the planted payload intact (zeroing it breaks the
    // predicate, so pass 5 must leave it alone).
    ProgramSpec spec;
    spec.processors = 4;
    spec.data_words = 3;
    spec.max_messages = 2;
    spec.labels = {0, 0};
    spec.events.assign(2, std::vector<ProgramSpec::Event>(4));
    spec.events[0][0].sends = {{3, 42, 7}, {1, 5, 6}};
    spec.events[0][2].sends = {{0, 9, 9}};
    spec.events[0][1].extra_ops = 3;
    spec.events[0][3].touch_data = true;
    for (auto& ev : spec.events[1]) ev.read_inbox = true;
    spec.events[1][1].sends = {{2, 8, 8}};
    ASSERT_TRUE(spec_valid(spec));

    const auto has_42 = [](const ProgramSpec& s) {
        for (const auto& step : s.events) {
            for (const auto& ev : step) {
                for (const auto& send : ev.sends) {
                    if (send.payload0 == 42) return true;
                }
            }
        }
        return false;
    };
    const ShrinkResult result = shrink_with(spec, has_42);

    ASSERT_TRUE(spec_valid(result.spec));
    EXPECT_TRUE(has_42(result.spec));
    EXPECT_EQ(result.spec.labels.size(), 1u);
    EXPECT_EQ(result.spec.total_messages(), 1u);
    EXPECT_EQ(result.spec.data_words, 1u);
    EXPECT_EQ(result.spec.max_messages, 1u);
    // The 42-send targets processor 3, so halving cannot apply: v stays 4.
    EXPECT_EQ(result.spec.processors, 4u);
    EXPECT_GT(result.accepted, 0u);
    for (const auto& step : result.spec.events) {
        for (const auto& ev : step) {
            EXPECT_EQ(ev.extra_ops, 0u);
            EXPECT_FALSE(ev.touch_data);
            EXPECT_FALSE(ev.read_inbox);
        }
    }
}

TEST(TraceIo, SpecRoundTrip) {
    const GenConfig config;
    for (std::uint64_t seed : {1ull, 17ull, 4242ull}) {
        const ProgramSpec spec = generate_spec(config, seed);
        const std::string text = serialize_spec(spec);
        ProgramSpec parsed;
        std::string error;
        ASSERT_TRUE(parse_spec(text, &parsed, &error)) << error;
        EXPECT_EQ(serialize_spec(parsed), text);
        EXPECT_EQ(parsed.processors, spec.processors);
        EXPECT_EQ(parsed.labels, spec.labels);
        EXPECT_EQ(parsed.total_messages(), spec.total_messages());
    }
}

TEST(TraceIo, TraceRoundTrip) {
    GeneratedProgram program(generate_spec(GenConfig{}, 23));
    const model::Trace trace = model::record(program);
    const std::string text = serialize_trace(trace);
    model::Trace parsed;
    std::string error;
    ASSERT_TRUE(parse_trace(text, &parsed, &error)) << error;
    EXPECT_EQ(serialize_trace(parsed), text);

    // The replay must also be semantically identical, not just textually.
    model::RecordedProgram a(trace), b(parsed);
    model::DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto ra = machine.run(a);
    const auto rb = machine.run(b);
    EXPECT_EQ(ra.time, rb.time);
    for (std::uint64_t p = 0; p < a.num_processors(); ++p) {
        EXPECT_EQ(ra.data_of(p), rb.data_of(p));
    }
}

TEST(TraceIo, RejectsMalformedInput) {
    ProgramSpec spec;
    model::Trace trace;
    Repro repro;
    std::string error;

    EXPECT_FALSE(parse_repro("", &repro, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parse_repro("garbage header\n", &repro, &error));
    EXPECT_FALSE(parse_spec("dbsp-trace v2\n", &spec, &error));  // wrong format
    EXPECT_FALSE(parse_trace("dbsp-spec v1\n", &trace, &error));

    // Truncated: valid header, missing terminator.
    const std::string good = serialize_spec(generate_spec(GenConfig{}, 3));
    const std::string truncated = good.substr(0, good.rfind("end"));
    EXPECT_FALSE(parse_spec(truncated, &spec, &error));
    EXPECT_FALSE(error.empty());

    // Out-of-range field: non-power-of-two processor count.
    EXPECT_FALSE(parse_spec("dbsp-spec v1\nv 3\nD 1\nB 1\nseed 0\nsteps 1\nlabels 0\nend\n",
                            &spec, &error));
}

TEST(ReproCorpus, AllCommittedReprosPassClean) {
    // Every file under tests/repros/ is a shrunk repro of a fixed bug; each
    // must parse and run the full differential matrix clean at head. A
    // regression flips exactly the check its filename tag names.
    const std::filesystem::path dir = DBSP_REPRO_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    std::size_t count = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".txt") continue;
        ++count;
        Repro repro;
        std::string error;
        ASSERT_TRUE(load_repro_file(entry.path().string(), &repro, &error))
            << entry.path() << ": " << error;
        const auto program = repro.make_program();
        const DiffReport report = check_program(*program);
        EXPECT_TRUE(report.ok()) << entry.path() << "\n" << report.summary();
    }
    EXPECT_GE(count, 1u) << "repro corpus is empty";
}

TEST(FunctionalImage, ExcludesStaleWordsKeepsLiveOnes) {
    const ContextLayout layout{.data_words = 2, .max_messages = 2};
    std::vector<Word> ctx(layout.context_words(), 0);
    ctx[0] = 11;
    ctx[1] = 22;
    ctx[layout.in_count_offset()] = 1;
    ctx[layout.in_record_offset(0) + 0] = 3;  // src
    ctx[layout.in_record_offset(0) + 1] = 44;
    ctx[layout.in_record_offset(0) + 2] = 55;

    // Stale garbage beyond the live counts must not affect the image.
    std::vector<Word> noisy = ctx;
    noisy[layout.in_record_offset(1) + 1] = 999;  // beyond in_count = 1
    noisy[layout.out_record_offset(0) + 0] = 777;  // out_count = 0
    EXPECT_EQ(functional_image(ctx, layout), functional_image(noisy, layout));

    // A live record word must affect it.
    std::vector<Word> live = ctx;
    live[layout.in_record_offset(0) + 1] = 45;
    EXPECT_NE(functional_image(ctx, layout), functional_image(live, layout));

    // So must the counts themselves.
    std::vector<Word> more = ctx;
    more[layout.in_count_offset()] = 2;
    EXPECT_NE(functional_image(ctx, layout), functional_image(more, layout));
}

/// Draw an (addr, len) range biased to straddle power-of-two boundaries —
/// exactly where the HMM level breaks and BT block edges sit.
std::pair<std::uint64_t, std::size_t> boundary_range(SplitMix64& rng,
                                                     std::uint64_t capacity) {
    const unsigned k = 1 + static_cast<unsigned>(rng.next_below(12));
    const std::uint64_t boundary = std::uint64_t{1} << k;
    const std::uint64_t back = 1 + rng.next_below(std::min<std::uint64_t>(boundary, 8));
    const std::uint64_t addr = boundary - back;
    const std::size_t len =
        static_cast<std::size_t>(1 + rng.next_below(16));
    if (addr + len > capacity) return {capacity - len, len};
    return {addr, len};
}

TEST(RangeAccessFuzz, HmmRangeMatchesPerWordAtLevelBreaks) {
    // hmm::Machine documents read_range/write_range as bit-for-bit
    // cost-equivalent to ascending per-word loops. Fuzz ranges that straddle
    // the f-level breaks (power-of-two addresses), where a fused charge loop
    // is most likely to mis-split the per-cell sum.
    const std::uint64_t capacity = 1 << 12;
    for (const auto& f : {AccessFunction::polynomial(0.35), AccessFunction::polynomial(0.5),
                          AccessFunction::logarithmic()}) {
        hmm::Machine bulk(f, capacity);
        hmm::Machine word(f, capacity);
        SplitMix64 rng(0xfeedu);
        for (int trial = 0; trial < 200; ++trial) {
            const auto [addr, len] = boundary_range(rng, capacity);
            std::vector<Word> values(len);
            for (auto& w : values) w = rng.next();

            bulk.write_range(addr, values);
            for (std::size_t i = 0; i < len; ++i) word.write(addr + i, values[i]);
            ASSERT_EQ(bulk.cost(), word.cost())
                << f.name() << " write [" << addr << ", " << addr + len << ")";

            std::vector<Word> got(len), expect(len);
            bulk.read_range(addr, got);
            for (std::size_t i = 0; i < len; ++i) expect[i] = word.read(addr + i);
            ASSERT_EQ(got, expect);
            ASSERT_EQ(bulk.cost(), word.cost())
                << f.name() << " read [" << addr << ", " << addr + len << ")";
        }
    }
}

TEST(RangeAccessFuzz, BtRangeMatchesPerWordAtBlockEdges) {
    const std::uint64_t capacity = 1 << 12;
    for (const auto& f : {AccessFunction::polynomial(0.35), AccessFunction::polynomial(0.5),
                          AccessFunction::logarithmic()}) {
        bt::Machine bulk(f, capacity);
        bt::Machine word(f, capacity);
        SplitMix64 rng(0xbeefu);
        for (int trial = 0; trial < 200; ++trial) {
            const auto [addr, len] = boundary_range(rng, capacity);
            std::vector<Word> values(len);
            for (auto& w : values) w = rng.next();

            bulk.write_range(addr, values);
            for (std::size_t i = 0; i < len; ++i) word.write(addr + i, values[i]);
            ASSERT_EQ(bulk.cost(), word.cost())
                << f.name() << " write [" << addr << ", " << addr + len << ")";
            ASSERT_EQ(bulk.word_access_cost(), word.word_access_cost());

            std::vector<Word> got(len), expect(len);
            bulk.read_range(addr, got);
            for (std::size_t i = 0; i < len; ++i) expect[i] = word.read(addr + i);
            ASSERT_EQ(got, expect);
            ASSERT_EQ(bulk.cost(), word.cost())
                << f.name() << " read [" << addr << ", " << addr + len << ")";
            ASSERT_EQ(bulk.word_access_cost(), word.word_access_cost());
        }
    }
}

}  // namespace
}  // namespace dbsp::check
