/// Tests for src/locality/: the order-statistics treap, the reuse-distance
/// engine (cross-checked against a brute-force LRU stack simulation), the
/// derived analytics (histograms, working set, per-level slicing), and the
/// LocalitySink's count/cost agreement with hmm::Machine.

#include <algorithm>
#include <cmath>
#include <complex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "algos/fft_direct.hpp"
#include "core/hmm_simulator.hpp"
#include "core/naive_hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "hmm/machine.hpp"
#include "locality/profile.hpp"
#include "locality/reuse_distance.hpp"
#include "locality/reuse_tree.hpp"
#include "locality/sink.hpp"
#include "report/json.hpp"
#include "util/rng.hpp"

namespace dbsp::locality {
namespace {

TEST(ReuseTree, InsertEraseCountAgainstBruteForce) {
    ReuseTree tree;
    std::set<std::uint64_t> reference;
    SplitMix64 rng(7);
    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t key = rng.next_below(512);
        if (reference.count(key) == 0 && rng.next_below(3) != 0) {
            tree.insert(key);
            reference.insert(key);
        } else if (reference.count(key) != 0) {
            tree.erase(key);
            reference.erase(key);
        }
        ASSERT_EQ(tree.size(), reference.size());
        const std::uint64_t probe = rng.next_below(512);
        const auto greater = static_cast<std::uint64_t>(std::distance(
            reference.upper_bound(probe), reference.end()));
        ASSERT_EQ(tree.count_greater(probe), greater) << "probe " << probe;
    }
    tree.clear();
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_EQ(tree.count_greater(0), 0u);
}

TEST(ReuseTree, EraseAbsentKeyLeavesTheTreeUnchanged) {
    ReuseTree tree;
    tree.insert(10);
    tree.insert(20);
    tree.insert(30);
    tree.erase(15);  // absent, inside the key span
    tree.erase(5);   // absent, below the minimum
    tree.erase(99);  // absent, above the maximum
    EXPECT_EQ(tree.size(), 3u);
    EXPECT_EQ(tree.count_greater(9), 3u);
    EXPECT_EQ(tree.count_greater(10), 2u);
    // erase_ranked on an absent key returns the rank alone, without mutating.
    EXPECT_EQ(tree.erase_ranked(15), 2u);
    EXPECT_EQ(tree.size(), 3u);
    EXPECT_EQ(tree.count_greater(0), 3u);
}

TEST(ReuseTree, NonMonotoneInsertionKeepsExactRanks) {
    // The engine only ever inserts the current (maximal) timestamp, but the
    // structure accepts any unique key; out-of-order inserts force tail
    // flushes and mid-tree splits.
    ReuseTree tree;
    std::set<std::uint64_t> ref;
    for (std::uint64_t k : {100u, 50u, 75u, 25u, 150u, 1u, 125u, 99u, 101u}) {
        tree.insert(k);
        ref.insert(k);
        for (std::uint64_t probe : {0u, 25u, 75u, 100u, 149u, 150u}) {
            ASSERT_EQ(tree.count_greater(probe),
                      static_cast<std::uint64_t>(
                          std::distance(ref.upper_bound(probe), ref.end())))
                << "probe " << probe << " after inserting " << k;
        }
    }
    EXPECT_EQ(tree.size(), ref.size());
}

TEST(ReuseTree, ClearRecyclesNodesThroughTheFreeList) {
    ReuseTree tree;
    for (int round = 0; round < 3; ++round) {
        // Descending inserts defeat the hot tail, so the tree itself holds
        // the nodes that clear() must push onto the free list ...
        for (std::uint64_t k = 200; k > 0; k -= 2) tree.insert(k);
        EXPECT_EQ(tree.size(), 100u);
        EXPECT_EQ(tree.count_greater(100), 50u);
        tree.clear();
        EXPECT_EQ(tree.size(), 0u);
        EXPECT_EQ(tree.count_greater(0), 0u);
        // ... and the rebuild after clear() runs on recycled nodes, which
        // must behave exactly like fresh ones.
        for (std::uint64_t k = 0; k < 64; ++k) tree.insert(k * 3);
        EXPECT_EQ(tree.size(), 64u);
        EXPECT_EQ(tree.count_greater(95), 32u);  // keys 96, 99, ..., 189
        tree.clear();
    }
}

TEST(ReuseTree, CountGreaterAtTheKeyExtremes) {
    ReuseTree tree;
    EXPECT_EQ(tree.count_greater(0), 0u);
    EXPECT_EQ(tree.count_greater(UINT64_MAX), 0u);
    tree.insert(0);
    EXPECT_EQ(tree.count_greater(0), 0u);  // strictly greater
    tree.insert(UINT64_MAX);
    EXPECT_EQ(tree.count_greater(0), 1u);
    EXPECT_EQ(tree.count_greater(UINT64_MAX - 1), 1u);
    EXPECT_EQ(tree.count_greater(UINT64_MAX), 0u);
    tree.erase(0);
    tree.erase(UINT64_MAX);
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_EQ(tree.count_greater(0), 0u);
}

/// Sorted-vector reference model for the batched tree operations — the
/// brute-force oracle the run-compressed treap (and its two rewrites) is
/// cross-checked against.
struct TreeOracle {
    std::vector<std::uint64_t> keys;  // sorted ascending

    std::uint64_t count_greater(std::uint64_t k) const {
        return static_cast<std::uint64_t>(
            keys.end() - std::upper_bound(keys.begin(), keys.end(), k));
    }
    std::uint64_t erase_ranked(std::uint64_t k) {
        const std::uint64_t above = count_greater(k);
        const auto it = std::lower_bound(keys.begin(), keys.end(), k);
        if (it != keys.end() && *it == k) keys.erase(it);
        return above;
    }
    void append_run(std::uint64_t first, std::uint64_t stride, std::uint64_t count) {
        for (std::uint64_t i = 0; i < count; ++i) keys.push_back(first + i * stride);
    }
    bool erase_span_exact(std::uint64_t lo, std::uint64_t hi, std::uint64_t expected,
                          std::uint64_t* above_out) {
        const auto b = std::lower_bound(keys.begin(), keys.end(), lo);
        const auto e = std::upper_bound(keys.begin(), keys.end(), hi);
        if (above_out != nullptr) {
            *above_out = static_cast<std::uint64_t>(keys.end() - e);
        }
        if (static_cast<std::uint64_t>(e - b) != expected) return false;
        keys.erase(b, e);
        return true;
    }
    bool replace_max(std::uint64_t old_key, std::uint64_t new_key) {
        if (keys.empty() || keys.back() != old_key) return false;
        keys.back() = new_key;
        return true;
    }
};

TEST(ReuseTree, BatchedOperationsMatchASortedVectorOracle) {
    ReuseTree tree;
    TreeOracle oracle;
    SplitMix64 rng(2024);
    std::uint64_t clock = 1;  // fresh keys come from here, above every live key
    for (int step = 0; step < 3000; ++step) {
        switch (rng.next_below(5)) {
            case 0: {  // append_run of fresh ascending stamps
                const std::uint64_t stride = 1 + rng.next_below(3);
                const std::uint64_t count = 1 + rng.next_below(16);
                tree.append_run(clock, stride, count);
                oracle.append_run(clock, stride, count);
                clock += stride * count;
                break;
            }
            case 1: {  // erase_ranked of a (frequently absent) key
                const std::uint64_t k = rng.next_below(clock);
                ASSERT_EQ(tree.erase_ranked(k), oracle.erase_ranked(k)) << "step " << step;
                break;
            }
            case 2: {  // erase_span_exact, half the time with a wrong population
                const std::uint64_t lo = rng.next_below(clock);
                const std::uint64_t hi = lo + rng.next_below(64);
                const auto b =
                    std::lower_bound(oracle.keys.begin(), oracle.keys.end(), lo);
                const auto e =
                    std::upper_bound(oracle.keys.begin(), oracle.keys.end(), hi);
                const auto pop = static_cast<std::uint64_t>(e - b);
                const std::uint64_t expected = rng.next_below(2) == 0 ? pop : pop + 1;
                std::uint64_t above_tree = 0, above_oracle = 0;
                const bool rt = tree.erase_span_exact(lo, hi, expected, &above_tree);
                const bool ro = oracle.erase_span_exact(lo, hi, expected, &above_oracle);
                ASSERT_EQ(rt, ro) << "step " << step;
                ASSERT_EQ(above_tree, above_oracle) << "step " << step;
                break;
            }
            case 3: {  // replace_max, hitting and missing
                if (oracle.keys.empty()) break;
                const std::uint64_t old_key =
                    rng.next_below(2) == 0 ? oracle.keys.back() : rng.next_below(clock);
                const std::uint64_t new_key = clock;
                const bool rt = tree.replace_max(old_key, new_key);
                const bool ro = oracle.replace_max(old_key, new_key);
                ASSERT_EQ(rt, ro) << "step " << step;
                if (rt) clock = new_key + 1;
                break;
            }
            case 4: {  // single fresh insert (extends the hot tail)
                tree.insert(clock);
                oracle.keys.push_back(clock);
                ++clock;
                break;
            }
        }
        ASSERT_EQ(tree.size(), oracle.keys.size()) << "step " << step;
        const std::uint64_t probe = rng.next_below(clock + 2);
        ASSERT_EQ(tree.count_greater(probe), oracle.count_greater(probe))
            << "step " << step << " probe " << probe;
    }
}

TEST(ReuseDistance, FirstTouchesAreCold) {
    ReuseDistanceProfiler prof;
    for (Addr x = 0; x < 100; ++x) {
        const auto e = prof.record(x);
        EXPECT_TRUE(e.cold);
    }
    EXPECT_EQ(prof.accesses(), 100u);
    EXPECT_EQ(prof.distinct_addresses(), 100u);
}

TEST(ReuseDistance, RepeatedSingleAddressIsDistanceZero) {
    ReuseDistanceProfiler prof;
    EXPECT_TRUE(prof.record(42).cold);
    for (int i = 0; i < 50; ++i) {
        const auto e = prof.record(42);
        EXPECT_FALSE(e.cold);
        EXPECT_EQ(e.distance, 0u);
        EXPECT_EQ(e.time, 1u);
    }
    EXPECT_EQ(prof.distinct_addresses(), 1u);
}

TEST(ReuseDistance, CyclicStreamHasDistanceKMinusOne) {
    constexpr std::uint64_t k = 12;
    ReuseDistanceProfiler prof;
    for (std::uint64_t i = 0; i < 5 * k; ++i) {
        const auto e = prof.record(i % k);
        if (i < k) {
            EXPECT_TRUE(e.cold);
        } else {
            EXPECT_FALSE(e.cold);
            EXPECT_EQ(e.distance, k - 1);
            EXPECT_EQ(e.time, k);
        }
    }
}

/// Brute-force LRU stack: distance = position from the top (0-based) of the
/// previous touch; move-to-front afterwards.
struct StackSim {
    std::vector<Addr> stack;

    ReuseDistanceProfiler::Event touch(Addr x) {
        const auto it = std::find(stack.begin(), stack.end(), x);
        if (it == stack.end()) {
            stack.insert(stack.begin(), x);
            return {true, 0, 0};
        }
        const auto depth = static_cast<std::uint64_t>(it - stack.begin());
        stack.erase(it);
        stack.insert(stack.begin(), x);
        return {false, depth, 0};
    }
};

TEST(ReuseDistance, MatchesBruteForceStackSimulation) {
    ReuseDistanceProfiler prof;
    StackSim brute;
    SplitMix64 rng(99);
    for (int i = 0; i < 10000; ++i) {
        // Skewed address distribution so short and long distances both occur.
        const Addr x = rng.next_below(3) == 0 ? rng.next_below(8) : rng.next_below(300);
        const auto got = prof.record(x);
        const auto want = brute.touch(x);
        ASSERT_EQ(got.cold, want.cold) << "access " << i;
        if (!got.cold) {
            ASSERT_EQ(got.distance, want.distance) << "access " << i;
        }
    }
    EXPECT_EQ(prof.distinct_addresses(), brute.stack.size());
}

TEST(Profile, LevelCapacityBoundarySlicingIsExact) {
    // A cyclic stream over 2^j addresses reuses at distance 2^j - 1: it hits
    // a memory of capacity 2^j (level j) and misses every smaller one.
    constexpr unsigned j = 4;
    constexpr std::uint64_t k = 1u << j;  // 16 addresses
    ReuseDistanceProfiler prof;
    LocalityProfile profile;
    constexpr std::uint64_t rounds = 8;
    for (std::uint64_t i = 0; i < rounds * k; ++i) profile.note(prof.record(i % k));
    profile.distinct_addresses = prof.distinct_addresses();

    EXPECT_EQ(profile.accesses, rounds * k);
    EXPECT_EQ(profile.cold_misses, k);
    const double finite = static_cast<double>((rounds - 1) * k);
    const double total = static_cast<double>(rounds * k);
    EXPECT_DOUBLE_EQ(profile.hit_fraction(j), finite / total);
    EXPECT_DOUBLE_EQ(profile.hit_fraction(j - 1), 0.0);
    EXPECT_EQ(profile.max_level(), j);
    // Locality score: every finite distance is k - 1.
    EXPECT_NEAR(profile.locality_score(), std::log2(static_cast<double>(k)), 1e-12);
}

TEST(Profile, WorkingSetMatchesDirectDenningSum) {
    ReuseDistanceProfiler prof;
    LocalityProfile profile;
    std::vector<std::uint64_t> reuse_times;  // finite reuse times, in order
    SplitMix64 rng(5);
    constexpr std::uint64_t T = 3000;
    std::uint64_t cold = 0;
    for (std::uint64_t i = 0; i < T; ++i) {
        const auto e = prof.record(rng.next_below(64));
        profile.note(e);
        if (e.cold) {
            ++cold;
        } else {
            reuse_times.push_back(e.time);
        }
    }
    profile.distinct_addresses = prof.distinct_addresses();
    for (unsigned jj = 0; jj <= 12; ++jj) {
        const double tau = std::ldexp(1.0, static_cast<int>(jj));
        double sum = tau * static_cast<double>(cold);
        for (const std::uint64_t r : reuse_times) {
            sum += std::min(static_cast<double>(r), tau);
        }
        const double expected = std::min(sum / static_cast<double>(T),
                                         static_cast<double>(profile.distinct_addresses));
        EXPECT_DOUBLE_EQ(profile.working_set(jj), expected) << "tau 2^" << jj;
    }
}

TEST(Profile, JsonRoundTripCarriesTheAnalytics) {
    ReuseDistanceProfiler prof;
    LocalityProfile profile;
    for (std::uint64_t i = 0; i < 640; ++i) profile.note(prof.record(i % 32));
    profile.distinct_addresses = prof.distinct_addresses();

    const report::Json j = profile.to_json();
    std::string error;
    const auto parsed = report::Json::parse(j.dump(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ((*parsed)["schema"].as_string(), "dbsp-locality-v2");
    EXPECT_EQ((*parsed)["mode"].as_string(), "exact");
    EXPECT_DOUBLE_EQ((*parsed)["sample_rate"].as_double(), 1.0);
    EXPECT_DOUBLE_EQ((*parsed)["accesses"].as_double(), 640.0);
    EXPECT_DOUBLE_EQ((*parsed)["sampled_accesses"].as_double(), 640.0);
    EXPECT_DOUBLE_EQ((*parsed)["distinct_addresses"].as_double(), 32.0);
    EXPECT_DOUBLE_EQ((*parsed)["cold_misses"].as_double(), 32.0);
    EXPECT_DOUBLE_EQ((*parsed)["locality_score"].as_double(), profile.locality_score());
    const auto& cdf = (*parsed)["reuse_distance"]["cdf"].items();
    ASSERT_EQ(cdf.size(), profile.max_level() + 1);
    EXPECT_DOUBLE_EQ(cdf.back().as_double(), profile.hit_fraction(profile.max_level()));
    ASSERT_EQ((*parsed)["levels"].size(), profile.max_level() + 1);
    EXPECT_EQ((*parsed)["working_set"]["tau"].size(),
              (*parsed)["working_set"]["w"].size());
}

TEST(Profile, ColdEventsNeverReachTheFiniteHistogramsOrScore) {
    // Regression lock on the cold contract: a first touch's distance and
    // time are *infinite*, so whatever numeric values the event happens to
    // carry must never reach the finite histograms, the reuse-time sums, or
    // the score. (A fold of cold events into the score once produced subtly
    // deflated scores without failing any analytic identity — hence the
    // explicit lock.)
    LocalityProfile profile;
    const ReuseDistanceProfiler::Event cold{true, 123, 7, true};
    profile.note(cold);
    profile.note_run(cold, 41);
    EXPECT_EQ(profile.accesses, 42u);
    EXPECT_EQ(profile.cold_misses, 42u);
    EXPECT_DOUBLE_EQ(profile.locality_score(), 0.0);
    for (unsigned b = 0; b < LocalityProfile::kBuckets; ++b) {
        ASSERT_EQ(profile.distance_count[b], 0u) << "bucket " << b;
        ASSERT_EQ(profile.time_count[b], 0u) << "bucket " << b;
        ASSERT_TRUE(profile.time_sum[b] == 0) << "bucket " << b;
    }
    for (unsigned l = 0; l <= 10; ++l) {
        EXPECT_DOUBLE_EQ(profile.hit_fraction(l), 0.0) << "level " << l;
    }
}

TEST(Profile, NoteRunIsBitIdenticalToRepeatedNote) {
    LocalityProfile runs, singles;
    SplitMix64 rng(31);
    for (int i = 0; i < 300; ++i) {
        ReuseDistanceProfiler::Event e{false, 0, 1, true};
        e.cold = rng.next_below(8) == 0;
        e.sampled = rng.next_below(8) != 0;
        e.distance = rng.next_below(1 << 12);
        e.time = 1 + rng.next_below(1 << 12);
        const std::uint64_t n = 1 + rng.next_below(9);
        runs.note_run(e, n);
        for (std::uint64_t j = 0; j < n; ++j) singles.note(e);
    }
    EXPECT_TRUE(runs.identical(singles));
}

/// Drive the same deterministic mix of traced machine operations (every
/// charged kind: single words, ranges, block ops, charge-only sweeps) so two
/// sinks under different options see the identical reference stream.
void drive_machine(hmm::Machine& machine) {
    SplitMix64 rng(11);
    std::vector<model::Word> buf(64, 5);
    for (int i = 0; i < 500; ++i) {
        switch (rng.next_below(7)) {
            case 0:
                machine.write_traced(rng.next_below(2048), rng.next());
                break;
            case 1:
                (void)machine.read_traced(rng.next_below(2048));
                break;
            case 2:
                machine.write_range(rng.next_below(2048 - 64), buf);
                break;
            case 3:
                machine.read_range(rng.next_below(2048 - 32),
                                   std::span<model::Word>(buf.data(), 32));
                break;
            case 4:
                machine.swap_blocks(rng.next_below(512), 1024 + rng.next_below(512), 64);
                break;
            case 5:
                machine.copy_block(rng.next_below(512), 1024 + rng.next_below(512), 32);
                break;
            case 6: {
                const std::uint64_t begin = rng.next_below(1024);
                machine.charge_range(begin, begin + 1 + rng.next_below(128));
                break;
            }
        }
    }
}

TEST(LocalitySink, BatchedAndPerWordPathsAreBitIdentical) {
    // The tentpole's core contract: the O(log n + b) batched engine path and
    // coalescing produce a profile bit-identical to the per-word reference
    // path on the same stream (also a fuzz-oracle invariant; this is the
    // deterministic unit-test anchor).
    const auto f = model::AccessFunction::polynomial(0.5);
    LocalityOptions per_word;
    per_word.batched = false;
    LocalitySink fast, slow(per_word);
    hmm::Machine m_fast(f, 2048), m_slow(f, 2048);
    m_fast.set_trace(&fast);
    m_slow.set_trace(&slow);
    drive_machine(m_fast);
    drive_machine(m_slow);
    EXPECT_EQ(fast.recorded_accesses(), slow.recorded_accesses());
    EXPECT_EQ(fast.total(), slow.total());
    EXPECT_TRUE(fast.profile().identical(slow.profile()));
}

TEST(LocalitySink, SampledRateOneIsBitIdenticalToExact) {
    const auto f = model::AccessFunction::polynomial(0.5);
    LocalityOptions sampled_opts;
    sampled_opts.mode = LocalityOptions::Mode::kSampled;
    sampled_opts.sample_rate = 1.0;
    LocalitySink exact, sampled(sampled_opts);
    hmm::Machine m_exact(f, 2048), m_sampled(f, 2048);
    m_exact.set_trace(&exact);
    m_sampled.set_trace(&sampled);
    drive_machine(m_exact);
    drive_machine(m_sampled);
    EXPECT_TRUE(exact.profile().identical(sampled.profile()));
}

TEST(LocalitySink, SampledModeStillCountsEveryReference) {
    const auto f = model::AccessFunction::polynomial(0.5);
    LocalityOptions opts;
    opts.mode = LocalityOptions::Mode::kSampled;
    opts.sample_rate = 0.25;
    LocalitySink sink(opts);
    hmm::Machine machine(f, 2048);
    machine.set_trace(&sink);
    drive_machine(machine);
    // The clock and cost mirror are exact in sampled mode; only the
    // distance measurements are subsampled.
    EXPECT_EQ(sink.recorded_accesses(), machine.words_touched());
    EXPECT_EQ(sink.total(), machine.cost());
    EXPECT_GT(sink.sampled_accesses(), 0u);
    EXPECT_LT(sink.sampled_accesses(), sink.recorded_accesses());
    LocalityProfile p = sink.profile();
    EXPECT_EQ(p.accesses, machine.words_touched());
    EXPECT_EQ(p.sampled_accesses, sink.sampled_accesses());
    EXPECT_GT(p.locality_score(), 0.0);
}

TEST(LocalitySink, CountsAndCostsMatchTheMachine) {
    const auto f = model::AccessFunction::polynomial(0.5);
    hmm::Machine machine(f, 1024);
    LocalitySink sink;
    machine.set_trace(&sink);

    // A mix of every charged operation kind. Untraced read()/write() are not
    // used here: with a sink attached the simulators route all word traffic
    // through the traced variants, and that is the contract being tested.
    std::uint64_t expected_refs = 0;
    machine.write_traced(5, 7);
    machine.write_traced(900, 1);
    ASSERT_EQ(machine.read_traced(5), 7u);
    expected_refs += 3;

    std::vector<model::Word> buf(64, 3);
    machine.write_range(0, buf);
    machine.read_range(32, std::span<model::Word>(buf.data(), 32));
    expected_refs += 64 + 32;

    machine.swap_blocks(0, 512, 64);   // 4 * 64 touches
    machine.copy_block(0, 256, 32);    // 2 * 32 touches
    machine.charge_range(100, 200);    // 100 touches
    machine.charge(17.0);              // pure computation: no references
    expected_refs += 4 * 64 + 2 * 32 + 100;

    EXPECT_EQ(sink.recorded_accesses(), expected_refs);
    EXPECT_EQ(sink.recorded_accesses(), machine.words_touched());
    EXPECT_EQ(sink.total(), machine.cost());  // bit-exact mirror
    EXPECT_EQ(sink.block_op_words(), 4u * 64 + 2u * 32 + 100);
    EXPECT_EQ(sink.range_words(), 96u);

    const LocalityProfile p = sink.profile();
    EXPECT_EQ(p.accesses, expected_refs);
    EXPECT_EQ(p.accesses, p.cold_misses + (p.accesses - p.cold_misses));
    EXPECT_GT(p.distinct_addresses, 0u);
}

TEST(LocalitySink, RecursiveSimulationScoresBelowNaive) {
    // The tentpole claim at unit-test scale: the Figure 1 schedule's address
    // stream is more local than the pinned-context baseline's.
    const auto f = model::AccessFunction::polynomial(0.5);
    const std::uint64_t v = 64;
    SplitMix64 rng(3);
    std::vector<std::complex<double>> x(v);
    for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};

    algo::FftDirectProgram recursive_prog(x);
    auto smoothed = core::smooth(
        recursive_prog, core::hmm_label_set(f, recursive_prog.context_words(), v));
    LocalitySink recursive_sink;
    core::HmmSimulator::Options rec_opt;
    rec_opt.trace = &recursive_sink;
    const auto rec_res = core::HmmSimulator(f, rec_opt).simulate(*smoothed);

    algo::FftDirectProgram naive_prog(x);
    LocalitySink naive_sink;
    core::NaiveHmmSimulator::Options naive_opt;
    naive_opt.trace = &naive_sink;
    const auto naive_res = core::NaiveHmmSimulator(f, naive_opt).simulate(naive_prog);

    // Exact count and cost mirrors on both legs.
    EXPECT_EQ(recursive_sink.recorded_accesses(), rec_res.words_touched);
    EXPECT_EQ(recursive_sink.total(), rec_res.hmm_cost);
    EXPECT_EQ(naive_sink.recorded_accesses(), naive_res.words_touched);
    EXPECT_EQ(naive_sink.total(), naive_res.hmm_cost);

    const double rec_score = recursive_sink.profile().locality_score();
    const double naive_score = naive_sink.profile().locality_score();
    EXPECT_LT(rec_score, naive_score);
}

}  // namespace
}  // namespace dbsp::locality
