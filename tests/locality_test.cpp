/// Tests for src/locality/: the order-statistics treap, the reuse-distance
/// engine (cross-checked against a brute-force LRU stack simulation), the
/// derived analytics (histograms, working set, per-level slicing), and the
/// LocalitySink's count/cost agreement with hmm::Machine.

#include <algorithm>
#include <cmath>
#include <complex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "algos/fft_direct.hpp"
#include "core/hmm_simulator.hpp"
#include "core/naive_hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "hmm/machine.hpp"
#include "locality/profile.hpp"
#include "locality/reuse_distance.hpp"
#include "locality/reuse_tree.hpp"
#include "locality/sink.hpp"
#include "report/json.hpp"
#include "util/rng.hpp"

namespace dbsp::locality {
namespace {

TEST(ReuseTree, InsertEraseCountAgainstBruteForce) {
    ReuseTree tree;
    std::set<std::uint64_t> reference;
    SplitMix64 rng(7);
    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t key = rng.next_below(512);
        if (reference.count(key) == 0 && rng.next_below(3) != 0) {
            tree.insert(key);
            reference.insert(key);
        } else if (reference.count(key) != 0) {
            tree.erase(key);
            reference.erase(key);
        }
        ASSERT_EQ(tree.size(), reference.size());
        const std::uint64_t probe = rng.next_below(512);
        const auto greater = static_cast<std::uint64_t>(std::distance(
            reference.upper_bound(probe), reference.end()));
        ASSERT_EQ(tree.count_greater(probe), greater) << "probe " << probe;
    }
    tree.clear();
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_EQ(tree.count_greater(0), 0u);
}

TEST(ReuseDistance, FirstTouchesAreCold) {
    ReuseDistanceProfiler prof;
    for (Addr x = 0; x < 100; ++x) {
        const auto e = prof.record(x);
        EXPECT_TRUE(e.cold);
    }
    EXPECT_EQ(prof.accesses(), 100u);
    EXPECT_EQ(prof.distinct_addresses(), 100u);
}

TEST(ReuseDistance, RepeatedSingleAddressIsDistanceZero) {
    ReuseDistanceProfiler prof;
    EXPECT_TRUE(prof.record(42).cold);
    for (int i = 0; i < 50; ++i) {
        const auto e = prof.record(42);
        EXPECT_FALSE(e.cold);
        EXPECT_EQ(e.distance, 0u);
        EXPECT_EQ(e.time, 1u);
    }
    EXPECT_EQ(prof.distinct_addresses(), 1u);
}

TEST(ReuseDistance, CyclicStreamHasDistanceKMinusOne) {
    constexpr std::uint64_t k = 12;
    ReuseDistanceProfiler prof;
    for (std::uint64_t i = 0; i < 5 * k; ++i) {
        const auto e = prof.record(i % k);
        if (i < k) {
            EXPECT_TRUE(e.cold);
        } else {
            EXPECT_FALSE(e.cold);
            EXPECT_EQ(e.distance, k - 1);
            EXPECT_EQ(e.time, k);
        }
    }
}

/// Brute-force LRU stack: distance = position from the top (0-based) of the
/// previous touch; move-to-front afterwards.
struct StackSim {
    std::vector<Addr> stack;

    ReuseDistanceProfiler::Event touch(Addr x) {
        const auto it = std::find(stack.begin(), stack.end(), x);
        if (it == stack.end()) {
            stack.insert(stack.begin(), x);
            return {true, 0, 0};
        }
        const auto depth = static_cast<std::uint64_t>(it - stack.begin());
        stack.erase(it);
        stack.insert(stack.begin(), x);
        return {false, depth, 0};
    }
};

TEST(ReuseDistance, MatchesBruteForceStackSimulation) {
    ReuseDistanceProfiler prof;
    StackSim brute;
    SplitMix64 rng(99);
    for (int i = 0; i < 10000; ++i) {
        // Skewed address distribution so short and long distances both occur.
        const Addr x = rng.next_below(3) == 0 ? rng.next_below(8) : rng.next_below(300);
        const auto got = prof.record(x);
        const auto want = brute.touch(x);
        ASSERT_EQ(got.cold, want.cold) << "access " << i;
        if (!got.cold) ASSERT_EQ(got.distance, want.distance) << "access " << i;
    }
    EXPECT_EQ(prof.distinct_addresses(), brute.stack.size());
}

TEST(Profile, LevelCapacityBoundarySlicingIsExact) {
    // A cyclic stream over 2^j addresses reuses at distance 2^j - 1: it hits
    // a memory of capacity 2^j (level j) and misses every smaller one.
    constexpr unsigned j = 4;
    constexpr std::uint64_t k = 1u << j;  // 16 addresses
    ReuseDistanceProfiler prof;
    LocalityProfile profile;
    constexpr std::uint64_t rounds = 8;
    for (std::uint64_t i = 0; i < rounds * k; ++i) profile.note(prof.record(i % k));
    profile.distinct_addresses = prof.distinct_addresses();

    EXPECT_EQ(profile.accesses, rounds * k);
    EXPECT_EQ(profile.cold_misses, k);
    const double finite = static_cast<double>((rounds - 1) * k);
    const double total = static_cast<double>(rounds * k);
    EXPECT_DOUBLE_EQ(profile.hit_fraction(j), finite / total);
    EXPECT_DOUBLE_EQ(profile.hit_fraction(j - 1), 0.0);
    EXPECT_EQ(profile.max_level(), j);
    // Locality score: every finite distance is k - 1.
    EXPECT_NEAR(profile.locality_score(), std::log2(static_cast<double>(k)), 1e-12);
}

TEST(Profile, WorkingSetMatchesDirectDenningSum) {
    ReuseDistanceProfiler prof;
    LocalityProfile profile;
    std::vector<std::uint64_t> reuse_times;  // finite reuse times, in order
    SplitMix64 rng(5);
    constexpr std::uint64_t T = 3000;
    std::uint64_t cold = 0;
    for (std::uint64_t i = 0; i < T; ++i) {
        const auto e = prof.record(rng.next_below(64));
        profile.note(e);
        if (e.cold) {
            ++cold;
        } else {
            reuse_times.push_back(e.time);
        }
    }
    profile.distinct_addresses = prof.distinct_addresses();
    for (unsigned jj = 0; jj <= 12; ++jj) {
        const double tau = std::ldexp(1.0, static_cast<int>(jj));
        double sum = tau * static_cast<double>(cold);
        for (const std::uint64_t r : reuse_times) {
            sum += std::min(static_cast<double>(r), tau);
        }
        const double expected = std::min(sum / static_cast<double>(T),
                                         static_cast<double>(profile.distinct_addresses));
        EXPECT_DOUBLE_EQ(profile.working_set(jj), expected) << "tau 2^" << jj;
    }
}

TEST(Profile, JsonRoundTripCarriesTheAnalytics) {
    ReuseDistanceProfiler prof;
    LocalityProfile profile;
    for (std::uint64_t i = 0; i < 640; ++i) profile.note(prof.record(i % 32));
    profile.distinct_addresses = prof.distinct_addresses();

    const report::Json j = profile.to_json();
    std::string error;
    const auto parsed = report::Json::parse(j.dump(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ((*parsed)["schema"].as_string(), "dbsp-locality-v1");
    EXPECT_DOUBLE_EQ((*parsed)["accesses"].as_double(), 640.0);
    EXPECT_DOUBLE_EQ((*parsed)["distinct_addresses"].as_double(), 32.0);
    EXPECT_DOUBLE_EQ((*parsed)["cold_misses"].as_double(), 32.0);
    EXPECT_DOUBLE_EQ((*parsed)["locality_score"].as_double(), profile.locality_score());
    const auto& cdf = (*parsed)["reuse_distance"]["cdf"].items();
    ASSERT_EQ(cdf.size(), profile.max_level() + 1);
    EXPECT_DOUBLE_EQ(cdf.back().as_double(), profile.hit_fraction(profile.max_level()));
    ASSERT_EQ((*parsed)["levels"].size(), profile.max_level() + 1);
    EXPECT_EQ((*parsed)["working_set"]["tau"].size(),
              (*parsed)["working_set"]["w"].size());
}

TEST(LocalitySink, CountsAndCostsMatchTheMachine) {
    const auto f = model::AccessFunction::polynomial(0.5);
    hmm::Machine machine(f, 1024);
    LocalitySink sink;
    machine.set_trace(&sink);

    // A mix of every charged operation kind. Untraced read()/write() are not
    // used here: with a sink attached the simulators route all word traffic
    // through the traced variants, and that is the contract being tested.
    std::uint64_t expected_refs = 0;
    machine.write_traced(5, 7);
    machine.write_traced(900, 1);
    ASSERT_EQ(machine.read_traced(5), 7u);
    expected_refs += 3;

    std::vector<model::Word> buf(64, 3);
    machine.write_range(0, buf);
    machine.read_range(32, std::span<model::Word>(buf.data(), 32));
    expected_refs += 64 + 32;

    machine.swap_blocks(0, 512, 64);   // 4 * 64 touches
    machine.copy_block(0, 256, 32);    // 2 * 32 touches
    machine.charge_range(100, 200);    // 100 touches
    machine.charge(17.0);              // pure computation: no references
    expected_refs += 4 * 64 + 2 * 32 + 100;

    EXPECT_EQ(sink.recorded_accesses(), expected_refs);
    EXPECT_EQ(sink.recorded_accesses(), machine.words_touched());
    EXPECT_EQ(sink.total(), machine.cost());  // bit-exact mirror
    EXPECT_EQ(sink.block_op_words(), 4u * 64 + 2u * 32 + 100);
    EXPECT_EQ(sink.range_words(), 96u);

    const LocalityProfile p = sink.profile();
    EXPECT_EQ(p.accesses, expected_refs);
    EXPECT_EQ(p.accesses, p.cold_misses + (p.accesses - p.cold_misses));
    EXPECT_GT(p.distinct_addresses, 0u);
}

TEST(LocalitySink, RecursiveSimulationScoresBelowNaive) {
    // The tentpole claim at unit-test scale: the Figure 1 schedule's address
    // stream is more local than the pinned-context baseline's.
    const auto f = model::AccessFunction::polynomial(0.5);
    const std::uint64_t v = 64;
    SplitMix64 rng(3);
    std::vector<std::complex<double>> x(v);
    for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};

    algo::FftDirectProgram recursive_prog(x);
    auto smoothed = core::smooth(
        recursive_prog, core::hmm_label_set(f, recursive_prog.context_words(), v));
    LocalitySink recursive_sink;
    core::HmmSimulator::Options rec_opt;
    rec_opt.trace = &recursive_sink;
    const auto rec_res = core::HmmSimulator(f, rec_opt).simulate(*smoothed);

    algo::FftDirectProgram naive_prog(x);
    LocalitySink naive_sink;
    core::NaiveHmmSimulator::Options naive_opt;
    naive_opt.trace = &naive_sink;
    const auto naive_res = core::NaiveHmmSimulator(f, naive_opt).simulate(naive_prog);

    // Exact count and cost mirrors on both legs.
    EXPECT_EQ(recursive_sink.recorded_accesses(), rec_res.words_touched);
    EXPECT_EQ(recursive_sink.total(), rec_res.hmm_cost);
    EXPECT_EQ(naive_sink.recorded_accesses(), naive_res.words_touched);
    EXPECT_EQ(naive_sink.total(), naive_res.hmm_cost);

    const double rec_score = recursive_sink.profile().locality_score();
    const double naive_score = naive_sink.profile().locality_score();
    EXPECT_LT(rec_score, naive_score);
}

}  // namespace
}  // namespace dbsp::locality
