#include <gtest/gtest.h>

#include "algos/permutation.hpp"
#include "core/bounds.hpp"
#include "model/dbsp_machine.hpp"

namespace dbsp::core {
namespace {

using model::AccessFunction;
using model::DbspMachine;

TEST(Bounds, Fact1AndFact2Shapes) {
    const auto poly = AccessFunction::polynomial(0.5);
    const auto lg = AccessFunction::logarithmic();
    EXPECT_NEAR(fact1_bound(poly, 1 << 20), (1 << 20) * poly(1 << 20), 1e-6);
    // n f*(n): log log flavoured for x^alpha, log* for log x.
    EXPECT_LT(fact2_bound(poly, 1 << 20) / (1 << 20), 16.0);
    EXPECT_LT(fact2_bound(lg, 1 << 20) / (1 << 20), 8.0);
    EXPECT_GE(fact2_bound(lg, 1 << 20), static_cast<double>(1 << 20));
}

TEST(Bounds, Theorem5MatchesManualFormula) {
    const auto f = AccessFunction::polynomial(0.5);
    algo::RandomRoutingProgram prog(64, {2, 0}, 3);
    DbspMachine machine(f);
    const auto run = machine.run(prog);
    const std::size_t mu = prog.context_words();
    double manual = 0;
    for (const auto& s : run.supersteps) {
        manual += static_cast<double>(std::max<std::uint64_t>(s.tau, 1)) +
                  static_cast<double>(mu) * f.at(s.comm_arg);
    }
    EXPECT_NEAR(theorem5_bound(run, f, 64, mu), 64.0 * manual, 1e-9);
}

TEST(Bounds, Theorem10ScalesWithHostSize) {
    const auto g = AccessFunction::logarithmic();
    algo::RandomRoutingProgram prog(64, {1, 3}, 4);
    DbspMachine machine(g);
    const auto run = machine.run(prog);
    const std::size_t mu = prog.context_words();
    const double full = theorem10_bound(run, g, 64, 1, mu);
    const double half = theorem10_bound(run, g, 64, 2, mu);
    EXPECT_NEAR(full, 2.0 * half, 1e-9);
}

TEST(Bounds, Theorem12IndependentOfF) {
    // The formula involves only logarithms of cluster memories.
    algo::RandomRoutingProgram prog(128, {0, 4, 2}, 5);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto run = machine.run(prog);
    const double b = theorem12_bound(run, 128, prog.context_words());
    EXPECT_GT(b, 0.0);
    // Sanity: v * mu * sum log terms dominates v * tau here.
    EXPECT_GT(b, 128.0 * static_cast<double>(prog.context_words()));
}

}  // namespace
}  // namespace dbsp::core
