/// Tests for the PR-9 observability layer: windowed instruments
/// (report::WindowedCounter / WindowedHistogram), the JSONL event logger,
/// request span trees (SpanBuilder / SpanSink) and the telemetry hub's
/// frame assembly. Window arithmetic is tested with injected epoch seconds
/// — no sleeping — and the concurrent record-vs-snapshot test runs under
/// util::parallel_for so TSAN exercises the instrument locking.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "report/json.hpp"
#include "report/metrics.hpp"
#include "telemetry/logger.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/sink.hpp"
#include "util/parallel.hpp"

namespace {

using namespace dbsp;

// ---------------------------------------------------------------- windows

TEST(WindowedCounter, EmptyWindowIsZero) {
    report::WindowedCounter c;
    EXPECT_EQ(c.sum_over(100, 1), 0u);
    EXPECT_EQ(c.sum_over(100, 60), 0u);
    EXPECT_EQ(c.rate_over(100, 10), 0.0);
}

TEST(WindowedCounter, WindowCoversCompletedSecondsOnly) {
    report::WindowedCounter c;
    c.add(100, 5);  // the live second at now_s=100
    // A window queried at now_s=100 covers [100-w, 99] — the live second is
    // excluded so a half-elapsed second never reads as a low rate.
    EXPECT_EQ(c.sum_over(100, 10), 0u);
    // One second later it is a completed second and counts.
    EXPECT_EQ(c.sum_over(101, 10), 5u);
    EXPECT_EQ(c.sum_over(101, 1), 5u);
    // Sixty-one seconds later it has left the 60s window.
    EXPECT_EQ(c.sum_over(162, 60), 0u);
    EXPECT_DOUBLE_EQ(c.rate_over(101, 10), 0.5);
}

TEST(WindowedCounter, SlotRolloverReclaimsStaleSeconds) {
    report::WindowedCounter c;
    c.add(10, 7);
    // kSlots seconds later the same slot is reused for a new epoch; the old
    // count must not bleed into the new second's total.
    const std::int64_t later = 10 + report::WindowedCounter::kSlots;
    c.add(later, 3);
    EXPECT_EQ(c.sum_over(later + 1, 1), 3u);
    EXPECT_EQ(c.sum_over(later + 1, 60), 3u);
}

TEST(WindowedHistogram, EmptyWindowQuantilesAreZero) {
    report::WindowedHistogram h;
    const auto w = h.window_over(50, 60);
    EXPECT_EQ(w.total, 0u);
    EXPECT_EQ(w.quantile(0.5), 0.0);
    EXPECT_EQ(w.quantile(0.99), 0.0);
}

TEST(WindowedHistogram, QuantileAtBucketBoundaries) {
    report::WindowedHistogram h;
    // One sample in bucket [4,7] (values 4..7 share bucket 3).
    h.observe(10, 4);
    const auto w = h.window_over(11, 10);
    ASSERT_EQ(w.total, 1u);
    // A single-sample bucket interpolates to its upper bound at rank 1.
    EXPECT_EQ(w.quantile(0.0), report::WindowedHistogram::bucket_hi(3));
    EXPECT_EQ(w.quantile(1.0), report::WindowedHistogram::bucket_hi(3));

    // Two samples in distinct buckets: p50 resolves the low bucket, p99 the
    // high one — exactly at their interpolated rank positions.
    h.observe(10, 1);  // bucket 1 = [1,1]
    const auto w2 = h.window_over(11, 10);
    ASSERT_EQ(w2.total, 2u);
    EXPECT_EQ(w2.quantile(0.50), 1.0);
    EXPECT_EQ(w2.quantile(0.99), report::WindowedHistogram::bucket_hi(3));
}

TEST(WindowedHistogram, ZeroValueLandsInBucketZero) {
    report::WindowedHistogram h;
    h.observe(10, 0, 3);
    const auto w = h.window_over(11, 1);
    EXPECT_EQ(w.total, 3u);
    EXPECT_EQ(w.quantile(0.5), 0.0);
}

TEST(WindowedHistogram, WindowExpiryAndRollover) {
    report::WindowedHistogram h;
    h.observe(10, 100);
    EXPECT_EQ(h.window_over(11, 60).total, 1u);
    EXPECT_EQ(h.window_over(72, 60).total, 0u) << "sample aged out of the window";
    // Slot reuse at epoch + kSlots must reset the bucket array.
    h.observe(10 + report::WindowedHistogram::kSlots, 1);
    const auto w = h.window_over(11 + report::WindowedHistogram::kSlots, 1);
    EXPECT_EQ(w.total, 1u);
    EXPECT_EQ(w.quantile(1.0), 1.0);
}

TEST(WindowedHistogram, WindowClampsToRingCapacity) {
    report::WindowedHistogram h;
    h.observe(100, 8);
    // A window wider than the ring cannot resurrect overwritten slots; it
    // clamps to kSlots-1 completed seconds and still sees the sample.
    const auto w = h.window_over(101, 10000);
    EXPECT_EQ(w.total, 1u);
}

TEST(WindowedInstruments, ConcurrentRecordVsSnapshot) {
    report::WindowedCounter c;
    report::WindowedHistogram h;
    std::atomic<bool> stop{false};
    // Snapshot continuously on this thread while parallel_for workers
    // hammer add/observe across several epochs — TSAN-checked.
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            (void)c.sum_over(7, 60);
            (void)h.window_over(7, 60).quantile(0.99);
        }
    });
    util::parallel_for(4096, [&](std::size_t i) {
        const std::int64_t now_s = static_cast<std::int64_t>(i % 8);
        c.add(now_s);
        h.observe(now_s, i % 1000);
    });
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    // Every add with epoch in [0,5] is visible from now_s=6 (epochs 6,7 are
    // excluded-or-live); exact visibility depends on the epoch layout, so
    // assert the stable invariant: nothing lost in the full ring view.
    EXPECT_EQ(c.sum_over(8, 8), 4096u);
    EXPECT_EQ(h.window_over(8, 8).total, 4096u);
}

// ----------------------------------------------------------------- logger

TEST(Logger, DisabledLoggerIsInertAndCheap) {
    telemetry::Logger log;
    EXPECT_FALSE(log.active());
    EXPECT_FALSE(log.enabled(telemetry::LogLevel::kError));
    log.log(telemetry::LogLevel::kError, "ignored");
    EXPECT_EQ(log.stats().written, 0u);
}

TEST(Logger, LevelParsingIsStrict) {
    EXPECT_EQ(telemetry::parse_level("debug"), telemetry::LogLevel::kDebug);
    EXPECT_EQ(telemetry::parse_level("warn"), telemetry::LogLevel::kWarn);
    EXPECT_FALSE(telemetry::parse_level("WARN").has_value());
    EXPECT_FALSE(telemetry::parse_level("").has_value());
    EXPECT_FALSE(telemetry::parse_level("verbose").has_value());
}

TEST(Logger, WritesFilteredJsonLines) {
    const std::string path = testing::TempDir() + "dbsp_logger_test.jsonl";
    std::remove(path.c_str());
    {
        telemetry::Logger::Options options;
        options.path = path;
        options.level = telemetry::LogLevel::kInfo;
        telemetry::Logger log(options);
        ASSERT_TRUE(log.active());
        EXPECT_FALSE(log.enabled(telemetry::LogLevel::kDebug));
        log.log(telemetry::LogLevel::kDebug, "filtered-out");
        report::Json fields = report::Json::object();
        fields.set("answer", std::uint64_t{42});
        log.log(telemetry::LogLevel::kInfo, "test-event", std::move(fields));
        log.flush();
        EXPECT_EQ(log.stats().written, 1u);
        EXPECT_EQ(log.stats().dropped, 0u);
    }
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[512] = {};
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    std::fclose(f);
    const auto doc = report::Json::parse(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ((*doc)["level"].as_string(), "info");
    EXPECT_EQ((*doc)["event"].as_string(), "test-event");
    EXPECT_EQ((*doc)["answer"].as_double(), 42.0);
    EXPECT_TRUE((*doc)["ts_ms"].is_number());
    std::remove(path.c_str());
}

TEST(Logger, RotationBoundsDiskUsage) {
    const std::string path = testing::TempDir() + "dbsp_logger_rotate.jsonl";
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
    {
        telemetry::Logger::Options options;
        options.path = path;
        options.level = telemetry::LogLevel::kDebug;
        options.max_bytes = 512;  // tiny: force several rotations
        telemetry::Logger log(options);
        for (int i = 0; i < 64; ++i) {
            report::Json fields = report::Json::object();
            fields.set("i", static_cast<std::uint64_t>(i));
            fields.set("pad", std::string(32, 'x'));
            log.log(telemetry::LogLevel::kInfo, "rotate", std::move(fields));
        }
        log.flush();
        EXPECT_EQ(log.stats().written, 64u);
        EXPECT_GT(log.stats().rotations, 0u);
    }
    // Live file and one predecessor at most, each near the threshold.
    std::FILE* live = std::fopen(path.c_str(), "r");
    ASSERT_NE(live, nullptr);
    std::fclose(live);
    std::FILE* old = std::fopen((path + ".1").c_str(), "r");
    ASSERT_NE(old, nullptr);
    std::fclose(old);
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
}

TEST(Logger, OverflowDropsAndCountsInsteadOfBlocking) {
    const std::string path = testing::TempDir() + "dbsp_logger_drop.jsonl";
    std::remove(path.c_str());
    {
        telemetry::Logger::Options options;
        options.path = path;
        options.level = telemetry::LogLevel::kDebug;
        options.queue_capacity = 4;
        telemetry::Logger log(options);
        // Far more lines than the queue holds, enqueued as fast as possible;
        // the writer cannot keep up with all of them, and log() must never
        // block — it either enqueues or drops+counts.
        for (int i = 0; i < 20000; ++i) {
            log.log(telemetry::LogLevel::kInfo, "burst");
        }
        log.flush();
        const auto stats = log.stats();
        EXPECT_EQ(stats.written + stats.dropped, 20000u);
        EXPECT_GT(stats.written, 0u);
    }
    std::remove(path.c_str());
}

TEST(Logger, UnopenablePathReportsInactive) {
    telemetry::Logger::Options options;
    options.path = "/nonexistent-dir-zzz/log.jsonl";
    telemetry::Logger log(options);
    EXPECT_FALSE(log.active());
}

// ------------------------------------------------------------------ spans

TEST(SpanBuilder, BuildsNestedTreeWithRelativeTimes) {
    telemetry::SpanBuilder b;
    b.begin("parse");
    b.end();
    b.begin("run");
    b.begin("inner");
    b.end();
    b.end();
    const telemetry::Span root = b.finish();
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children[0].name, "parse");
    EXPECT_EQ(root.children[1].name, "run");
    ASSERT_EQ(root.children[1].children.size(), 1u);
    EXPECT_EQ(root.children[1].children[0].name, "inner");
    EXPECT_GE(root.dur_ns, root.children[1].dur_ns);
    // to_json round-trips structurally.
    const auto doc = report::Json::parse(root.to_json().dump_compact());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ((*doc)["name"].as_string(), "request");
    EXPECT_EQ((*doc)["children"].size(), 2u);
}

TEST(SpanSink, PhaseScopesBecomeSpansAndTailAggregates) {
    telemetry::SpanSink sink(telemetry::steady_now_ns());
    const unsigned rounds =
        static_cast<unsigned>(telemetry::SpanSink::kMaxDetail) + 10;
    for (unsigned i = 0; i < rounds; ++i) {
        sink.phase_begin(trace::Phase::kSuperstep, i);
        sink.phase_end(trace::Phase::kSuperstep);
    }
    const telemetry::Span leg = sink.take("hmm");
    EXPECT_EQ(leg.name, "hmm");
    // kMaxDetail individual spans plus one aggregate holding the remainder.
    ASSERT_EQ(leg.children.size(), telemetry::SpanSink::kMaxDetail + 1);
    EXPECT_EQ(leg.children.front().label, 0u);
    const telemetry::Span& tail = leg.children.back();
    EXPECT_EQ(tail.count, 10u);

    // take() resets: a second leg starts clean.
    sink.phase_begin(trace::Phase::kSuperstep, 0);
    sink.phase_end(trace::Phase::kSuperstep);
    EXPECT_EQ(sink.take("bt").children.size(), 1u);
}

TEST(SpanSink, ChargeEventsAreIgnoredAndUnmatchedEndsAreSafe) {
    telemetry::SpanSink sink(0);
    sink.charge(100.0);
    sink.access(7, 3.0);
    sink.messages(5);
    sink.phase_end(trace::Phase::kSuperstep);  // unmatched: must not crash
    EXPECT_TRUE(sink.take("x").children.empty());
}

// -------------------------------------------------------------- telemetry

TEST(Telemetry, FrameCarriesSchemaWindowsAndVitals) {
    telemetry::Telemetry::Options options;
    telemetry::Telemetry hub(options);
    telemetry::RequestRecord rec;
    rec.id = hub.next_request_id();
    rec.op = "run";
    rec.ms = 2.5;
    rec.hmm_slack = 0.8;
    rec.bt_slack = 1.2;
    hub.record_request(std::move(rec));
    hub.record_cache(true);
    hub.record_cache(false);

    telemetry::ServerVitals vitals;
    vitals.requests = 3;
    vitals.cache_hits = 1;
    vitals.cache_misses = 1;
    const report::Json f = hub.frame(7, vitals);
    EXPECT_EQ(f["schema"].as_string(), "dbsp-telemetry-v1");
    EXPECT_EQ(f["seq"].as_double(), 7.0);
    EXPECT_TRUE(f["windows"]["1s"]["qps"].is_number());
    EXPECT_TRUE(f["windows"]["10s"]["p99_ms"].is_number());
    EXPECT_TRUE(f["windows"]["60s"]["cache_hit_ratio"].is_number());
    EXPECT_TRUE(f["bound_slack"]["hmm"]["p50"].is_number());
    EXPECT_GT(f["proc"]["open_fds"].as_double(), 0.0);
    EXPECT_GT(f["proc"]["threads"].as_double(), 0.0);
    EXPECT_EQ(f["server"]["requests"].as_double(), 3.0);

    // The spans ring serves the recorded request newest-first.
    const report::Json spans = hub.spans_json(8);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans.items()[0]["op"].as_string(), "run");
    EXPECT_GT(spans.items()[0]["bound_slack"]["hmm"].as_double(), 0.0);
}

TEST(Telemetry, SpanRingIsBounded) {
    telemetry::Telemetry::Options options;
    options.span_ring = 4;
    telemetry::Telemetry hub(options);
    for (int i = 0; i < 10; ++i) {
        telemetry::RequestRecord rec;
        rec.id = hub.next_request_id();
        rec.op = "ping";
        hub.record_request(std::move(rec));
    }
    EXPECT_EQ(hub.spans_json(100).size(), 4u);
    // Newest first: the last id recorded leads.
    EXPECT_EQ(hub.spans_json(100).items()[0]["id"].as_double(), 10.0);
}

TEST(Telemetry, SlowRequestLogsFullSpanTree) {
    const std::string path = testing::TempDir() + "dbsp_slow_req.jsonl";
    std::remove(path.c_str());
    {
        telemetry::Logger::Options lo;
        lo.path = path;
        lo.level = telemetry::LogLevel::kWarn;
        telemetry::Logger log(lo);
        telemetry::Telemetry::Options options;
        options.slow_ms = 1.0;
        options.logger = &log;
        telemetry::Telemetry hub(options);

        telemetry::RequestRecord fast;
        fast.id = 1;
        fast.op = "run";
        fast.ms = 0.5;
        hub.record_request(std::move(fast));

        telemetry::RequestRecord slow;
        slow.id = 2;
        slow.op = "run";
        slow.ms = 5.0;
        slow.root.name = "request";
        hub.record_request(std::move(slow));
        log.flush();
        EXPECT_EQ(log.stats().written, 1u) << "only the slow request logs";
    }
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[2048] = {};
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    std::fclose(f);
    const auto doc = report::Json::parse(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ((*doc)["event"].as_string(), "slow-request");
    EXPECT_EQ((*doc)["id"].as_double(), 2.0);
    EXPECT_TRUE((*doc)["spans"].is_object());
    std::remove(path.c_str());
}

}  // namespace
