#include <gtest/gtest.h>

#include "algos/transpose_program.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace dbsp::algo {
namespace {

using model::AccessFunction;
using model::DbspMachine;
using model::Word;

std::vector<Word> iota_values(std::uint64_t v) {
    std::vector<Word> values(v);
    for (std::uint64_t i = 0; i < v; ++i) values[i] = i;
    return values;
}

class TransposeProgramParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransposeProgramParam, PermutesCorrectly) {
    const std::uint64_t v = GetParam();
    const std::uint64_t side = std::uint64_t{1} << (ilog2(v) / 2);
    TransposeProgram prog(iota_values(v));
    DbspMachine machine(AccessFunction::logarithmic());
    const auto result = machine.run(prog);
    for (std::uint64_t r = 0; r < side; ++r) {
        for (std::uint64_t c = 0; c < side; ++c) {
            // After the transpose, processor (r, c) holds the value that
            // started at (c, r).
            ASSERT_EQ(result.data_of(r * side + c)[0], c * side + r);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransposeProgramParam, ::testing::Values(4, 16, 64, 256, 1024));

TEST(TransposeProgram, DoubleTransposeIsIdentity) {
    const std::uint64_t v = 64;
    TransposeProgram prog(iota_values(v), /*rounds=*/2);
    DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto result = machine.run(prog);
    for (std::uint64_t p = 0; p < v; ++p) EXPECT_EQ(result.data_of(p)[0], p);
}

TEST(TransposeProgram, DeclaresRationalPermutation) {
    TransposeProgram prog(iota_values(16), 3);
    EXPECT_EQ(prog.permutation_class(0), model::PermutationClass::kTranspose);
    EXPECT_EQ(prog.permutation_grain(1), 16u);
    EXPECT_EQ(prog.permutation_class(3), model::PermutationClass::kGeneral);
}

TEST(TransposeProgram, BtSimulatorUsesTransposeDelivery) {
    const std::uint64_t v = 256;
    SplitMix64 rng(8);
    std::vector<Word> values(v);
    for (auto& x : values) x = rng.next();

    const auto f = AccessFunction::polynomial(0.35);
    TransposeProgram direct_prog(values, 4);
    DbspMachine machine(f);
    const auto direct = machine.run(direct_prog);

    TransposeProgram rat_prog(values, 4);
    auto sr = core::smooth(rat_prog, core::bt_label_set(f, rat_prog.context_words(), v));
    core::BtSimulator::Options with;
    with.use_rational_permutations = true;
    const auto r_rat = core::BtSimulator(f, with).simulate(*sr);
    EXPECT_EQ(r_rat.transpose_invocations, 4u);

    TransposeProgram sort_prog(values, 4);
    auto ss = core::smooth(sort_prog, core::bt_label_set(f, sort_prog.context_words(), v));
    const auto r_sort = core::BtSimulator(f).simulate(*ss);

    for (std::uint64_t p = 0; p < v; ++p) {
        ASSERT_EQ(r_rat.data_of(p), direct.data_of(p));
        ASSERT_EQ(r_sort.data_of(p), direct.data_of(p));
    }
    // On a pure-permutation workload the rational path must win clearly.
    EXPECT_LT(r_rat.bt_cost, r_sort.bt_cost);
}

TEST(TransposeProgram, HmmEquivalence) {
    const std::uint64_t v = 64;
    SplitMix64 rng(9);
    std::vector<Word> values(v);
    for (auto& x : values) x = rng.next();
    const auto f = AccessFunction::logarithmic();

    TransposeProgram a(values, 3);
    DbspMachine machine(f);
    const auto direct = machine.run(a);

    TransposeProgram b(values, 3);
    auto smoothed = core::smooth(b, core::hmm_label_set(f, b.context_words(), v));
    const auto sim = core::HmmSimulator(f).simulate(*smoothed);
    for (std::uint64_t p = 0; p < v; ++p) {
        ASSERT_EQ(sim.data_of(p), direct.data_of(p));
    }
}

}  // namespace
}  // namespace dbsp::algo
