#include <gtest/gtest.h>

#include <complex>
#include <memory>
#include <vector>

#include "algos/bitonic_sort.hpp"
#include "algos/fft_recursive.hpp"
#include "algos/permutation.hpp"
#include "bt/machine.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/self_simulator.hpp"
#include "core/smoothing.hpp"
#include "hmm/machine.hpp"
#include "model/dbsp_machine.hpp"
#include "trace/aggregate.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/sink.hpp"
#include "util/bits.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dbsp {
namespace {

using model::AccessFunction;
using model::Word;

/// The paper's case-study access functions (same set as bench/common.hpp).
std::vector<AccessFunction> case_study_functions() {
    return {AccessFunction::polynomial(0.35), AccessFunction::polynomial(0.5),
            AccessFunction::logarithmic()};
}

std::unique_ptr<algo::BitonicSortProgram> make_sort_program(std::uint64_t v,
                                                            std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<Word> keys(v);
    for (auto& k : keys) k = rng.next();
    return std::make_unique<algo::BitonicSortProgram>(keys);
}

std::unique_ptr<algo::FftRecursiveProgram> make_fft_program(std::uint64_t v,
                                                            std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<std::complex<double>> x(v);
    for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
    return std::make_unique<algo::FftRecursiveProgram>(x);
}

bool has_dummy_step(const model::Program& program) {
    for (model::StepIndex s = 0; s < program.num_supersteps(); ++s) {
        if (program.is_dummy_step(s)) return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Machine-level mirroring: the sink's total must equal the machine's charged
// cost bit for bit through every kind of charge event.
// ---------------------------------------------------------------------------

TEST(TraceSink, HmmMachineMirrorsChargedCostExactly) {
    for (const auto& f : case_study_functions()) {
        hmm::Machine traced(f, 4096);
        hmm::Machine untraced(f, 4096);
        trace::AggregateSink sink;
        traced.set_trace(&sink);

        // Per-word accesses go through read_traced/write_traced on the traced
        // machine and the hook-free read/write on the untraced one — the
        // charged streams must be identical (the simulators select the path
        // the same way).
        const auto workload = [](hmm::Machine& m, bool use_traced) {
            SplitMix64 rng(99);
            for (int i = 0; i < 200; ++i) {
                const model::Addr x = rng.next_below(4096);
                if (use_traced) {
                    m.write_traced(x, rng.next());
                    (void)m.read_traced(x / 2 + 1);
                } else {
                    m.write(x, rng.next());
                    (void)m.read(x / 2 + 1);
                }
            }
            std::vector<Word> buf(64);
            m.read_range(100, buf);
            m.write_range(700, buf);
            m.swap_blocks(0, 2048, 512);
            m.copy_block(64, 1024, 128);
            m.charge_range(10, 300);
            m.charge(7.0);
        };
        workload(traced, true);
        workload(untraced, false);

        // Tracing never perturbs the charge stream...
        EXPECT_EQ(traced.cost(), untraced.cost()) << f.name();
        // ...and the mirror is exact, not approximate.
        EXPECT_EQ(sink.total(), traced.cost()) << f.name();

        // reset_cost clears the mirror too, and the equality holds again.
        traced.reset_cost();
        EXPECT_EQ(sink.total(), 0.0);
        (void)traced.read_traced(321);
        traced.swap_blocks(8, 256, 32);
        EXPECT_EQ(sink.total(), traced.cost()) << f.name();
    }
}

TEST(TraceSink, BtMachineMirrorsChargedCostExactly) {
    for (const auto& f : case_study_functions()) {
        bt::Machine traced(f, 4096);
        bt::Machine untraced(f, 4096);
        trace::AggregateSink sink;
        traced.set_trace(&sink);

        const auto workload = [](bt::Machine& m) {
            SplitMix64 rng(7);
            for (int i = 0; i < 200; ++i) {
                const model::Addr x = rng.next_below(4096);
                m.write(x, rng.next());
                (void)m.read(x / 3 + 2);
            }
            std::vector<Word> buf(96);
            m.read_range(40, buf);
            m.write_range(900, buf);
            m.block_copy(0, 2048, 512);
            m.block_copy(1500, 8, 64);
            m.charge(3.0);
        };
        workload(traced);
        workload(untraced);

        EXPECT_EQ(traced.cost(), untraced.cost()) << f.name();
        EXPECT_EQ(sink.total(), traced.cost()) << f.name();
        EXPECT_EQ(sink.block_transfers(), 2u);
        EXPECT_EQ(sink.transfer_volume(), 512u + 64u);

        traced.reset_cost();
        EXPECT_EQ(sink.total(), 0.0);
        traced.block_copy(16, 128, 16);
        EXPECT_EQ(sink.total(), traced.cost()) << f.name();
    }
}

// ---------------------------------------------------------------------------
// End-to-end totals: for every case-study access function the trace total
// equals the simulator's charged cost exactly (EXPECT_EQ on doubles, no
// tolerance) and attaching the tracer does not change the charged cost.
// ---------------------------------------------------------------------------

TEST(TraceTotals, HmmSimulationMatchesChargedCost) {
    const std::uint64_t v = 64;
    for (const auto& f : case_study_functions()) {
        auto prog = make_sort_program(v, 11);
        auto smoothed = core::smooth(*prog, core::hmm_label_set(f, prog->context_words(), v));

        trace::AggregateSink sink;
        core::HmmSimulator::Options options;
        options.trace = &sink;
        const auto traced = core::HmmSimulator(f, options).simulate(*smoothed);

        auto prog2 = make_sort_program(v, 11);
        auto smoothed2 =
            core::smooth(*prog2, core::hmm_label_set(f, prog2->context_words(), v));
        const auto untraced = core::HmmSimulator(f).simulate(*smoothed2);

        EXPECT_EQ(sink.total(), traced.hmm_cost) << f.name();
        EXPECT_EQ(traced.hmm_cost, untraced.hmm_cost) << f.name();
    }
}

TEST(TraceTotals, BtSimulationMatchesChargedCost) {
    const std::uint64_t v = 64;
    for (const auto& f : case_study_functions()) {
        auto prog = make_sort_program(v, 13);
        auto smoothed = core::smooth(*prog, core::bt_label_set(f, prog->context_words(), v));

        trace::AggregateSink sink;
        core::BtSimulator::Options options;
        options.trace = &sink;
        const auto traced = core::BtSimulator(f, options).simulate(*smoothed);

        auto prog2 = make_sort_program(v, 13);
        auto smoothed2 =
            core::smooth(*prog2, core::bt_label_set(f, prog2->context_words(), v));
        const auto untraced = core::BtSimulator(f).simulate(*smoothed2);

        EXPECT_EQ(sink.total(), traced.bt_cost) << f.name();
        EXPECT_EQ(traced.bt_cost, untraced.bt_cost) << f.name();
    }
}

TEST(TraceTotals, BtRationalPermutationDeliveryMatchesChargedCost) {
    // FFT-rec declares transpose supersteps, so the rational-permutation
    // delivery path (kDeliverTranspose) is exercised. (FftRecursiveProgram
    // needs log v a power of two, hence v = 16.)
    const std::uint64_t v = 16;
    for (const auto& f : case_study_functions()) {
        auto prog = make_fft_program(v, 17);
        auto smoothed = core::smooth(*prog, core::bt_label_set(f, prog->context_words(), v));

        trace::AggregateSink sink;
        core::BtSimulator::Options options;
        options.use_rational_permutations = true;
        options.trace = &sink;
        const auto res = core::BtSimulator(f, options).simulate(*smoothed);

        EXPECT_EQ(sink.total(), res.bt_cost) << f.name();
        ASSERT_GT(res.transpose_invocations, 0u) << f.name();
        EXPECT_GT(sink.phase_cost(trace::Phase::kDeliverTranspose), 0.0) << f.name();
    }
}

TEST(TraceTotals, DirectDbspRunMatchesChargedTime) {
    const std::uint64_t v = 64;
    for (const auto& f : case_study_functions()) {
        auto prog = make_sort_program(v, 19);
        trace::AggregateSink sink;
        model::DbspMachine machine(f);
        machine.set_trace(&sink);
        const auto result = machine.run(*prog);

        auto prog2 = make_sort_program(v, 19);
        const auto plain = model::DbspMachine(f).run(*prog2);

        EXPECT_EQ(sink.total(), result.time) << f.name();
        EXPECT_EQ(result.time, plain.time) << f.name();
        // Supersteps are the only direct-run events: everything is attributed
        // to kSuperstep (per-label buckets reassociate, hence the tolerance).
        for (const auto& [key, stats] : sink.phases()) {
            EXPECT_EQ(key.phase, trace::Phase::kSuperstep);
        }
        EXPECT_NEAR(sink.phase_cost(trace::Phase::kSuperstep), sink.attributed_cost(),
                    1e-12 * result.time);
    }
}

TEST(TraceTotals, SelfSimulationMatchesHostTime) {
    const std::uint64_t v = 64;
    std::vector<unsigned> labels;
    for (unsigned l = 0; l <= ilog2(v); ++l) labels.push_back(ilog2(v) - l);
    for (const auto& f : case_study_functions()) {
        for (std::uint64_t vp : {1ull, 8ull, 64ull}) {
            algo::RandomRoutingProgram prog(v, labels, 23);
            trace::AggregateSink sink;
            core::SelfSimulator sim(f, vp);
            sim.set_trace(&sink);
            const auto host = sim.simulate(prog);

            algo::RandomRoutingProgram prog2(v, labels, 23);
            const auto plain = core::SelfSimulator(f, vp).simulate(prog2);

            EXPECT_EQ(sink.total(), host.host_time) << f.name() << " v'=" << vp;
            EXPECT_EQ(host.host_time, plain.host_time) << f.name() << " v'=" << vp;
        }
    }
}

TEST(TraceTotals, ReusedSinkRestartsMirrorEachSimulation) {
    // bench_micro reuses one sink across many simulate() calls; each run
    // starts from a fresh machine (cost 0), so the mirror must restart too.
    const auto f = AccessFunction::polynomial(0.5);
    trace::AggregateSink sink;
    core::HmmSimulator::Options options;
    options.trace = &sink;
    for (int rep = 0; rep < 3; ++rep) {
        auto prog = make_sort_program(64, 47);
        auto smoothed = core::smooth(*prog, core::hmm_label_set(f, prog->context_words(), 64));
        const auto res = core::HmmSimulator(f, options).simulate(*smoothed);
        EXPECT_EQ(sink.total(), res.hmm_cost) << "rep " << rep;
    }

    trace::AggregateSink bt_sink;
    core::BtSimulator::Options bt_options;
    bt_options.trace = &bt_sink;
    for (int rep = 0; rep < 2; ++rep) {
        auto prog = make_sort_program(64, 49);
        auto smoothed = core::smooth(*prog, core::bt_label_set(f, prog->context_words(), 64));
        const auto res = core::BtSimulator(f, bt_options).simulate(*smoothed);
        EXPECT_EQ(bt_sink.total(), res.bt_cost) << "rep " << rep;
    }
}

// ---------------------------------------------------------------------------
// Attribution content.
// ---------------------------------------------------------------------------

TEST(TraceAggregate, HmmAttributionCoversSimulationPhases) {
    const std::uint64_t v = 64;
    const auto f = AccessFunction::polynomial(0.5);
    auto prog = make_sort_program(v, 29);
    auto smoothed = core::smooth(*prog, core::hmm_label_set(f, prog->context_words(), v));
    const bool smoothing_inserted_dummies = has_dummy_step(*smoothed);

    trace::AggregateSink sink;
    core::HmmSimulator::Options options;
    options.trace = &sink;
    const auto res = core::HmmSimulator(f, options).simulate(*smoothed);

    // Every unit of charge is attributed somewhere; the bucket sum re-adds
    // the same charges in per-bucket order, so it matches to roundoff.
    EXPECT_NEAR(sink.attributed_cost(), res.hmm_cost, 1e-9 * res.hmm_cost);
    EXPECT_GT(sink.phase_cost(trace::Phase::kStepExec), 0.0);
    EXPECT_GT(sink.phase_cost(trace::Phase::kContextMove), 0.0);
    EXPECT_GT(sink.phase_cost(trace::Phase::kDeliver), 0.0);
    EXPECT_EQ(sink.phase_cost(trace::Phase::kDummyStep) > 0.0, smoothing_inserted_dummies);
    EXPECT_GT(sink.message_count(), 0u);
    EXPECT_FALSE(sink.levels().empty());

    // Charges land across several hierarchy levels, and a cheap level is hit:
    // the simulation keeps the active cluster at the top of memory.
    EXPECT_GE(sink.levels().size(), 3u);
    EXPECT_LE(sink.levels().begin()->first, 4u);

    // The human-readable report mentions every active phase.
    const std::string report = sink.to_string();
    EXPECT_NE(report.find("step-exec"), std::string::npos);
    EXPECT_NE(report.find("context-move"), std::string::npos);
    EXPECT_NE(report.find("deliver"), std::string::npos);
}

TEST(TraceAggregate, SelfSimulationPhasesArePartitioned) {
    const std::uint64_t v = 64;
    const auto f = AccessFunction::logarithmic();
    std::vector<unsigned> labels = {0, 6, 6, 0, 6, 3};
    algo::RandomRoutingProgram prog(v, labels, 31);
    trace::AggregateSink sink;
    core::SelfSimulator sim(f, 8);
    sim.set_trace(&sink);
    const auto host = sim.simulate(prog);

    EXPECT_EQ(sink.total(), host.host_time);
    EXPECT_GT(sink.phase_cost(trace::Phase::kLocalRun), 0.0);
    EXPECT_GT(sink.phase_cost(trace::Phase::kGlobalStep), 0.0);
    // Local runs + global supersteps partition the host time.
    EXPECT_NEAR(sink.phase_cost(trace::Phase::kLocalRun) +
                    sink.phase_cost(trace::Phase::kGlobalStep),
                host.host_time, 1e-9 * host.host_time);
}

// ---------------------------------------------------------------------------
// Concrete sinks and fan-out.
// ---------------------------------------------------------------------------

TEST(TraceChrome, WriterRecordsScopesWithExactTotal) {
    const std::uint64_t v = 64;
    const auto f = AccessFunction::polynomial(0.35);
    auto prog = make_sort_program(v, 37);
    auto smoothed = core::smooth(*prog, core::hmm_label_set(f, prog->context_words(), v));

    trace::ChromeTraceSink sink("hmm");
    core::HmmSimulator::Options options;
    options.trace = &sink;
    const auto res = core::HmmSimulator(f, options).simulate(*smoothed);

    EXPECT_EQ(sink.total(), res.hmm_cost);
    EXPECT_GT(sink.event_count(), 0u);
    const std::string json = sink.to_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\":\"hmm\""), std::string::npos);
    EXPECT_NE(json.find("step-exec"), std::string::npos);
}

TEST(TraceMulti, FanOutKeepsEveryChildExact) {
    const std::uint64_t v = 64;
    const auto f = AccessFunction::polynomial(0.5);
    auto prog = make_sort_program(v, 41);
    auto smoothed = core::smooth(*prog, core::bt_label_set(f, prog->context_words(), v));

    trace::AggregateSink aggregate;
    trace::ChromeTraceSink chrome("bt");
    trace::MultiSink multi({&aggregate, &chrome});
    core::BtSimulator::Options options;
    options.trace = &multi;
    const auto res = core::BtSimulator(f, options).simulate(*smoothed);

    EXPECT_EQ(multi.total(), res.bt_cost);
    EXPECT_EQ(aggregate.total(), res.bt_cost);
    EXPECT_EQ(chrome.total(), res.bt_cost);
    EXPECT_GT(chrome.event_count(), 0u);
}

// ---------------------------------------------------------------------------
// Thread safety of the intended usage: one private sink per sweep point.
// ---------------------------------------------------------------------------

TEST(TraceParallel, OneSinkPerSweepPointIsExactUnderParallelFor) {
    struct Point {
        AccessFunction f;
        std::uint64_t v;
    };
    std::vector<Point> points;
    for (const auto& f : case_study_functions()) {
        for (std::uint64_t v : {16u, 64u}) points.push_back({f, v});
    }

    std::vector<double> traced_cost(points.size()), mirrored(points.size()),
        untraced_cost(points.size());
    util::parallel_for(
        points.size(),
        [&](std::size_t i) {
            const auto& [f, v] = points[i];
            auto prog = make_sort_program(v, 43 + v);
            auto smoothed =
                core::smooth(*prog, core::hmm_label_set(f, prog->context_words(), v));
            trace::AggregateSink sink;  // private to this sweep point
            core::HmmSimulator::Options options;
            options.trace = &sink;
            traced_cost[i] = core::HmmSimulator(f, options).simulate(*smoothed).hmm_cost;
            mirrored[i] = sink.total();

            auto prog2 = make_sort_program(v, 43 + v);
            auto smoothed2 =
                core::smooth(*prog2, core::hmm_label_set(f, prog2->context_words(), v));
            untraced_cost[i] = core::HmmSimulator(f).simulate(*smoothed2).hmm_cost;
        },
        4);

    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(mirrored[i], traced_cost[i]) << "point " << i;
        EXPECT_EQ(traced_cost[i], untraced_cost[i]) << "point " << i;
    }
}

}  // namespace
}  // namespace dbsp
