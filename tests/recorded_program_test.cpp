#include <gtest/gtest.h>

#include <complex>

#include "algos/bitonic_sort.hpp"
#include "algos/collectives.hpp"
#include "algos/fft_direct.hpp"
#include "algos/permutation.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "model/recorded_program.hpp"
#include "util/rng.hpp"

namespace dbsp::model {
namespace {

TEST(Trace, CapturesShapeOfBroadcast) {
    algo::BroadcastProgram prog(16, 7);
    const Trace trace = record(prog);
    EXPECT_EQ(trace.processors, 16u);
    EXPECT_EQ(trace.labels.size(), prog.num_supersteps());
    // Binomial broadcast: 2^s messages in superstep s.
    for (std::size_t s = 0; s + 1 < trace.labels.size(); ++s) {
        std::size_t sent = 0;
        for (const auto& ev : trace.events[s]) sent += ev.messages.size();
        EXPECT_EQ(sent, std::size_t{1} << s) << "superstep " << s;
    }
    EXPECT_EQ(trace.total_messages(), 15u);
}

TEST(Trace, TotalsMatchDirectRunStats) {
    SplitMix64 rng(5);
    std::vector<Word> keys(64);
    for (auto& k : keys) k = rng.next();
    algo::BitonicSortProgram prog(keys);
    const Trace trace = record(prog);
    // Each of the 21 compare-exchange supersteps sends 64 messages.
    EXPECT_EQ(trace.total_messages(), 64u * 21u);
    EXPECT_GT(trace.total_ops(), 0u);
}

TEST(RecordedProgram, ReplayHasIdenticalCostProfile) {
    algo::RandomRoutingProgram prog(64, {0, 3, 5, 2}, 9);
    DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto original = machine.run(prog);

    algo::RandomRoutingProgram prog2(64, {0, 3, 5, 2}, 9);
    RecordedProgram replay(record(prog2));
    const auto replayed = machine.run(replay);

    ASSERT_EQ(replayed.supersteps.size(), original.supersteps.size());
    for (std::size_t s = 0; s < original.supersteps.size(); ++s) {
        EXPECT_EQ(replayed.supersteps[s].label, original.supersteps[s].label);
        EXPECT_EQ(replayed.supersteps[s].h, original.supersteps[s].h);
        // comm_arg scales with mu, which differs between the original and
        // the replay's 2-word context; the cluster size must agree.
        EXPECT_DOUBLE_EQ(
            replayed.supersteps[s].comm_arg / static_cast<double>(replay.context_words()),
            original.supersteps[s].comm_arg / static_cast<double>(prog.context_words()));
    }
}

TEST(RecordedProgram, ReplaySimulatesEquivalentlyOnHmm) {
    SplitMix64 rng(6);
    std::vector<std::complex<double>> x(64);
    for (auto& c : x) c = {rng.next_double(), rng.next_double()};
    algo::FftDirectProgram prog(x);
    RecordedProgram replay(record(prog));

    const auto f = AccessFunction::logarithmic();
    DbspMachine machine(f);
    const auto direct = machine.run(replay);

    algo::FftDirectProgram prog2(x);
    RecordedProgram replay2(record(prog2));
    auto smoothed = core::smooth(replay2, core::hmm_label_set(f, replay2.context_words(), 64));
    const auto simulated = core::HmmSimulator(f).simulate(*smoothed);
    for (std::uint64_t p = 0; p < 64; ++p) {
        ASSERT_EQ(simulated.data_of(p), direct.data_of(p)) << "p=" << p;
    }
}

TEST(RecordedProgram, ReplaySimulatesEquivalentlyOnBt) {
    algo::RandomRoutingProgram prog(32, {2, 0, 4, 1}, 11);
    RecordedProgram replay(record(prog));

    const auto f = AccessFunction::polynomial(0.5);
    DbspMachine machine(f);
    const auto direct = machine.run(replay);

    algo::RandomRoutingProgram prog2(32, {2, 0, 4, 1}, 11);
    RecordedProgram replay2(record(prog2));
    auto smoothed = core::smooth(replay2, core::bt_label_set(f, replay2.context_words(), 32));
    const auto simulated = core::BtSimulator(f).simulate(*smoothed);
    for (std::uint64_t p = 0; p < 32; ++p) {
        ASSERT_EQ(simulated.data_of(p), direct.data_of(p)) << "p=" << p;
    }
}

TEST(RecordedProgram, DigestDetectsPayloadDifferences) {
    // Corrupting one payload in a trace changes the destination's digest.
    algo::RandomRoutingProgram a(16, {1}, 3);
    Trace clean = record(a);
    Trace dirty = clean;
    ASSERT_FALSE(dirty.events[0][0].messages.empty());
    dirty.events[0][0].messages[0].payload0 ^= 0xDEADu;
    const ProcId dest = dirty.events[0][0].messages[0].dest;

    RecordedProgram ra(std::move(clean)), rb(std::move(dirty));
    DbspMachine machine(AccessFunction::logarithmic());
    const auto run_a = machine.run(ra);
    const auto run_b = machine.run(rb);
    EXPECT_NE(run_a.data_of(dest)[1], run_b.data_of(dest)[1]);
    EXPECT_EQ(run_a.data_of(dest)[0], run_b.data_of(dest)[0]);  // same count
}

TEST(Trace, SyntheticTraceConstruction) {
    // Build a trace by hand: a ring shift at label 0, then a sync.
    Trace trace;
    trace.processors = 8;
    trace.max_messages = 1;
    trace.labels = {0, 0};
    trace.events.resize(2);
    trace.events[0].resize(8);
    trace.events[1].resize(8);
    for (ProcId p = 0; p < 8; ++p) {
        trace.events[0][p].ops = 2;
        trace.events[0][p].messages.push_back(Message{p, (p + 1) % 8, 100 + p, 0});
        trace.events[1][p].read_inbox = true;
    }
    RecordedProgram replay(std::move(trace));
    DbspMachine machine(AccessFunction::logarithmic());
    const auto run = machine.run(replay);
    EXPECT_EQ(run.supersteps[0].h, 1u);
    for (ProcId p = 0; p < 8; ++p) {
        EXPECT_EQ(run.data_of(p)[0], 1u);  // one message received
    }
}

}  // namespace
}  // namespace dbsp::model
