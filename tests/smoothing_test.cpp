#include <gtest/gtest.h>

#include <cmath>

#include "algos/permutation.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"

namespace dbsp::core {
namespace {

using algo::RandomRoutingProgram;
using model::AccessFunction;

TEST(Smoothing, HmmLabelSetDecaysGeometrically) {
    const auto f = AccessFunction::polynomial(0.5);
    const std::uint64_t v = 1 << 12;
    const std::size_t mu = 16;
    const double c2 = 0.5;
    const auto labels = hmm_label_set(f, mu, v, c2);
    ASSERT_GE(labels.size(), 2u);
    EXPECT_EQ(labels.front(), 0u);
    EXPECT_EQ(labels.back(), 12u);
    EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
    // Property (a)+(b): f decays by a constant factor at each step (except
    // possibly into the last label).
    for (std::size_t i = 0; i + 2 < labels.size(); ++i) {
        const double prev = f.at(static_cast<double>(mu) * static_cast<double>(v >> labels[i]));
        const double next =
            f.at(static_cast<double>(mu) * static_cast<double>(v >> labels[i + 1]));
        EXPECT_LE(next, c2 * prev + 1e-9);
        // (2,c)-uniformity implies the decay is bounded below as well.
        EXPECT_GE(next, c2 / std::sqrt(2.0) * prev * 0.99);
    }
}

TEST(Smoothing, LogLabelSetIsCoarse) {
    // For f = log x the label set should skip aggressively (log halves only
    // after a quadratic shrink of the argument).
    const auto labels =
        hmm_label_set(AccessFunction::logarithmic(), 8, std::uint64_t{1} << 16, 0.5);
    EXPECT_LT(labels.size(), 8u);
    EXPECT_EQ(labels.back(), 16u);
}

TEST(Smoothing, BtLabelSetSatisfiesPropertyC) {
    const auto f = AccessFunction::polynomial(0.5);
    const std::uint64_t v = 1 << 14;
    const std::size_t mu = 16;
    const double d2 = 2.0;
    const auto labels = bt_label_set(f, mu, v, 0.5, 2.0, d2);
    EXPECT_EQ(labels.front(), 0u);
    EXPECT_EQ(labels.back(), 14u);
    for (std::size_t i = 0; i + 1 < labels.size(); ++i) {
        const double f_prev =
            f.at(static_cast<double>(mu) * static_cast<double>(v >> labels[i]));
        const double mem_next = static_cast<double>(mu) * static_cast<double>(v >> labels[i + 1]);
        EXPECT_LE(f_prev, d2 * mem_next + 1e-9)
            << "property (c) violated at i=" << i;
    }
}

TEST(Smoothing, FullLabelSet) {
    const auto labels = full_label_set(32);
    EXPECT_EQ(labels, (std::vector<unsigned>{0, 1, 2, 3, 4, 5}));
}

TEST(Smoothing, SmoothedProgramSatisfiesDefinition3) {
    RandomRoutingProgram prog(1 << 10, {7, 2, 9, 9, 0, 5, 10, 1}, 3);
    const auto labels = hmm_label_set(AccessFunction::polynomial(0.35), 16, 1 << 10);
    EXPECT_FALSE(is_smooth(prog, labels));
    SmoothingStats stats;
    auto smoothed = smooth(prog, labels, &stats);
    EXPECT_TRUE(is_smooth(*smoothed, labels));
    EXPECT_EQ(stats.original_supersteps, prog.num_supersteps());
    EXPECT_GE(smoothed->num_supersteps(), prog.num_supersteps());
    EXPECT_EQ(smoothed->num_supersteps(), prog.num_supersteps() + stats.dummies);
}

TEST(Smoothing, UpgradeNeverRaisesLabel) {
    RandomRoutingProgram prog(64, {3, 5, 1, 6, 2}, 4);
    const auto labels = std::vector<unsigned>{0, 2, 4, 6};
    auto smoothed = smooth(prog, labels);
    // Every real superstep's new label is <= its original label.
    std::size_t orig = 0;
    for (model::StepIndex s = 0; s < smoothed->num_supersteps(); ++s) {
        if (smoothed->is_dummy(s)) continue;
        EXPECT_LE(smoothed->label(s), prog.label(orig));
        ++orig;
    }
    EXPECT_EQ(orig, prog.num_supersteps());
}

TEST(Smoothing, SmoothedProgramFunctionallyEquivalent) {
    RandomRoutingProgram prog(256, {4, 1, 7, 0, 3, 8, 2}, 5);
    model::DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto direct = machine.run(prog);

    RandomRoutingProgram prog2(256, {4, 1, 7, 0, 3, 8, 2}, 5);
    auto smoothed = smooth(prog2, hmm_label_set(AccessFunction::polynomial(0.5), 16, 256));
    const auto via_smooth = machine.run(*smoothed);
    for (std::uint64_t p = 0; p < 256; ++p) {
        EXPECT_EQ(direct.data_of(p), via_smooth.data_of(p));
    }
}

TEST(Smoothing, LabelSetsOnDegenerateMachines) {
    // v = 1 (log v = 0): every construction must return exactly {0} — the
    // set is required to start at 0 and end at log v, which coincide.
    for (const auto& f : {AccessFunction::polynomial(0.35), AccessFunction::polynomial(0.5),
                          AccessFunction::logarithmic(), AccessFunction::constant(1.0)}) {
        EXPECT_EQ(hmm_label_set(f, 8, 1), (std::vector<unsigned>{0})) << f.name();
        EXPECT_EQ(bt_label_set(f, 8, 1), (std::vector<unsigned>{0})) << f.name();
    }
    EXPECT_EQ(full_label_set(1), (std::vector<unsigned>{0}));

    // v = 2: the only valid set is {0, 1}; in particular no label may exceed
    // log v = 1 and no element may repeat, for any mu or function shape.
    for (std::size_t mu : {std::size_t{3}, std::size_t{8}, std::size_t{1024}}) {
        for (const auto& f :
             {AccessFunction::polynomial(0.35), AccessFunction::polynomial(0.5),
              AccessFunction::logarithmic(), AccessFunction::constant(1.0)}) {
            EXPECT_EQ(hmm_label_set(f, mu, 2), (std::vector<unsigned>{0, 1}))
                << f.name() << " mu=" << mu;
            EXPECT_EQ(bt_label_set(f, mu, 2), (std::vector<unsigned>{0, 1}))
                << f.name() << " mu=" << mu;
        }
    }

    // Every construction yields a strictly increasing set from 0 to log v
    // (Definition 3 requires l_0 = 0 and l_m = log v) across small machines.
    for (std::uint64_t v : {1ull, 2ull, 4ull, 8ull, 16ull}) {
        for (const auto& f : {AccessFunction::polynomial(0.5), AccessFunction::logarithmic()}) {
            for (const auto& labels : {hmm_label_set(f, 8, v), bt_label_set(f, 8, v)}) {
                ASSERT_FALSE(labels.empty());
                EXPECT_EQ(labels.front(), 0u);
                EXPECT_EQ(labels.back(), ilog2(v));
                for (std::size_t i = 1; i < labels.size(); ++i) {
                    EXPECT_LT(labels[i - 1], labels[i]);
                }
            }
        }
    }
}

TEST(Smoothing, SingleElementLabelSetOnSingleProcessor) {
    // Smoothing a v = 1 program against {0} must be the identity: no
    // upgrades, no dummies, and the result is trivially L-smooth.
    RandomRoutingProgram prog(1, {0, 0, 0}, 7);
    SmoothingStats stats;
    auto smoothed = smooth(prog, {0}, &stats);
    EXPECT_EQ(stats.upgraded, 0u);
    EXPECT_EQ(stats.dummies, 0u);
    EXPECT_EQ(smoothed->num_supersteps(), prog.num_supersteps());
    EXPECT_TRUE(is_smooth(*smoothed, {0}));

    model::DbspMachine machine(AccessFunction::logarithmic());
    const auto direct = machine.run(prog);
    RandomRoutingProgram prog2(1, {0, 0, 0}, 7);
    auto smoothed2 = smooth(prog2, {0});
    const auto via_smooth = machine.run(*smoothed2);
    EXPECT_EQ(direct.data_of(0), via_smooth.data_of(0));
}

TEST(Smoothing, DegenerateMachinesSimulateCorrectly) {
    // End-to-end: v in {1, 2} programs survive the full smoothing + HMM
    // pipeline with functional equivalence (the Theorem 4 invariants are
    // vacuous or minimal at these sizes, which is exactly what went
    // untested before).
    for (std::uint64_t v : {1ull, 2ull}) {
        const std::vector<unsigned> step_labels =
            v == 1 ? std::vector<unsigned>{0, 0} : std::vector<unsigned>{1, 0, 1, 0};
        const auto f = AccessFunction::polynomial(0.5);
        RandomRoutingProgram prog(v, step_labels, 13);
        model::DbspMachine machine(f);
        const auto direct = machine.run(prog);

        RandomRoutingProgram prog2(v, step_labels, 13);
        auto smoothed = smooth(prog2, hmm_label_set(f, prog2.context_words(), v));
        const auto sim = HmmSimulator(f).simulate(*smoothed);
        for (std::uint64_t p = 0; p < v; ++p) {
            EXPECT_EQ(sim.data_of(p), direct.data_of(p)) << "v=" << v << " p=" << p;
        }
    }
}

TEST(Smoothing, TrivialLabelSetInsertsOnlyDescentDummies) {
    RandomRoutingProgram prog(16, {0, 4, 0}, 9);
    SmoothingStats stats;
    auto smoothed = smooth(prog, full_label_set(16), &stats);
    EXPECT_EQ(stats.upgraded, 0u);
    // One descent 4 -> 0 (then 0 -> final 0): labels 3, 2, 1 inserted once.
    EXPECT_EQ(stats.dummies, 3u);
    EXPECT_TRUE(is_smooth(*smoothed, full_label_set(16)));
}

}  // namespace
}  // namespace dbsp::core
