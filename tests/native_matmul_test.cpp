#include <gtest/gtest.h>

#include <cmath>

#include "algos/serial_reference.hpp"
#include "hmm/matmul.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace dbsp::hmm {
namespace {

using model::AccessFunction;
using model::Word;

class BlockedMatmulParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockedMatmulParam, MatchesSchoolbook) {
    const std::uint64_t s = GetParam();
    const std::uint64_t n = s * s;
    Machine m(AccessFunction::polynomial(0.5), 4 * n + 64);
    SplitMix64 rng(s);
    const model::Addr a = n, b = 2 * n, c = 3 * n;
    std::vector<Word> va(n), vb(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        va[i] = rng.next_below(1 << 16);
        vb[i] = rng.next_below(1 << 16);
        m.raw()[a + i] = va[i];
        m.raw()[b + i] = vb[i];
    }
    blocked_matmul(m, a, b, c, s);
    for (std::uint64_t i = 0; i < s; ++i) {
        for (std::uint64_t j = 0; j < s; ++j) {
            Word acc = 0;
            for (std::uint64_t k = 0; k < s; ++k) acc += va[i * s + k] * vb[k * s + j];
            ASSERT_EQ(m.raw()[c + i * s + j], acc) << "s=" << s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockedMatmulParam, ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(BlockedMatmul, AccumulatesIntoC) {
    const std::uint64_t s = 8, n = s * s;
    Machine m(AccessFunction::logarithmic(), 4 * n + 64);
    const model::Addr a = n, b = 2 * n, c = 3 * n;
    for (std::uint64_t i = 0; i < n; ++i) {
        m.raw()[a + i] = 1;
        m.raw()[b + i] = 1;
        m.raw()[c + i] = 100;  // pre-existing C
    }
    blocked_matmul(m, a, b, c, s);
    for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(m.raw()[c + i], 100 + s);
}

TEST(BlockedMatmul, CostShapeBeatsObliviousForSteepF) {
    // Theta(n^1.5 log n) at alpha = 0.5 vs the oblivious triple loop's
    // Theta(n^1.5 f(n)) = Theta(n^2): the blocked version's normalized cost
    // must grow strictly slower.
    const auto f = AccessFunction::polynomial(0.5);
    std::vector<double> blocked_norm;
    for (std::uint64_t s : {16u, 64u}) {
        const std::uint64_t n = s * s;
        Machine m(f, 4 * n + 64);
        m.reset_cost();
        blocked_matmul(m, n, 2 * n, 3 * n, s);
        blocked_norm.push_back(m.cost() / std::pow(static_cast<double>(n), 1.5));
    }
    // Growth over a 16x element-count increase: ~log factor only (< 3x),
    // whereas the oblivious version would grow by f ratio = 4x.
    EXPECT_LT(blocked_norm[1] / blocked_norm[0], 3.0);
}

}  // namespace
}  // namespace dbsp::hmm
