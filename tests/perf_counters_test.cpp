/// Tests for src/perf/: CounterGroup degradation (the only path a container
/// without PMU access can exercise deterministically — DBSP_NO_PERF forces
/// it everywhere), snapshot JSON shape, accessor fallbacks, and the
/// zero-interference contract: arming counters changes no charged cost and
/// no serve-result byte.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algos/bitonic_sort.hpp"
#include "check/program_gen.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "perf/counters.hpp"
#include "serve/runner.hpp"
#include "util/rng.hpp"

namespace dbsp::perf {
namespace {

/// Scoped DBSP_NO_PERF=1: restores the prior value on destruction so the
/// kill switch never leaks into other tests.
class ScopedNoPerf {
public:
    ScopedNoPerf() {
        const char* prev = std::getenv("DBSP_NO_PERF");
        had_prev_ = prev != nullptr;
        if (had_prev_) prev_ = prev;
        ::setenv("DBSP_NO_PERF", "1", 1);
    }
    ~ScopedNoPerf() {
        if (had_prev_) {
            ::setenv("DBSP_NO_PERF", prev_.c_str(), 1);
        } else {
            ::unsetenv("DBSP_NO_PERF");
        }
    }

private:
    bool had_prev_ = false;
    std::string prev_;
};

TEST(CounterGroup, DbspNoPerfForcesDeterministicUnavailability) {
    ScopedNoPerf no_perf;
    CounterGroup group;
    EXPECT_FALSE(group.available());
    EXPECT_EQ(group.reason(), "disabled by DBSP_NO_PERF");
    // The object stays fully usable: start/stop are no-ops, read reports
    // the reason — downstream consumers waive rather than branch.
    group.start();
    group.stop();
    const CounterSnapshot snap = group.read();
    EXPECT_FALSE(snap.available);
    EXPECT_EQ(snap.reason, "disabled by DBSP_NO_PERF");
    { ScopedCount scoped(group); }  // RAII window on a dead group is safe
}

TEST(CounterGroup, EventNamesAreTheDocumentedSet) {
    const auto& names = CounterGroup::event_names();
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(names[0], "cycles");
    EXPECT_EQ(names[1], "instructions");
    for (const char* expected : {"l1d_read_accesses", "l1d_read_misses", "llc_accesses",
                                 "llc_misses", "dtlb_read_accesses", "dtlb_read_misses"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
            << expected;
    }
}

TEST(CounterGroup, NativeGroupReportsCoherentStateEitherWay) {
    // No PMU assumption: on bare metal the group opens, in a container it
    // degrades — both must be internally consistent.
    CounterGroup group;
    group.start();
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 100000; ++i) sink = sink + i;
    group.stop();
    const CounterSnapshot snap = group.read();
    EXPECT_EQ(snap.available, group.available());
    if (snap.available) {
        EXPECT_EQ(snap.values.size(), CounterGroup::event_names().size());
        for (const auto& v : snap.values) {
            if (!v.available) {
                EXPECT_FALSE(v.reason.empty()) << v.name;
                continue;
            }
            EXPECT_GE(v.duty, 0.0) << v.name;
            EXPECT_LE(v.duty, 1.0) << v.name;
            EXPECT_GE(v.scaled, 0.0) << v.name;
        }
        // A busy loop certainly retired instructions.
        EXPECT_GT(snap.scaled("instructions", 0.0), 0.0);
    } else {
        EXPECT_FALSE(snap.reason.empty());
        EXPECT_FALSE(group.reason().empty());
    }
}

TEST(CounterSnapshot, AccessorsFallBackOnMissingOrUnavailableEvents) {
    CounterSnapshot snap;  // empty: no events at all
    EXPECT_EQ(snap.find("cycles"), nullptr);
    EXPECT_EQ(snap.scaled("cycles", 42.0), 42.0);
    EXPECT_EQ(snap.ratio("l1d_read_misses", "l1d_read_accesses"), -1.0);

    CounterValue miss;
    miss.name = "l1d_read_misses";
    miss.available = true;
    miss.scaled = 10.0;
    CounterValue acc;
    acc.name = "l1d_read_accesses";
    acc.available = true;
    acc.scaled = 40.0;
    snap.values = {miss, acc};
    snap.available = true;
    EXPECT_DOUBLE_EQ(snap.ratio("l1d_read_misses", "l1d_read_accesses"), 0.25);
    // Zero denominator falls back rather than dividing.
    snap.values[1].scaled = 0.0;
    EXPECT_EQ(snap.ratio("l1d_read_misses", "l1d_read_accesses", -2.0), -2.0);
}

TEST(CounterSnapshot, JsonShapeMatchesTheSharedCountersSection) {
    {
        ScopedNoPerf no_perf;
        CounterGroup group;
        const report::Json j = group.read().to_json();
        EXPECT_FALSE(j["available"].as_bool(true));
        EXPECT_EQ(j["reason"].as_string(), "disabled by DBSP_NO_PERF");
    }
    CounterGroup native;
    native.start();
    native.stop();
    const report::Json j = native.read().to_json();
    ASSERT_TRUE(j["available"].is_bool());
    if (j["available"].as_bool()) {
        const report::Json& cycles = j["events"]["cycles"];
        ASSERT_TRUE(cycles["available"].is_bool());
        if (cycles["available"].as_bool()) {
            EXPECT_TRUE(cycles["scaled"].is_number());
            EXPECT_TRUE(cycles["duty"].is_number());
        } else {
            EXPECT_TRUE(cycles["reason"].is_string());
        }
    } else {
        EXPECT_TRUE(j["reason"].is_string());
    }
}

TEST(CounterGroup, ArmingCountersIsPureObservation) {
    // Charged cost: identical with a live (or degraded — whatever this host
    // gives us) group armed around the simulation.
    const auto f = model::AccessFunction::polynomial(0.5);
    SplitMix64 rng(5);
    std::vector<model::Word> keys(64);
    for (auto& k : keys) k = rng.next();
    const auto run_once = [&]() {
        algo::BitonicSortProgram prog(keys);
        auto sm = core::smooth(prog, core::hmm_label_set(f, prog.context_words(), 64));
        return core::HmmSimulator(f).simulate(*sm).hmm_cost;
    };
    const double plain = run_once();
    CounterGroup group;
    double counted = 0.0;
    {
        ScopedCount scoped(group);
        counted = run_once();
    }
    EXPECT_EQ(plain, counted);

    // Serve-result bytes: the full dbsp-serve-result-v1 document must be
    // byte-identical with counters armed (the daemon keeps a group running
    // for telemetry while serving deterministic replies).
    const auto spec = check::generate_spec(check::GenConfig{}, 12345);
    serve::RunOptions options;
    options.locality = true;
    const std::string without = serve::run_to_json(spec, options);
    CounterGroup serving;
    std::string with;
    {
        ScopedCount scoped(serving);
        with = serve::run_to_json(spec, options);
    }
    EXPECT_EQ(without, with);
}

}  // namespace
}  // namespace dbsp::perf
