#include <gtest/gtest.h>

#include <complex>
#include <memory>

#include "algos/bitonic_sort.hpp"
#include "algos/collectives.hpp"
#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include "algos/matmul.hpp"
#include "algos/permutation.hpp"
#include "core/bt_simulator.hpp"
#include "core/naive_bt_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dbsp::core {
namespace {

using model::AccessFunction;
using model::DbspMachine;
using model::Word;

void expect_bt_equivalent(std::unique_ptr<model::Program> direct_prog,
                          std::unique_ptr<model::Program> sim_prog,
                          const AccessFunction& f, bool rational = false) {
    DbspMachine machine(AccessFunction::logarithmic());
    const auto direct = machine.run(*direct_prog);

    auto smoothed =
        smooth(*sim_prog, bt_label_set(f, sim_prog->context_words(),
                                       sim_prog->num_processors()));
    BtSimulator::Options options;
    options.check_invariants = true;
    options.use_rational_permutations = rational;
    const BtSimulator sim(f, options);
    const auto simulated = sim.simulate(*smoothed);

    ASSERT_EQ(simulated.contexts.size(), direct.contexts.size());
    for (std::uint64_t p = 0; p < direct.contexts.size(); ++p) {
        ASSERT_EQ(simulated.data_of(p), direct.data_of(p)) << "processor " << p;
    }
}

TEST(BtSimulator, RoutingEquivalence) {
    expect_bt_equivalent(
        std::make_unique<algo::RandomRoutingProgram>(64, std::vector<unsigned>{2, 0, 5, 3, 1}, 21),
        std::make_unique<algo::RandomRoutingProgram>(64, std::vector<unsigned>{2, 0, 5, 3, 1}, 21),
        AccessFunction::polynomial(0.5));
}

TEST(BtSimulator, BroadcastEquivalence) {
    expect_bt_equivalent(std::make_unique<algo::BroadcastProgram>(32, 0xBEEFu),
                         std::make_unique<algo::BroadcastProgram>(32, 0xBEEFu),
                         AccessFunction::logarithmic());
}

TEST(BtSimulator, PrefixSumEquivalence) {
    SplitMix64 rng(14);
    std::vector<Word> in(64);
    for (auto& x : in) x = rng.next_below(500);
    expect_bt_equivalent(std::make_unique<algo::PrefixSumProgram>(in),
                         std::make_unique<algo::PrefixSumProgram>(in),
                         AccessFunction::polynomial(0.35));
}

TEST(BtSimulator, BitonicEquivalence) {
    SplitMix64 rng(15);
    std::vector<Word> keys(128);
    for (auto& k : keys) k = rng.next();
    expect_bt_equivalent(std::make_unique<algo::BitonicSortProgram>(keys),
                         std::make_unique<algo::BitonicSortProgram>(keys),
                         AccessFunction::polynomial(0.5));
}

TEST(BtSimulator, MatMulEquivalence) {
    SplitMix64 rng(16);
    std::vector<Word> a(64), b(64);
    for (auto& x : a) x = rng.next_below(1000);
    for (auto& x : b) x = rng.next_below(1000);
    expect_bt_equivalent(std::make_unique<algo::MatMulProgram>(a, b),
                         std::make_unique<algo::MatMulProgram>(a, b),
                         AccessFunction::logarithmic());
}

TEST(BtSimulator, FftEquivalenceSortDelivery) {
    SplitMix64 rng(17);
    std::vector<std::complex<double>> x(64);
    for (auto& c : x) c = {rng.next_double(), rng.next_double()};
    expect_bt_equivalent(std::make_unique<algo::FftDirectProgram>(x),
                         std::make_unique<algo::FftDirectProgram>(x),
                         AccessFunction::polynomial(0.35));
}

TEST(BtSimulator, FftRecursiveWithRationalPermutations) {
    SplitMix64 rng(18);
    std::vector<std::complex<double>> x(256);
    for (auto& c : x) c = {rng.next_double(), rng.next_double()};
    // Identical results with sort-based and transpose-based delivery.
    expect_bt_equivalent(std::make_unique<algo::FftRecursiveProgram>(x),
                         std::make_unique<algo::FftRecursiveProgram>(x),
                         AccessFunction::polynomial(0.35), /*rational=*/false);
    expect_bt_equivalent(std::make_unique<algo::FftRecursiveProgram>(x),
                         std::make_unique<algo::FftRecursiveProgram>(x),
                         AccessFunction::polynomial(0.35), /*rational=*/true);
}

TEST(BtSimulator, RationalPermutationPathIsTakenAndCheaper) {
    SplitMix64 rng(19);
    std::vector<std::complex<double>> x(256);
    for (auto& c : x) c = {rng.next_double(), rng.next_double()};

    const auto f = AccessFunction::polynomial(0.35);
    algo::FftRecursiveProgram p1(x);
    auto s1 = smooth(p1, bt_label_set(f, p1.context_words(), 256));
    BtSimulator::Options with;
    with.use_rational_permutations = true;
    const auto r_rational = BtSimulator(f, with).simulate(*s1);
    EXPECT_GT(r_rational.transpose_invocations, 0u);

    algo::FftRecursiveProgram p2(x);
    auto s2 = smooth(p2, bt_label_set(f, p2.context_words(), 256));
    const auto r_sorted = BtSimulator(f).simulate(*s2);
    EXPECT_EQ(r_sorted.transpose_invocations, 0u);
    EXPECT_LT(r_rational.bt_cost, r_sorted.bt_cost);
}

struct BtSweepCase {
    std::uint64_t v;
    std::uint64_t seed;
    double alpha;  ///< 0 = logarithmic
};

class BtSweep : public ::testing::TestWithParam<BtSweepCase> {};

TEST_P(BtSweep, RandomProgramsEquivalent) {
    const auto& c = GetParam();
    SplitMix64 rng(c.seed);
    const unsigned log_v = ilog2(c.v);
    std::vector<unsigned> labels(4 + rng.next_below(5));
    for (auto& l : labels) l = static_cast<unsigned>(rng.next_below(log_v + 1));
    const auto f =
        c.alpha > 0 ? AccessFunction::polynomial(c.alpha) : AccessFunction::logarithmic();
    expect_bt_equivalent(
        std::make_unique<algo::RandomRoutingProgram>(c.v, labels, c.seed * 13 + 5),
        std::make_unique<algo::RandomRoutingProgram>(c.v, labels, c.seed * 13 + 5), f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BtSweep,
    ::testing::Values(BtSweepCase{2, 1, 0.5}, BtSweepCase{4, 2, 0.35},
                      BtSweepCase{8, 3, 0.0}, BtSweepCase{16, 4, 0.5},
                      BtSweepCase{32, 5, 0.0}, BtSweepCase{64, 6, 0.35},
                      BtSweepCase{128, 7, 0.5}, BtSweepCase{256, 8, 0.0}));

TEST(BtSimulator, SingleProcessor) {
    expect_bt_equivalent(std::make_unique<algo::BroadcastProgram>(1, 3),
                         std::make_unique<algo::BroadcastProgram>(1, 3),
                         AccessFunction::polynomial(0.5));
}

TEST(BtSimulator, CostIndependentOfAccessFunction) {
    // Theorem 12: the BT simulation time does not depend on f(x).
    SplitMix64 rng(23);
    std::vector<Word> keys(128);
    for (auto& k : keys) k = rng.next();

    std::vector<double> costs;
    for (const auto& f : {AccessFunction::polynomial(0.35), AccessFunction::polynomial(0.5),
                          AccessFunction::logarithmic()}) {
        algo::BitonicSortProgram prog(keys);
        auto smoothed = smooth(prog, bt_label_set(f, prog.context_words(), 128));
        const auto r = BtSimulator(f).simulate(*smoothed);
        costs.push_back(r.bt_cost);
    }
    // Constants differ per f (chunk sizes, COMPUTE's c(n)), but there is no
    // f-dependent growth; E8 shows the ratios stay flat as v scales.
    EXPECT_LT(spread(costs), 4.0);
}

TEST(NaiveBtSimulator, EquivalentToDirectExecution) {
    SplitMix64 rng(24);
    std::vector<Word> a(256), b(256);
    for (auto& x : a) x = rng.next_below(100);
    for (auto& x : b) x = rng.next_below(100);

    algo::MatMulProgram direct_prog(a, b);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto direct = machine.run(direct_prog);

    algo::MatMulProgram naive_prog(a, b);
    const auto r_naive = NaiveBtSimulator(AccessFunction::polynomial(0.5)).simulate(naive_prog);
    for (std::uint64_t p = 0; p < 256; ++p) {
        ASSERT_EQ(r_naive.data_of(p), direct.data_of(p));
    }
}

TEST(NaiveBtSimulator, GapToSmartSimulatorWidensWithMachineSize) {
    // Section 5.3: the trivial step-by-step port pays Theta(f(mu v)) per
    // context per superstep, so the naive/smart cost ratio must grow with v
    // (the crossover itself is measured by bench_e9).
    const auto f = AccessFunction::polynomial(0.5);
    std::vector<double> ratio;
    for (std::uint64_t n : {256u, 1024u}) {
        SplitMix64 rng(25);
        std::vector<Word> a(n), b(n);
        for (auto& x : a) x = rng.next_below(100);
        for (auto& x : b) x = rng.next_below(100);

        algo::MatMulProgram naive_prog(a, b);
        const auto r_naive = NaiveBtSimulator(f).simulate(naive_prog);

        algo::MatMulProgram smart_prog(a, b);
        auto smoothed = smooth(smart_prog, bt_label_set(f, smart_prog.context_words(), n));
        const auto r_smart = BtSimulator(f).simulate(*smoothed);
        ratio.push_back(r_naive.bt_cost / r_smart.bt_cost);
    }
    EXPECT_GT(ratio[1], 1.4 * ratio[0]);
}

}  // namespace
}  // namespace dbsp::core
