#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "algos/serial_reference.hpp"
#include "bt/fft.hpp"
#include "hmm/fft.hpp"
#include "util/rng.hpp"

namespace dbsp {
namespace {

using model::AccessFunction;
using model::Word;

std::vector<std::complex<double>> random_signal(std::size_t n, std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<std::complex<double>> x(n);
    for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
    return x;
}

// The serial ground truth: the O(n log n) natural-order reference (pinned to
// the O(n^2) naive sum in SerialReference.FastDftMatchesNaiveDft), with a
// direct naive cross-check kept up to n = 4096 — beyond that the naive DFT
// alone costs minutes (n = 65536 took ~110 s per machine) for no additional
// functional coverage.
constexpr std::uint64_t kNaiveCrossCheckLimit = 4096;

std::vector<std::complex<double>> reference_dft(
    const std::vector<std::complex<double>>& input) {
    const auto expected = algo::serial_dft_fast(input);
    if (input.size() <= kNaiveCrossCheckLimit) {
        const auto naive = algo::serial_dft_naive(input);
        const double tol = 1e-6 * static_cast<double>(input.size());
        for (std::size_t k = 0; k < input.size(); ++k) {
            EXPECT_NEAR(expected[k].real(), naive[k].real(), tol) << "k=" << k;
            EXPECT_NEAR(expected[k].imag(), naive[k].imag(), tol) << "k=" << k;
        }
    }
    return expected;
}

class HmmFftParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HmmFftParam, MatchesNaiveDft) {
    const std::uint64_t n = GetParam();
    const auto input = random_signal(n, n + 1);
    hmm::Machine m(AccessFunction::polynomial(0.5), 6 * n + 64);
    const model::Addr base = 2 * n + 32;
    for (std::uint64_t e = 0; e < n; ++e) {
        m.raw()[base + 2 * e] = std::bit_cast<Word>(input[e].real());
        m.raw()[base + 2 * e + 1] = std::bit_cast<Word>(input[e].imag());
    }
    hmm::fft_natural(m, base, n);
    const auto expected = reference_dft(input);
    for (std::uint64_t k = 0; k < n; ++k) {
        const double re = std::bit_cast<double>(m.raw()[base + 2 * k]);
        const double im = std::bit_cast<double>(m.raw()[base + 2 * k + 1]);
        ASSERT_NEAR(re, expected[k].real(), 1e-6 * n) << "n=" << n << " k=" << k;
        ASSERT_NEAR(im, expected[k].imag(), 1e-6 * n) << "n=" << n << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HmmFftParam, ::testing::Values(1, 2, 4, 16, 256, 65536));

class BtFftParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BtFftParam, MatchesNaiveDft) {
    const std::uint64_t n = GetParam();
    const auto input = random_signal(n, n + 2);
    bt::Machine m(AccessFunction::polynomial(0.35), 6 * n + 64);
    const model::Addr base = 2 * n + 32;
    for (std::uint64_t e = 0; e < n; ++e) {
        m.raw()[base + e] = std::bit_cast<Word>(input[e].real());
        m.raw()[base + n + e] = std::bit_cast<Word>(input[e].imag());
    }
    bt::fft_natural_planar(m, base, n);
    const auto expected = reference_dft(input);
    for (std::uint64_t k = 0; k < n; ++k) {
        const double re = std::bit_cast<double>(m.raw()[base + k]);
        const double im = std::bit_cast<double>(m.raw()[base + n + k]);
        ASSERT_NEAR(re, expected[k].real(), 1e-6 * n) << "n=" << n << " k=" << k;
        ASSERT_NEAR(im, expected[k].imag(), 1e-6 * n) << "n=" << n << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BtFftParam, ::testing::Values(1, 2, 4, 16, 256, 65536));

TEST(NativeFft, HmmCostMatchesUpperBoundShape) {
    // T(n) = Theta(n^(1+alpha)) for f = x^alpha.
    const auto f = AccessFunction::polynomial(0.5);
    std::vector<double> ratios;
    for (std::uint64_t n : {256u, 65536u}) {
        hmm::Machine m(f, 6 * n + 64);
        m.reset_cost();
        hmm::fft_natural(m, 2 * n + 32, n);
        ratios.push_back(m.cost() / std::pow(static_cast<double>(n), 1.5));
    }
    EXPECT_LT(ratios.back() / ratios.front(), 2.5);
}

TEST(NativeFft, BtCostMatchesNLogNShape) {
    const auto f = AccessFunction::polynomial(0.35);
    std::vector<double> ratios;
    for (std::uint64_t n : {256u, 65536u}) {
        bt::Machine m(f, 6 * n + 64);
        m.reset_cost();
        bt::fft_natural_planar(m, 2 * n + 32, n);
        ratios.push_back(m.cost() / (static_cast<double>(n) * std::log2(n)));
    }
    EXPECT_LT(ratios.back() / ratios.front(), 2.5);
    EXPECT_GT(ratios.back() / ratios.front(), 0.4);
}

}  // namespace
}  // namespace dbsp
