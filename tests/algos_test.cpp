#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <set>

#include "algos/bitonic_sort.hpp"
#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include "algos/matmul.hpp"
#include "algos/serial_reference.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace dbsp::algo {
namespace {

using model::AccessFunction;
using model::DbspMachine;
using model::Word;

std::vector<std::complex<double>> random_signal(std::size_t n, std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<std::complex<double>> x(n);
    for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
    return x;
}

double complex_from_words(const std::vector<Word>& data, std::complex<double>* out) {
    *out = {std::bit_cast<double>(data[0]), std::bit_cast<double>(data[1])};
    return std::abs(*out);
}

class BitonicParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitonicParam, SortsRandomKeys) {
    const std::uint64_t v = GetParam();
    SplitMix64 rng(v);
    std::vector<Word> keys(v);
    for (auto& k : keys) k = rng.next_below(1 << 20);
    BitonicSortProgram prog(keys);
    DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto result = machine.run(prog);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t p = 0; p < v; ++p) {
        ASSERT_EQ(result.data_of(p)[0], keys[p]) << "v=" << v << " p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicParam, ::testing::Values(1, 2, 4, 16, 64, 256, 1024));

TEST(BitonicSort, SortsDuplicatesAndExtremes) {
    std::vector<Word> keys = {5, 5, 0, ~0ull, 5, 0, ~0ull, 1};
    BitonicSortProgram prog(keys);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto result = machine.run(prog);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t p = 0; p < keys.size(); ++p) {
        EXPECT_EQ(result.data_of(p)[0], keys[p]);
    }
}

TEST(BitonicSort, SuperstepProfileTelescopes) {
    // Proposition 9: on x^alpha the per-stage costs form a geometric series,
    // so the total communication is O(v^alpha) -- check the label histogram:
    // label l (distance 2^(log v - 1 - l)) appears in exactly the l+1 merge
    // stages with block size >= 2^(log v - l), i.e. l+1 times. The geometric
    // sum sum_l (l+1) (mu v / 2^l)^alpha is dominated by l = 0.
    const std::uint64_t v = 256;
    BitonicSortProgram prog(std::vector<Word>(v, 0));
    const unsigned log_v = ilog2(v);
    std::vector<unsigned> histogram(log_v + 1, 0);
    for (model::StepIndex s = 0; s + 1 < prog.num_supersteps(); ++s) {
        ++histogram[prog.label(s)];
    }
    for (unsigned l = 0; l < log_v; ++l) {
        EXPECT_EQ(histogram[l], l + 1) << "label " << l;
    }
}

class MatMulParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatMulParam, MatchesSerialSemiring) {
    const std::uint64_t n = GetParam();
    SplitMix64 rng(n);
    std::vector<Word> a(n), b(n);
    for (auto& x : a) x = rng.next_below(1 << 16);
    for (auto& x : b) x = rng.next_below(1 << 16);
    MatMulProgram prog(a, b);
    DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto result = machine.run(prog);
    const auto expected = serial_matmul_morton(a, b);
    for (std::uint64_t p = 0; p < n; ++p) {
        ASSERT_EQ(result.data_of(p)[2], expected[p]) << "n=" << n << " p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulParam, ::testing::Values(1, 4, 16, 64, 256, 1024));

TEST(MatMul, RestoresInputsAfterRun) {
    // The restore transition returns A and B tokens home, so a, b words end
    // where they started.
    const std::uint64_t n = 64;
    SplitMix64 rng(5);
    std::vector<Word> a(n), b(n);
    for (auto& x : a) x = rng.next();
    for (auto& x : b) x = rng.next();
    MatMulProgram prog(a, b);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto result = machine.run(prog);
    for (std::uint64_t p = 0; p < n; ++p) {
        EXPECT_EQ(result.data_of(p)[0], a[p]);
        EXPECT_EQ(result.data_of(p)[1], b[p]);
    }
}

TEST(MatMul, SuperstepProfileMatchesProposition7) {
    // Theta(2^i) supersteps of label 2i.
    const std::uint64_t n = 1024;
    MatMulProgram prog(std::vector<Word>(n, 1), std::vector<Word>(n, 1));
    std::vector<std::size_t> count(ilog2(n) + 1, 0);
    // Skip the trailing label-0 global synchronization.
    for (model::StepIndex s = 0; s + 1 < prog.num_supersteps(); ++s) {
        ++count[prog.label(s)];
    }
    for (unsigned i = 0; 2 * i + 2 <= ilog2(n); ++i) {
        EXPECT_EQ(count[2 * i], 3u * (1u << i)) << "level " << i;  // 3 routes per node
    }
}

class FftDirectParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FftDirectParam, MatchesSerialDifFft) {
    const std::uint64_t n = GetParam();
    const auto input = random_signal(n, 2025 + n);
    FftDirectProgram prog(input);
    DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto result = machine.run(prog);
    auto expected = input;
    serial_fft_dif_bitrev(expected);
    for (std::uint64_t p = 0; p < n; ++p) {
        std::complex<double> got;
        complex_from_words(result.data_of(p), &got);
        ASSERT_NEAR(got.real(), expected[p].real(), 1e-9) << "n=" << n << " p=" << p;
        ASSERT_NEAR(got.imag(), expected[p].imag(), 1e-9) << "n=" << n << " p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftDirectParam, ::testing::Values(1, 2, 4, 8, 32, 256, 1024));

TEST(FftDirect, BitReversedOutputIsTheDft) {
    const std::uint64_t n = 64;
    const auto input = random_signal(n, 7);
    FftDirectProgram prog(input);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto result = machine.run(prog);
    const auto dft = serial_dft_naive(input);
    for (std::uint64_t p = 0; p < n; ++p) {
        std::complex<double> got;
        complex_from_words(result.data_of(p), &got);
        const auto k = reverse_bits(p, ilog2(n));
        EXPECT_NEAR(got.real(), dft[k].real(), 1e-7);
        EXPECT_NEAR(got.imag(), dft[k].imag(), 1e-7);
    }
}

class FftRecursiveParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FftRecursiveParam, MatchesNaiveDftNaturalOrder) {
    const std::uint64_t n = GetParam();
    const auto input = random_signal(n, 31 + n);
    FftRecursiveProgram prog(input);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto result = machine.run(prog);
    const auto dft = serial_dft_naive(input);
    for (std::uint64_t p = 0; p < n; ++p) {
        std::complex<double> got;
        complex_from_words(result.data_of(p), &got);
        ASSERT_NEAR(got.real(), dft[p].real(), 1e-6 * n) << "n=" << n << " p=" << p;
        ASSERT_NEAR(got.imag(), dft[p].imag(), 1e-6 * n) << "n=" << n << " p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRecursiveParam, ::testing::Values(1, 2, 4, 16, 256));

TEST(FftRecursive, AgreesWithDirectFft) {
    // Both programs compute the DFT; direct is bit-reversed, recursive is
    // natural order.
    const std::uint64_t n = 256;
    const auto input = random_signal(n, 123);
    FftDirectProgram direct(input);
    FftRecursiveProgram recursive(input);
    DbspMachine machine(AccessFunction::polynomial(0.35));
    const auto r_direct = machine.run(direct);
    const auto r_recursive = machine.run(recursive);
    for (std::uint64_t k = 0; k < n; ++k) {
        std::complex<double> nat, rev;
        complex_from_words(r_recursive.data_of(k), &nat);
        complex_from_words(r_direct.data_of(reverse_bits(k, ilog2(n))), &rev);
        ASSERT_NEAR(nat.real(), rev.real(), 1e-7);
        ASSERT_NEAR(nat.imag(), rev.imag(), 1e-7);
    }
}

TEST(FftRecursive, TransposeSuperstepsAreDeclared) {
    FftRecursiveProgram prog(random_signal(256, 1));
    std::size_t transposes = 0;
    for (model::StepIndex s = 0; s < prog.num_supersteps(); ++s) {
        if (prog.permutation_class(s) == model::PermutationClass::kTranspose) {
            ++transposes;
        }
    }
    // 3 per internal level: n=256 has levels m=256 (3) and m=16 (3 per each
    // of the 2 recursion slots) = 3 + 6 = 9.
    EXPECT_EQ(transposes, 9u);
}

TEST(FftRecursive, SuperstepLabelsFollowRecursiveProfile) {
    // Labels take values (1 - 2^-i) log n: {0, 4, 6} for n = 256.
    FftRecursiveProgram prog(random_signal(256, 2));
    std::set<unsigned> labels;
    for (model::StepIndex s = 0; s < prog.num_supersteps(); ++s) {
        labels.insert(prog.label(s));
    }
    EXPECT_EQ(labels, (std::set<unsigned>{0, 4, 6}));
}

TEST(SerialReference, DifMatchesNaiveDft) {
    const std::uint64_t n = 32;
    const auto input = random_signal(n, 9);
    auto fft = input;
    serial_fft_dif_bitrev(fft);
    const auto dft = serial_dft_naive(input);
    for (std::uint64_t p = 0; p < n; ++p) {
        const auto k = reverse_bits(p, ilog2(n));
        EXPECT_NEAR(fft[p].real(), dft[k].real(), 1e-8);
        EXPECT_NEAR(fft[p].imag(), dft[k].imag(), 1e-8);
    }
}

TEST(SerialReference, FastDftMatchesNaiveDft) {
    // Pins serial_dft_fast (the large-n ground truth in native_fft_test) to
    // the O(n^2) naive sum across every small size.
    for (std::uint64_t n : {1u, 2u, 4u, 8u, 32u, 128u, 256u}) {
        const auto input = random_signal(n, 40 + n);
        const auto fast = serial_dft_fast(input);
        const auto naive = serial_dft_naive(input);
        ASSERT_EQ(fast.size(), naive.size());
        const double tol = 1e-8 * static_cast<double>(n);
        for (std::uint64_t k = 0; k < n; ++k) {
            EXPECT_NEAR(fast[k].real(), naive[k].real(), tol) << "n=" << n << " k=" << k;
            EXPECT_NEAR(fast[k].imag(), naive[k].imag(), tol) << "n=" << n << " k=" << k;
        }
    }
}

TEST(SerialReference, ExclusivePrefix) {
    EXPECT_EQ(serial_exclusive_prefix({3, 4, 5}), (std::vector<Word>{0, 3, 7}));
    EXPECT_EQ(serial_exclusive_prefix({}), (std::vector<Word>{}));
}

}  // namespace
}  // namespace dbsp::algo
