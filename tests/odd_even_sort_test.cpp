#include <gtest/gtest.h>

#include <algorithm>

#include "algos/bitonic_sort.hpp"
#include "algos/odd_even_sort.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

namespace dbsp::algo {
namespace {

using model::AccessFunction;
using model::DbspMachine;
using model::Word;

class OddEvenParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OddEvenParam, SortsRandomKeys) {
    const std::uint64_t v = GetParam();
    SplitMix64 rng(v + 99);
    std::vector<Word> keys(v);
    for (auto& k : keys) k = rng.next_below(1 << 16);
    OddEvenTranspositionSortProgram prog(keys);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto result = machine.run(prog);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t p = 0; p < v; ++p) {
        ASSERT_EQ(result.data_of(p)[0], keys[p]) << "v=" << v << " p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OddEvenParam, ::testing::Values(2, 4, 8, 32, 128, 512));

TEST(OddEvenSort, WorstCaseInputSorts) {
    std::vector<Word> keys(64);
    for (std::uint64_t i = 0; i < 64; ++i) keys[i] = 63 - i;  // reversed
    OddEvenTranspositionSortProgram prog(keys);
    DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto result = machine.run(prog);
    for (std::uint64_t p = 0; p < 64; ++p) EXPECT_EQ(result.data_of(p)[0], p);
}

TEST(OddEvenSort, OddRoundsAreGlobalSupersteps) {
    OddEvenTranspositionSortProgram prog(std::vector<Word>(32, 0));
    for (model::StepIndex s = 0; s + 1 < prog.num_supersteps(); ++s) {
        if (s % 2 == 0) {
            EXPECT_EQ(prog.label(s), 4u) << "even round " << s;  // log 32 - 1
        } else {
            EXPECT_EQ(prog.label(s), 0u) << "odd round " << s;
        }
    }
}

TEST(OddEvenSort, DbspTimeDominatedByGlobalRounds) {
    // Half the rounds pay g(mu v): T ~ (v/2) g(mu v), far above bitonic.
    SplitMix64 rng(1);
    std::vector<Word> keys(256);
    for (auto& k : keys) k = rng.next();
    const auto g = AccessFunction::polynomial(0.5);
    DbspMachine machine(g);
    OddEvenTranspositionSortProgram flat(keys);
    BitonicSortProgram structured(keys);
    const auto rf = machine.run(flat);
    const auto rs = machine.run(structured);
    EXPECT_GT(rf.time, 5.0 * rs.time);
}

TEST(OddEvenSort, SimulatesEquivalentlyOnHmm) {
    SplitMix64 rng(2);
    std::vector<Word> keys(64);
    for (auto& k : keys) k = rng.next();
    const auto f = AccessFunction::polynomial(0.5);
    OddEvenTranspositionSortProgram direct_prog(keys);
    DbspMachine machine(f);
    const auto direct = machine.run(direct_prog);

    OddEvenTranspositionSortProgram sim_prog(keys);
    auto smoothed = core::smooth(sim_prog, core::hmm_label_set(f, sim_prog.context_words(), 64));
    const auto simulated = core::HmmSimulator(f).simulate(*smoothed);
    for (std::uint64_t p = 0; p < 64; ++p) {
        ASSERT_EQ(simulated.data_of(p), direct.data_of(p));
    }
}

}  // namespace
}  // namespace dbsp::algo
