#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "core/bounds.hpp"
#include "hmm/machine.hpp"
#include "hmm/primitives.hpp"
#include "util/rng.hpp"

namespace dbsp::hmm {
namespace {

using model::AccessFunction;

TEST(HmmMachine, ReadWriteChargesAccessCost) {
    Machine m(AccessFunction::polynomial(0.5), 1024);
    m.write(0, 7);
    EXPECT_DOUBLE_EQ(m.cost(), 1.0);  // f(0) = 1
    EXPECT_EQ(m.read(0), 7u);
    EXPECT_DOUBLE_EQ(m.cost(), 2.0);
    m.reset_cost();
    m.write(255, 1);
    EXPECT_DOUBLE_EQ(m.cost(), 16.0);  // (255+1)^0.5
}

TEST(HmmMachine, SwapBlocksMovesDataAndCharges) {
    Machine m(AccessFunction::constant(), 64);
    for (int i = 0; i < 8; ++i) m.raw()[i] = 100 + i;
    for (int i = 0; i < 8; ++i) m.raw()[32 + i] = 200 + i;
    m.reset_cost();
    m.swap_blocks(0, 32, 8);
    EXPECT_EQ(m.raw()[0], 200u);
    EXPECT_EQ(m.raw()[32], 100u);
    EXPECT_EQ(m.raw()[39], 107u);
    // 2 * (8 + 8) unit-cost accesses under the constant function.
    EXPECT_DOUBLE_EQ(m.cost(), 32.0);
}

TEST(HmmMachine, CopyBlockCharges) {
    Machine m(AccessFunction::constant(), 64);
    for (int i = 0; i < 4; ++i) m.raw()[i] = 5 + i;
    m.reset_cost();
    m.copy_block(0, 10, 4);
    EXPECT_EQ(m.raw()[10], 5u);
    EXPECT_EQ(m.raw()[13], 8u);
    EXPECT_DOUBLE_EQ(m.cost(), 8.0);
}

TEST(HmmMachineDeathTest, OverlappingSwapAborts) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine m(AccessFunction::constant(), 64);
    EXPECT_DEATH(m.swap_blocks(0, 4, 8), "Precondition");
}

TEST(HmmMachine, TouchAllMatchesFact1) {
    // Fact 1: the scan cost is Theta(n f(n)); the exact value equals the
    // prefix sum of f.
    for (const auto& f : {AccessFunction::polynomial(0.35),
                          AccessFunction::polynomial(0.5), AccessFunction::logarithmic()}) {
        Machine m(f, 1 << 14);
        touch_all(m, 1 << 14);
        EXPECT_DOUBLE_EQ(m.cost(), m.table().scan_cost(1 << 14));
        const double bound = core::fact1_bound(f, 1 << 14);
        EXPECT_GT(m.cost() / bound, 0.4) << f.name();
        EXPECT_LT(m.cost() / bound, 1.1) << f.name();
    }
}

TEST(HmmMachine, SumRangeComputes) {
    Machine m(AccessFunction::logarithmic(), 256);
    for (int i = 0; i < 100; ++i) m.raw()[i] = i;
    EXPECT_EQ(sum_range(m, 100), 4950u);
}

TEST(HmmMachine, ObliviousMergeSortSorts) {
    SplitMix64 rng(4);
    const std::uint64_t n = 500;
    Machine m(AccessFunction::polynomial(0.5), 2 * n);
    std::vector<std::uint64_t> ref(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        ref[i] = rng.next_below(10000);
        m.raw()[i] = ref[i];
    }
    oblivious_merge_sort(m, n);
    std::sort(ref.begin(), ref.end());
    for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(m.raw()[i], ref[i]);
    // The oblivious sort pays ~ f(n) per comparison: Omega(n log n) total.
    EXPECT_GT(m.cost(), static_cast<double>(n) * std::log2(n));
}

TEST(HmmMachine, ObliviousMatmulComputes) {
    const std::uint64_t s = 8;
    Machine m(AccessFunction::logarithmic(), 4 * s * s);
    auto raw = m.raw();
    for (std::uint64_t i = 0; i < s * s; ++i) {
        raw[i] = i % 7;           // A
        raw[s * s + i] = i % 5;   // B
    }
    oblivious_matmul(m, 0, s * s, 2 * s * s, s);
    for (std::uint64_t i = 0; i < s; ++i) {
        for (std::uint64_t j = 0; j < s; ++j) {
            std::uint64_t acc = 0;
            for (std::uint64_t k = 0; k < s; ++k) {
                acc += ((i * s + k) % 7) * ((k * s + j) % 5);
            }
            EXPECT_EQ(raw[2 * s * s + i * s + j], acc);
        }
    }
}

}  // namespace
}  // namespace dbsp::hmm
