#include <gtest/gtest.h>

#include <complex>
#include <memory>

#include "util/stats.hpp"

#include "algos/bitonic_sort.hpp"
#include "algos/collectives.hpp"
#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include "algos/matmul.hpp"
#include "algos/permutation.hpp"
#include "core/bounds.hpp"
#include "core/hmm_simulator.hpp"
#include "core/naive_hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

namespace dbsp::core {
namespace {

using model::AccessFunction;
using model::DbspMachine;
using model::Word;

/// Run `program` on the direct machine and on the HMM simulator (after
/// smoothing with the HMM label set for f) and require identical data words.
void expect_equivalent(std::unique_ptr<model::Program> make_direct,
                       std::unique_ptr<model::Program> make_sim,
                       const AccessFunction& f) {
    DbspMachine machine(f);
    const auto direct = machine.run(*make_direct);

    auto smoothed = smooth(*make_sim, hmm_label_set(f, make_sim->context_words(),
                                                    make_sim->num_processors()));
    HmmSimulator::Options options;
    options.check_invariants = true;
    const HmmSimulator sim(f, options);
    const auto simulated = sim.simulate(*smoothed);

    ASSERT_EQ(simulated.contexts.size(), direct.contexts.size());
    for (std::uint64_t p = 0; p < direct.contexts.size(); ++p) {
        ASSERT_EQ(simulated.data_of(p), direct.data_of(p)) << "processor " << p;
    }
}

TEST(HmmSimulator, RoutingEquivalence) {
    const auto f = AccessFunction::polynomial(0.5);
    expect_equivalent(
        std::make_unique<algo::RandomRoutingProgram>(128, std::vector<unsigned>{3, 0, 6, 2, 7, 1}, 42),
        std::make_unique<algo::RandomRoutingProgram>(128, std::vector<unsigned>{3, 0, 6, 2, 7, 1}, 42),
        f);
}

TEST(HmmSimulator, BroadcastEquivalence) {
    expect_equivalent(std::make_unique<algo::BroadcastProgram>(64, 0xFEEDu),
                      std::make_unique<algo::BroadcastProgram>(64, 0xFEEDu),
                      AccessFunction::logarithmic());
}

TEST(HmmSimulator, PrefixSumEquivalence) {
    SplitMix64 rng(8);
    std::vector<Word> in(128);
    for (auto& x : in) x = rng.next_below(999);
    expect_equivalent(std::make_unique<algo::PrefixSumProgram>(in),
                      std::make_unique<algo::PrefixSumProgram>(in),
                      AccessFunction::polynomial(0.35));
}

TEST(HmmSimulator, BitonicEquivalence) {
    SplitMix64 rng(9);
    std::vector<Word> keys(256);
    for (auto& k : keys) k = rng.next();
    expect_equivalent(std::make_unique<algo::BitonicSortProgram>(keys),
                      std::make_unique<algo::BitonicSortProgram>(keys),
                      AccessFunction::polynomial(0.5));
}

TEST(HmmSimulator, MatMulEquivalence) {
    SplitMix64 rng(10);
    std::vector<Word> a(256), b(256);
    for (auto& x : a) x = rng.next_below(1 << 10);
    for (auto& x : b) x = rng.next_below(1 << 10);
    expect_equivalent(std::make_unique<algo::MatMulProgram>(a, b),
                      std::make_unique<algo::MatMulProgram>(a, b),
                      AccessFunction::polynomial(0.5));
}

TEST(HmmSimulator, FftEquivalence) {
    SplitMix64 rng(11);
    std::vector<std::complex<double>> x(256);
    for (auto& c : x) c = {rng.next_double(), rng.next_double()};
    expect_equivalent(std::make_unique<algo::FftDirectProgram>(x),
                      std::make_unique<algo::FftDirectProgram>(x),
                      AccessFunction::logarithmic());
    expect_equivalent(std::make_unique<algo::FftRecursiveProgram>(x),
                      std::make_unique<algo::FftRecursiveProgram>(x),
                      AccessFunction::logarithmic());
}

/// Property-style sweep: random label sequences on varying machine sizes,
/// both access functions, must match direct execution exactly.
struct SweepCase {
    std::uint64_t v;
    std::uint64_t seed;
    double alpha;  ///< 0 = logarithmic
};

class HmmSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(HmmSweep, RandomProgramsEquivalent) {
    const auto& c = GetParam();
    SplitMix64 rng(c.seed);
    const unsigned log_v = ilog2(c.v);
    std::vector<unsigned> labels(6 + rng.next_below(6));
    for (auto& l : labels) l = static_cast<unsigned>(rng.next_below(log_v + 1));
    const auto f =
        c.alpha > 0 ? AccessFunction::polynomial(c.alpha) : AccessFunction::logarithmic();
    expect_equivalent(
        std::make_unique<algo::RandomRoutingProgram>(c.v, labels, c.seed * 7 + 1),
        std::make_unique<algo::RandomRoutingProgram>(c.v, labels, c.seed * 7 + 1), f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HmmSweep,
    ::testing::Values(SweepCase{2, 1, 0.5}, SweepCase{4, 2, 0.35}, SweepCase{8, 3, 0.0},
                      SweepCase{16, 4, 0.5}, SweepCase{32, 5, 0.75}, SweepCase{64, 6, 0.0},
                      SweepCase{128, 7, 0.5}, SweepCase{256, 8, 0.35},
                      SweepCase{512, 9, 0.0}, SweepCase{1024, 10, 0.5}));

TEST(HmmSimulator, SingleProcessorProgram) {
    expect_equivalent(std::make_unique<algo::BroadcastProgram>(1, 5),
                      std::make_unique<algo::BroadcastProgram>(1, 5),
                      AccessFunction::polynomial(0.5));
}

TEST(HmmSimulator, CostWithinTheorem5Bound) {
    // Corollary 6 (g = f): simulated time / (v * T) must sit in a constant
    // band across machine sizes.
    for (double alpha : {0.35, 0.5}) {
        const auto f = AccessFunction::polynomial(alpha);
        std::vector<double> ratios;
        for (std::uint64_t v : {64u, 256u, 1024u}) {
            const unsigned log_v = ilog2(v);
            std::vector<unsigned> labels;
            for (unsigned l = 0; l <= log_v; ++l) labels.push_back(log_v - l);
            algo::RandomRoutingProgram prog(v, labels, 77);
            DbspMachine machine(f);
            const auto direct = machine.run(prog);

            algo::RandomRoutingProgram prog2(v, labels, 77);
            auto smoothed = smooth(prog2, hmm_label_set(f, prog2.context_words(), v));
            const HmmSimulator sim(f);
            const auto simulated = sim.simulate(*smoothed);
            ratios.push_back(simulated.hmm_cost /
                             (static_cast<double>(v) * direct.time));
        }
        // Theta(v) slowdown: the ratio may wobble by constants but not grow
        // across a 16x machine-size range.
        EXPECT_LT(spread(ratios), 3.0) << "alpha=" << alpha;
    }
}

TEST(NaiveHmmSimulator, EquivalentOnBitonic) {
    SplitMix64 rng(13);
    std::vector<Word> keys(256);
    for (auto& k : keys) k = rng.next();

    algo::BitonicSortProgram direct_prog(keys);
    DbspMachine machine(AccessFunction::polynomial(0.5));
    const auto direct = machine.run(direct_prog);

    algo::BitonicSortProgram naive_prog(keys);
    const NaiveHmmSimulator naive(AccessFunction::polynomial(0.5));
    const auto r_naive = naive.simulate(naive_prog);
    for (std::uint64_t p = 0; p < 256; ++p) {
        ASSERT_EQ(r_naive.data_of(p), direct.data_of(p));
    }
}

TEST(NaiveHmmSimulator, LosesToLocalityAwareScheduleOnDeepSupersteps) {
    // The paper's point: submachine locality becomes temporal locality. A
    // program doing most of its communication deep in the cluster tree pays
    // f(mu v) per superstep under the pinned-context baseline but only
    // f(mu |C|) under the Figure 1 schedule.
    const std::uint64_t v = 1024;
    const unsigned log_v = ilog2(v);
    std::vector<unsigned> labels(40, log_v - 1);  // pairwise-local rounds
    labels.push_back(0);                          // one global round

    const auto f = AccessFunction::polynomial(0.5);
    algo::RandomRoutingProgram naive_prog(v, labels, 13);
    const NaiveHmmSimulator naive(f);
    const auto r_naive = naive.simulate(naive_prog);

    algo::RandomRoutingProgram smart_prog(v, labels, 13);
    auto smoothed = smooth(smart_prog, hmm_label_set(f, smart_prog.context_words(), v));
    const HmmSimulator smart(f);
    const auto r_smart = smart.simulate(*smoothed);

    for (std::uint64_t p = 0; p < v; ++p) {
        ASSERT_EQ(r_smart.data_of(p), r_naive.data_of(p));
    }
    EXPECT_LT(r_smart.hmm_cost, 0.5 * r_naive.hmm_cost);
}

}  // namespace
}  // namespace dbsp::core
