#include <gtest/gtest.h>

#include <complex>

#include "algos/bitonic_sort.hpp"
#include "algos/collectives.hpp"
#include "algos/fft_direct.hpp"
#include "algos/matmul.hpp"
#include "algos/permutation.hpp"
#include "core/bounds.hpp"
#include "core/self_simulator.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dbsp::core {
namespace {

using model::AccessFunction;
using model::DbspMachine;
using model::Word;

/// Check functional equivalence of the self-simulation for every legal v'.
template <typename MakeProgram>
void expect_self_equivalent(MakeProgram make, const AccessFunction& g) {
    auto reference_prog = make();
    DbspMachine machine(g);
    const auto direct = machine.run(*reference_prog);
    const std::uint64_t v = reference_prog->num_processors();
    for (std::uint64_t vp = 1; vp <= v; vp *= 2) {
        auto prog = make();
        const SelfSimulator sim(g, vp);
        const auto host = sim.simulate(*prog);
        for (std::uint64_t p = 0; p < v; ++p) {
            ASSERT_EQ(host.data_of(p), direct.data_of(p)) << "v'=" << vp << " p=" << p;
        }
    }
}

TEST(SelfSimulator, RoutingEquivalentForAllHostSizes) {
    expect_self_equivalent(
        [] {
            return std::make_unique<algo::RandomRoutingProgram>(
                64, std::vector<unsigned>{0, 3, 6, 2, 5, 1}, 31);
        },
        AccessFunction::polynomial(0.5));
}

TEST(SelfSimulator, BitonicEquivalentForAllHostSizes) {
    SplitMix64 rng(32);
    std::vector<Word> keys(64);
    for (auto& k : keys) k = rng.next();
    expect_self_equivalent([&] { return std::make_unique<algo::BitonicSortProgram>(keys); },
                           AccessFunction::logarithmic());
}

TEST(SelfSimulator, MatMulEquivalentForAllHostSizes) {
    SplitMix64 rng(33);
    std::vector<Word> a(64), b(64);
    for (auto& x : a) x = rng.next_below(64);
    for (auto& x : b) x = rng.next_below(64);
    expect_self_equivalent([&] { return std::make_unique<algo::MatMulProgram>(a, b); },
                           AccessFunction::polynomial(0.35));
}

TEST(SelfSimulator, FftEquivalentForAllHostSizes) {
    SplitMix64 rng(34);
    std::vector<std::complex<double>> x(64);
    for (auto& c : x) c = {rng.next_double(), rng.next_double()};
    expect_self_equivalent([&] { return std::make_unique<algo::FftDirectProgram>(x); },
                           AccessFunction::logarithmic());
}

TEST(SelfSimulator, HostEqualsGuestIsCheap) {
    // v' = v: every superstep is global, one guest per host processor; the
    // host time should be within a constant of the guest time.
    algo::RandomRoutingProgram prog(128, {0, 2, 4, 1}, 35);
    DbspMachine machine(AccessFunction::logarithmic());
    const auto direct = machine.run(prog);

    algo::RandomRoutingProgram prog2(128, {0, 2, 4, 1}, 35);
    const SelfSimulator sim(AccessFunction::logarithmic(), 128);
    const auto host = sim.simulate(prog2);
    EXPECT_LT(host.host_time, 40.0 * direct.time);
}

TEST(SelfSimulator, NoHierarchyInducedExtraSlowdown) {
    // The paper's headline claim against [BP97/BP99]: scaling down the
    // number of processors costs only the loss of parallelism. With the
    // ratio v/v' held fixed and v growing, the normalized slowdown
    // host_time / (T * v/v') must stay within a constant band — in the Md
    // model the analogous quantity grows like Lambda(n, p, m).
    const auto g = AccessFunction::polynomial(0.5);
    const std::uint64_t ratio_v_vp = 16;
    std::vector<double> normalized;
    for (std::uint64_t v : {64u, 256u, 1024u}) {
        std::vector<unsigned> labels;
        for (unsigned l = 0; l <= ilog2(v); ++l) labels.push_back(ilog2(v) - l);
        // fill_messages makes this a *full* program (h = Theta(mu)), the
        // hypothesis of Corollary 11.
        algo::RandomRoutingProgram guest(v, labels, 36, /*local_ops=*/0,
                                         /*fill_messages=*/5);
        DbspMachine machine(g);
        const double guest_time = machine.run(guest).time;

        algo::RandomRoutingProgram prog(v, labels, 36, 0, 5);
        const SelfSimulator sim(g, v / ratio_v_vp);
        const auto host = sim.simulate(prog);
        normalized.push_back(host.host_time /
                             (guest_time * static_cast<double>(ratio_v_vp)));
    }
    EXPECT_LT(spread(normalized), 3.0);
}

TEST(SelfSimulator, SlowdownScalesWithVOverVPrime) {
    // Coarse sanity on the v' dependence at fixed v: the log-log slope of
    // host_time against v' sits near -1 (within the constant-factor wobble
    // of the context-vs-relation encoding), far from the -2 that a
    // hierarchy-induced Lambda ~ v/v' extra slowdown would produce.
    const auto g = AccessFunction::polynomial(0.5);
    const std::uint64_t v = 256;
    std::vector<unsigned> labels;
    for (unsigned l = 0; l <= ilog2(v); ++l) labels.push_back(ilog2(v) - l);
    std::vector<double> vps, times;
    for (std::uint64_t vp : {1u, 4u, 16u, 64u, 256u}) {
        algo::RandomRoutingProgram prog(v, labels, 36, 0, 5);
        const SelfSimulator sim(g, vp);
        const auto host = sim.simulate(prog);
        vps.push_back(static_cast<double>(vp));
        times.push_back(host.host_time);
    }
    const auto fit = fit_loglog(vps, times);
    EXPECT_LT(fit.slope, -0.7);
    EXPECT_GT(fit.slope, -1.6);
}

TEST(SelfSimulator, GlobalAndLocalRunsAreCounted) {
    // Labels 0 (global for any v' > 1) and log v (always local).
    algo::RandomRoutingProgram prog(64, {0, 6, 6, 0, 6}, 37);
    const SelfSimulator sim(AccessFunction::logarithmic(), 8);
    const auto host = sim.simulate(prog);
    EXPECT_GT(host.global_supersteps, 0u);
    EXPECT_GT(host.local_runs, 0u);
    EXPECT_GT(host.local_time, 0.0);
    EXPECT_GT(host.communication_time, 0.0);
}

}  // namespace
}  // namespace dbsp::core
