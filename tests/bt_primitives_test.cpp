#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

#include "bt/primitives.hpp"
#include "bt/sort.hpp"
#include "bt/transpose.hpp"
#include "core/bounds.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace dbsp::bt {
namespace {

using model::AccessFunction;
using model::Word;

TEST(BtPrimitives, Pow2AtMost) {
    EXPECT_EQ(pow2_at_most(1), 1u);
    EXPECT_EQ(pow2_at_most(2), 2u);
    EXPECT_EQ(pow2_at_most(3), 2u);
    EXPECT_EQ(pow2_at_most(1000), 512u);
}

TEST(BtPrimitives, TouchRegionReadsEverything) {
    const std::uint64_t n = 1 << 12;
    Machine m(AccessFunction::polynomial(0.5), 2 * n);
    Word expected = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const Word w = i * 2654435761u;
        m.raw()[n + i] = w;
        expected ^= w;
    }
    EXPECT_EQ(touch_region(m, n, n), expected);
}

TEST(BtPrimitives, TouchBeatsHmmScanForPolynomialF) {
    // Fact 2 vs Fact 1: BT touching is Theta(n f*(n)), far below the HMM's
    // Theta(n f(n)) for f = x^alpha.
    const auto f = AccessFunction::polynomial(0.5);
    const std::uint64_t n = 1 << 16;
    Machine m(f, 2 * n);
    m.reset_cost();
    touch_region(m, n, n);
    const double bt_cost = m.cost();
    const double hmm_cost = core::fact1_bound(f, n);
    EXPECT_LT(bt_cost, hmm_cost / 8.0);
    // And it is within a constant band of n f*(n).
    const double bound = core::fact2_bound(f, n);
    EXPECT_LT(bt_cost / bound, 12.0);
    EXPECT_GT(bt_cost / bound, 0.3);
}

TEST(BtPrimitives, StagedReaderStreamsInOrder) {
    Machine m(AccessFunction::logarithmic(), 4096);
    for (int i = 0; i < 100; ++i) m.raw()[1000 + i] = 5 * i;
    StagedReader rd(m, 1000, 100, /*stage=*/0, /*chunk=*/16);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rd.peek(), static_cast<Word>(5 * i));
        rd.advance(1);
    }
    EXPECT_TRUE(rd.done());
}

TEST(BtPrimitives, StagedReaderPeeksWithinRecord) {
    Machine m(AccessFunction::logarithmic(), 4096);
    for (int i = 0; i < 40; ++i) m.raw()[512 + i] = i;
    StagedReader rd(m, 512, 40, 0, /*chunk=*/8);  // records of 4, chunk 8
    for (int r = 0; r < 10; ++r) {
        for (int t = 0; t < 4; ++t) {
            EXPECT_EQ(rd.peek(t), static_cast<Word>(4 * r + t));
        }
        rd.advance(4);
    }
}

TEST(BtPrimitives, StagedWriterFlushesAll) {
    Machine m(AccessFunction::logarithmic(), 4096);
    {
        StagedWriter wr(m, 2000, 77, /*stage=*/0, /*chunk=*/16);
        for (int i = 0; i < 77; ++i) wr.push(i * 3);
    }  // destructor flushes
    for (int i = 0; i < 77; ++i) EXPECT_EQ(m.raw()[2000 + i], static_cast<Word>(i * 3));
}

TEST(BtSort, SortsRecordsByKeyPair) {
    SplitMix64 rng(17);
    const std::uint64_t n = 777, r = 5;
    Machine m(AccessFunction::polynomial(0.5), 4 * n * r + 4096);
    const model::Addr base = 2048;
    const model::Addr scratch = base + n * r;
    std::vector<std::array<Word, 5>> ref(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        ref[i] = {rng.next_below(50), rng.next_below(50), i, i + 1, i + 2};
        for (std::uint64_t t = 0; t < r; ++t) m.raw()[base + i * r + t] = ref[i][t];
    }
    merge_sort_records(m, base, n, r, scratch, /*stage=*/0, /*stage_words=*/512);
    std::stable_sort(ref.begin(), ref.end(), [](const auto& a, const auto& b) {
        return a[0] != b[0] ? a[0] < b[0] : a[1] < b[1];
    });
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t t = 0; t < r; ++t) {
            ASSERT_EQ(m.raw()[base + i * r + t], ref[i][t]) << "i=" << i << " t=" << t;
        }
    }
}

TEST(BtSort, StableForEqualKeys) {
    const std::uint64_t n = 64, r = 3;
    Machine m(AccessFunction::logarithmic(), 4 * n * r + 1024);
    const model::Addr base = 512, scratch = base + n * r;
    for (std::uint64_t i = 0; i < n; ++i) {
        m.raw()[base + i * r] = 1;      // all keys equal
        m.raw()[base + i * r + 1] = 2;
        m.raw()[base + i * r + 2] = i;  // original index
    }
    merge_sort_records(m, base, n, r, scratch, 0, 64);
    for (std::uint64_t i = 0; i < n; ++i) {
        EXPECT_EQ(m.raw()[base + i * r + 2], i);
    }
}

TEST(BtSort, CostIsNearNLogN) {
    // The substitute for Approx-Median-Sort: O(m log m) shape for x^alpha.
    const auto f = AccessFunction::polynomial(0.5);
    std::vector<double> ratios;
    SplitMix64 rng(3);
    for (std::uint64_t n : {1u << 10, 1u << 12, 1u << 14}) {
        const std::uint64_t r = 5;
        Machine m(f, 4 * n * r + 8192);
        const model::Addr base = 4096, scratch = base + n * r;
        for (std::uint64_t i = 0; i < n * r; ++i) m.raw()[base + i] = rng.next();
        m.reset_cost();
        merge_sort_records(m, base, n, r, scratch, 0, 2048);
        ratios.push_back(m.cost() / (static_cast<double>(n * r) * std::log2(n)));
    }
    // Near-constant ratio across an order of magnitude (allowing the
    // doubly-log staged-access drift documented in DESIGN.md §5).
    EXPECT_LT(ratios.back() / ratios.front(), 2.0);
}

TEST(BtTranspose, TransposesSmallDirect) {
    const std::uint64_t s = 4;
    Machine m(AccessFunction::logarithmic(), 256);
    for (std::uint64_t i = 0; i < s * s; ++i) m.raw()[64 + i] = i;
    transpose_square(m, 64, s);
    for (std::uint64_t i = 0; i < s; ++i) {
        for (std::uint64_t j = 0; j < s; ++j) {
            EXPECT_EQ(m.raw()[64 + i * s + j], j * s + i);
        }
    }
}

class BtTransposeParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BtTransposeParam, TransposesTiled) {
    const std::uint64_t s = GetParam();
    const std::uint64_t n = s * s;
    Machine m(AccessFunction::polynomial(0.35), 3 * n + 64);
    const model::Addr base = 2 * n;
    for (std::uint64_t i = 0; i < n; ++i) m.raw()[base + i] = i;
    transpose_square(m, base, s);
    for (std::uint64_t i = 0; i < s; ++i) {
        for (std::uint64_t j = 0; j < s; ++j) {
            ASSERT_EQ(m.raw()[base + i * s + j], j * s + i) << "s=" << s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BtTransposeParam,
                         ::testing::Values(2, 8, 16, 32, 64, 128, 256));

TEST(BtTranspose, CheaperThanSortingTheSameVolume) {
    // Section 6: delivering a rational permutation with the transpose
    // primitive must clearly undercut moving the same volume of data with
    // the (general-purpose) BT sort — that is exactly the substitution the
    // improved DFT simulation makes.
    const auto f = AccessFunction::polynomial(0.35);
    const std::uint64_t s = 256, n = s * s;

    Machine mt(f, 3 * n + 64);
    {
        for (std::uint64_t i = 0; i < n; ++i) mt.raw()[2 * n + i] = i;
    }
    mt.reset_cost();
    transpose_square(mt, 2 * n, s);
    const double transpose_cost = mt.cost();
    EXPECT_GT(transpose_cost, static_cast<double>(n));  // must touch everything

    // Same word volume through the sort: n/5 records of 5 words.
    Machine ms(f, 4 * n + 8192);
    SplitMix64 rng(6);
    for (std::uint64_t i = 0; i < n; ++i) ms.raw()[4096 + i] = rng.next();
    ms.reset_cost();
    merge_sort_records(ms, 4096, n / 5, 5, 4096 + n, 0, 2048);
    const double sort_cost = ms.cost();

    EXPECT_LT(transpose_cost, sort_cost / 2.0);
}

}  // namespace
}  // namespace dbsp::bt
