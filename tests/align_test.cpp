#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bt/align.hpp"
#include "util/rng.hpp"

namespace dbsp::bt {
namespace {

using model::AccessFunction;
using model::Word;

/// Build a packed, tag-sorted record region for n groups with the given
/// per-group record counts; slack slots carry ~0 sentinels. Returns the
/// expected per-group payload sequences.
std::vector<std::vector<Word>> fill_groups(Machine& m, model::Addr base,
                                           const std::vector<std::size_t>& counts,
                                           std::uint64_t bw, std::uint64_t rw) {
    const std::size_t n = counts.size();
    std::vector<std::vector<Word>> expected(n);
    auto raw = m.raw();
    for (std::uint64_t i = 0; i < n * bw; ++i) raw[base + i] = ~Word{0};
    std::uint64_t at = base;
    Word payload = 1000;
    for (std::size_t g = 0; g < n; ++g) {
        for (std::size_t k = 0; k < counts[g]; ++k) {
            raw[at] = g;  // tag
            for (std::uint64_t t = 1; t < rw; ++t) raw[at + t] = payload + t;
            expected[g].push_back(payload + 1);
            payload += 10;
            at += rw;
        }
    }
    return expected;
}

void expect_aligned(const Machine& m, model::Addr base,
                    const std::vector<std::vector<Word>>& expected, std::uint64_t bw,
                    std::uint64_t rw) {
    const auto raw = m.raw();
    for (std::size_t g = 0; g < expected.size(); ++g) {
        const model::Addr home = base + g * bw;
        for (std::size_t k = 0; k < expected[g].size(); ++k) {
            ASSERT_EQ(raw[home + k * rw], g) << "group " << g << " record " << k;
            ASSERT_EQ(raw[home + k * rw + 1], expected[g][k])
                << "group " << g << " record " << k;
        }
    }
}

TEST(BtAlign, AlignsUniformGroups) {
    const std::uint64_t n = 8, bw = 12, rw = 3;
    Machine m(AccessFunction::logarithmic(), 2 * n * bw + 64);
    const auto expected = fill_groups(m, 0, std::vector<std::size_t>(n, 3), bw, rw);
    align_groups(m, 0, n, bw, rw);
    expect_aligned(m, 0, expected, bw, rw);
}

TEST(BtAlign, AlignsSkewedGroups) {
    // Group sizes vary from empty to full.
    const std::uint64_t n = 8, bw = 12, rw = 3;
    Machine m(AccessFunction::polynomial(0.5), 2 * n * bw + 64);
    const std::vector<std::size_t> counts{4, 0, 1, 4, 0, 0, 2, 3};
    const auto expected = fill_groups(m, 0, counts, bw, rw);
    align_groups(m, 0, n, bw, rw);
    expect_aligned(m, 0, expected, bw, rw);
}

TEST(BtAlign, AlignsAllRecordsInOneGroup) {
    const std::uint64_t n = 4, bw = 20, rw = 5;
    Machine m(AccessFunction::logarithmic(), 2 * n * bw + 64);
    const std::vector<std::size_t> counts{0, 0, 4, 0};
    const auto expected = fill_groups(m, 0, counts, bw, rw);
    align_groups(m, 0, n, bw, rw);
    expect_aligned(m, 0, expected, bw, rw);
}

TEST(BtAlign, SingleGroupIsNoOp) {
    const std::uint64_t n = 1, bw = 8, rw = 2;
    Machine m(AccessFunction::logarithmic(), 64);
    const auto expected = fill_groups(m, 0, {3}, bw, rw);
    align_groups(m, 0, n, bw, rw);
    expect_aligned(m, 0, expected, bw, rw);
}

class BtAlignRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BtAlignRandom, RandomOccupancies) {
    const std::uint64_t n = GetParam();
    const std::uint64_t rw = 4, per_block = 5, bw = rw * per_block;
    Machine m(AccessFunction::polynomial(0.35), 2 * n * bw + 128);
    SplitMix64 rng(n * 31 + 7);
    std::vector<std::size_t> counts(n);
    for (auto& c : counts) c = rng.next_below(per_block + 1);
    const auto expected = fill_groups(m, 0, counts, bw, rw);
    align_groups(m, 0, n, bw, rw);
    expect_aligned(m, 0, expected, bw, rw);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BtAlignRandom, ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(BtAlign, CostIsNearLinearithmic) {
    // O(mu n log(mu n)), same order as the sort it follows in Fig. 7.
    const auto f = AccessFunction::polynomial(0.5);
    std::vector<double> ratios;
    for (std::uint64_t n : {64u, 256u, 1024u}) {
        const std::uint64_t rw = 4, bw = 20;
        Machine m(f, 2 * n * bw + 128);
        SplitMix64 rng(3);
        std::vector<std::size_t> counts(n);
        for (auto& c : counts) c = rng.next_below(6);
        fill_groups(m, 0, counts, bw, rw);
        m.reset_cost();
        align_groups(m, 0, n, bw, rw);
        const double words = static_cast<double>(n * bw);
        ratios.push_back(m.cost() / (words * std::log2(words)));
    }
    EXPECT_LT(ratios.back() / ratios.front(), 2.0);
}

}  // namespace
}  // namespace dbsp::bt
