/// Tests for the process-wide metrics registry (src/report/metrics.hpp):
/// instrument semantics, log2-histogram bucket edges, reset behaviour, and
/// thread safety of the relaxed-atomic update paths under parallel_for.
///
/// The registry is a process-global shared with every other test in this
/// binary (the simulators publish telemetry as a side effect), so each test
/// uses uniquely named instruments and asserts on deltas, never on absolute
/// registry contents.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "report/metrics.hpp"
#include "util/parallel.hpp"

namespace {

using namespace dbsp;
using report::Histogram;
using report::Registry;

TEST(Metrics, CounterAddAndReset) {
    auto& c = report::metric_counter("test.counter_basic");
    const std::uint64_t before = c.value();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), before + 42);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeHoldsLastWrite) {
    auto& g = report::metric_gauge("test.gauge_basic");
    g.set(2.5);
    g.set(-7.0);
    EXPECT_DOUBLE_EQ(g.value(), -7.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, RegistryFindOrRegisterReturnsSameInstrument) {
    auto& a = report::metric_counter("test.identity");
    auto& b = report::metric_counter("test.identity");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), a.value());
}

TEST(Metrics, HistogramBucketOfIsBitWidth) {
    EXPECT_EQ(Histogram::bucket_of(0), 0u);
    EXPECT_EQ(Histogram::bucket_of(1), 1u);
    EXPECT_EQ(Histogram::bucket_of(2), 2u);
    EXPECT_EQ(Histogram::bucket_of(3), 2u);
    EXPECT_EQ(Histogram::bucket_of(4), 3u);
    EXPECT_EQ(Histogram::bucket_of(7), 3u);
    EXPECT_EQ(Histogram::bucket_of(8), 4u);
    EXPECT_EQ(Histogram::bucket_of((1ull << 32) - 1), 32u);
    EXPECT_EQ(Histogram::bucket_of(1ull << 32), 33u);
    EXPECT_EQ(Histogram::bucket_of(1ull << 63), 64u);
    EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()), 64u);
}

TEST(Metrics, HistogramObservePlacesWeightAtBucketEdges) {
    auto& h = report::metric_histogram("test.hist_edges");
    h.reset();
    h.observe(0);       // bucket 0
    h.observe(1);       // bucket 1
    h.observe(3);       // bucket 2 (top of the 2-3 range)
    h.observe(4, 10);   // bucket 3 (bottom of the 4-7 range), weighted
    h.observe(7);       // bucket 3 (top of the 4-7 range)
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 11u);
    EXPECT_EQ(h.bucket(4), 0u);
    EXPECT_EQ(h.total(), 14u);
    EXPECT_EQ(h.populated_buckets(), 4u);
}

TEST(Metrics, HistogramDirectBucketClampsOverflow) {
    auto& h = report::metric_histogram("test.hist_clamp");
    h.reset();
    h.add_to_bucket(12, 5);
    h.add_to_bucket(Histogram::kBuckets + 100, 2);  // clamped to the last bucket
    EXPECT_EQ(h.bucket(12), 5u);
    EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 2u);
    EXPECT_EQ(h.bucket(Histogram::kBuckets + 100), 0u);  // out-of-range read is 0
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.populated_buckets(), Histogram::kBuckets);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.populated_buckets(), 0u);
}

TEST(Metrics, ResetValuesKeepsReferencesValid) {
    auto& c = report::metric_counter("test.reset_keeps_refs");
    auto& h = report::metric_histogram("test.reset_keeps_refs_hist");
    c.add(9);
    h.observe(100);
    const std::size_t registered = Registry::global().size();
    Registry::global().reset_values();
    EXPECT_EQ(Registry::global().size(), registered);  // registrations survive
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.total(), 0u);
    c.add(2);  // the old reference still updates the same instrument
    EXPECT_EQ(report::metric_counter("test.reset_keeps_refs").value(), 2u);
}

TEST(Metrics, SnapshotReportsKindsValuesAndSortedNames) {
    auto& c = report::metric_counter("test.snap_counter");
    auto& g = report::metric_gauge("test.snap_gauge");
    auto& h = report::metric_histogram("test.snap_hist");
    c.reset();
    g.reset();
    h.reset();
    c.add(5);
    g.set(1.5);
    h.observe(6, 3);  // bucket 3

    const auto snap = Registry::global().snapshot();
    for (std::size_t i = 1; i < snap.size(); ++i) {
        EXPECT_LT(snap[i - 1].name, snap[i].name) << "snapshot must be name-sorted";
    }
    const report::MetricValue* counter = nullptr;
    const report::MetricValue* gauge = nullptr;
    const report::MetricValue* hist = nullptr;
    for (const auto& m : snap) {
        if (m.name == "test.snap_counter") counter = &m;
        if (m.name == "test.snap_gauge") gauge = &m;
        if (m.name == "test.snap_hist") hist = &m;
    }
    ASSERT_NE(counter, nullptr);
    ASSERT_NE(gauge, nullptr);
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(counter->kind, report::MetricValue::Kind::kCounter);
    EXPECT_EQ(counter->count, 5u);
    EXPECT_EQ(gauge->kind, report::MetricValue::Kind::kGauge);
    EXPECT_DOUBLE_EQ(gauge->gauge, 1.5);
    EXPECT_EQ(hist->kind, report::MetricValue::Kind::kHistogram);
    EXPECT_EQ(hist->count, 3u);
    ASSERT_EQ(hist->buckets.size(), 4u);  // trimmed to populated_buckets()
    EXPECT_EQ(hist->buckets[3], 3u);
}

TEST(Metrics, ConcurrentUpdatesUnderParallelForLoseNothing) {
    auto& c = report::metric_counter("test.parallel_counter");
    auto& h = report::metric_histogram("test.parallel_hist");
    c.reset();
    h.reset();
    constexpr std::size_t kN = 20000;
    util::parallel_for(
        kN,
        [&](std::size_t i) {
            c.add();
            h.observe(i);
        },
        4);
    EXPECT_EQ(c.value(), kN);
    EXPECT_EQ(h.total(), kN);
    // Cross-check the bucket decomposition: bucket b holds the values with
    // bit_width b, i.e. [2^(b-1), 2^b) for b >= 1 — sizes 1, 1, 2, 4, ...
    EXPECT_EQ(h.bucket(0), 1u);
    std::uint64_t reconstructed = 0;
    for (unsigned b = 0; b < report::Histogram::kBuckets; ++b) reconstructed += h.bucket(b);
    EXPECT_EQ(reconstructed, kN);
    EXPECT_EQ(h.bucket(5), 16u);  // values 16..31
}

TEST(Metrics, ConcurrentRegistrationIsSafe) {
    // Hammer find-or-register from several threads: every thread must get
    // the same instrument for the same name, and all updates must land.
    constexpr std::size_t kN = 1000;
    util::parallel_for(
        kN, [&](std::size_t) { report::metric_counter("test.concurrent_reg").add(); }, 4);
    EXPECT_EQ(report::metric_counter("test.concurrent_reg").value(), kN);
}

}  // namespace
