/// Tests for the simulation-as-a-service layer (src/serve/): deterministic
/// runner documents, fingerprinting, the LRU result cache, strict request
/// parsing (the exit-2 CLI contract translated to structured error replies),
/// the metrics flush discipline long-lived processes need, and a full
/// socket round trip against an in-process daemon.
///
/// The byte-identity tests here are the in-process half of the serve
/// conformance story: a daemon reply must embed the exact bytes
/// serve::run_to_json produces — which is also what `dbsp_explore --spec`
/// prints — on the cache-miss and cache-hit paths alike.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "check/program_gen.hpp"
#include "check/trace_io.hpp"
#include "hmm/machine.hpp"
#include "model/cost_table.hpp"
#include "model/cost_table_cache.hpp"
#include "report/json.hpp"
#include "report/metrics.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/runner.hpp"
#include "serve/server.hpp"
#include "telemetry/logger.hpp"

namespace {

using namespace dbsp;

check::ProgramSpec corpus_spec(std::uint64_t seed) {
    return check::generate_spec(check::GenConfig{}, seed);
}

std::string run_line(const check::ProgramSpec& spec) {
    report::Json req = report::Json::object();
    req.set("op", "run");
    req.set("spec", check::serialize_spec(spec));
    return req.dump_compact();
}

/// A spec that exercises both simulators is whichever corpus seed yields
/// v >= 2 (v=1 programs have no communication structure worth asserting on).
check::ProgramSpec interesting_spec() {
    for (std::uint64_t seed = 1; seed < 64; ++seed) {
        const check::ProgramSpec spec = corpus_spec(seed);
        if (spec.processors >= 4) return spec;
    }
    return corpus_spec(1);
}

TEST(ServeRunner, DocumentIsDeterministic) {
    const check::ProgramSpec spec = interesting_spec();
    serve::RunOptions options;
    const std::string a = serve::run_to_json(spec, options);
    const std::string b = serve::run_to_json(spec, options);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.find('\n'), std::string::npos) << "wire documents are single lines";

    // The document re-parses and carries the advertised schema + legs.
    const auto doc = report::Json::parse(a);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ((*doc)["schema"].as_string(), "dbsp-serve-result-v1");
    EXPECT_TRUE(doc->contains("hmm"));
    EXPECT_TRUE(doc->contains("bt"));
    EXPECT_GT((*doc)["hmm"]["cost"].as_double(), 0.0);
}

TEST(ServeRunner, ThreadCountNeverChangesBytes) {
    const check::ProgramSpec spec = interesting_spec();
    serve::RunOptions serial;
    serial.threads = 1;
    serve::RunOptions wide;
    wide.threads = 4;
    EXPECT_EQ(serve::run_to_json(spec, serial), serve::run_to_json(spec, wide));
    EXPECT_EQ(serve::fingerprint(spec, serial), serve::fingerprint(spec, wide));
}

TEST(ServeRunner, FingerprintSeparatesResultInfluencingOptions) {
    const check::ProgramSpec spec = interesting_spec();
    serve::RunOptions base;
    serve::RunOptions hmm_only = base;
    hmm_only.model = "hmm";
    serve::RunOptions log_f = base;
    log_f.f = model::AccessFunction::logarithmic();
    serve::RunOptions sampled = base;
    sampled.locality = true;
    sampled.sampled = true;
    sampled.sample_rate = 0.5;
    EXPECT_NE(serve::fingerprint(spec, base), serve::fingerprint(spec, hmm_only));
    EXPECT_NE(serve::fingerprint(spec, base), serve::fingerprint(spec, log_f));
    EXPECT_NE(serve::fingerprint(spec, base), serve::fingerprint(spec, sampled));
    EXPECT_NE(serve::fingerprint(corpus_spec(2), base),
              serve::fingerprint(corpus_spec(3), base));
}

TEST(ServeRunner, SampleRateContract) {
    EXPECT_TRUE(serve::valid_sample_rate(0.01));
    EXPECT_TRUE(serve::valid_sample_rate(1.0));
    EXPECT_FALSE(serve::valid_sample_rate(0.0));
    EXPECT_FALSE(serve::valid_sample_rate(-0.5));
    EXPECT_FALSE(serve::valid_sample_rate(1.0000001));
    EXPECT_FALSE(serve::valid_sample_rate(std::numeric_limits<double>::quiet_NaN()));
    EXPECT_FALSE(serve::valid_sample_rate(std::numeric_limits<double>::infinity()));
}

TEST(ServeServer, ReplyByteIdenticalOnMissAndHit) {
    serve::Server server({});
    const check::ProgramSpec spec = interesting_spec();
    const std::string expected = serve::run_to_json(spec, serve::RunOptions{});
    const std::string line = run_line(spec);
    EXPECT_EQ(server.handle_line(line), serve::run_reply(expected, /*cached=*/false));
    EXPECT_EQ(server.handle_line(line), serve::run_reply(expected, /*cached=*/true));
    const auto stats = server.stats();
    EXPECT_EQ(stats.cache.misses, 1u);
    EXPECT_EQ(stats.cache.hits, 1u);
}

TEST(ServeServer, MalformedInputsGetStructuredErrors) {
    serve::Server server({});
    const std::string valid = check::serialize_spec(corpus_spec(1));
    std::vector<std::string> bad = {
        "",
        "not json",
        "[1,2,3]",
        "{\"op\":\"run\"}",
        "{\"op\":\"nope\"}",
        "{\"op\":\"ping\",\"extra\":1}",
        "{\"op\":\"run\",\"spec\":42}",
        "{\"op\":\"run\",\"spec\":\"dbsp-spec v1\\nv 4\"}",
        std::string(64, '['),
        // duplicate header section
        "{\"op\":\"run\",\"spec\":\"dbsp-spec v1\\nv 4\\nv 4\\nB 1\\nsteps 1\\n"
        "labels 0\\nend\\n\"}",
        // geometry bombs: must reject before sizing the event matrix
        "{\"op\":\"run\",\"spec\":\"dbsp-spec v1\\nv 1152921504606846976\\nB 1\\n"
        "steps 1\\nlabels 0\\nend\\n\"}",
        // degenerate sampling rates (NaN/inf are not even JSON tokens)
        "{\"op\":\"run\",\"spec\":\"x\",\"locality\":{\"mode\":\"sampled\",\"rate\":0}}",
        "{\"op\":\"run\",\"spec\":\"x\",\"locality\":{\"mode\":\"sampled\",\"rate\":1.5}}",
        "{\"op\":\"run\",\"spec\":\"x\",\"locality\":{\"mode\":\"sampled\",\"rate\":nan}}",
        "{\"op\":\"run\",\"spec\":\"x\",\"locality\":{\"rate\":0.5}}",
    };
    {
        // A well-formed request whose spec parses but whose access function
        // does not: the f-validation leg specifically, so the spec string is
        // built by the JSON writer (raw newlines are not legal in literals).
        report::Json req = report::Json::object();
        req.set("op", "run");
        req.set("spec", valid);
        req.set("f", "x^junk");
        bad.push_back(req.dump_compact());
    }
    for (const std::string& line : bad) {
        const std::string reply = server.handle_line(line);
        const auto doc = report::Json::parse(reply);
        ASSERT_TRUE(doc.has_value()) << "unparsable reply for: " << line;
        EXPECT_FALSE((*doc)["ok"].as_bool(true)) << line;
        EXPECT_FALSE((*doc)["error"].as_string().empty()) << line;
    }
    // The daemon logic is still healthy after the barrage.
    const std::string reply = server.handle_line(run_line(corpus_spec(1)));
    const auto doc = report::Json::parse(reply);
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE((*doc)["ok"].as_bool(false));
    EXPECT_EQ(server.stats().errors, bad.size());
}

// PR-9 regression: the deterministic reply contract survives telemetry.
// A server with the full observability stack enabled (JSONL log, slow-span
// logging, span ring) must produce byte-identical "dbsp-serve-result-v1"
// replies to the plain offline runner, on the miss AND hit paths — wall
// time may never leak into the reply bytes.
TEST(ServeServer, TelemetryNeverChangesReplyBytes) {
    const std::string log_path = testing::TempDir() + "dbsp_serve_telemetry.jsonl";
    std::remove(log_path.c_str());
    serve::Server::Options options;
    options.log_path = log_path;
    options.log_level = telemetry::LogLevel::kDebug;
    options.slow_ms = 0.000001;  // every request logs its span tree
    serve::Server with_telemetry(options);
    serve::Server plain({});

    const check::ProgramSpec spec = interesting_spec();
    const std::string expected = serve::run_to_json(spec, serve::RunOptions{});
    const std::string line = run_line(spec);
    // Miss path, then hit path, on both servers: four identical documents.
    EXPECT_EQ(with_telemetry.handle_line(line),
              serve::run_reply(expected, /*cached=*/false));
    EXPECT_EQ(with_telemetry.handle_line(line),
              serve::run_reply(expected, /*cached=*/true));
    EXPECT_EQ(plain.handle_line(line), serve::run_reply(expected, /*cached=*/false));
    EXPECT_EQ(plain.handle_line(line), serve::run_reply(expected, /*cached=*/true));
    std::remove(log_path.c_str());
}

TEST(ServeServer, SpansOpServesRecentRequestTrees) {
    serve::Server server({});
    const check::ProgramSpec spec = interesting_spec();
    server.handle_line(run_line(spec));  // miss: simulator legs run
    server.handle_line(run_line(spec));  // hit
    const std::string reply = server.handle_line("{\"op\":\"spans\",\"limit\":8}");
    const auto doc = report::Json::parse(reply);
    ASSERT_TRUE(doc.has_value()) << reply;
    EXPECT_TRUE((*doc)["ok"].as_bool());
    const auto& spans = (*doc)["spans"];
    ASSERT_TRUE(spans.is_array());
    ASSERT_EQ(spans.size(), 2u) << "both run requests recorded";

    // Newest first: spans[1] is the miss-path request. It carries the
    // parse/cache-probe/run/reply-write chain, executor leg children under
    // "run", and the bound-slack gauges mirroring the reply document.
    const report::Json& miss = spans.items()[1];
    EXPECT_EQ(miss["op"].as_string(), "run");
    EXPECT_FALSE(miss["cached"].as_bool(true));
    EXPECT_GT(miss["bound_slack"]["hmm"].as_double(), 0.0);
    EXPECT_GT(miss["bound_slack"]["bt"].as_double(), 0.0);
    std::vector<std::string> names;
    for (const report::Json& child : miss["spans"]["children"].items()) {
        names.push_back(child["name"].as_string());
        if (child["name"].as_string() == "run") {
            std::vector<std::string> legs;
            for (const report::Json& leg : child["children"].items()) {
                legs.push_back(leg["name"].as_string());
            }
            EXPECT_EQ(legs, (std::vector<std::string>{"dbsp", "hmm", "bt"}));
        }
    }
    EXPECT_EQ(names, (std::vector<std::string>{"parse", "cache-probe", "run",
                                               "reply-write"}));

    // The hit-path request has no run-leg children and no slack gauges.
    const report::Json& hit = spans.items()[0];
    EXPECT_TRUE(hit["cached"].as_bool(false));
    EXPECT_EQ(hit["bound_slack"]["hmm"].as_double(), 0.0);
}

TEST(ServeServer, WatchOpStreamsSchemaConformantFrames) {
    serve::Server server({});
    server.handle_line(run_line(interesting_spec()));
    // interval 0: all three frames come back immediately, '\n'-joined by
    // the non-streaming wrapper.
    const std::string joined =
        server.handle_line("{\"op\":\"watch\",\"interval_ms\":0,\"count\":3}");
    std::vector<std::string> lines;
    std::size_t start = 0;
    for (;;) {
        const std::size_t nl = joined.find('\n', start);
        if (nl == std::string::npos) break;
        lines.push_back(joined.substr(start, nl - start));
        start = nl + 1;
    }
    lines.push_back(joined.substr(start));
    ASSERT_EQ(lines.size(), 3u);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const auto frame = report::Json::parse(lines[i]);
        ASSERT_TRUE(frame.has_value()) << lines[i];
        EXPECT_EQ((*frame)["schema"].as_string(), "dbsp-telemetry-v1");
        EXPECT_EQ((*frame)["seq"].as_double(), static_cast<double>(i));
        EXPECT_TRUE((*frame)["windows"]["60s"]["p50_ms"].is_number());
        EXPECT_TRUE((*frame)["bound_slack"]["bt"]["p99"].is_number());
        EXPECT_EQ((*frame)["server"]["runs"].as_double(), 1.0);
        EXPECT_GT((*frame)["proc"]["open_fds"].as_double(), 0.0);
    }
}

TEST(ServeProtocol, WatchAndSpansValidation) {
    auto parse = [](const std::string& line) {
        serve::Request out;
        std::string error;
        return serve::parse_request(line, 1 << 20, &out, &error);
    };
    EXPECT_TRUE(parse("{\"op\":\"watch\"}"));
    EXPECT_TRUE(parse("{\"op\":\"watch\",\"interval_ms\":0,\"count\":3600}"));
    EXPECT_TRUE(parse("{\"op\":\"spans\",\"limit\":1024}"));
    // Bounds and types are strict; unknown fields rejected.
    EXPECT_FALSE(parse("{\"op\":\"watch\",\"count\":0}"));
    EXPECT_FALSE(parse("{\"op\":\"watch\",\"count\":3601}"));
    EXPECT_FALSE(parse("{\"op\":\"watch\",\"interval_ms\":60001}"));
    EXPECT_FALSE(parse("{\"op\":\"watch\",\"interval_ms\":1.5}"));
    EXPECT_FALSE(parse("{\"op\":\"watch\",\"interval_ms\":-1}"));
    EXPECT_FALSE(parse("{\"op\":\"watch\",\"limit\":4}"));
    EXPECT_FALSE(parse("{\"op\":\"spans\",\"limit\":0}"));
    EXPECT_FALSE(parse("{\"op\":\"spans\",\"limit\":1025}"));
    EXPECT_FALSE(parse("{\"op\":\"spans\",\"count\":1}"));
    EXPECT_FALSE(parse("{\"op\":\"spans\",\"limit\":\"8\"}"));

    // Defaults survive the round trip.
    serve::Request out;
    std::string error;
    ASSERT_TRUE(serve::parse_request("{\"op\":\"watch\"}", 1 << 20, &out, &error));
    EXPECT_EQ(out.op, serve::Request::Op::kWatch);
    EXPECT_EQ(out.interval_ms, 1000u);
    EXPECT_EQ(out.count, 1u);
}

TEST(ServeProtocol, SampleRateValidationMirrorsCliContract) {
    const std::string spec = check::serialize_spec(corpus_spec(1));
    auto attempt = [&](double rate) {
        report::Json req = report::Json::object();
        req.set("op", "run");
        req.set("spec", spec);
        report::Json loc = report::Json::object();
        loc.set("mode", "sampled");
        loc.set("rate", rate);
        req.set("locality", std::move(loc));
        serve::Request out;
        std::string error;
        return serve::parse_request(req.dump_compact(), 1 << 20, &out, &error);
    };
    EXPECT_TRUE(attempt(0.5));
    EXPECT_TRUE(attempt(1.0));
    EXPECT_FALSE(attempt(0.0));
    EXPECT_FALSE(attempt(-0.1));
    EXPECT_FALSE(attempt(1.5));
}

TEST(JsonLimits, DepthAndSizeAreRejectedNotRecursed) {
    // 500 levels would overflow a recursive-descent stack if not bounded.
    std::string bomb(500, '[');
    bomb += std::string(500, ']');
    std::string error;
    EXPECT_FALSE(report::Json::parse(bomb, &error).has_value());
    EXPECT_NE(error.find("depth"), std::string::npos);

    report::ParseLimits tight;
    tight.max_bytes = 8;
    error.clear();
    EXPECT_FALSE(report::Json::parse("[1,2,3,4,5,6]", &error, tight).has_value());
    EXPECT_NE(error.find("exceeds"), std::string::npos);
    EXPECT_NE(error.find("bytes"), std::string::npos);

    // Within limits, compact output round-trips.
    const auto doc = report::Json::parse("{\"a\":[1,2,{\"b\":null}],\"c\":true}");
    ASSERT_TRUE(doc.has_value());
    const auto again = report::Json::parse(doc->dump_compact());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(doc->dump(), again->dump());
}

TEST(SpecParser, GeometryCapsAndDuplicateSections) {
    check::ProgramSpec out;
    std::string error;
    // v beyond the cap: rejected before the event matrix is sized.
    EXPECT_FALSE(check::parse_spec(
        "dbsp-spec v1\nv 1152921504606846976\nB 1\nsteps 1\nlabels 0\nend\n", &out,
        &error));
    EXPECT_NE(error.find("limit"), std::string::npos);
    // steps * v beyond the cell cap.
    std::string many = "dbsp-spec v1\nv 65536\nB 1\nsteps 17\nlabels";
    for (int i = 0; i < 16; ++i) many += " 1";
    many += " 0\nend\n";
    EXPECT_FALSE(check::parse_spec(many, &out, &error));
    EXPECT_NE(error.find("limit"), std::string::npos);
    // Duplicate header sections are ambiguous -> rejected.
    EXPECT_FALSE(check::parse_spec(
        "dbsp-spec v1\nv 4\nv 4\nB 1\nsteps 1\nlabels 0\nend\n", &out, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
    EXPECT_FALSE(check::parse_spec(
        "dbsp-spec v1\nv 4\nB 1\nsteps 1\nlabels 0\nlabels 0\nend\n", &out, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
    // Truncated header: error, not crash.
    EXPECT_FALSE(check::parse_spec("dbsp-spec v1\nv 4\n", &out, &error));
    // The canonical serialization still parses.
    const check::ProgramSpec spec = corpus_spec(5);
    EXPECT_TRUE(check::parse_spec(check::serialize_spec(spec), &out, &error)) << error;
}

TEST(ServeMetrics, MachineFlushIsIdempotentAndDtorSafe) {
    auto& touched = report::metric_counter("hmm.words_touched");
    const std::uint64_t before = touched.value();
    {
        hmm::Machine m(model::AccessFunction::polynomial(0.5), 16);
        m.write(3, 7);
        (void)m.read(3);
        m.publish_metrics();
        EXPECT_EQ(touched.value(), before + 2) << "explicit flush publishes";
        m.publish_metrics();
        EXPECT_EQ(touched.value(), before + 2) << "second flush adds nothing";
        (void)m.read(3);
    }
    // Destructor publishes only what accumulated after the last flush.
    EXPECT_EQ(touched.value(), before + 3);
}

TEST(ServeMetrics, SnapshotEqualsSumOfPerRequestCounts) {
    // The long-lived-process regression: two back-to-back requests through
    // one server must add exactly their individual deltas to the registry
    // (no lost publishes from reuse, no double-counts from re-publishing).
    serve::Server::Options options;
    options.cache_entries = 0;  // every request recomputes
    serve::Server server(options);
    auto& touched = report::metric_counter("hmm.words_touched");

    const std::string line_a = run_line(interesting_spec());
    const std::string line_b = run_line(corpus_spec(2));

    const std::uint64_t t0 = touched.value();
    server.handle_line(line_a);
    const std::uint64_t delta_a = touched.value() - t0;
    const std::uint64_t t1 = touched.value();
    server.handle_line(line_b);
    const std::uint64_t delta_b = touched.value() - t1;
    const std::uint64_t t2 = touched.value();
    server.handle_line(line_a);
    EXPECT_EQ(touched.value() - t2, delta_a) << "repeat request re-adds its own count";
    EXPECT_EQ(touched.value() - t0, 2 * delta_a + delta_b);
    EXPECT_GT(delta_a, 0u);
}

TEST(CostTableCacheLru, EvictsBeyondCapAndKeepsRecentlyUsed) {
    auto& cache = model::CostTableCache::global();
    const std::size_t old_cap = cache.max_entries();
    cache.clear();
    cache.set_max_entries(2);
    const auto baseline = cache.stats();

    const auto f1 = model::AccessFunction::polynomial(0.311);
    const auto f2 = model::AccessFunction::polynomial(0.312);
    const auto f3 = model::AccessFunction::polynomial(0.313);
    cache.get(f1, 32);
    cache.get(f2, 32);
    cache.get(f1, 32);  // f1 most recently used
    cache.get(f3, 32);  // evicts f2, not f1
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions - baseline.evictions, 1u);

    const auto before = cache.stats();
    cache.get(f1, 32);
    EXPECT_EQ(cache.stats().hits - before.hits, 1u) << "f1 survived the eviction";
    cache.get(f2, 32);
    EXPECT_EQ(cache.stats().builds - before.builds, 1u) << "f2 was evicted";

    cache.set_max_entries(old_cap);
    cache.clear();
}

TEST(CostTableCacheLru, EvictionNeverChangesChargedCosts) {
    auto& cache = model::CostTableCache::global();
    const std::size_t old_cap = cache.max_entries();
    cache.clear();
    cache.set_max_entries(1);

    const auto f = model::AccessFunction::polynomial(0.47);
    const auto warm = cache.get(f, 64);
    cache.get(model::AccessFunction::polynomial(0.48), 64);  // evicts f
    const auto rebuilt = cache.get(f, 64);  // rebuilt after eviction

    model::ScopedCostTableCache off(false);
    const auto cold = cache.get(f, 64);  // fresh private build, the seed path
    for (std::uint64_t x = 0; x < 64; ++x) {
        EXPECT_EQ(rebuilt->cost(x), cold->cost(x)) << "x=" << x;
        EXPECT_EQ(warm->cost(x), cold->cost(x)) << "x=" << x;
    }

    cache.set_max_entries(old_cap);
    cache.clear();
}

TEST(ServeResultCache, LruSemantics) {
    serve::ResultCache cache(2);
    EXPECT_FALSE(cache.get("a").has_value());
    cache.put("a", "A");
    cache.put("b", "B");
    EXPECT_EQ(cache.get("a").value_or(""), "A");  // a most recently used
    cache.put("c", "C");                          // evicts b
    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_EQ(cache.get("a").value_or(""), "A");
    EXPECT_EQ(cache.get("c").value_or(""), "C");
    const auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);

    serve::ResultCache disabled(0);
    disabled.put("a", "A");
    EXPECT_FALSE(disabled.get("a").has_value());
}

TEST(ServeSocket, FullRoundTripWithPipelining) {
    serve::Server::Options options;
    options.socket_path =
        "/tmp/dbsp_serve_test_" + std::to_string(::getpid()) + ".sock";
    serve::Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread loop([&server] { server.serve_forever(); });

    serve::Client client;
    ASSERT_TRUE(client.connect(options.socket_path, &error)) << error;

    std::string reply;
    ASSERT_TRUE(client.request("{\"op\":\"ping\"}", &reply, &error)) << error;
    EXPECT_NE(reply.find("\"pong\":true"), std::string::npos);

    // Pipelined batch: miss, hit, and a malformed line, answered in order.
    const check::ProgramSpec spec = interesting_spec();
    const std::string expected = serve::run_to_json(spec, serve::RunOptions{});
    std::vector<std::string> replies;
    ASSERT_TRUE(client.request_batch({run_line(spec), run_line(spec), "garbage"},
                                     &replies, &error))
        << error;
    ASSERT_EQ(replies.size(), 3u);
    EXPECT_EQ(replies[0], serve::run_reply(expected, false));
    EXPECT_EQ(replies[1], serve::run_reply(expected, true));
    EXPECT_NE(replies[2].find("\"ok\":false"), std::string::npos);

    // Live metrics endpoint reflects the completed requests.
    ASSERT_TRUE(client.request("{\"op\":\"metrics\"}", &reply, &error)) << error;
    const auto metrics = report::Json::parse(reply);
    ASSERT_TRUE(metrics.has_value());
    EXPECT_TRUE((*metrics)["metrics"].contains("serve.requests"));

    ASSERT_TRUE(client.request("{\"op\":\"shutdown\"}", &reply, &error)) << error;
    EXPECT_NE(reply.find("\"shutdown\":true"), std::string::npos);
    client.close();
    loop.join();

    const auto stats = server.stats();
    EXPECT_EQ(stats.cache.misses, 1u);
    EXPECT_EQ(stats.cache.hits, 1u);
    EXPECT_EQ(stats.errors, 1u);
}

}  // namespace
