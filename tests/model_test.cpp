#include <gtest/gtest.h>

#include "model/cluster_tree.hpp"
#include "model/context_layout.hpp"
#include "model/program.hpp"
#include "model/superstep_exec.hpp"

namespace dbsp::model {
namespace {

TEST(ClusterTree, Structure) {
    ClusterTree t(16);
    EXPECT_EQ(t.log_processors(), 4u);
    EXPECT_EQ(t.num_clusters(0), 1u);
    EXPECT_EQ(t.num_clusters(4), 16u);
    EXPECT_EQ(t.cluster_size(2), 4u);
    EXPECT_EQ(t.cluster_of(13, 2), 3u);
    EXPECT_EQ(t.cluster_first(3, 2), 12u);
    EXPECT_TRUE(t.same_cluster(12, 15, 2));
    EXPECT_FALSE(t.same_cluster(11, 12, 2));
    EXPECT_TRUE(t.same_cluster(0, 15, 0));
}

TEST(ClusterTree, BinaryDecomposition) {
    // C^(i)_j = C^(i+1)_(2j) union C^(i+1)_(2j+1).
    ClusterTree t(32);
    for (unsigned i = 0; i < 5; ++i) {
        for (std::uint64_t j = 0; j < t.num_clusters(i); ++j) {
            const auto first = t.cluster_first(j, i);
            EXPECT_EQ(t.cluster_first(2 * j, i + 1), first);
            EXPECT_EQ(t.cluster_first(2 * j + 1, i + 1), first + t.cluster_size(i + 1));
        }
    }
}

TEST(ContextLayout, OffsetsArePackedAndDisjoint) {
    const ContextLayout l{5, 3};
    EXPECT_EQ(l.out_count_offset(), 5u);
    EXPECT_EQ(l.out_records_offset(), 6u);
    EXPECT_EQ(l.in_records_offset(), 6u + 9u);
    EXPECT_EQ(l.in_count_offset(), 6u + 18u);
    EXPECT_EQ(l.context_words(), 5u + 2u + 18u);
    EXPECT_EQ(l.out_record_offset(2), l.out_records_offset() + 6);
    EXPECT_EQ(l.in_record_offset(1), l.in_records_offset() + 3);
}

/// Minimal program: processor p sends its id to p^1 in a single superstep.
class PairSwapProgram final : public Program {
public:
    explicit PairSwapProgram(std::uint64_t v) : v_(v) {}
    std::string name() const override { return "pair-swap"; }
    std::uint64_t num_processors() const override { return v_; }
    std::size_t data_words() const override { return 1; }
    std::size_t max_messages() const override { return 1; }
    StepIndex num_supersteps() const override { return 2; }
    unsigned label(StepIndex s) const override { return s == 0 ? ilog2(v_) - 1 : 0; }
    void init(ProcId p, std::span<Word> data) const override { data[0] = p; }
    void step(StepIndex s, ProcId p, StepContext& ctx) override {
        if (s == 0) {
            ctx.send(p ^ 1, ctx.load(0));
        } else {
            EXPECT_EQ(ctx.inbox_size(), 1u);
            const Message m = ctx.inbox(0);
            EXPECT_EQ(m.src, p ^ 1);
            EXPECT_EQ(m.dest, p);
            ctx.store(0, m.payload0);
        }
    }

private:
    std::uint64_t v_;
};

TEST(StepContext, SendValidatesClusterDiscipline) {
    const ContextLayout layout{1, 1};
    std::vector<Word> mem(layout.context_words(), 0);
    FlatContextAccessor acc(mem.data(), mem.size());
    ClusterTree tree(8);
    StepContext ctx(acc, layout, tree, 0, /*label=*/2, /*proc=*/0);
    // Label 2 on 8 processors: clusters of 2; sending to processor 1 is
    // legal, anything farther would abort (tested via death below).
    ctx.send(1, 99);
    EXPECT_EQ(ctx.sent(), 1u);
    EXPECT_EQ(mem[layout.out_record_offset(0)], 1u);
    EXPECT_EQ(mem[layout.out_record_offset(0) + 1], 99u);
}

TEST(StepContextDeathTest, SendOutsideClusterAborts) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const ContextLayout layout{1, 1};
    std::vector<Word> mem(layout.context_words(), 0);
    FlatContextAccessor acc(mem.data(), mem.size());
    ClusterTree tree(8);
    StepContext ctx(acc, layout, tree, 0, /*label=*/2, /*proc=*/0);
    EXPECT_DEATH(ctx.send(5, 1), "Precondition");
}

TEST(StepContext, OpsAccounting) {
    const ContextLayout layout{4, 2};
    std::vector<Word> mem(layout.context_words(), 0);
    FlatContextAccessor acc(mem.data(), mem.size());
    ClusterTree tree(4);
    StepContext ctx(acc, layout, tree, 0, 0, 2);
    ctx.store(0, 7);
    (void)ctx.load(0);
    ctx.charge_ops(10);
    ctx.send(0, 1);
    EXPECT_EQ(ctx.ops(), 13u);
    EXPECT_FALSE(ctx.read_inbox());
    (void)ctx.inbox_size();
    EXPECT_TRUE(ctx.read_inbox());
}

TEST(StepContext, ProcBaseTranslation) {
    const ContextLayout layout{1, 1};
    std::vector<Word> mem(layout.context_words(), 0);
    FlatContextAccessor acc(mem.data(), mem.size());
    ClusterTree tree(4);  // a 4-processor window based at global id 8
    StepContext ctx(acc, layout, tree, 0, 0, /*proc=*/1, /*base=*/8);
    EXPECT_EQ(ctx.proc(), 9u);
    ctx.send(10, 5);  // global dest 10 -> local 2
    EXPECT_EQ(mem[layout.out_record_offset(0)], 2u);
}

TEST(DeliverMessages, CanonicalOrderAndCounts) {
    const ContextLayout layout{1, 3};
    const std::size_t mu = layout.context_words();
    std::vector<std::vector<Word>> mem(4, std::vector<Word>(mu, 0));
    // Processors 1, 2, 3 each queue one message to processor 0.
    for (ProcId p : {3u, 1u, 2u}) {
        mem[p][layout.out_count_offset()] = 1;
        mem[p][layout.out_record_offset(0)] = 0;      // dest
        mem[p][layout.out_record_offset(0) + 1] = p;  // payload
    }
    VectorAccessorSource with(mem, mu);
    const std::size_t h = deliver_messages(layout, 0, 4, with);
    EXPECT_EQ(h, 3u);
    EXPECT_EQ(mem[0][layout.in_count_offset()], 3u);
    // Delivery order is ascending by sender.
    EXPECT_EQ(mem[0][layout.in_record_offset(0)], 1u);
    EXPECT_EQ(mem[0][layout.in_record_offset(1)], 2u);
    EXPECT_EQ(mem[0][layout.in_record_offset(2)], 3u);
    // Senders' outgoing counts were consumed.
    for (ProcId p = 1; p < 4; ++p) EXPECT_EQ(mem[p][layout.out_count_offset()], 0u);
}

TEST(DeliverMessages, AppendsToUnconsumedInbox) {
    const ContextLayout layout{1, 3};
    const std::size_t mu = layout.context_words();
    std::vector<std::vector<Word>> mem(2, std::vector<Word>(mu, 0));
    mem[0][layout.in_count_offset()] = 1;  // one stale message
    mem[0][layout.in_record_offset(0)] = 7;
    mem[1][layout.out_count_offset()] = 1;
    mem[1][layout.out_record_offset(0)] = 0;
    mem[1][layout.out_record_offset(0) + 1] = 42;
    VectorAccessorSource with(mem, mu);
    deliver_messages(layout, 0, 2, with);
    EXPECT_EQ(mem[0][layout.in_count_offset()], 2u);
    EXPECT_EQ(mem[0][layout.in_record_offset(1) + 1], 42u);
}

TEST(RelabeledProgram, DummyStepsDoNothing) {
    PairSwapProgram base(4);
    RelabeledProgram smoothed(base, {0, RelabeledProgram::kDummy, 1},
                              {1, 1, 0});
    EXPECT_EQ(smoothed.num_supersteps(), 3u);
    EXPECT_TRUE(smoothed.is_dummy(1));
    EXPECT_FALSE(smoothed.is_dummy(0));
    EXPECT_EQ(smoothed.label(1), 1u);
}

}  // namespace
}  // namespace dbsp::model
