/// Tests for the parallel superstep execution layer: the worker pool
/// (util::parallel_for), the shard accumulators and their deterministic
/// cluster-order merge, the trace buffer replay, sharded delivery, and the
/// end-to-end bit-identity of every threaded executor against its serial run.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algos/bitonic_sort.hpp"
#include "algos/matmul.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/naive_hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "model/superstep_exec.hpp"
#include "trace/sink.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dbsp {
namespace {

using model::AccessFunction;
using model::ContextLayout;
using model::ProcId;
using model::Word;

// --- util::parallel_for ----------------------------------------------------

TEST(ParallelFor, CoversEveryIndexOnce) {
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    util::parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
    bool called = false;
    util::parallel_for(0, [&](std::size_t) { called = true; }, 4);
    EXPECT_FALSE(called);
    util::parallel_for_blocked(0, 16, [&](std::size_t, std::size_t) { called = true; }, 4);
    EXPECT_FALSE(called);
}

TEST(ParallelFor, BlockedCoversDisjointAlignedBlocks) {
    constexpr std::size_t n = 1000, block = 64;
    std::vector<std::atomic<int>> hits(n);
    util::parallel_for_blocked(
        n, block,
        [&](std::size_t begin, std::size_t end) {
            EXPECT_EQ(begin % block, 0u);
            EXPECT_LE(end, n);
            EXPECT_LE(end - begin, block);
            for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        },
        4);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, SerialWhenThreadsIsOne) {
    // threads == 1 must not involve the pool: the body runs on this thread.
    const auto caller = std::this_thread::get_id();
    util::parallel_for(100, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    }, 1);
}

TEST(ParallelFor, PropagatesFirstException) {
    EXPECT_THROW(
        util::parallel_for(
            256,
            [&](std::size_t i) {
                if (i == 137) throw std::runtime_error("boom");
            },
            4),
        std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunInline) {
    // A parallel_for inside a parallel_for region must not deadlock or
    // oversubscribe: the inner call runs inline on the worker.
    std::atomic<int> total{0};
    util::parallel_for(
        8,
        [&](std::size_t) {
            util::parallel_for(8, [&](std::size_t) { total.fetch_add(1); }, 4);
        },
        4);
    EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, ParseThreadCountIsStrict) {
    EXPECT_EQ(util::parse_thread_count("4"), std::size_t{4});
    EXPECT_FALSE(util::parse_thread_count("0").has_value());
    EXPECT_FALSE(util::parse_thread_count("4x").has_value());
    EXPECT_FALSE(util::parse_thread_count("").has_value());
    EXPECT_FALSE(util::parse_thread_count("-2").has_value());
}

// --- trace::BufferSink replay ---------------------------------------------

TEST(BufferSink, MergeReplayMatchesDirectEventStream) {
    // Prefix table for range events: f(x) = x over 16 addresses.
    std::vector<double> prefix(17, 0.0);
    for (std::size_t i = 0; i < 16; ++i) prefix[i + 1] = prefix[i] + static_cast<double>(i);

    // Events applied directly to one sink...
    trace::Sink direct;
    direct.access(3, 2.5);
    direct.access_range(prefix, 2, 9);
    direct.charge(7.0);
    direct.block_op(prefix, 4.25, 2, {{1, 4}, {8, 11}});
    direct.block_transfer(0, 8, 4, 1.5, 5.5);
    direct.messages(3);

    // ...and the same events buffered, then merged into a fresh sink.
    trace::BufferSink buffer;
    EXPECT_TRUE(buffer.empty());
    buffer.access(3, 2.5);
    buffer.access_range(prefix, 2, 9);
    buffer.charge(7.0);
    buffer.block_op(prefix, 4.25, 2, {{1, 4}, {8, 11}});
    buffer.block_transfer(0, 8, 4, 1.5, 5.5);
    buffer.messages(3);
    EXPECT_FALSE(buffer.empty());

    trace::Sink merged;
    merged.merge_replay(buffer);
    EXPECT_EQ(merged.total(), direct.total());  // bit-identical fold
    EXPECT_EQ(buffer.total(), direct.total());

    buffer.clear();
    EXPECT_TRUE(buffer.empty());
    EXPECT_EQ(buffer.total(), 0.0);
}

TEST(BufferSink, MergeReplayAccumulatesOntoExistingTotal) {
    trace::Sink sink;
    sink.charge(10.0);
    trace::BufferSink buffer;
    buffer.access(0, 1.25);
    buffer.charge(2.0);
    sink.merge_replay(buffer);
    EXPECT_EQ(sink.total(), 10.0 + (0.0 + 1.25 + 2.0));
}

// --- sharded delivery ------------------------------------------------------

namespace {

/// Build contexts for `count` processors where each sends `sends` messages to
/// (p + k + 1) % count, payloads derived from (p, k).
std::vector<std::vector<Word>> make_sending_contexts(const ContextLayout& layout,
                                                     std::uint64_t count,
                                                     std::size_t sends) {
    std::vector<std::vector<Word>> contexts(count,
                                            std::vector<Word>(layout.context_words(), 0));
    for (std::uint64_t p = 0; p < count; ++p) {
        contexts[p][layout.out_count_offset()] = sends;
        for (std::size_t k = 0; k < sends; ++k) {
            const std::size_t off = layout.out_record_offset(k);
            contexts[p][off] = (p + k + 1) % count;  // dest
            contexts[p][off + 1] = 1000 * p + k;     // payload0
            contexts[p][off + 2] = 7 * p + k;        // payload1
        }
    }
    return contexts;
}

}  // namespace

TEST(ShardedDelivery, MatchesSerialDeliveryExactly) {
    const ContextLayout layout{.data_words = 4, .max_messages = 6};
    // Spans several 64-proc shards, with a ragged tail.
    const std::uint64_t count = 200;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        auto serial = make_sending_contexts(layout, count, 3);
        auto sharded = make_sending_contexts(layout, count, 3);
        model::VectorAccessorSource serial_src(serial, layout.context_words());
        model::VectorAccessorSource sharded_src(sharded, layout.context_words());
        model::DeliveryScratch scratch;
        const std::size_t max_serial =
            model::deliver_messages(layout, 0, count, serial_src, 5);
        const std::size_t max_sharded = model::deliver_messages_sharded(
            layout, 0, count, sharded_src, 5, scratch, threads);
        EXPECT_EQ(max_serial, max_sharded) << "threads=" << threads;
        EXPECT_EQ(serial, sharded) << "threads=" << threads;
    }
}

TEST(ShardedDelivery, EmptyShardsAndZeroMessages) {
    const ContextLayout layout{.data_words = 2, .max_messages = 2};
    const std::uint64_t count = 130;  // three shards, the last nearly empty
    auto contexts = make_sending_contexts(layout, count, 0);
    const auto before = contexts;
    model::VectorAccessorSource src(contexts, layout.context_words());
    model::DeliveryScratch scratch;
    const std::size_t got =
        model::deliver_messages_sharded(layout, 0, count, src, 0, scratch, 4);
    EXPECT_EQ(got, 0u);
    EXPECT_EQ(contexts, before);  // nothing moved
}

TEST(ShardedDelivery, ScratchReusedAcrossSources) {
    // The same scratch driven by two different owners must reset its shards.
    const ContextLayout layout{.data_words = 2, .max_messages = 4};
    model::DeliveryScratch scratch;
    for (int round = 0; round < 2; ++round) {
        auto a = make_sending_contexts(layout, 70, 2);
        auto b = make_sending_contexts(layout, 70, 2);
        model::VectorAccessorSource sa(a, layout.context_words());
        model::VectorAccessorSource sb(b, layout.context_words());
        const std::size_t ra = model::deliver_messages_sharded(layout, 0, 70, sa, 0,
                                                               scratch, 2);
        const std::size_t rb = model::deliver_messages_sharded(layout, 0, 70, sb, 0,
                                                               scratch, 2);
        EXPECT_EQ(ra, rb);
        EXPECT_EQ(a, b);
    }
}

// --- executor bit-identity across thread counts ----------------------------

namespace {

std::unique_ptr<model::Program> make_bitonic(std::uint64_t v) {
    SplitMix64 rng(99);
    std::vector<Word> keys(v);
    for (auto& k : keys) k = rng.next();
    return std::make_unique<algo::BitonicSortProgram>(keys);
}

}  // namespace

TEST(ParallelExecutors, DirectMachineBitIdentical) {
    const auto program = make_bitonic(64);
    const AccessFunction f = AccessFunction::polynomial(0.5);
    model::DbspMachine serial(f);
    const auto ref = serial.run(*program);
    for (const std::size_t t : {std::size_t{2}, std::size_t{4}}) {
        trace::Sink sink;
        model::DbspMachine par(f);
        par.set_threads(t);
        par.set_trace(&sink);
        const auto got = par.run(*program);
        EXPECT_EQ(got.time, ref.time) << "threads=" << t;
        EXPECT_EQ(got.contexts, ref.contexts) << "threads=" << t;
        EXPECT_EQ(sink.total(), got.time) << "threads=" << t;
    }
}

TEST(ParallelExecutors, HmmSimulatorBitIdentical) {
    const auto program = make_bitonic(64);
    const AccessFunction f = AccessFunction::polynomial(0.5);
    const std::size_t mu = program->layout().context_words();
    const auto labels = core::hmm_label_set(f, mu, 64);
    auto smoothed = core::smooth(*program, labels);
    const auto ref = core::HmmSimulator(f).simulate(*smoothed);
    for (const std::size_t t : {std::size_t{2}, std::size_t{4}}) {
        trace::Sink sink;
        core::HmmSimulator::Options opt;
        opt.threads = t;
        opt.trace = &sink;
        const auto got = core::HmmSimulator(f, opt).simulate(*smoothed);
        EXPECT_EQ(got.hmm_cost, ref.hmm_cost) << "threads=" << t;
        EXPECT_EQ(got.words_touched, ref.words_touched) << "threads=" << t;
        EXPECT_EQ(got.rounds, ref.rounds) << "threads=" << t;
        EXPECT_EQ(got.contexts, ref.contexts) << "threads=" << t;
        EXPECT_EQ(sink.total(), got.hmm_cost) << "threads=" << t;
    }
}

TEST(ParallelExecutors, BtSimulatorBitIdentical) {
    const auto program = make_bitonic(32);
    const AccessFunction f = AccessFunction::polynomial(0.35);
    const std::size_t mu = program->layout().context_words();
    const auto labels = core::bt_label_set(f, mu, 32);
    auto smoothed = core::smooth(*program, labels);
    const auto ref = core::BtSimulator(f).simulate(*smoothed);
    for (const std::size_t t : {std::size_t{2}, std::size_t{4}}) {
        trace::Sink sink;
        core::BtSimulator::Options opt;
        opt.threads = t;
        opt.trace = &sink;
        const auto got = core::BtSimulator(f, opt).simulate(*smoothed);
        EXPECT_EQ(got.bt_cost, ref.bt_cost) << "threads=" << t;
        EXPECT_EQ(got.compute_cost, ref.compute_cost) << "threads=" << t;
        EXPECT_EQ(got.deliver_cost, ref.deliver_cost) << "threads=" << t;
        EXPECT_EQ(got.layout_cost, ref.layout_cost) << "threads=" << t;
        EXPECT_EQ(got.word_access, ref.word_access) << "threads=" << t;
        EXPECT_EQ(got.block_transfers, ref.block_transfers) << "threads=" << t;
        EXPECT_EQ(got.contexts, ref.contexts) << "threads=" << t;
        EXPECT_EQ(sink.total(), got.bt_cost) << "threads=" << t;
    }
}

TEST(ParallelExecutors, NaiveHmmSimulatorBitIdentical) {
    const auto program = make_bitonic(64);
    const AccessFunction f = AccessFunction::logarithmic();
    const auto ref = core::NaiveHmmSimulator(f).simulate(*program);
    for (const std::size_t t : {std::size_t{2}, std::size_t{4}}) {
        trace::Sink sink;
        core::NaiveHmmSimulator::Options opt;
        opt.threads = t;
        opt.trace = &sink;
        const auto got = core::NaiveHmmSimulator(f, opt).simulate(*program);
        EXPECT_EQ(got.hmm_cost, ref.hmm_cost) << "threads=" << t;
        EXPECT_EQ(got.contexts, ref.contexts) << "threads=" << t;
        EXPECT_EQ(sink.total(), got.hmm_cost) << "threads=" << t;
    }
}

TEST(ParallelExecutors, SingleProcessorProgramIsUnaffected) {
    // v = 1: one cluster of size one everywhere — the degenerate edge of the
    // shard structure (single shard, single exec, no messages).
    const auto program = make_bitonic(1);
    const AccessFunction f = AccessFunction::polynomial(0.5);
    const std::size_t mu = program->layout().context_words();
    const auto labels = core::hmm_label_set(f, mu, 1);
    auto smoothed = core::smooth(*program, labels);
    const auto ref = core::HmmSimulator(f).simulate(*smoothed);
    core::HmmSimulator::Options opt;
    opt.threads = 4;
    const auto got = core::HmmSimulator(f, opt).simulate(*smoothed);
    EXPECT_EQ(got.hmm_cost, ref.hmm_cost);
    EXPECT_EQ(got.contexts, ref.contexts);

    model::DbspMachine par(f);
    par.set_threads(4);
    const auto direct = par.run(*program);
    model::DbspMachine ser(f);
    const auto direct_ref = ser.run(*program);
    EXPECT_EQ(direct.time, direct_ref.time);
    EXPECT_EQ(direct.contexts, direct_ref.contexts);
}

TEST(ParallelExecutors, MatmulAcrossThreadCounts) {
    // A second workload shape (heavier per-step compute, range accesses).
    SplitMix64 rng(7);
    std::vector<Word> a(64), b(64);
    for (auto& x : a) x = rng.next_below(1 << 12);
    for (auto& x : b) x = rng.next_below(1 << 12);
    algo::MatMulProgram program(a, b);
    const AccessFunction f = AccessFunction::polynomial(0.5);
    const std::size_t mu = program.layout().context_words();
    const auto labels = core::hmm_label_set(f, mu, 64);
    auto smoothed = core::smooth(program, labels);
    const auto ref = core::HmmSimulator(f).simulate(*smoothed);
    core::HmmSimulator::Options opt;
    opt.threads = 3;  // non-power-of-two worker count
    const auto got = core::HmmSimulator(f, opt).simulate(*smoothed);
    EXPECT_EQ(got.hmm_cost, ref.hmm_cost);
    EXPECT_EQ(got.contexts, ref.contexts);
}

}  // namespace
}  // namespace dbsp
