/// Tests for src/locality/cache_model.hpp and recorder.hpp: the stack-
/// distance MRC predictor against a brute-force LRU cache oracle replaying
/// the very streams the profiles were built from, monotonicity of the
/// predicted curve (including interpolated capacities), the RecordingSink's
/// linearization conventions, sysfs geometry parsing, and the
/// dbsp-cachemodel-v1 JSON shape.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "algos/bitonic_sort.hpp"
#include "algos/odd_even_sort.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "locality/cache_model.hpp"
#include "locality/recorder.hpp"
#include "locality/sink.hpp"
#include "report/json.hpp"
#include "trace/sink.hpp"
#include "util/rng.hpp"

namespace dbsp::locality {
namespace {

/// Brute-force fully-associative LRU oracle in the Mattson stack
/// formulation: a reference hits a capacity-C cache iff its depth in the
/// LRU stack (== reuse distance) is < C; cold references miss everywhere.
double lru_oracle_miss_ratio(const std::vector<trace::Addr>& stream,
                             std::uint64_t capacity) {
    if (stream.empty()) return 0.0;
    std::vector<trace::Addr> stack;  // front = most recently used
    std::uint64_t misses = 0;
    for (const trace::Addr x : stream) {
        const auto it = std::find(stack.begin(), stack.end(), x);
        if (it == stack.end()) {
            ++misses;  // cold
        } else {
            if (static_cast<std::uint64_t>(it - stack.begin()) >= capacity) ++misses;
            stack.erase(it);
        }
        stack.insert(stack.begin(), x);
    }
    return static_cast<double>(misses) / static_cast<double>(stream.size());
}

/// Profile + recorded stream of one simulated program, captured together so
/// the oracle replays exactly what the predictor saw.
struct ProfiledStream {
    LocalityProfile profile;
    std::vector<trace::Addr> stream;
};

template <typename Prog>
ProfiledStream profile_program(std::uint64_t n, std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<model::Word> keys(n);
    for (auto& k : keys) k = rng.next();
    Prog prog(keys);
    LocalitySink loc;
    RecordingSink rec;
    trace::MultiSink multi{&loc, &rec};
    const auto f = model::AccessFunction::polynomial(0.5);
    core::HmmSimulator::Options opt;
    opt.trace = &multi;
    auto sm = core::smooth(prog, core::hmm_label_set(f, prog.context_words(), n));
    core::HmmSimulator(f, opt).simulate(*sm);
    return {loc.profile(), rec.stream()};
}

/// A synthetic skewed stream fed through the per-word entry point: a hot set
/// revisited constantly plus a cold tail, so every capacity in the test grid
/// discriminates.
ProfiledStream profile_synthetic() {
    LocalitySink loc;
    RecordingSink rec;
    SplitMix64 rng(41);
    ProfiledStream out;
    for (int i = 0; i < 20000; ++i) {
        const trace::Addr x = (i % 3 != 0) ? rng.next_below(24)
                                           : 1000 + rng.next_below(3000);
        loc.access(x, 0.0);
        rec.access(x, 0.0);
    }
    out.profile = loc.profile();
    out.stream = rec.stream();
    return out;
}

TEST(CacheModel, MatchesBruteForceLruOracleBitExactlyAtPowerOfTwoCapacities) {
    const std::vector<ProfiledStream> cases = {
        profile_program<algo::BitonicSortProgram>(32, 1),
        profile_program<algo::OddEvenTranspositionSortProgram>(32, 2),
        profile_synthetic(),
    };
    const std::uint64_t capacities[] = {1, 2, 4, 16, 64, 256, 4096};
    for (std::size_t i = 0; i < cases.size(); ++i) {
        ASSERT_FALSE(cases[i].stream.empty());
        ASSERT_EQ(cases[i].stream.size(), cases[i].profile.accesses) << "case " << i;
        for (const std::uint64_t c : capacities) {
            ASSERT_TRUE(prediction_is_exact(c));
            // Bit-exact, not approximately equal: both sides are a ratio of
            // the same two integers (misses / references).
            ASSERT_EQ(predicted_miss_ratio(cases[i].profile, c),
                      lru_oracle_miss_ratio(cases[i].stream, c))
                << "case " << i << " capacity " << c;
        }
        // Capacity 0 caches nothing; an infinite cache still cold-misses.
        EXPECT_EQ(predicted_miss_ratio(cases[i].profile, 0), 1.0);
        EXPECT_EQ(lru_oracle_miss_ratio(cases[i].stream, 0), 1.0);
        const std::uint64_t huge = std::uint64_t{1} << 40;
        EXPECT_EQ(predicted_miss_ratio(cases[i].profile, huge),
                  lru_oracle_miss_ratio(cases[i].stream, huge));
    }
}

TEST(CacheModel, PredictedCurveIsMonotoneNonIncreasingAcrossInterpolation) {
    const ProfiledStream ps = profile_synthetic();
    double prev = predicted_miss_ratio(ps.profile, 0);
    EXPECT_EQ(prev, 1.0);
    // Every capacity from 1 to 4096 crosses each bucket boundary and every
    // interior (interpolated) point in between.
    for (std::uint64_t c = 1; c <= 4096; ++c) {
        const double miss = predicted_miss_ratio(ps.profile, c);
        ASSERT_LE(miss, prev + 1e-12) << "capacity " << c;
        ASSERT_GE(miss, 0.0);
        ASSERT_LE(miss, 1.0);
        prev = miss;
    }
    // The interpolated point sits between its bucket's endpoints.
    const double lo = predicted_miss_ratio(ps.profile, 16);
    const double mid = predicted_miss_ratio(ps.profile, 24);
    const double hi = predicted_miss_ratio(ps.profile, 32);
    EXPECT_FALSE(prediction_is_exact(24));
    EXPECT_LE(hi, mid);
    EXPECT_LE(mid, lo);
}

TEST(CacheModel, EmptyProfilePredictsZeroEverywhere) {
    const LocalityProfile empty;
    EXPECT_EQ(predicted_miss_ratio(empty, 0), 0.0);
    EXPECT_EQ(predicted_miss_ratio(empty, 1), 0.0);
    EXPECT_EQ(predicted_miss_ratio(empty, 12345), 0.0);
}

TEST(RecordingSink, MirrorsTheLocalitySinkLinearizationConventions) {
    RecordingSink rec;
    rec.access(7, 1.0);
    rec.access_range({}, 2, 5);            // 2, 3, 4 ascending, once per cell
    rec.block_op({}, 0.0, 2, {{10, 12}});  // 10,10,11,11 — touches consecutive
    rec.block_transfer(20, 30, 2, 0.0, 0.0);  // src range then dst range
    const std::vector<trace::Addr> expected = {7, 2, 3, 4, 10, 10, 11, 11,
                                               20, 21, 30, 31};
    EXPECT_EQ(rec.stream(), expected);
    EXPECT_EQ(rec.extent(), 32u);
    // Recording is observation-only: no cost is folded.
    EXPECT_EQ(rec.total(), 0.0);

    // The identical calls drive a LocalitySink to the identical reference
    // count — the contract that lets the oracle replay recorded streams
    // against profiles. mirror_costs = false because these hand-built events
    // carry no prefix table for the base cost fold (observation-only, like
    // the RecordingSink itself).
    LocalityOptions opts;
    opts.mirror_costs = false;
    LocalitySink loc(opts);
    loc.access(7, 1.0);
    loc.access_range({}, 2, 5);
    loc.block_op({}, 0.0, 2, {{10, 12}});
    loc.block_transfer(20, 30, 2, 0.0, 0.0);
    EXPECT_EQ(loc.profile().accesses, rec.stream().size());

    rec.clear();
    EXPECT_TRUE(rec.stream().empty());
    EXPECT_EQ(rec.extent(), 0u);
}

TEST(CacheModel, LevelGeometriesAreTheDoublingBands) {
    const auto levels = level_geometries(3);
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_EQ(levels[0].name, "hmm-level-1");
    EXPECT_EQ(levels[0].capacity_words, 2u);
    EXPECT_EQ(levels[2].capacity_words, 8u);
    for (const auto& g : levels) EXPECT_EQ(g.source, "model");
    EXPECT_TRUE(level_geometries(0).empty());
}

TEST(CacheModel, HostGeometriesParseSysfsAndDegradeToEmpty) {
    namespace fs = std::filesystem;
    const fs::path root = fs::temp_directory_path() / "dbsp_cache_model_test_sysfs";
    fs::remove_all(root);
    const auto write = [&](const char* index, const char* file, const char* text) {
        fs::create_directories(root / index);
        std::ofstream(root / index / file) << text << "\n";
    };
    write("index0", "level", "1");
    write("index0", "type", "Data");
    write("index0", "size", "48K");
    write("index1", "level", "1");
    write("index1", "type", "Instruction");  // skipped: not a data cache
    write("index1", "size", "32K");
    write("index2", "level", "2");
    write("index2", "type", "Unified");
    write("index2", "size", "2M");

    const auto geos = host_cache_geometries(/*word_bytes=*/8, root.string());
    ASSERT_EQ(geos.size(), 2u);
    EXPECT_EQ(geos[0].name, "L1d");
    EXPECT_EQ(geos[0].capacity_words, 48u * 1024 / 8);
    EXPECT_EQ(geos[0].source, "sysfs");
    EXPECT_EQ(geos[1].name, "L2");
    EXPECT_EQ(geos[1].capacity_words, 2u * 1024 * 1024 / 8);
    // Line-granularity capacities for replays that pin one word per line.
    const auto lines = host_cache_geometries(/*word_bytes=*/64, root.string());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].capacity_words, 48u * 1024 / 64);
    fs::remove_all(root);

    EXPECT_TRUE(host_cache_geometries(8, (root / "absent").string()).empty());
}

TEST(CacheModel, JsonSectionCarriesMrcAndPerGeometryPredictions) {
    const ProfiledStream ps = profile_synthetic();
    std::vector<CacheGeometry> geos = level_geometries(2);
    geos.push_back({"L1d", "sysfs", 6144});  // non-power-of-two: interpolated
    const report::Json j = cache_model_json(ps.profile, geos);
    EXPECT_EQ(j["schema"].as_string(), "dbsp-cachemodel-v1");
    EXPECT_EQ(j["accesses"].as_double(), static_cast<double>(ps.profile.accesses));
    const report::Json& mrc = j["mrc"];
    ASSERT_TRUE(mrc["log2_capacity_words"].is_array());
    ASSERT_EQ(mrc["log2_capacity_words"].size(), mrc["miss_ratio"].size());
    // The curve in the artifact is the predictor evaluated at powers of two.
    for (std::size_t i = 0; i < mrc["miss_ratio"].size(); ++i) {
        const auto l = static_cast<unsigned>(mrc["log2_capacity_words"].items()[i].as_double());
        EXPECT_EQ(mrc["miss_ratio"].items()[i].as_double(),
                  predicted_miss_ratio(ps.profile, std::uint64_t{1} << l));
    }
    ASSERT_EQ(j["geometries"].size(), 3u);
    const report::Json& l1d = j["geometries"].items()[2];
    EXPECT_EQ(l1d["name"].as_string(), "L1d");
    EXPECT_FALSE(l1d["exact"].as_bool(true));
    EXPECT_EQ(l1d["predicted_miss_ratio"].as_double(),
              predicted_miss_ratio(ps.profile, 6144));
    EXPECT_TRUE(j["geometries"].items()[0]["exact"].as_bool(false));
}

}  // namespace
}  // namespace dbsp::locality
