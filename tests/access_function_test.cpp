#include <gtest/gtest.h>

#include <cmath>

#include "model/access_function.hpp"
#include "model/cost_table.hpp"

namespace dbsp::model {
namespace {

TEST(AccessFunction, PolynomialValues) {
    const auto f = AccessFunction::polynomial(0.5);
    EXPECT_DOUBLE_EQ(f(0), 1.0);
    EXPECT_DOUBLE_EQ(f(3), 2.0);
    EXPECT_DOUBLE_EQ(f(255), 16.0);
    EXPECT_TRUE(f.is_nondecreasing(1 << 20));
}

TEST(AccessFunction, LogarithmicValues) {
    const auto f = AccessFunction::logarithmic();
    EXPECT_DOUBLE_EQ(f(0), 1.0);
    EXPECT_DOUBLE_EQ(f(2), 2.0);
    EXPECT_DOUBLE_EQ(f(14), 4.0);
    EXPECT_TRUE(f.is_nondecreasing(1 << 20));
}

TEST(AccessFunction, ConstantAndLinear) {
    EXPECT_DOUBLE_EQ(AccessFunction::constant(2.5)(123456), 2.5);
    EXPECT_DOUBLE_EQ(AccessFunction::linear()(9), 10.0);
}

TEST(AccessFunction, UniformityConstants) {
    // f(2x)/f(x): 2^alpha for polynomials, -> 1 for log, unbounded growth
    // ratio 2 for linear.
    EXPECT_NEAR(AccessFunction::polynomial(0.5).uniformity_constant(1 << 24),
                std::sqrt(2.0), 0.02);
    EXPECT_NEAR(AccessFunction::polynomial(0.35).uniformity_constant(1 << 24),
                std::pow(2.0, 0.35), 0.02);
    EXPECT_LT(AccessFunction::logarithmic().uniformity_constant(1 << 24), 2.0);
    EXPECT_NEAR(AccessFunction::linear().uniformity_constant(1 << 24), 2.0, 0.01);
    EXPECT_DOUBLE_EQ(AccessFunction::constant().uniformity_constant(1 << 24), 1.0);
}

TEST(AccessFunction, IteratedFunction) {
    const auto f = AccessFunction::polynomial(0.5);
    EXPECT_DOUBLE_EQ(f.iterate(65536.0, 0), 65536.0);
    EXPECT_DOUBLE_EQ(f.iterate(65536.0, 1), 256.0);
    EXPECT_DOUBLE_EQ(f.iterate(65536.0, 2), 16.0);
    EXPECT_DOUBLE_EQ(f.iterate(65536.0, 3), 4.0);
}

TEST(AccessFunction, StarPolynomialIsLogLog) {
    const auto f = AccessFunction::polynomial(0.5);
    // x^(1/2): k applications of sqrt reach <= 1 only at x <= 1, so f* counts
    // doublings of the exponent: f*(2^2^k) ~ k + ... (log log growth).
    EXPECT_EQ(f.star(2.0), 1u);
    const unsigned s16 = f.star(65536.0);
    const unsigned s32 = f.star(static_cast<double>(1ull << 32));
    EXPECT_GT(s16, 2u);
    EXPECT_LE(s32, s16 + 2);  // doubly-logarithmic: one more doubling level
}

TEST(AccessFunction, StarLogarithmicIsLogStar) {
    const auto f = AccessFunction::logarithmic();
    EXPECT_LE(f.star(1e18), 6u);  // log*(2^60) = 5-ish
    EXPECT_GE(f.star(1e18), 3u);
}

TEST(AccessFunction, StarCapTerminates) {
    // A pure function that never descends must hit the cap.
    const auto f = AccessFunction::custom(
        "stuck", [](double) { return 5.0; }, [](double) { return 5.0; });
    EXPECT_EQ(f.star(100.0, 17), 17u);
}

TEST(CostTable, SingleCellCosts) {
    CostTable t(AccessFunction::polynomial(0.5), 1024);
    EXPECT_DOUBLE_EQ(t.cost(0), 1.0);
    EXPECT_DOUBLE_EQ(t.cost(3), 2.0);
}

TEST(CostTable, RangeCostMatchesSum) {
    CostTable t(AccessFunction::logarithmic(), 4096);
    double manual = 0;
    for (std::uint64_t x = 100; x < 300; ++x) manual += t.cost(x);
    EXPECT_NEAR(t.range_cost(100, 300), manual, 1e-9);
    EXPECT_DOUBLE_EQ(t.range_cost(5, 5), 0.0);
}

TEST(CostTable, ScanCostIsThetaNfN) {
    // Fact 1: scanning the first n cells costs Theta(n f(n)).
    for (const auto& f :
         {AccessFunction::polynomial(0.35), AccessFunction::polynomial(0.5),
          AccessFunction::logarithmic()}) {
        CostTable t(f, 1 << 18);
        for (std::uint64_t n : {1u << 10, 1u << 14, 1u << 18}) {
            const double ratio = t.scan_cost(n) / (static_cast<double>(n) * f(n - 1));
            EXPECT_GT(ratio, 0.4) << f.name() << " n=" << n;
            EXPECT_LT(ratio, 1.1) << f.name() << " n=" << n;
        }
    }
}

}  // namespace
}  // namespace dbsp::model
