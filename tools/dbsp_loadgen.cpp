/// dbsp_loadgen — load generator + conformance client for dbsp_serve.
///
/// Drives a daemon (optionally spawning one with --spawn) through four legs:
///   1. correctness: for every distinct spec, a cache-miss request followed
///      by a cache-hit request; each reply must be byte-identical to the
///      locally computed serve::run_to_json document (the same runner
///      dbsp_explore --spec uses), with cached=false then cached=true;
///   2. malformed barrage: canned adversarial lines (broken JSON, nesting
///      bombs, oversized geometry, degenerate sampling rates, unknown
///      fields) — every one must come back as a structured
///      {"ok":false,...} reply with the daemon still answering pings;
///   3. latency: single round-trip run requests over the warmed cache,
///      yielding the p50/p99 latency series;
///   4. batched throughput: the same requests pipelined in batches.
///
/// With --out it writes BENCH_serve.json, a dbsp-experiment-v1 artifact
/// (id "serve") whose checks are all deterministic — byte-identity
/// mismatches, unstructured error count and daemon exit status must be 0,
/// and the cache-hit ratio must reach its closed-form expectation — while
/// the wall-clock numbers (p50/p99 ms, requests/s) ride along as ungated
/// series. Throughput numbers from a 1-CPU dev container are NOT
/// comparable across machines; only the deterministic checks are.
///
/// Usage:
///   dbsp_loadgen --socket PATH [--spawn DBSP_SERVE_BIN] [--requests N]
///                [--distinct K] [--batch B] [--threads N] [--out FILE]
///
/// Exit status: 0 when every check passes, 1 otherwise, 2 on bad flags.

#include <sys/wait.h>
#include <unistd.h>

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "check/program_gen.hpp"
#include "check/trace_io.hpp"
#include "report/experiment.hpp"
#include "report/json.hpp"
#include "report/provenance.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/runner.hpp"

namespace {

using namespace dbsp;

[[noreturn]] void usage(const char* self) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--spawn DBSP_SERVE_BIN] [--requests N]\n"
                 "          [--distinct K] [--batch B] [--threads N] [--out FILE]\n",
                 self);
    std::exit(2);
}

[[noreturn]] void bad_arg(const char* flag, const char* value, const char* expected) {
    std::fprintf(stderr, "dbsp_loadgen: invalid %s \"%s\" (expected %s)\n", flag, value,
                 expected);
    std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* value) {
    std::uint64_t n = 0;
    const char* end = value + std::strlen(value);
    const auto [ptr, ec] = std::from_chars(value, end, n, 10);
    if (ec != std::errc{} || ptr != end || value == end) {
        bad_arg(flag, value, "an unsigned integer");
    }
    return n;
}

std::string run_line(const check::ProgramSpec& spec) {
    report::Json req = report::Json::object();
    req.set("op", "run");
    req.set("spec", check::serialize_spec(spec));
    return req.dump_compact();
}

double quantile(std::vector<double> sorted, double q) {
    if (sorted.empty()) return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[std::min(idx == 0 ? 0 : idx - 1, sorted.size() - 1)];
}

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// The barrage: every line must produce {"ok":false,"error":...}. Comments
/// name the defense each line probes.
std::vector<std::string> malformed_lines(const std::string& valid_spec) {
    report::Json rate_high = report::Json::object();
    rate_high.set("op", "run");
    rate_high.set("spec", valid_spec);
    report::Json loc = report::Json::object();
    loc.set("mode", "sampled");
    loc.set("rate", 1.5);
    rate_high.set("locality", std::move(loc));

    report::Json rate_zero = report::Json::object();
    rate_zero.set("op", "run");
    rate_zero.set("spec", valid_spec);
    report::Json loc0 = report::Json::object();
    loc0.set("mode", "sampled");
    loc0.set("rate", 0.0);
    rate_zero.set("locality", std::move(loc0));

    std::vector<std::string> lines = {
        "this is not json",                                     // not JSON at all
        "{\"op\":\"run\"}",                                     // missing spec
        "{\"op\":\"nope\"}",                                    // unknown op
        "{\"op\":\"ping\",\"x\":1}",                            // unknown field
        "{\"op\":\"run\",\"spec\":42}",                         // wrong type
        std::string(64, '[') ,                                  // nesting bomb
        "{\"op\":\"run\",\"spec\":\"dbsp-spec v1\\nv 4\"}",     // truncated spec
        // duplicate header section
        "{\"op\":\"run\",\"spec\":\"dbsp-spec v1\\nv 4\\nv 4\\nB 1\\nsteps 1\\n"
        "labels 0\\nend\\n\"}",
        // geometry bomb: v far beyond the parser cap must error, not OOM
        "{\"op\":\"run\",\"spec\":\"dbsp-spec v1\\nv 1152921504606846976\\nB 1\\n"
        "steps 1\\nlabels 0\\nend\\n\"}",
        // degenerate sampling rates (NaN/inf don't even tokenize as JSON)
        rate_high.dump_compact(),
        rate_zero.dump_compact(),
        "{\"op\":\"run\",\"spec\":\"x\",\"locality\":{\"mode\":\"sampled\","
        "\"rate\":nan}}",
    };
    return lines;
}

}  // namespace

int main(int argc, char** argv) {
    std::string socket_path;
    std::string spawn_bin;
    std::string out_path;
    std::uint64_t requests = 64;
    std::uint64_t distinct = 8;
    std::uint64_t batch = 8;
    std::uint64_t threads = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--socket") {
            socket_path = next();
        } else if (arg == "--spawn") {
            spawn_bin = next();
        } else if (arg == "--requests") {
            requests = parse_u64("--requests", next());
            if (requests == 0) bad_arg("--requests", "0", "a positive count");
        } else if (arg == "--distinct") {
            distinct = parse_u64("--distinct", next());
            if (distinct == 0) bad_arg("--distinct", "0", "a positive count");
        } else if (arg == "--batch") {
            batch = parse_u64("--batch", next());
            if (batch == 0) bad_arg("--batch", "0", "a positive count");
        } else if (arg == "--threads") {
            threads = parse_u64("--threads", next());
        } else if (arg == "--out") {
            out_path = next();
        } else {
            usage(argv[0]);
        }
    }
    if (socket_path.empty()) usage(argv[0]);

    pid_t daemon_pid = -1;
    if (!spawn_bin.empty()) {
        daemon_pid = ::fork();
        if (daemon_pid < 0) {
            std::perror("dbsp_loadgen: fork");
            return 1;
        }
        if (daemon_pid == 0) {
            const std::string threads_str = std::to_string(threads);
            ::execl(spawn_bin.c_str(), spawn_bin.c_str(), "--socket",
                    socket_path.c_str(), "--threads", threads_str.c_str(),
                    static_cast<char*>(nullptr));
            std::perror("dbsp_loadgen: exec dbsp_serve");
            ::_exit(127);
        }
    }

    serve::Client client;
    std::string error;
    bool connected = false;
    for (int attempt = 0; attempt < 500; ++attempt) {
        if (client.connect(socket_path, &error)) {
            connected = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!connected) {
        std::fprintf(stderr, "dbsp_loadgen: cannot connect to \"%s\": %s\n",
                     socket_path.c_str(), error.c_str());
        return 1;
    }

    // Distinct workloads: deterministic fuzz-generator specs, so the same
    // flags reproduce the same byte streams everywhere.
    check::GenConfig config;
    std::vector<check::ProgramSpec> specs;
    std::vector<std::string> expected;  // run_to_json bytes per spec
    for (std::uint64_t i = 0; i < distinct; ++i) {
        specs.push_back(check::generate_spec(config, 1000 + i));
        expected.push_back(serve::run_to_json(specs.back(), serve::RunOptions{}));
    }

    // Leg 1: byte-identity on the miss and hit paths.
    std::uint64_t mismatches = 0;
    std::vector<double> miss_latency;
    for (std::uint64_t i = 0; i < distinct; ++i) {
        const std::string line = run_line(specs[i]);
        for (int leg = 0; leg < 2; ++leg) {
            std::string reply;
            const double start = now_ms();
            if (!client.request(line, &reply, &error)) {
                std::fprintf(stderr, "dbsp_loadgen: request failed: %s\n", error.c_str());
                return 1;
            }
            if (leg == 0) miss_latency.push_back(now_ms() - start);
            const std::string want = serve::run_reply(expected[i], /*cached=*/leg == 1);
            if (reply != want) {
                ++mismatches;
                std::fprintf(stderr,
                             "dbsp_loadgen: reply mismatch for spec %llu (%s leg)\n",
                             static_cast<unsigned long long>(i),
                             leg == 0 ? "miss" : "hit");
            }
        }
    }

    // Leg 2: malformed barrage — structured errors, daemon stays up.
    std::uint64_t unstructured = 0;
    for (const std::string& line : malformed_lines(check::serialize_spec(specs[0]))) {
        std::string reply;
        if (!client.request(line, &reply, &error)) {
            std::fprintf(stderr, "dbsp_loadgen: connection died on malformed input\n");
            ++unstructured;
            if (!client.connect(socket_path, &error)) break;
            continue;
        }
        const auto doc = report::Json::parse(reply);
        if (!doc.has_value() || (*doc)["ok"].as_bool(true) ||
            (*doc)["error"].as_string().empty()) {
            ++unstructured;
            std::fprintf(stderr, "dbsp_loadgen: non-structured reply: %s\n",
                         reply.c_str());
        }
    }
    {
        std::string reply;
        if (!client.request("{\"op\":\"ping\"}", &reply, &error) ||
            reply.find("\"pong\":true") == std::string::npos) {
            std::fprintf(stderr, "dbsp_loadgen: daemon not answering after barrage\n");
            ++unstructured;
        }
    }

    // Leg 3: single round-trip latency over the warmed cache.
    std::vector<double> latency;
    for (std::uint64_t i = 0; i < requests; ++i) {
        const std::string line = run_line(specs[i % distinct]);
        std::string reply;
        const double start = now_ms();
        if (!client.request(line, &reply, &error)) {
            std::fprintf(stderr, "dbsp_loadgen: request failed: %s\n", error.c_str());
            return 1;
        }
        latency.push_back(now_ms() - start);
    }

    // Leg 4: pipelined batches.
    const double batch_start = now_ms();
    for (std::uint64_t done = 0; done < requests;) {
        const std::uint64_t n = std::min<std::uint64_t>(batch, requests - done);
        std::vector<std::string> lines;
        for (std::uint64_t k = 0; k < n; ++k) {
            lines.push_back(run_line(specs[(done + k) % distinct]));
        }
        std::vector<std::string> replies;
        if (!client.request_batch(lines, &replies, &error)) {
            std::fprintf(stderr, "dbsp_loadgen: batch failed: %s\n", error.c_str());
            return 1;
        }
        done += n;
    }
    const double batch_seconds = (now_ms() - batch_start) / 1000.0;

    // Cache accounting from the server's own stats.
    double hit_ratio = 0.0;
    {
        std::string reply;
        if (client.request("{\"op\":\"stats\"}", &reply, &error)) {
            const auto doc = report::Json::parse(reply);
            if (doc.has_value()) {
                const report::Json& cache = (*doc)["stats"]["cache"];
                const double hits = cache["hits"].as_double();
                const double misses = cache["misses"].as_double();
                if (hits + misses > 0) hit_ratio = hits / (hits + misses);
            }
        }
    }
    // Expectation: `distinct` misses from leg 1, everything else hits.
    const double total_runs = static_cast<double>(2 * distinct + 2 * requests);
    const double expected_ratio =
        (total_runs - static_cast<double>(distinct)) / total_runs;

    // Shutdown + exit-status check (only meaningful for a spawned daemon).
    double daemon_exit = 0.0;
    {
        std::string reply;
        client.request("{\"op\":\"shutdown\"}", &reply, &error);
        client.close();
        if (daemon_pid > 0) {
            int status = 0;
            if (::waitpid(daemon_pid, &status, 0) != daemon_pid ||
                !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
                daemon_exit = 1.0;
            }
        }
    }

    const double p50 = quantile(latency, 0.50);
    const double p99 = quantile(latency, 0.99);
    const double rps = batch_seconds > 0
                           ? static_cast<double>(requests) / batch_seconds
                           : 0.0;
    std::printf("serve load: %llu requests over %llu specs  p50 %.3f ms  p99 %.3f ms  "
                "batched %.0f req/s  cache-hit %.4f (expected %.4f)\n",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(distinct), p50, p99, rps, hit_ratio,
                expected_ratio);

    report::ExperimentResult result;
    result.id = "serve";
    result.title = "SERVE  simulation-as-a-service daemon";
    result.claim = "serve replies are byte-identical to offline runs on miss and hit "
                   "paths, malformed input yields structured errors, and the result "
                   "cache reaches its closed-form hit ratio";
    result.series.push_back({"latency_ms", [&] {
                                 std::vector<double> xs(latency.size());
                                 for (std::size_t i = 0; i < xs.size(); ++i) {
                                     xs[i] = static_cast<double>(i + 1);
                                 }
                                 return xs;
                             }(),
                             latency});
    result.series.push_back({"miss_latency_ms", [&] {
                                 std::vector<double> xs(miss_latency.size());
                                 for (std::size_t i = 0; i < xs.size(); ++i) {
                                     xs[i] = static_cast<double>(i + 1);
                                 }
                                 return xs;
                             }(),
                             miss_latency});
    result.series.push_back({"latency_quantiles_ms", {50.0, 99.0}, {p50, p99}});
    result.series.push_back({"batched_throughput_rps", {1.0}, {rps}});

    auto push_check = [&](const std::string& label, const std::string& kind,
                          double measured, double predicted) {
        report::Check c;
        c.label = label;
        c.id = report::ExperimentResult::slugify(label);
        c.kind = kind;
        c.measured = measured;
        c.predicted = predicted;
        c.tolerance = 0.0;
        c.pass = report::Check::evaluate(kind, measured, predicted, 0.0);
        std::printf("%-52s measured %.4f (%s %.4f) [%s]\n", label.c_str(), measured,
                    kind == "max" ? "<=" : ">=", predicted, c.pass ? "pass" : "FAIL");
        result.checks.push_back(c);
    };
    push_check("byte-identity mismatches (miss+hit legs)", "max",
               static_cast<double>(mismatches), 0.0);
    push_check("unstructured replies to malformed input", "max",
               static_cast<double>(unstructured), 0.0);
    push_check("daemon exit status", "max", daemon_exit, 0.0);
    push_check("cache-hit ratio", "min", hit_ratio, expected_ratio);

    std::size_t passed = 0;
    for (const auto& c : result.checks) passed += c.pass ? 1 : 0;
    std::printf("\nserve: %zu/%zu checks pass -> %s\n", passed, result.checks.size(),
                result.pass() ? "PASS" : "FAIL");

    if (!out_path.empty()) {
        std::string write_error;
        if (!result.to_json(report::Provenance::collect(), true)
                 .save_file(out_path, &write_error)) {
            std::fprintf(stderr, "dbsp_loadgen: cannot write %s: %s\n", out_path.c_str(),
                         write_error.c_str());
            return 2;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    return result.pass() ? 0 : 1;
}
