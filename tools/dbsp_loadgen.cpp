/// dbsp_loadgen — load generator + conformance client for dbsp_serve.
///
/// Drives a daemon (optionally spawning one with --spawn) through four legs:
///   1. correctness: for every distinct spec, a cache-miss request followed
///      by a cache-hit request; each reply must be byte-identical to the
///      locally computed serve::run_to_json document (the same runner
///      dbsp_explore --spec uses), with cached=false then cached=true;
///   2. malformed barrage: canned adversarial lines (broken JSON, nesting
///      bombs, oversized geometry, degenerate sampling rates, unknown
///      fields) — every one must come back as a structured
///      {"ok":false,...} reply with the daemon still answering pings;
///   3. latency: single round-trip run requests over the warmed cache,
///      yielding the p50/p99 latency series;
///   4. batched throughput: the same requests pipelined in batches.
///
/// With --out it writes BENCH_serve.json, a dbsp-experiment-v1 artifact
/// (id "serve") whose checks are all deterministic — byte-identity
/// mismatches, unstructured error count and daemon exit status must be 0,
/// and the cache-hit ratio must reach its closed-form expectation — while
/// the wall-clock numbers (p50/p99 ms, requests/s) ride along as ungated
/// series. Throughput numbers from a 1-CPU dev container are NOT
/// comparable across machines; only the deterministic checks are.
///
/// Usage:
///   dbsp_loadgen --socket PATH [--spawn DBSP_SERVE_BIN] [--requests N]
///                [--distinct K] [--batch B] [--threads N] [--out FILE]
///                [--telemetry]
///
/// --telemetry adds a fifth leg (PR 9): validate the op:"watch" frame
/// stream ("dbsp-telemetry-v1" schema) and the op:"spans" ring, and — when
/// --spawn is given — measure telemetry_overhead_pct: the daemon CPU-time
/// overhead (summed per-thread schedstat runtime, nanosecond resolution)
/// of running with --log at the default info level (the production
/// configuration) versus without, over interleaved batches of pipelined
/// cache-hit requests. CPU time rather than wall clock: contended 1-CPU
/// runners cannot resolve a 2% wall-time ceiling. Best of three passes is
/// gated at <= 2% with an absolute drift tolerance of 2
/// (see EXPERIMENTS.md). Debug-level logging (one JSONL event per request)
/// is deliberately outside the gate: on ~60 microsecond cache-hit requests
/// a per-request log line is a double-digit-percent tax by construction,
/// which is why it is not the default level.
///
/// Exit status: 0 when every check passes, 1 otherwise, 2 on bad flags.

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "check/program_gen.hpp"
#include "check/trace_io.hpp"
#include "report/experiment.hpp"
#include "report/json.hpp"
#include "report/provenance.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/runner.hpp"
#include "version.hpp"

namespace {

using namespace dbsp;

[[noreturn]] void usage(const char* self) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--spawn DBSP_SERVE_BIN] [--requests N]\n"
                 "          [--distinct K] [--batch B] [--threads N] [--out FILE]\n"
                 "          [--telemetry]\n",
                 self);
    std::exit(2);
}

[[noreturn]] void bad_arg(const char* flag, const char* value, const char* expected) {
    std::fprintf(stderr, "dbsp_loadgen: invalid %s \"%s\" (expected %s)\n", flag, value,
                 expected);
    std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* value) {
    std::uint64_t n = 0;
    const char* end = value + std::strlen(value);
    const auto [ptr, ec] = std::from_chars(value, end, n, 10);
    if (ec != std::errc{} || ptr != end || value == end) {
        bad_arg(flag, value, "an unsigned integer");
    }
    return n;
}

std::string run_line(const check::ProgramSpec& spec) {
    report::Json req = report::Json::object();
    req.set("op", "run");
    req.set("spec", check::serialize_spec(spec));
    return req.dump_compact();
}

double quantile(std::vector<double> sorted, double q) {
    if (sorted.empty()) return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[std::min(idx == 0 ? 0 : idx - 1, sorted.size() - 1)];
}

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Spawn a dbsp_serve with extra argv entries; -1 on fork failure.
pid_t spawn_daemon(const std::string& bin, const std::string& socket,
                   std::uint64_t threads, const std::vector<std::string>& extra) {
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    const std::string threads_str = std::to_string(threads);
    std::vector<const char*> args = {bin.c_str(), "--socket", socket.c_str(),
                                     "--threads", threads_str.c_str()};
    for (const std::string& a : extra) args.push_back(a.c_str());
    args.push_back(nullptr);
    ::execv(bin.c_str(), const_cast<char* const*>(args.data()));
    std::perror("dbsp_loadgen: exec dbsp_serve");
    ::_exit(127);
}

bool connect_with_retry(serve::Client* client, const std::string& socket_path,
                        std::string* error) {
    for (int attempt = 0; attempt < 500; ++attempt) {
        if (client->connect(socket_path, error)) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

/// Total CPU time of a process in nanoseconds: the sum of
/// se.sum_exec_runtime over every thread (/proc/<pid>/task/*/schedstat,
/// field 1). Nanosecond resolution where /proc/<pid>/stat only offers
/// 10 ms scheduler ticks — far too coarse to gate a 2% overhead ceiling
/// on sub-second workloads. Returns 0 when schedstat is unavailable
/// (non-Linux or CONFIG_SCHEDSTATS off); callers treat that as
/// "not measurable", not as zero cost.
std::uint64_t proc_cpu_ns(pid_t pid) {
    char task_dir[64];
    std::snprintf(task_dir, sizeof(task_dir), "/proc/%d/task",
                  static_cast<int>(pid));
    DIR* d = ::opendir(task_dir);
    if (d == nullptr) return 0;
    std::uint64_t total = 0;
    while (const dirent* e = ::readdir(d)) {
        if (e->d_name[0] == '.') continue;
        char path[128];
        std::snprintf(path, sizeof(path), "%s/%s/schedstat", task_dir, e->d_name);
        std::FILE* f = std::fopen(path, "r");
        if (f == nullptr) continue;
        unsigned long long ns = 0;
        if (std::fscanf(f, "%llu", &ns) == 1) total += ns;
        std::fclose(f);
    }
    ::closedir(d);
    return total;
}

/// Shut one daemon down and reap it; true on clean exit 0.
bool stop_daemon(serve::Client* client, pid_t pid) {
    std::string reply, error;
    client->request("{\"op\":\"shutdown\"}", &reply, &error);
    client->close();
    if (pid <= 0) return true;
    int status = 0;
    return ::waitpid(pid, &status, 0) == pid && WIFEXITED(status) &&
           WEXITSTATUS(status) == 0;
}

/// The barrage: every line must produce {"ok":false,"error":...}. Comments
/// name the defense each line probes.
std::vector<std::string> malformed_lines(const std::string& valid_spec) {
    report::Json rate_high = report::Json::object();
    rate_high.set("op", "run");
    rate_high.set("spec", valid_spec);
    report::Json loc = report::Json::object();
    loc.set("mode", "sampled");
    loc.set("rate", 1.5);
    rate_high.set("locality", std::move(loc));

    report::Json rate_zero = report::Json::object();
    rate_zero.set("op", "run");
    rate_zero.set("spec", valid_spec);
    report::Json loc0 = report::Json::object();
    loc0.set("mode", "sampled");
    loc0.set("rate", 0.0);
    rate_zero.set("locality", std::move(loc0));

    std::vector<std::string> lines = {
        "this is not json",                                     // not JSON at all
        "{\"op\":\"run\"}",                                     // missing spec
        "{\"op\":\"nope\"}",                                    // unknown op
        "{\"op\":\"ping\",\"x\":1}",                            // unknown field
        "{\"op\":\"run\",\"spec\":42}",                         // wrong type
        std::string(64, '[') ,                                  // nesting bomb
        "{\"op\":\"run\",\"spec\":\"dbsp-spec v1\\nv 4\"}",     // truncated spec
        // duplicate header section
        "{\"op\":\"run\",\"spec\":\"dbsp-spec v1\\nv 4\\nv 4\\nB 1\\nsteps 1\\n"
        "labels 0\\nend\\n\"}",
        // geometry bomb: v far beyond the parser cap must error, not OOM
        "{\"op\":\"run\",\"spec\":\"dbsp-spec v1\\nv 1152921504606846976\\nB 1\\n"
        "steps 1\\nlabels 0\\nend\\n\"}",
        // degenerate sampling rates (NaN/inf don't even tokenize as JSON)
        rate_high.dump_compact(),
        rate_zero.dump_compact(),
        "{\"op\":\"run\",\"spec\":\"x\",\"locality\":{\"mode\":\"sampled\","
        "\"rate\":nan}}",
    };
    return lines;
}

}  // namespace

int main(int argc, char** argv) {
    if (dbsp::tools::handle_version_flag(argc, argv, "dbsp_loadgen")) return 0;
    std::string socket_path;
    std::string spawn_bin;
    std::string out_path;
    std::uint64_t requests = 64;
    std::uint64_t distinct = 8;
    std::uint64_t batch = 8;
    std::uint64_t threads = 0;
    bool telemetry = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--socket") {
            socket_path = next();
        } else if (arg == "--spawn") {
            spawn_bin = next();
        } else if (arg == "--requests") {
            requests = parse_u64("--requests", next());
            if (requests == 0) bad_arg("--requests", "0", "a positive count");
        } else if (arg == "--distinct") {
            distinct = parse_u64("--distinct", next());
            if (distinct == 0) bad_arg("--distinct", "0", "a positive count");
        } else if (arg == "--batch") {
            batch = parse_u64("--batch", next());
            if (batch == 0) bad_arg("--batch", "0", "a positive count");
        } else if (arg == "--threads") {
            threads = parse_u64("--threads", next());
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--telemetry") {
            telemetry = true;
        } else {
            usage(argv[0]);
        }
    }
    if (socket_path.empty()) usage(argv[0]);

    pid_t daemon_pid = -1;
    if (!spawn_bin.empty()) {
        daemon_pid = ::fork();
        if (daemon_pid < 0) {
            std::perror("dbsp_loadgen: fork");
            return 1;
        }
        if (daemon_pid == 0) {
            const std::string threads_str = std::to_string(threads);
            ::execl(spawn_bin.c_str(), spawn_bin.c_str(), "--socket",
                    socket_path.c_str(), "--threads", threads_str.c_str(),
                    static_cast<char*>(nullptr));
            std::perror("dbsp_loadgen: exec dbsp_serve");
            ::_exit(127);
        }
    }

    serve::Client client;
    std::string error;
    bool connected = false;
    for (int attempt = 0; attempt < 500; ++attempt) {
        if (client.connect(socket_path, &error)) {
            connected = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!connected) {
        std::fprintf(stderr, "dbsp_loadgen: cannot connect to \"%s\": %s\n",
                     socket_path.c_str(), error.c_str());
        return 1;
    }

    // Distinct workloads: deterministic fuzz-generator specs, so the same
    // flags reproduce the same byte streams everywhere.
    check::GenConfig config;
    std::vector<check::ProgramSpec> specs;
    std::vector<std::string> expected;  // run_to_json bytes per spec
    for (std::uint64_t i = 0; i < distinct; ++i) {
        specs.push_back(check::generate_spec(config, 1000 + i));
        expected.push_back(serve::run_to_json(specs.back(), serve::RunOptions{}));
    }

    // Leg 1: byte-identity on the miss and hit paths.
    std::uint64_t mismatches = 0;
    std::vector<double> miss_latency;
    for (std::uint64_t i = 0; i < distinct; ++i) {
        const std::string line = run_line(specs[i]);
        for (int leg = 0; leg < 2; ++leg) {
            std::string reply;
            const double start = now_ms();
            if (!client.request(line, &reply, &error)) {
                std::fprintf(stderr, "dbsp_loadgen: request failed: %s\n", error.c_str());
                return 1;
            }
            if (leg == 0) miss_latency.push_back(now_ms() - start);
            const std::string want = serve::run_reply(expected[i], /*cached=*/leg == 1);
            if (reply != want) {
                ++mismatches;
                std::fprintf(stderr,
                             "dbsp_loadgen: reply mismatch for spec %llu (%s leg)\n",
                             static_cast<unsigned long long>(i),
                             leg == 0 ? "miss" : "hit");
            }
        }
    }

    // Leg 2: malformed barrage — structured errors, daemon stays up.
    std::uint64_t unstructured = 0;
    for (const std::string& line : malformed_lines(check::serialize_spec(specs[0]))) {
        std::string reply;
        if (!client.request(line, &reply, &error)) {
            std::fprintf(stderr, "dbsp_loadgen: connection died on malformed input\n");
            ++unstructured;
            if (!client.connect(socket_path, &error)) break;
            continue;
        }
        const auto doc = report::Json::parse(reply);
        if (!doc.has_value() || (*doc)["ok"].as_bool(true) ||
            (*doc)["error"].as_string().empty()) {
            ++unstructured;
            std::fprintf(stderr, "dbsp_loadgen: non-structured reply: %s\n",
                         reply.c_str());
        }
    }
    {
        std::string reply;
        if (!client.request("{\"op\":\"ping\"}", &reply, &error) ||
            reply.find("\"pong\":true") == std::string::npos) {
            std::fprintf(stderr, "dbsp_loadgen: daemon not answering after barrage\n");
            ++unstructured;
        }
    }

    // Leg 3: single round-trip latency over the warmed cache.
    std::vector<double> latency;
    for (std::uint64_t i = 0; i < requests; ++i) {
        const std::string line = run_line(specs[i % distinct]);
        std::string reply;
        const double start = now_ms();
        if (!client.request(line, &reply, &error)) {
            std::fprintf(stderr, "dbsp_loadgen: request failed: %s\n", error.c_str());
            return 1;
        }
        latency.push_back(now_ms() - start);
    }

    // Leg 4: pipelined batches.
    const double batch_start = now_ms();
    for (std::uint64_t done = 0; done < requests;) {
        const std::uint64_t n = std::min<std::uint64_t>(batch, requests - done);
        std::vector<std::string> lines;
        for (std::uint64_t k = 0; k < n; ++k) {
            lines.push_back(run_line(specs[(done + k) % distinct]));
        }
        std::vector<std::string> replies;
        if (!client.request_batch(lines, &replies, &error)) {
            std::fprintf(stderr, "dbsp_loadgen: batch failed: %s\n", error.c_str());
            return 1;
        }
        done += n;
    }
    const double batch_seconds = (now_ms() - batch_start) / 1000.0;

    // Leg 5 (--telemetry): the observability surface. Protocol validation of
    // op:"watch" / op:"spans", then the logging-overhead measurement against
    // two private daemons (with and without --log).
    std::uint64_t telemetry_bad = 0;
    double overhead_pct = 0.0;
    bool overhead_measured = false;
    if (telemetry) {
        // Watch: three fast frames, each a valid "dbsp-telemetry-v1" doc.
        if (!client.send_line("{\"op\":\"watch\",\"interval_ms\":10,\"count\":3}",
                              &error)) {
            std::fprintf(stderr, "dbsp_loadgen: watch request failed: %s\n",
                         error.c_str());
            ++telemetry_bad;
        } else {
            for (int i = 0; i < 3; ++i) {
                std::string frame_line;
                if (!client.read_reply(&frame_line, &error)) {
                    std::fprintf(stderr, "dbsp_loadgen: watch stream died: %s\n",
                                 error.c_str());
                    ++telemetry_bad;
                    break;
                }
                const auto frame = report::Json::parse(frame_line);
                bool good =
                    frame.has_value() &&
                    (*frame)["schema"].as_string() == "dbsp-telemetry-v1" &&
                    (*frame)["seq"].as_double(-1.0) == static_cast<double>(i) &&
                    (*frame)["windows"]["60s"]["qps"].is_number() &&
                    (*frame)["windows"]["60s"]["p50_ms"].is_number() &&
                    (*frame)["windows"]["60s"]["p99_ms"].is_number() &&
                    (*frame)["windows"]["60s"]["cache_hit_ratio"].is_number() &&
                    (*frame)["bound_slack"]["hmm"]["p50"].is_number() &&
                    (*frame)["bound_slack"]["bt"]["p99"].is_number() &&
                    (*frame)["server"]["requests"].is_number() &&
                    (*frame)["pool"]["workers"].is_number() &&
                    (*frame)["proc"]["open_fds"].as_double() > 0.0;
                // Counters section: always present with an availability flag;
                // event readings must appear iff the group is available, and
                // an unavailable group must say why.
                if (good) {
                    const report::Json& ctr = (*frame)["counters"];
                    if (!ctr["available"].is_bool()) {
                        good = false;
                    } else if (ctr["available"].as_bool()) {
                        // Per-event degradation is allowed (an unsupported
                        // cache event on this PMU), but each entry must say
                        // which case it is.
                        const report::Json& cyc = ctr["events"]["cycles"];
                        good = cyc["available"].is_bool() &&
                               (cyc["available"].as_bool()
                                    ? cyc["scaled"].is_number() &&
                                          cyc["duty"].is_number()
                                    : cyc["reason"].is_string());
                    } else {
                        good = ctr["reason"].is_string() &&
                               !ctr["events"]["cycles"]["scaled"].is_number();
                    }
                }
                if (!good) {
                    ++telemetry_bad;
                    std::fprintf(stderr, "dbsp_loadgen: bad telemetry frame: %s\n",
                                 frame_line.c_str());
                }
            }
        }

        // Spans: the ring must hold the run requests this client just made,
        // with leg spans and bound-slack gauges on the miss-path entries.
        // Earlier miss-path entries may have been evicted by the cache-hit
        // legs (the ring holds the most recent requests), so issue one fresh
        // miss first to guarantee a slack-bearing record near the head.
        {
            std::string reply;
            const check::ProgramSpec fresh =
                check::generate_spec(config, 9000 + distinct);
            if (!client.request(run_line(fresh), &reply, &error)) {
                std::fprintf(stderr, "dbsp_loadgen: fresh-miss run failed: %s\n",
                             error.c_str());
                ++telemetry_bad;
            }
            if (!client.request("{\"op\":\"spans\",\"limit\":64}", &reply, &error)) {
                std::fprintf(stderr, "dbsp_loadgen: spans request failed: %s\n",
                             error.c_str());
                ++telemetry_bad;
            } else {
                const auto doc = report::Json::parse(reply);
                bool good = doc.has_value() && (*doc)["ok"].as_bool() &&
                            (*doc)["spans"].is_array() &&
                            !(*doc)["spans"].items().empty();
                if (good) {
                    bool saw_slack = false;
                    for (const report::Json& r : (*doc)["spans"].items()) {
                        if (!r["id"].is_number() || !r["op"].is_string() ||
                            !r["spans"].is_object()) {
                            good = false;
                            break;
                        }
                        if (r["bound_slack"]["hmm"].as_double() > 0.0) saw_slack = true;
                    }
                    good = good && saw_slack;
                }
                if (!good) {
                    ++telemetry_bad;
                    std::fprintf(stderr, "dbsp_loadgen: bad spans reply: %s\n",
                                 reply.c_str());
                }
            }
        }

        // Bounds validation: degenerate watch/spans arguments must produce
        // structured errors, not streams.
        for (const char* line : {"{\"op\":\"watch\",\"count\":0}",
                                 "{\"op\":\"watch\",\"interval_ms\":999999}",
                                 "{\"op\":\"spans\",\"limit\":0}",
                                 "{\"op\":\"spans\",\"limit\":1.5}"}) {
            std::string reply;
            if (!client.request(line, &reply, &error) ||
                reply.find("\"ok\":false") == std::string::npos) {
                ++telemetry_bad;
                std::fprintf(stderr, "dbsp_loadgen: degenerate telemetry args "
                                     "not rejected: %s\n", line);
            }
        }

        // Overhead: paired-median wall time of identical pipelined cache-hit
        // rounds against a --log daemon (default info level: the production
        // configuration — connection lifecycle and anomaly events, no
        // per-request lines) vs an unlogged one. Interleaved rounds, median
        // ratio — robust to the shared-runner noise a mean would absorb.
        if (!spawn_bin.empty()) {
            const std::string plain_sock = socket_path + ".plain";
            const std::string logged_sock = socket_path + ".logged";
            const std::string log_file = socket_path + ".jsonl";
            const pid_t plain_pid = spawn_daemon(spawn_bin, plain_sock, threads, {});
            const pid_t logged_pid = spawn_daemon(spawn_bin, logged_sock, threads,
                                                  {"--log", log_file});
            serve::Client plain;
            serve::Client logged;
            if (plain_pid > 0 && logged_pid > 0 &&
                connect_with_retry(&plain, plain_sock, &error) &&
                connect_with_retry(&logged, logged_sock, &error)) {
                const std::string warm = run_line(specs[0]);
                std::string reply;
                if (plain.request(warm, &reply, &error) &&
                    logged.request(warm, &reply, &error)) {
                    // The metric is daemon CPU time (summed thread
                    // schedstat runtime, nanosecond resolution), not wall
                    // clock: on a contended 1-CPU runner, wall time of
                    // ~10 ms batches is dominated by scheduling and cannot
                    // resolve a 2% ceiling. CPU time counts exactly the
                    // work each daemon did — including its logger thread —
                    // and ignores preemption. Batches still alternate
                    // daemons so both see the same machine conditions.
                    // Best-of-kPasses: overhead is a constant property of
                    // the daemon, so the lowest-noise pass estimates it —
                    // contaminated passes (IRQ ticks misattributed under
                    // contention) only ever read high.
                    constexpr int kPasses = 3;
                    constexpr int kBatches = 64;
                    constexpr int kPerBatch = 256;
                    const std::vector<std::string> lines(kPerBatch, warm);
                    std::vector<double> passes;
                    bool drove = true;
                    for (int pass = 0; pass < kPasses && drove; ++pass) {
                        const std::uint64_t plain_cpu0 = proc_cpu_ns(plain_pid);
                        const std::uint64_t logged_cpu0 = proc_cpu_ns(logged_pid);
                        for (int r = 0; r < kBatches && drove; ++r) {
                            serve::Client& first = (r % 2 == 0) ? plain : logged;
                            serve::Client& second = (r % 2 == 0) ? logged : plain;
                            std::vector<std::string> replies;
                            drove = first.request_batch(lines, &replies, &error) &&
                                    second.request_batch(lines, &replies, &error);
                        }
                        const std::uint64_t plain_cpu =
                            proc_cpu_ns(plain_pid) - plain_cpu0;
                        const std::uint64_t logged_cpu =
                            proc_cpu_ns(logged_pid) - logged_cpu0;
                        if (!drove || plain_cpu == 0) break;
                        passes.push_back((static_cast<double>(logged_cpu) /
                                              static_cast<double>(plain_cpu) -
                                          1.0) *
                                         100.0);
                    }
                    if (passes.size() == kPasses) {
                        overhead_pct = std::max(
                            0.0, *std::min_element(passes.begin(), passes.end()));
                        overhead_measured = true;
                    }
                }
            } else {
                std::fprintf(stderr,
                             "dbsp_loadgen: cannot stand up overhead daemons\n");
                ++telemetry_bad;
            }
            if (!stop_daemon(&plain, plain_pid) || !stop_daemon(&logged, logged_pid)) {
                ++telemetry_bad;
                std::fprintf(stderr, "dbsp_loadgen: overhead daemon unclean exit\n");
            }
            std::remove(log_file.c_str());
        }
    }

    // Cache accounting from the server's own stats.
    double hit_ratio = 0.0;
    {
        std::string reply;
        if (client.request("{\"op\":\"stats\"}", &reply, &error)) {
            const auto doc = report::Json::parse(reply);
            if (doc.has_value()) {
                const report::Json& cache = (*doc)["stats"]["cache"];
                const double hits = cache["hits"].as_double();
                const double misses = cache["misses"].as_double();
                if (hits + misses > 0) hit_ratio = hits / (hits + misses);
            }
        }
    }
    // Expectation: `distinct` misses from leg 1 (plus the telemetry leg's
    // one fresh miss), everything else hits.
    const double total_runs =
        static_cast<double>(2 * distinct + 2 * requests + (telemetry ? 1 : 0));
    const double misses = static_cast<double>(distinct + (telemetry ? 1 : 0));
    const double expected_ratio = (total_runs - misses) / total_runs;

    // Shutdown + exit-status check (only meaningful for a spawned daemon).
    double daemon_exit = 0.0;
    {
        std::string reply;
        client.request("{\"op\":\"shutdown\"}", &reply, &error);
        client.close();
        if (daemon_pid > 0) {
            int status = 0;
            if (::waitpid(daemon_pid, &status, 0) != daemon_pid ||
                !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
                daemon_exit = 1.0;
            }
        }
    }

    const double p50 = quantile(latency, 0.50);
    const double p99 = quantile(latency, 0.99);
    const double rps = batch_seconds > 0
                           ? static_cast<double>(requests) / batch_seconds
                           : 0.0;
    std::printf("serve load: %llu requests over %llu specs  p50 %.3f ms  p99 %.3f ms  "
                "batched %.0f req/s  cache-hit %.4f (expected %.4f)\n",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(distinct), p50, p99, rps, hit_ratio,
                expected_ratio);

    report::ExperimentResult result;
    result.id = "serve";
    result.title = "SERVE  simulation-as-a-service daemon";
    result.claim = "serve replies are byte-identical to offline runs on miss and hit "
                   "paths, malformed input yields structured errors, and the result "
                   "cache reaches its closed-form hit ratio";
    result.series.push_back({"latency_ms", [&] {
                                 std::vector<double> xs(latency.size());
                                 for (std::size_t i = 0; i < xs.size(); ++i) {
                                     xs[i] = static_cast<double>(i + 1);
                                 }
                                 return xs;
                             }(),
                             latency});
    result.series.push_back({"miss_latency_ms", [&] {
                                 std::vector<double> xs(miss_latency.size());
                                 for (std::size_t i = 0; i < xs.size(); ++i) {
                                     xs[i] = static_cast<double>(i + 1);
                                 }
                                 return xs;
                             }(),
                             miss_latency});
    result.series.push_back({"latency_quantiles_ms", {50.0, 99.0}, {p50, p99}});
    result.series.push_back({"batched_throughput_rps", {1.0}, {rps}});

    if (telemetry && overhead_measured) {
        result.series.push_back({"telemetry_overhead_pct", {1.0}, {overhead_pct}});
    }

    // A nonzero tolerance marks a check whose measured value is wall-clock
    // noisy: the conformance gate compares such checks against a committed
    // baseline with an ABSOLUTE drift allowance instead of the default 25%
    // relative band (see report::conformance).
    auto push_check = [&](const std::string& label, const std::string& kind,
                          double measured, double predicted, double tolerance = 0.0) {
        report::Check c;
        c.label = label;
        c.id = report::ExperimentResult::slugify(label);
        c.kind = kind;
        c.measured = measured;
        c.predicted = predicted;
        c.tolerance = tolerance;
        c.pass = report::Check::evaluate(kind, measured, predicted, tolerance);
        std::printf("%-52s measured %.4f (%s %.4f) [%s]\n", label.c_str(), measured,
                    kind == "max" ? "<=" : ">=", predicted, c.pass ? "pass" : "FAIL");
        result.checks.push_back(c);
    };
    push_check("byte-identity mismatches (miss+hit legs)", "max",
               static_cast<double>(mismatches), 0.0);
    push_check("unstructured replies to malformed input", "max",
               static_cast<double>(unstructured), 0.0);
    push_check("daemon exit status", "max", daemon_exit, 0.0);
    push_check("cache-hit ratio", "min", hit_ratio, expected_ratio);
    if (telemetry) {
        push_check("telemetry watch/spans protocol violations", "max",
                   static_cast<double>(telemetry_bad), 0.0);
        if (overhead_measured) {
            push_check("telemetry_overhead_pct (logged vs plain daemon)", "max",
                       overhead_pct, 2.0, /*tolerance=*/2.0);
        }
    }

    std::size_t passed = 0;
    for (const auto& c : result.checks) passed += c.pass ? 1 : 0;
    std::printf("\nserve: %zu/%zu checks pass -> %s\n", passed, result.checks.size(),
                result.pass() ? "PASS" : "FAIL");

    if (!out_path.empty()) {
        std::string write_error;
        if (!result.to_json(report::Provenance::collect(), true)
                 .save_file(out_path, &write_error)) {
            std::fprintf(stderr, "dbsp_loadgen: cannot write %s: %s\n", out_path.c_str(),
                         write_error.c_str());
            return 2;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    return result.pass() ? 0 : 1;
}
