// dbsp_fuzz: differential fuzzer for the D-BSP executors.
//
// Each iteration generates a random D-BSP program (check::generate_spec),
// runs it through every executor/mode combination (check::check_program), and
// stops at the first divergence: the failing spec is shrunk to a minimal
// repro (check::shrink) and written to --out as a committable repro file —
// "dbsp-trace v2" when the divergence survives a RecordedProgram replay of
// the shrunk program, else "dbsp-spec v1".
//
//   dbsp_fuzz --seed 1 --iters 10000 --out tests/repros
//   dbsp_fuzz --repro tests/repros/repro_hmm-image_42.txt
//
// Deterministic: iteration i checks generator seed (--seed + i), so any
// failure is reproducible from the printed seed alone. Exit codes: 0 all
// clean, 1 divergence found, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include "check/differential.hpp"
#include "check/program_gen.hpp"
#include "check/shrinker.hpp"
#include "check/trace_io.hpp"
#include "model/recorded_program.hpp"

namespace {

using namespace dbsp;

[[noreturn]] void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--seed S] [--iters N] [--out DIR] [--max-v V] [--no-shrink]\n"
                 "       %s --repro FILE\n"
                 "  --seed S      base seed; iteration i uses seed S+i (default 1)\n"
                 "  --iters N     number of programs to generate and check (default 100)\n"
                 "  --out DIR     directory for shrunk repro files (default .)\n"
                 "  --max-v V     cap generated machine sizes at V processors\n"
                 "  --no-shrink   report the raw failing spec without reduction\n"
                 "  --repro FILE  re-run one committed repro file through the oracle\n",
                 argv0, argv0);
    std::exit(2);
}

std::uint64_t parse_u64(const char* argv0, const char* flag, const char* text) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "invalid %s value: %s\n", flag, text);
        usage(argv0);
    }
    return value;
}

int run_repro(const std::string& path) {
    check::Repro repro;
    std::string error;
    if (!check::load_repro_file(path, &repro, &error)) {
        std::fprintf(stderr, "cannot load repro %s: %s\n", path.c_str(), error.c_str());
        return 2;
    }
    auto program = repro.make_program();
    const check::DiffReport report = check::check_program(*program);
    if (!report.ok()) {
        std::printf("repro %s still fails:\n%s", path.c_str(), report.summary().c_str());
        return 1;
    }
    std::printf("repro %s passes clean\n", path.c_str());
    return 0;
}

/// True iff the shrunk divergence also reproduces through a RecordedProgram
/// replay (same labels/ops/messages, digest-fold step semantics). When it
/// does, the trace is the better repro: it freezes the computation without
/// depending on the generator's hashing.
bool reproduces_via_trace(const check::ProgramSpec& spec, const std::string& tag,
                          model::Trace* out) {
    check::GeneratedProgram program(spec);
    model::Trace trace = model::record(program);
    model::RecordedProgram replay(trace);
    const check::DiffReport report = check::check_program(replay);
    if (!report.has_tag(tag)) return false;
    *out = std::move(trace);
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t seed = 1;
    std::uint64_t iters = 100;
    std::uint64_t max_v = 0;
    std::string out_dir = ".";
    std::string repro_path;
    bool do_shrink = true;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (std::strcmp(arg, "--seed") == 0) {
            seed = parse_u64(argv[0], "--seed", next());
        } else if (std::strcmp(arg, "--iters") == 0) {
            iters = parse_u64(argv[0], "--iters", next());
        } else if (std::strcmp(arg, "--max-v") == 0) {
            max_v = parse_u64(argv[0], "--max-v", next());
        } else if (std::strcmp(arg, "--out") == 0) {
            out_dir = next();
        } else if (std::strcmp(arg, "--repro") == 0) {
            repro_path = next();
        } else if (std::strcmp(arg, "--no-shrink") == 0) {
            do_shrink = false;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg);
            usage(argv[0]);
        }
    }
    if (!repro_path.empty()) return run_repro(repro_path);
    if (iters == 0) usage(argv[0]);

    check::GenConfig config;
    if (max_v > 0) {
        std::vector<std::uint64_t> kept;
        for (std::uint64_t v : config.v_choices) {
            if (v <= max_v) kept.push_back(v);
        }
        if (kept.empty()) kept.push_back(1);
        config.v_choices = std::move(kept);
    }

    const std::uint64_t report_every = iters >= 10 ? iters / 10 : 1;
    for (std::uint64_t i = 0; i < iters; ++i) {
        const std::uint64_t spec_seed = seed + i;
        const check::ProgramSpec spec = check::generate_spec(config, spec_seed);
        check::DiffConfig diff;
        // The locality-mode axis re-runs both simulators four more times
        // each; checking it on every fourth program keeps long fuzz runs
        // affordable without losing coverage (which program gets the axis is
        // a pure function of the iteration, so failures stay reproducible).
        diff.check_locality = i % 4 == 0;
        const check::DiffReport report = check::check_spec(spec, diff);
        if (report.ok()) {
            if ((i + 1) % report_every == 0) {
                std::printf("[%llu/%llu] clean (last seed %llu, %s)\n",
                            static_cast<unsigned long long>(i + 1),
                            static_cast<unsigned long long>(iters),
                            static_cast<unsigned long long>(spec_seed),
                            spec.describe().c_str());
                std::fflush(stdout);
            }
            continue;
        }

        const std::string tag = report.failures.front().tag;
        std::printf("seed %llu FAILS (%s):\n%s",
                    static_cast<unsigned long long>(spec_seed), spec.describe().c_str(),
                    report.summary().c_str());

        check::ProgramSpec minimal = spec;
        if (do_shrink) {
            const check::ShrinkResult shrunk = check::shrink(spec, tag);
            minimal = shrunk.spec;
            std::printf("shrunk to %s (%llu candidates, %llu accepted)\n",
                        minimal.describe().c_str(),
                        static_cast<unsigned long long>(shrunk.attempts),
                        static_cast<unsigned long long>(shrunk.accepted));
        }

        std::string text;
        model::Trace trace;
        if (reproduces_via_trace(minimal, tag, &trace)) {
            text = check::serialize_trace(trace);
        } else {
            text = check::serialize_spec(minimal);
        }
        const std::string path = out_dir + "/repro_" + tag + "_" +
                                 std::to_string(spec_seed) + ".txt";
        std::error_code ec;
        std::filesystem::create_directories(out_dir, ec);  // best-effort
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
        } else {
            out << text;
            std::printf("wrote %s\n", path.c_str());
        }
        return 1;
    }
    std::printf("all %llu iterations clean (seeds %llu..%llu)\n",
                static_cast<unsigned long long>(iters),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(seed + iters - 1));
    return 0;
}
