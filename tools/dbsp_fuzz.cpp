// dbsp_fuzz: differential fuzzer for the D-BSP executors.
//
// Each iteration generates a random D-BSP program (check::generate_spec),
// runs it through every executor/mode combination (check::check_program), and
// stops at the first divergence: the failing spec is shrunk to a minimal
// repro (check::shrink) and written to --out as a committable repro file —
// "dbsp-trace v2" when the divergence survives a RecordedProgram replay of
// the shrunk program, else "dbsp-spec v1".
//
//   dbsp_fuzz --seed 1 --iters 10000 --out tests/repros
//   dbsp_fuzz --repro tests/repros/repro_hmm-image_42.txt
//
// --parse-fuzz switches to the adversarial *parser* fuzzer: each iteration
// serializes a corpus spec (the same generator the shrinker corpus uses),
// applies random byte/line mutations — truncations, duplicated header
// sections, huge counts, spliced keywords — and feeds the mutant to
// parse_repro and the serve request parser. The invariants are purely
// defensive: no crash, every rejection carries a message, and every
// *accepted* mutant is a valid spec that round-trips to a serialization
// fixpoint. This is the barrage the dbsp_serve daemon faces on its socket.
//
// Deterministic: iteration i checks generator seed (--seed + i), so any
// failure is reproducible from the printed seed alone. Exit codes: 0 all
// clean, 1 divergence found, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include "check/differential.hpp"
#include "check/program_gen.hpp"
#include "check/shrinker.hpp"
#include "check/trace_io.hpp"
#include "model/recorded_program.hpp"
#include "report/json.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"
#include "version.hpp"

namespace {

using namespace dbsp;

[[noreturn]] void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--seed S] [--iters N] [--out DIR] [--max-v V] [--no-shrink]\n"
                 "       %s --repro FILE | --parse-fuzz\n"
                 "  --seed S      base seed; iteration i uses seed S+i (default 1)\n"
                 "  --iters N     number of programs to generate and check (default 100)\n"
                 "  --out DIR     directory for shrunk repro files (default .)\n"
                 "  --max-v V     cap generated machine sizes at V processors\n"
                 "  --no-shrink   report the raw failing spec without reduction\n"
                 "  --repro FILE  re-run one committed repro file through the oracle\n"
                 "  --parse-fuzz  mutate serialized specs and attack the parsers\n",
                 argv0, argv0);
    std::exit(2);
}

std::uint64_t parse_u64(const char* argv0, const char* flag, const char* text) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "invalid %s value: %s\n", flag, text);
        usage(argv0);
    }
    return value;
}

int run_repro(const std::string& path) {
    check::Repro repro;
    std::string error;
    if (!check::load_repro_file(path, &repro, &error)) {
        std::fprintf(stderr, "cannot load repro %s: %s\n", path.c_str(), error.c_str());
        return 2;
    }
    auto program = repro.make_program();
    const check::DiffReport report = check::check_program(*program);
    if (!report.ok()) {
        std::printf("repro %s still fails:\n%s", path.c_str(), report.summary().c_str());
        return 1;
    }
    std::printf("repro %s passes clean\n", path.c_str());
    return 0;
}

/// One deterministic byte/line mutation. The menu is aimed at the parser's
/// soft spots: framing (truncation, deleted chunks), the strict-header rules
/// (duplicated lines), and numeric fields (huge counts spliced over tokens).
void mutate(std::string* text, SplitMix64& rng) {
    if (text->empty()) {
        *text = "x";
        return;
    }
    switch (rng.next_below(6)) {
        case 0: {  // flip one byte
            (*text)[rng.next_below(text->size())] =
                static_cast<char>(rng.next_below(256));
            break;
        }
        case 1: {  // truncate
            text->resize(rng.next_below(text->size()));
            break;
        }
        case 2: {  // duplicate a random line (header sections included)
            const std::size_t at = rng.next_below(text->size());
            const std::size_t begin = text->rfind('\n', at) + 1;  // npos+1 == 0
            std::size_t end = text->find('\n', at);
            if (end == std::string::npos) end = text->size();
            const std::string line = text->substr(begin, end - begin) + "\n";
            text->insert(begin, line);
            break;
        }
        case 3: {  // splice a huge count over a random position
            static const char* kHuge[] = {"1152921504606846976", "18446744073709551615",
                                          "99999999999999999999", "-1"};
            text->insert(rng.next_below(text->size()), kHuge[rng.next_below(4)]);
            break;
        }
        case 4: {  // delete a random chunk
            const std::size_t begin = rng.next_below(text->size());
            const std::size_t len = 1 + rng.next_below(text->size() - begin);
            text->erase(begin, len);
            break;
        }
        case 5: {  // splice a keyword somewhere
            static const char* kWords[] = {"\nevent ", "\nsend ", "\nlabels ", "\nend\n",
                                           "\nv ",     "\nmsg ",  " "};
            text->insert(rng.next_below(text->size()), kWords[rng.next_below(7)]);
            break;
        }
    }
}

/// The --parse-fuzz main loop; see the file comment. Returns the exit code.
int run_parse_fuzz(std::uint64_t seed, std::uint64_t iters) {
    check::GenConfig config;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
        const std::uint64_t iter_seed = seed + i;
        SplitMix64 rng(iter_seed * 0x9e3779b97f4a7c15ull + 1);
        std::string text = check::serialize_spec(check::generate_spec(config, iter_seed));
        const std::uint64_t mutations = 1 + rng.next_below(8);
        for (std::uint64_t k = 0; k < mutations; ++k) mutate(&text, rng);

        check::Repro repro;
        std::string error;
        if (check::parse_repro(text, &repro, &error)) {
            ++accepted;
            if (repro.spec.has_value()) {
                std::string why;
                if (!check::spec_valid(*repro.spec, &why)) {
                    std::printf("seed %llu FAILS: parser accepted an invalid spec: %s\n",
                                static_cast<unsigned long long>(iter_seed), why.c_str());
                    return 1;
                }
                // Accepted input must reach a serialization fixpoint: the
                // canonical form re-parses to itself byte for byte.
                const std::string round = check::serialize_spec(*repro.spec);
                check::ProgramSpec again;
                if (!check::parse_spec(round, &again, &error) ||
                    check::serialize_spec(again) != round) {
                    std::printf("seed %llu FAILS: accepted spec does not round-trip\n",
                                static_cast<unsigned long long>(iter_seed));
                    return 1;
                }
            }
        } else {
            ++rejected;
            if (error.empty()) {
                std::printf("seed %llu FAILS: rejection without a message\n",
                            static_cast<unsigned long long>(iter_seed));
                return 1;
            }
        }

        // The same mutant as a serve request: must yield a parse verdict
        // (never a crash), and every rejection must carry a message.
        report::Json request = report::Json::object();
        request.set("op", "run");
        request.set("spec", text);
        serve::Request parsed;
        error.clear();
        if (!serve::parse_request(request.dump_compact(), 4 << 20, &parsed, &error) &&
            error.empty()) {
            std::printf("seed %llu FAILS: serve rejection without a message\n",
                        static_cast<unsigned long long>(iter_seed));
            return 1;
        }
    }
    std::printf("parse-fuzz: %llu iterations clean (%llu accepted, %llu rejected)\n",
                static_cast<unsigned long long>(iters),
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(rejected));
    return 0;
}

/// True iff the shrunk divergence also reproduces through a RecordedProgram
/// replay (same labels/ops/messages, digest-fold step semantics). When it
/// does, the trace is the better repro: it freezes the computation without
/// depending on the generator's hashing.
bool reproduces_via_trace(const check::ProgramSpec& spec, const std::string& tag,
                          model::Trace* out) {
    check::GeneratedProgram program(spec);
    model::Trace trace = model::record(program);
    model::RecordedProgram replay(trace);
    const check::DiffReport report = check::check_program(replay);
    if (!report.has_tag(tag)) return false;
    *out = std::move(trace);
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    if (dbsp::tools::handle_version_flag(argc, argv, "dbsp_fuzz")) return 0;
    std::uint64_t seed = 1;
    std::uint64_t iters = 100;
    std::uint64_t max_v = 0;
    std::string out_dir = ".";
    std::string repro_path;
    bool do_shrink = true;
    bool parse_fuzz = false;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (std::strcmp(arg, "--seed") == 0) {
            seed = parse_u64(argv[0], "--seed", next());
        } else if (std::strcmp(arg, "--iters") == 0) {
            iters = parse_u64(argv[0], "--iters", next());
        } else if (std::strcmp(arg, "--max-v") == 0) {
            max_v = parse_u64(argv[0], "--max-v", next());
        } else if (std::strcmp(arg, "--out") == 0) {
            out_dir = next();
        } else if (std::strcmp(arg, "--repro") == 0) {
            repro_path = next();
        } else if (std::strcmp(arg, "--no-shrink") == 0) {
            do_shrink = false;
        } else if (std::strcmp(arg, "--parse-fuzz") == 0) {
            parse_fuzz = true;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg);
            usage(argv[0]);
        }
    }
    if (!repro_path.empty()) return run_repro(repro_path);
    if (iters == 0) usage(argv[0]);
    if (parse_fuzz) return run_parse_fuzz(seed, iters);

    check::GenConfig config;
    if (max_v > 0) {
        std::vector<std::uint64_t> kept;
        for (std::uint64_t v : config.v_choices) {
            if (v <= max_v) kept.push_back(v);
        }
        if (kept.empty()) kept.push_back(1);
        config.v_choices = std::move(kept);
    }

    const std::uint64_t report_every = iters >= 10 ? iters / 10 : 1;
    for (std::uint64_t i = 0; i < iters; ++i) {
        const std::uint64_t spec_seed = seed + i;
        const check::ProgramSpec spec = check::generate_spec(config, spec_seed);
        check::DiffConfig diff;
        // The locality-mode axis re-runs both simulators four more times
        // each; checking it on every fourth program keeps long fuzz runs
        // affordable without losing coverage (which program gets the axis is
        // a pure function of the iteration, so failures stay reproducible).
        diff.check_locality = i % 4 == 0;
        const check::DiffReport report = check::check_spec(spec, diff);
        if (report.ok()) {
            if ((i + 1) % report_every == 0) {
                std::printf("[%llu/%llu] clean (last seed %llu, %s)\n",
                            static_cast<unsigned long long>(i + 1),
                            static_cast<unsigned long long>(iters),
                            static_cast<unsigned long long>(spec_seed),
                            spec.describe().c_str());
                std::fflush(stdout);
            }
            continue;
        }

        const std::string tag = report.failures.front().tag;
        std::printf("seed %llu FAILS (%s):\n%s",
                    static_cast<unsigned long long>(spec_seed), spec.describe().c_str(),
                    report.summary().c_str());

        check::ProgramSpec minimal = spec;
        if (do_shrink) {
            const check::ShrinkResult shrunk = check::shrink(spec, tag);
            minimal = shrunk.spec;
            std::printf("shrunk to %s (%llu candidates, %llu accepted)\n",
                        minimal.describe().c_str(),
                        static_cast<unsigned long long>(shrunk.attempts),
                        static_cast<unsigned long long>(shrunk.accepted));
        }

        std::string text;
        model::Trace trace;
        if (reproduces_via_trace(minimal, tag, &trace)) {
            text = check::serialize_trace(trace);
        } else {
            text = check::serialize_spec(minimal);
        }
        const std::string path = out_dir + "/repro_" + tag + "_" +
                                 std::to_string(spec_seed) + ".txt";
        std::error_code ec;
        std::filesystem::create_directories(out_dir, ec);  // best-effort
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
        } else {
            out << text;
            std::printf("wrote %s\n", path.c_str());
        }
        return 1;
    }
    std::printf("all %llu iterations clean (seeds %llu..%llu)\n",
                static_cast<unsigned long long>(iters),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(seed + iters - 1));
    return 0;
}
