/// dbsp_top — terminal dashboard for a running dbsp_serve daemon.
///
/// Connects to the daemon's Unix socket and drives the op:"watch" stream of
/// "dbsp-telemetry-v1" frames (rolling QPS, p50/p99 latency, cache-hit
/// ratio, Theorem-5/12 bound-slack quantiles, worker-pool occupancy, logger
/// backpressure, /proc vitals), rendering one screen per frame. `--spans`
/// fetches the recent-request span trees instead.
///
/// Usage:
///   dbsp_top --socket PATH [--interval-ms N] [--count N] [--once] [--json]
///            [--spans N] [--version]
///
/// `--once` fetches a single frame and exits — with `--json` it prints the
/// raw frame line, which is what the CI serve-smoke probe consumes.
///
/// Exit status: 0 on success, 1 on connection/protocol failure, 2 on bad
/// flags.

#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "report/json.hpp"
#include "serve/client.hpp"
#include "version.hpp"

namespace {

[[noreturn]] void usage(const char* self) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--interval-ms N] [--count N] [--once]\n"
                 "          [--json] [--spans N] [--version]\n",
                 self);
    std::exit(2);
}

[[noreturn]] void bad_arg(const char* flag, const char* value, const char* expected) {
    std::fprintf(stderr, "dbsp_top: invalid %s \"%s\" (expected %s)\n", flag, value,
                 expected);
    std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* value) {
    std::uint64_t n = 0;
    const char* end = value + std::strlen(value);
    const auto [ptr, ec] = std::from_chars(value, end, n, 10);
    if (ec != std::errc{} || ptr != end || value == end) {
        bad_arg(flag, value, "an unsigned integer");
    }
    return n;
}

void render_window(const char* name, const dbsp::report::Json& w) {
    std::printf("  %-4s %8.1f %9.2f %9.2f %7.1f %8.0f\n", name,
                w["qps"].as_double(), w["p50_ms"].as_double(),
                w["p99_ms"].as_double(), w["cache_hit_ratio"].as_double() * 100.0,
                w["errors"].as_double());
}

/// One frame as a fixed-layout text screen.
void render_frame(const std::string& socket_path, const dbsp::report::Json& f) {
    std::printf("dbsp_top — %s   uptime %.1fs   seq %.0f\n", socket_path.c_str(),
                f["uptime_s"].as_double(), f["seq"].as_double());
    std::printf("  %-4s %8s %9s %9s %7s %8s\n", "win", "qps", "p50 ms", "p99 ms",
                "hit%", "errors");
    render_window("1s", f["windows"]["1s"]);
    render_window("10s", f["windows"]["10s"]);
    render_window("60s", f["windows"]["60s"]);

    const dbsp::report::Json& hmm = f["bound_slack"]["hmm"];
    const dbsp::report::Json& bt = f["bound_slack"]["bt"];
    std::printf("  slack/bound (60s)  hmm p50 %.3f p99 %.3f (n=%.0f)  "
                "bt p50 %.3f p99 %.3f (n=%.0f)\n",
                hmm["p50"].as_double(), hmm["p99"].as_double(),
                hmm["count"].as_double(), bt["p50"].as_double(),
                bt["p99"].as_double(), bt["count"].as_double());

    const dbsp::report::Json& s = f["server"];
    std::printf("  server  req %.0f  runs %.0f (active %.0f)  err %.0f  conn %.0f  "
                "cache %.0f/%.0f hits (%.0f entries)\n",
                s["requests"].as_double(), s["runs"].as_double(),
                s["active_runs"].as_double(), s["errors"].as_double(),
                s["connections"].as_double(), s["cache"]["hits"].as_double(),
                s["cache"]["hits"].as_double() + s["cache"]["misses"].as_double(),
                s["cache"]["entries"].as_double());

    const dbsp::report::Json& pool = f["pool"];
    const dbsp::report::Json& log = f["log"];
    const dbsp::report::Json& proc = f["proc"];
    std::printf("  pool %.0f/%.0f busy   log %s written %.0f dropped %.0f rot %.0f   "
                "proc fds %.0f threads %.0f\n",
                pool["busy"].as_double(), pool["workers"].as_double(),
                log["enabled"].as_bool() ? "on" : "off", log["written"].as_double(),
                log["dropped"].as_double(), log["rotations"].as_double(),
                proc["open_fds"].as_double(), proc["threads"].as_double());

    // Hardware counters since boot (multiplex-corrected). A daemon without
    // PMU access (container, DBSP_NO_PERF) reports the reason instead.
    const dbsp::report::Json& ctr = f["counters"];
    if (ctr["available"].as_bool(false)) {
        const dbsp::report::Json& ev = ctr["events"];
        auto scaled = [&ev](const char* name) {
            return ev[name]["scaled"].as_double(0.0);
        };
        auto pct = [](double misses, double accesses) {
            return accesses > 0.0 ? 100.0 * misses / accesses : 0.0;
        };
        const double cycles = scaled("cycles");
        std::printf("  hw   ipc %.2f   l1d-miss %.2f%%   llc-miss %.2f%%   "
                    "dtlb-miss %.3f%%   cycles %.3g\n",
                    cycles > 0.0 ? scaled("instructions") / cycles : 0.0,
                    pct(scaled("l1d_read_misses"), scaled("l1d_read_accesses")),
                    pct(scaled("llc_misses"), scaled("llc_accesses")),
                    pct(scaled("dtlb_read_misses"), scaled("dtlb_read_accesses")),
                    cycles);
    } else {
        const std::string& reason = ctr["reason"].as_string();
        std::printf("  hw   counters unavailable (%s)\n",
                    reason.empty() ? "no counters section" : reason.c_str());
    }
    std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
    if (dbsp::tools::handle_version_flag(argc, argv, "dbsp_top")) return 0;
    std::string socket_path;
    std::uint64_t interval_ms = 1000;
    std::uint64_t count = 0;  // 0 = stream until the daemon goes away
    std::uint64_t spans = 0;
    bool once = false;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--socket") {
            socket_path = next();
        } else if (arg == "--interval-ms") {
            interval_ms = parse_u64("--interval-ms", next());
            if (interval_ms > 60000) {
                bad_arg("--interval-ms", "(value)", "at most 60000");
            }
        } else if (arg == "--count") {
            count = parse_u64("--count", next());
        } else if (arg == "--once") {
            once = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--spans") {
            spans = parse_u64("--spans", next());
            if (spans == 0 || spans > 1024) {
                bad_arg("--spans", "(value)", "a count in [1, 1024]");
            }
        } else {
            usage(argv[0]);
        }
    }
    if (socket_path.empty()) usage(argv[0]);
    if (once) count = 1;

    dbsp::serve::Client client;
    std::string error;
    if (!client.connect(socket_path, &error)) {
        std::fprintf(stderr, "dbsp_top: cannot connect to \"%s\": %s\n",
                     socket_path.c_str(), error.c_str());
        return 1;
    }

    if (spans > 0) {
        dbsp::report::Json req = dbsp::report::Json::object();
        req.set("op", "spans");
        req.set("limit", spans);
        std::string reply;
        if (!client.request(req.dump_compact(), &reply, &error)) {
            std::fprintf(stderr, "dbsp_top: %s\n", error.c_str());
            return 1;
        }
        std::printf("%s\n", reply.c_str());
        return 0;
    }

    // The watch op caps one stream at 3600 frames; an unbounded dashboard
    // session just issues another watch when the stream runs dry.
    const bool clear_screen = !json && ::isatty(STDOUT_FILENO) != 0 && count != 1;
    std::uint64_t shown = 0;
    while (count == 0 || shown < count) {
        const std::uint64_t want =
            count == 0 ? 3600 : std::min<std::uint64_t>(count - shown, 3600);
        dbsp::report::Json req = dbsp::report::Json::object();
        req.set("op", "watch");
        req.set("interval_ms", interval_ms);
        req.set("count", want);
        if (!client.send_line(req.dump_compact(), &error)) {
            std::fprintf(stderr, "dbsp_top: %s\n", error.c_str());
            return 1;
        }
        for (std::uint64_t i = 0; i < want; ++i, ++shown) {
            std::string line;
            if (!client.read_reply(&line, &error)) {
                std::fprintf(stderr, "dbsp_top: %s\n", error.c_str());
                return 1;
            }
            if (json) {
                std::printf("%s\n", line.c_str());
                std::fflush(stdout);
                continue;
            }
            std::string parse_error;
            const auto frame = dbsp::report::Json::parse(line, &parse_error);
            if (!frame.has_value() || !(*frame)["schema"].is_string()) {
                std::fprintf(stderr, "dbsp_top: bad frame: %s\n",
                             parse_error.empty() ? line.c_str() : parse_error.c_str());
                return 1;
            }
            if (clear_screen) std::printf("\033[H\033[2J");
            render_frame(socket_path, *frame);
        }
    }
    return 0;
}
