/// dbsp_serve — simulation-as-a-service daemon.
///
/// Listens on a Unix-domain stream socket for newline-framed JSON requests
/// (see src/serve/protocol.hpp), runs `dbsp-spec v1` programs through the
/// D-BSP/HMM/BT executors on the persistent worker pool, and replies with
/// deterministic "dbsp-serve-result-v1" documents. Results are memoized in
/// an LRU cache keyed by spec fingerprint; op:"metrics" serves a live
/// registry snapshot; op:"shutdown" stops the daemon cleanly.
///
/// Usage:
///   dbsp_serve --socket PATH [--threads N] [--cache N] [--max-request-bytes N]
///              [--log FILE|-] [--log-level debug|info|warn|error]
///              [--log-max-bytes N] [--slow-ms MS] [--span-ring N] [--version]
///
/// Observability (PR 9): --log enables the structured JSONL event log
/// (bounded queue, background writer, size-based rotation to FILE.1);
/// --slow-ms logs the full span tree of any request at/above the threshold;
/// op:"watch" streams "dbsp-telemetry-v1" frames and op:"spans" serves the
/// recent-request ring (see tools/dbsp_top).
///
/// Example session (socat or any line client):
///   {"op":"ping"}
///   {"op":"run","spec":"dbsp-spec v1\nv 4\nB 1\nsteps 1\nlabels 0\nend\n"}
///   {"op":"shutdown"}
///
/// Exit status: 0 on clean shutdown (op:"shutdown" or SIGINT/SIGTERM),
/// 2 on bad flags, 1 when the socket cannot be created.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <charconv>
#include <string>

#include "serve/server.hpp"
#include "telemetry/logger.hpp"
#include "version.hpp"

namespace {

dbsp::serve::Server* g_server = nullptr;

void handle_signal(int) {
    if (g_server != nullptr) g_server->request_stop();
}

[[noreturn]] void usage(const char* self) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--threads N] [--cache N]\n"
                 "          [--max-request-bytes N] [--log FILE|-]\n"
                 "          [--log-level debug|info|warn|error] [--log-max-bytes N]\n"
                 "          [--slow-ms MS] [--span-ring N] [--version]\n",
                 self);
    std::exit(2);
}

[[noreturn]] void bad_arg(const char* flag, const char* value, const char* expected) {
    std::fprintf(stderr, "dbsp_serve: invalid %s \"%s\" (expected %s)\n", flag, value,
                 expected);
    std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* value) {
    std::uint64_t n = 0;
    const char* end = value + std::strlen(value);
    const auto [ptr, ec] = std::from_chars(value, end, n, 10);
    if (ec != std::errc{} || ptr != end || value == end) {
        bad_arg(flag, value, "an unsigned integer");
    }
    return n;
}

}  // namespace

int main(int argc, char** argv) {
    if (dbsp::tools::handle_version_flag(argc, argv, "dbsp_serve")) return 0;
    dbsp::serve::Server::Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--socket") {
            options.socket_path = next();
        } else if (arg == "--threads") {
            options.threads = parse_u64("--threads", next());
        } else if (arg == "--cache") {
            options.cache_entries = parse_u64("--cache", next());
        } else if (arg == "--max-request-bytes") {
            options.max_request_bytes = parse_u64("--max-request-bytes", next());
            if (options.max_request_bytes == 0) {
                bad_arg("--max-request-bytes", "0", "a positive byte count");
            }
        } else if (arg == "--log") {
            options.log_path = next();
        } else if (arg == "--log-level") {
            const char* value = next();
            const auto level = dbsp::telemetry::parse_level(value);
            if (!level.has_value()) {
                bad_arg("--log-level", value, "debug, info, warn, or error");
            }
            options.log_level = *level;
        } else if (arg == "--log-max-bytes") {
            options.log_max_bytes = parse_u64("--log-max-bytes", next());
        } else if (arg == "--slow-ms") {
            const char* value = next();
            char* end = nullptr;
            options.slow_ms = std::strtod(value, &end);
            if (end == value || *end != '\0' || options.slow_ms < 0.0) {
                bad_arg("--slow-ms", value, "a nonnegative number");
            }
        } else if (arg == "--span-ring") {
            options.span_ring = parse_u64("--span-ring", next());
            if (options.span_ring == 0) {
                bad_arg("--span-ring", "0", "a positive ring size");
            }
        } else {
            usage(argv[0]);
        }
    }
    if (options.socket_path.empty()) usage(argv[0]);

    dbsp::serve::Server server(options);
    if (!server.log_ok()) {
        std::fprintf(stderr, "dbsp_serve: cannot open log file \"%s\"\n",
                     options.log_path.c_str());
        return 1;
    }
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "dbsp_serve: cannot listen on \"%s\": %s\n",
                     options.socket_path.c_str(), error.c_str());
        return 1;
    }

    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::printf("dbsp_serve: listening on %s\n", options.socket_path.c_str());
    std::fflush(stdout);
    const int rc = server.serve_forever();
    const auto stats = server.stats();
    std::printf("dbsp_serve: clean shutdown after %llu requests "
                "(%llu runs, %llu errors, cache %llu/%llu hits)\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.runs),
                static_cast<unsigned long long>(stats.errors),
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.hits + stats.cache.misses));
    g_server = nullptr;
    return rc;
}
