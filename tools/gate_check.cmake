# End-to-end regression-gate test, run via `cmake -P` by ctest
# (report.gate_roundtrip): one real experiment binary produces its artifact,
# dbsp_report combines it, the gate must pass against the fresh report itself
# and must exit non-zero against the committed perturbed baseline fixture
# (drifted exponent + an experiment head does not produce).
#
# Required -D variables: REPORT_TOOL, E1_BIN, FIXTURE, WORK_DIR.

foreach(var REPORT_TOOL E1_BIN FIXTURE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "gate_check.cmake: missing -D${var}")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(E1_JSON "${WORK_DIR}/e1.json")
set(COMBINED "${WORK_DIR}/combined.json")
set(DASH "${WORK_DIR}/dashboard.md")

# 1. A real experiment run writes its artifact.
execute_process(COMMAND "${E1_BIN}" --json "${E1_JSON}"
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_e1 --json failed (exit ${rc})")
endif()

# 2. dbsp_report combines it into the report + dashboard.
execute_process(COMMAND "${REPORT_TOOL}" "${E1_JSON}" --out "${COMBINED}" --md "${DASH}"
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dbsp_report combine failed (exit ${rc})")
endif()
foreach(artifact "${COMBINED}" "${DASH}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "dbsp_report did not write ${artifact}")
  endif()
endforeach()

# 3. The gate must be clean against the report itself (exact same numbers).
execute_process(COMMAND "${REPORT_TOOL}" --in "${COMBINED}"
                        --check --baseline "${COMBINED}"
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gate failed against its own report (exit ${rc})")
endif()

# 4. Against the perturbed fixture the gate must trip with exit code 1:
#    the fixture's e1 exponent is far from any real measurement, and its e99
#    experiment does not exist at head.
execute_process(COMMAND "${REPORT_TOOL}" --in "${COMBINED}"
                        --check --baseline "${FIXTURE}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "gate did not trip on the perturbed baseline (exit ${rc}): ${out}")
endif()
if(NOT out MATCHES "exponent drifted")
  message(FATAL_ERROR "gate tripped without the exponent-drift violation: ${out}")
endif()
if(NOT out MATCHES "missing from current")
  message(FATAL_ERROR "gate tripped without the missing-experiment violation: ${out}")
endif()

# 5. --subset-ok waives the missing experiment but not the drift.
execute_process(COMMAND "${REPORT_TOOL}" --in "${COMBINED}"
                        --check --baseline "${FIXTURE}" --subset-ok
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "gate with --subset-ok returned ${rc}, want 1: ${out}")
endif()
if(out MATCHES "missing from current")
  message(FATAL_ERROR "--subset-ok did not waive the missing experiment: ${out}")
endif()

# 6. A malformed baseline must be a loud usage/IO error (exit 2), never a pass.
file(WRITE "${WORK_DIR}/malformed.json" "{\"schema\": \"dbsp-experiments-v1\", trailing")
execute_process(COMMAND "${REPORT_TOOL}" --in "${COMBINED}"
                        --check --baseline "${WORK_DIR}/malformed.json"
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "malformed baseline returned ${rc}, want 2")
endif()

message(STATUS "gate round-trip OK")
