/// dbsp_explore — command-line cost-model explorer.
///
/// Runs one of the built-in D-BSP workloads on a chosen machine size and
/// reports the D-BSP time plus the simulated HMM and/or BT costs, the
/// theorem bounds, and (with --trace) the full charge-trace breakdown. A
/// quick way to poke at the models without writing code.
///
/// Usage:
///   dbsp_explore --program fft|fft-rec|matmul|bitonic|oddeven|route
///                [--v N] [--f x^A | log] [--model hmm|bt|both|none]
///                [--seed S] [--trace[=chrome.json]]
///                [--locality[=profile.json][:sampled[@rate]]] [--rational]
///   dbsp_explore --spec FILE [--f x^A | log] [--model hmm|bt|both|none]
///                [--locality[:sampled[@rate]]]
///
/// Examples:
///   dbsp_explore --program bitonic --v 1024 --f x^0.5 --model both
///   dbsp_explore --program fft-rec --v 256 --f x^0.35 --model bt --rational
///   dbsp_explore --program matmul --v 4096 --f log --trace
///   dbsp_explore --program fft --v 256 --model both --trace=trace.json
///   dbsp_explore --program fft --v 4096 --model hmm --locality=profile.json
///   dbsp_explore --program fft --v 65536 --model hmm --locality:sampled@0.05
///
/// --trace observes *costs* (where the charged f()-time went, by phase and
/// level); --locality observes the *address stream* (reuse distances, working
/// set, per-level hit ratios of the simulated run). The two attach to the
/// same simulation legs and can be combined. The direct D-BSP leg has no
/// memory address stream, so --locality covers only the HMM/BT legs.
/// `:sampled[@rate]` switches the profiler to the SHARDS-sampled engine
/// (default rate 0.01): rate-corrected approximate analytics at a fraction of
/// the exact engine's cost — the right mode for large runs where the score
/// and CDF shape matter more than the last decimal.
///
/// --spec FILE is the offline twin of a dbsp_serve run request: it executes
/// the `dbsp-spec v1` program in FILE through the same serve::run_to_json
/// runner and prints the compact "dbsp-serve-result-v1" document (one line).
/// The serve conformance check compares a daemon reply byte-for-byte against
/// this output.

#include <charconv>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algos/bitonic_sort.hpp"
#include "check/trace_io.hpp"
#include "serve/runner.hpp"
#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include "algos/matmul.hpp"
#include "algos/odd_even_sort.hpp"
#include "algos/permutation.hpp"
#include "core/bounds.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "locality/sink.hpp"
#include "model/dbsp_machine.hpp"
#include "report/provenance.hpp"
#include "report/trace_bundle.hpp"
#include "trace/chrome_trace.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"
#include "version.hpp"

namespace {

using namespace dbsp;

[[noreturn]] void usage(const char* self) {
    std::fprintf(stderr,
                 "usage: %s --program fft|fft-rec|matmul|bitonic|oddeven|route\n"
                 "          [--v N] [--f x^A|log] [--model hmm|bt|both|none]\n"
                 "          [--seed S] [--trace[=chrome.json]]\n"
                 "          [--locality[=profile.json][:sampled[@rate]]] [--rational]\n"
                 "       %s --spec FILE [--f x^A|log] [--model hmm|bt|both|none]\n"
                 "          [--locality[:sampled[@rate]]]\n",
                 self,
                 self);
    std::exit(2);
}

[[noreturn]] void bad_arg(const char* flag, const char* value, const char* expected) {
    std::fprintf(stderr, "dbsp_explore: invalid %s \"%s\" (expected %s)\n", flag, value,
                 expected);
    std::exit(2);
}

/// Strict base-10 unsigned parse: the whole string must be digits, no sign,
/// no trailing garbage, no empty string. Exits 2 on violation.
std::uint64_t parse_u64(const char* flag, const char* value) {
    std::uint64_t n = 0;
    const char* end = value + std::strlen(value);
    const auto [ptr, ec] = std::from_chars(value, end, n, 10);
    if (ec != std::errc{} || ptr != end || value == end) {
        bad_arg(flag, value, "an unsigned integer");
    }
    return n;
}

/// Strict access-function parse: "log" or "x^A" with A a full nonnegative
/// floating-point literal (no trailing garbage). Exits 2 on violation.
model::AccessFunction parse_access_function(const char* value) {
    if (std::strcmp(value, "log") == 0) return model::AccessFunction::logarithmic();
    if (std::strncmp(value, "x^", 2) == 0 && value[2] != '\0') {
        char* end = nullptr;
        const double alpha = std::strtod(value + 2, &end);
        if (end != nullptr && *end == '\0' && alpha >= 0.0) {
            return model::AccessFunction::polynomial(alpha);
        }
    }
    bad_arg("--f", value, "x^A with A a nonnegative number, or log");
}

std::unique_ptr<model::Program> make_program(const std::string& name, std::uint64_t v,
                                             std::uint64_t seed) {
    SplitMix64 rng(seed);
    if (name == "fft" || name == "fft-rec") {
        std::vector<std::complex<double>> x(v);
        for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
        if (name == "fft") return std::make_unique<algo::FftDirectProgram>(x);
        return std::make_unique<algo::FftRecursiveProgram>(x);
    }
    if (name == "matmul") {
        std::vector<model::Word> a(v), b(v);
        for (auto& w : a) w = rng.next_below(1 << 20);
        for (auto& w : b) w = rng.next_below(1 << 20);
        return std::make_unique<algo::MatMulProgram>(a, b);
    }
    if (name == "bitonic" || name == "oddeven") {
        std::vector<model::Word> keys(v);
        for (auto& k : keys) k = rng.next();
        if (name == "bitonic") return std::make_unique<algo::BitonicSortProgram>(keys);
        return std::make_unique<algo::OddEvenTranspositionSortProgram>(keys);
    }
    if (name == "route") {
        std::vector<unsigned> labels;
        for (unsigned l = 0; l <= ilog2(v); ++l) labels.push_back(ilog2(v) - l);
        return std::make_unique<algo::RandomRoutingProgram>(v, labels, seed);
    }
    return nullptr;
}

/// Per-leg tracing bundle: an aggregate table always, plus a Chrome track
/// when a JSON path was requested (the merged file is written by main, not
/// per leg). Disabled bundle when tracing is off.
report::TraceBundle make_leg_trace(bool enabled, bool chrome, const char* track) {
    return enabled ? report::TraceBundle(track, chrome) : report::TraceBundle();
}

/// Combine one leg's charge-trace bundle with the locality profiler. Returns
/// the sink to attach (nullptr when both observers are off); \p multi must
/// outlive the simulation, it fans events to both when both are on.
trace::Sink* make_leg_sink(report::TraceBundle& bundle, locality::LocalitySink& loc,
                           trace::MultiSink& multi, bool locality_enabled) {
    trace::Sink* charge = bundle.sink();
    if (!locality_enabled) return charge;
    if (charge == nullptr) return &loc;
    multi.add(charge);
    multi.add(&loc);
    return &multi;
}

}  // namespace

int main(int argc, char** argv) {
    if (dbsp::tools::handle_version_flag(argc, argv, "dbsp_explore")) return 0;
    std::string program_name = "bitonic";
    std::string model_name = "both";
    std::uint64_t v = 256;
    std::uint64_t seed = 1;
    bool trace_enabled = false;
    std::string trace_path;
    bool locality_enabled = false;
    bool locality_sampled = false;
    double locality_rate = 0.01;
    std::string locality_path;
    bool rational = false;
    std::string spec_path;
    model::AccessFunction f = model::AccessFunction::polynomial(0.5);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--program") {
            program_name = next();
        } else if (arg == "--spec") {
            spec_path = next();
        } else if (arg == "--v") {
            v = parse_u64("--v", next());
            if (v == 0) bad_arg("--v", "0", "a positive power of two");
        } else if (arg == "--f") {
            f = parse_access_function(next());
        } else if (arg == "--model") {
            model_name = next();
        } else if (arg == "--seed") {
            seed = parse_u64("--seed", next());
        } else if (arg == "--trace") {
            trace_enabled = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_enabled = true;
            trace_path = arg.substr(std::strlen("--trace="));
            if (trace_path.empty()) bad_arg("--trace", arg.c_str(), "a file path");
        } else if (arg.rfind("--locality", 0) == 0) {
            // --locality[=path][:sampled[@rate]] — optional JSON output path,
            // optional SHARDS-sampled engine with an optional explicit rate.
            locality_enabled = true;
            std::string rest = arg.substr(std::strlen("--locality"));
            const std::size_t colon = rest.rfind(":sampled");
            if (colon != std::string::npos) {
                const std::string mode = rest.substr(colon + 1);
                rest = rest.substr(0, colon);
                locality_sampled = true;
                if (mode != "sampled") {
                    const char* rate_str = mode.c_str() + std::strlen("sampled");
                    char* end = nullptr;
                    const double rate =
                        (*rate_str == '@') ? std::strtod(rate_str + 1, &end) : 0.0;
                    if (*rate_str != '@' || rate_str[1] == '\0' || end == nullptr ||
                        *end != '\0' || !(rate > 0.0) || rate > 1.0) {
                        bad_arg("--locality", arg.c_str(),
                                ":sampled or :sampled@R with R in (0, 1]");
                    }
                    locality_rate = rate;
                }
            }
            if (!rest.empty()) {
                if (rest[0] != '=' || rest.size() == 1) {
                    bad_arg("--locality", arg.c_str(),
                            "--locality[=path][:sampled[@rate]]");
                }
                locality_path = rest.substr(1);
            }
        } else if (arg == "--rational") {
            rational = true;
        } else {
            usage(argv[0]);
        }
    }
    if (!is_pow2(v)) {
        std::fprintf(stderr, "dbsp_explore: --v must be a power of two (got %llu)\n",
                     static_cast<unsigned long long>(v));
        return 2;
    }
    if (model_name != "hmm" && model_name != "bt" && model_name != "both" &&
        model_name != "none") {
        bad_arg("--model", model_name.c_str(), "hmm, bt, both, or none");
    }

    if (!spec_path.empty()) {
        // Offline twin of a dbsp_serve run request: same runner, same bytes.
        if (trace_enabled || !locality_path.empty()) {
            std::fprintf(stderr,
                         "dbsp_explore: --spec cannot be combined with --trace or a "
                         "--locality output path\n");
            return 2;
        }
        std::ifstream in(spec_path);
        if (!in) {
            std::fprintf(stderr, "dbsp_explore: cannot open spec \"%s\"\n",
                         spec_path.c_str());
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        check::ProgramSpec spec;
        std::string error;
        if (!check::parse_spec(buf.str(), &spec, &error)) {
            std::fprintf(stderr, "dbsp_explore: bad spec \"%s\": %s\n", spec_path.c_str(),
                         error.c_str());
            return 2;
        }
        serve::RunOptions run;
        run.model = model_name;
        run.f = f;
        run.locality = locality_enabled;
        run.sampled = locality_sampled;
        run.sample_rate = locality_rate;
        std::printf("%s\n", serve::run_to_json(spec, run).c_str());
        return 0;
    }

    auto program = make_program(program_name, v, seed);
    if (!program) usage(argv[0]);
    const std::size_t mu = program->context_words();

    const bool chrome = !trace_path.empty();

    // Direct execution + cost model.
    report::TraceBundle direct_trace = make_leg_trace(trace_enabled, chrome, "dbsp");
    model::DbspMachine machine(f);
    machine.set_trace(direct_trace.sink());
    const auto direct = machine.run(*program);
    std::printf("program %-10s v=%llu  mu=%zu  supersteps=%zu\n", program_name.c_str(),
                static_cast<unsigned long long>(v), mu, direct.supersteps.size());
    std::printf("D-BSP(%llu, %zu, %s): T = %.4g (compute %.4g + communicate %.4g)\n",
                static_cast<unsigned long long>(v), mu, f.name().c_str(), direct.time,
                direct.computation_time(), direct.communication_time());
    direct_trace.report("dbsp_explore", "", direct.time);

    locality::LocalityOptions locality_options;
    if (locality_sampled) {
        locality_options.mode = locality::LocalityOptions::Mode::kSampled;
        locality_options.sample_rate = locality_rate;
    }

    report::TraceBundle hmm_trace = make_leg_trace(trace_enabled, chrome, "hmm");
    locality::LocalitySink hmm_loc(locality_options);
    bool have_hmm_profile = false;
    if (model_name == "hmm" || model_name == "both") {
        auto prog = make_program(program_name, v, seed);
        auto smoothed = core::smooth(*prog, core::hmm_label_set(f, mu, v));
        trace::MultiSink multi;
        core::HmmSimulator::Options options;
        options.trace = make_leg_sink(hmm_trace, hmm_loc, multi, locality_enabled);
        const auto res = core::HmmSimulator(f, options).simulate(*smoothed);
        const double bound = core::theorem5_bound(direct, f, v, mu);
        std::printf("%s-HMM simulation: cost %.4g  slowdown/v %.3g  cost/Thm5-bound %.3g\n",
                    f.name().c_str(), res.hmm_cost,
                    res.hmm_cost / (direct.time * static_cast<double>(v)),
                    res.hmm_cost / bound);
        hmm_trace.report("dbsp_explore", "", res.hmm_cost);
        if (locality_enabled) {
            hmm_loc.profile().print(stdout, f.name() + "-HMM simulation");
            have_hmm_profile = true;
        }
    }
    report::TraceBundle bt_trace = make_leg_trace(trace_enabled, chrome, "bt");
    locality::LocalitySink bt_loc(locality_options);
    bool have_bt_profile = false;
    if (model_name == "bt" || model_name == "both") {
        auto prog = make_program(program_name, v, seed);
        auto smoothed = core::smooth(*prog, core::bt_label_set(f, mu, v));
        trace::MultiSink multi;
        core::BtSimulator::Options options;
        options.use_rational_permutations = rational;
        options.trace = make_leg_sink(bt_trace, bt_loc, multi, locality_enabled);
        const auto res = core::BtSimulator(f, options).simulate(*smoothed);
        const double bound = core::theorem12_bound(direct, v, mu);
        std::printf("%s-BT  simulation: cost %.4g  cost/Thm12-bound %.3g"
                    "  (sorts %llu, transposes %llu)\n",
                    f.name().c_str(), res.bt_cost, res.bt_cost / bound,
                    static_cast<unsigned long long>(res.sort_invocations),
                    static_cast<unsigned long long>(res.transpose_invocations));
        bt_trace.report("dbsp_explore", "", res.bt_cost);
        if (locality_enabled) {
            bt_loc.profile().print(stdout, f.name() + "-BT simulation");
            have_bt_profile = true;
        }
    }

    if (chrome) {
        const std::vector<const trace::ChromeTraceSink*> tracks = {
            direct_trace.chrome(), hmm_trace.chrome(), bt_trace.chrome()};
        if (!trace::ChromeTraceSink::write_merged(tracks, trace_path)) {
            std::fprintf(stderr, "dbsp_explore: cannot write trace file \"%s\"\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
    }

    if (!locality_path.empty()) {
        report::Json doc = report::Json::object();
        doc.set("schema", "dbsp-locality-v2");
        doc.set("provenance", report::Provenance::collect().to_json());
        doc.set("program", program_name);
        doc.set("v", v);
        doc.set("f", f.name());
        doc.set("mode", locality_sampled ? "sampled" : "exact");
        if (locality_sampled) doc.set("sample_rate", locality_rate);
        report::Json profiles = report::Json::object();
        if (have_hmm_profile) profiles.set("hmm", hmm_loc.profile().to_json());
        if (have_bt_profile) profiles.set("bt", bt_loc.profile().to_json());
        doc.set("profiles", std::move(profiles));
        std::string error;
        if (!doc.save_file(locality_path, &error)) {
            std::fprintf(stderr, "dbsp_explore: cannot write locality profile \"%s\": %s\n",
                         locality_path.c_str(), error.c_str());
            return 1;
        }
        std::printf("wrote locality profile to %s\n", locality_path.c_str());
    }
    return 0;
}
