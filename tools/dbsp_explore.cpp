/// dbsp_explore — command-line cost-model explorer.
///
/// Runs one of the built-in D-BSP workloads on a chosen machine size and
/// reports the D-BSP time plus the simulated HMM and/or BT costs, the
/// theorem bounds, and the superstep profile. A quick way to poke at the
/// models without writing code.
///
/// Usage:
///   dbsp_explore --program fft|fft-rec|matmul|bitonic|oddeven|route
///                [--v N] [--f x^A | log] [--model hmm|bt|both|none]
///                [--seed S] [--profile] [--rational]
///
/// Examples:
///   dbsp_explore --program bitonic --v 1024 --f x^0.5 --model both
///   dbsp_explore --program fft-rec --v 256 --f x^0.35 --model bt --rational
///   dbsp_explore --program matmul --v 4096 --f log --profile

#include <complex>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "algos/bitonic_sort.hpp"
#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include "algos/matmul.hpp"
#include "algos/odd_even_sort.hpp"
#include "algos/permutation.hpp"
#include "core/bounds.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace {

using namespace dbsp;

[[noreturn]] void usage(const char* self) {
    std::fprintf(stderr,
                 "usage: %s --program fft|fft-rec|matmul|bitonic|oddeven|route\n"
                 "          [--v N] [--f x^A|log] [--model hmm|bt|both|none]\n"
                 "          [--seed S] [--profile] [--rational]\n",
                 self);
    std::exit(2);
}

std::unique_ptr<model::Program> make_program(const std::string& name, std::uint64_t v,
                                             std::uint64_t seed) {
    SplitMix64 rng(seed);
    if (name == "fft" || name == "fft-rec") {
        std::vector<std::complex<double>> x(v);
        for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
        if (name == "fft") return std::make_unique<algo::FftDirectProgram>(x);
        return std::make_unique<algo::FftRecursiveProgram>(x);
    }
    if (name == "matmul") {
        std::vector<model::Word> a(v), b(v);
        for (auto& w : a) w = rng.next_below(1 << 20);
        for (auto& w : b) w = rng.next_below(1 << 20);
        return std::make_unique<algo::MatMulProgram>(a, b);
    }
    if (name == "bitonic" || name == "oddeven") {
        std::vector<model::Word> keys(v);
        for (auto& k : keys) k = rng.next();
        if (name == "bitonic") return std::make_unique<algo::BitonicSortProgram>(keys);
        return std::make_unique<algo::OddEvenTranspositionSortProgram>(keys);
    }
    if (name == "route") {
        std::vector<unsigned> labels;
        for (unsigned l = 0; l <= ilog2(v); ++l) labels.push_back(ilog2(v) - l);
        return std::make_unique<algo::RandomRoutingProgram>(v, labels, seed);
    }
    return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
    std::string program_name = "bitonic";
    std::string f_name = "x^0.5";
    std::string model_name = "both";
    std::uint64_t v = 256;
    std::uint64_t seed = 1;
    bool profile = false;
    bool rational = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--program") {
            program_name = next();
        } else if (arg == "--v") {
            v = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--f") {
            f_name = next();
        } else if (arg == "--model") {
            model_name = next();
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--profile") {
            profile = true;
        } else if (arg == "--rational") {
            rational = true;
        } else {
            usage(argv[0]);
        }
    }
    if (!is_pow2(v)) {
        std::fprintf(stderr, "--v must be a power of two\n");
        return 2;
    }

    model::AccessFunction f = model::AccessFunction::logarithmic();
    if (f_name.rfind("x^", 0) == 0) {
        f = model::AccessFunction::polynomial(std::strtod(f_name.c_str() + 2, nullptr));
    } else if (f_name != "log") {
        usage(argv[0]);
    }

    auto program = make_program(program_name, v, seed);
    if (!program) usage(argv[0]);
    const std::size_t mu = program->context_words();

    // Direct execution + cost model.
    model::DbspMachine machine(f);
    const auto direct = machine.run(*program);
    std::printf("program %-10s v=%llu  mu=%zu  supersteps=%zu\n", program_name.c_str(),
                static_cast<unsigned long long>(v), mu, direct.supersteps.size());
    std::printf("D-BSP(%llu, %zu, %s): T = %.4g (compute %.4g + communicate %.4g)\n",
                static_cast<unsigned long long>(v), mu, f.name().c_str(), direct.time,
                direct.computation_time(), direct.communication_time());

    if (profile) {
        std::map<unsigned, std::pair<std::size_t, double>> per_label;
        for (const auto& s : direct.supersteps) {
            auto& [count, cost] = per_label[s.label];
            ++count;
            cost += s.cost;
        }
        std::printf("%8s %10s %14s\n", "label", "count", "total cost");
        for (const auto& [label, entry] : per_label) {
            std::printf("%8u %10zu %14.4g\n", label, entry.first, entry.second);
        }
    }

    if (model_name == "hmm" || model_name == "both") {
        auto prog = make_program(program_name, v, seed);
        auto smoothed = core::smooth(*prog, core::hmm_label_set(f, mu, v));
        const auto res = core::HmmSimulator(f).simulate(*smoothed);
        const double bound = core::theorem5_bound(direct, f, v, mu);
        std::printf("%s-HMM simulation: cost %.4g  slowdown/v %.3g  cost/Thm5-bound %.3g\n",
                    f.name().c_str(), res.hmm_cost,
                    res.hmm_cost / (direct.time * static_cast<double>(v)),
                    res.hmm_cost / bound);
    }
    if (model_name == "bt" || model_name == "both") {
        auto prog = make_program(program_name, v, seed);
        auto smoothed = core::smooth(*prog, core::bt_label_set(f, mu, v));
        core::BtSimulator::Options options;
        options.use_rational_permutations = rational;
        const auto res = core::BtSimulator(f, options).simulate(*smoothed);
        const double bound = core::theorem12_bound(direct, v, mu);
        std::printf("%s-BT  simulation: cost %.4g  cost/Thm12-bound %.3g"
                    "  (sorts %llu, transposes %llu)\n",
                    f.name().c_str(), res.bt_cost, res.bt_cost / bound,
                    static_cast<unsigned long long>(res.sort_invocations),
                    static_cast<unsigned long long>(res.transpose_invocations));
    }
    return 0;
}
