/// dbsp_explore — command-line cost-model explorer.
///
/// Runs one of the built-in D-BSP workloads on a chosen machine size and
/// reports the D-BSP time plus the simulated HMM and/or BT costs, the
/// theorem bounds, and (with --trace) the full charge-trace breakdown. A
/// quick way to poke at the models without writing code.
///
/// Usage:
///   dbsp_explore --program fft|fft-rec|matmul|bitonic|oddeven|route
///                [--v N] [--f x^A | log] [--model hmm|bt|both|none]
///                [--seed S] [--rational]
///                [--trace[=chrome.json]]
///                [--locality[=profile.json][:sampled[@rate]]]
///                [--counters[=counters.json]]
///   dbsp_explore --spec FILE [--f x^A | log] [--model hmm|bt|both|none]
///                [--locality[:sampled[@rate]]]
///
/// Examples:
///   dbsp_explore --program bitonic --v 1024 --f x^0.5 --model both
///   dbsp_explore --program fft-rec --v 256 --f x^0.35 --model bt --rational
///   dbsp_explore --program matmul --v 4096 --f log --trace
///   dbsp_explore --program fft --v 256 --model both --trace=trace.json
///   dbsp_explore --program fft --v 4096 --model hmm --locality=profile.json
///   dbsp_explore --program fft --v 65536 --model hmm --locality:sampled@0.05
///   dbsp_explore --program bitonic --v 1024 --model hmm --counters=hw.json
///
/// The observability flag family — all three attach to the same HMM/BT
/// simulation legs, can be combined freely, and never change a charged cost:
///  * --trace observes *costs* (where the charged f()-time went, by phase
///    and level);
///  * --locality observes the *address stream* (reuse distances, working
///    set, per-level hit ratios of the simulated run). `:sampled[@rate]`
///    switches the profiler to the SHARDS-sampled engine (default rate
///    0.01): rate-corrected approximate analytics at a fraction of the
///    exact engine's cost — the right mode for large runs where the score
///    and CDF shape matter more than the last decimal;
///  * --counters observes the *host*: each leg runs under a hardware
///    perf-counter group (cycles, instructions, L1D/LLC/dTLB traffic,
///    multiplex-corrected) and the locality profile is folded through the
///    stack-distance cache model into predicted LRU miss ratios at the
///    host's own L1/L2/LLC geometries (dbsp-cachemodel-v1). Where
///    perf_event_open is denied (containers, CI) the counters report
///    unavailable with the errno reason and the predictions still print.
/// The direct D-BSP leg has no memory address stream, so --locality and
/// --counters cover only the HMM/BT legs.
///
/// --spec FILE is the offline twin of a dbsp_serve run request: it executes
/// the `dbsp-spec v1` program in FILE through the same serve::run_to_json
/// runner and prints the compact "dbsp-serve-result-v1" document (one line).
/// The serve conformance check compares a daemon reply byte-for-byte against
/// this output.

#include <charconv>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algos/bitonic_sort.hpp"
#include "check/trace_io.hpp"
#include "serve/runner.hpp"
#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include "algos/matmul.hpp"
#include "algos/odd_even_sort.hpp"
#include "algos/permutation.hpp"
#include "core/bounds.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "locality/cache_model.hpp"
#include "locality/sink.hpp"
#include "model/dbsp_machine.hpp"
#include "perf/counters.hpp"
#include "report/provenance.hpp"
#include "report/trace_bundle.hpp"
#include "trace/chrome_trace.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"
#include "version.hpp"

namespace {

using namespace dbsp;

[[noreturn]] void usage(const char* self) {
    std::fprintf(stderr,
                 "usage: %s --program fft|fft-rec|matmul|bitonic|oddeven|route\n"
                 "          [--v N] [--f x^A|log] [--model hmm|bt|both|none]\n"
                 "          [--seed S] [--rational]\n"
                 "          [observability flags]\n"
                 "       %s --spec FILE [--f x^A|log] [--model hmm|bt|both|none]\n"
                 "          [--locality[:sampled[@rate]]]\n"
                 "observability flags (attach to the HMM/BT legs; charged costs are\n"
                 "never affected):\n"
                 "  --trace[=chrome.json]     charge-trace breakdown by phase and level\n"
                 "  --locality[=profile.json][:sampled[@rate]]\n"
                 "                            reuse-distance profile of the simulated\n"
                 "                            address stream (SHARDS-sampled with\n"
                 "                            :sampled, default rate 0.01)\n"
                 "  --counters[=hw.json]      hardware perf counters around each leg +\n"
                 "                            stack-distance cache-model predictions\n"
                 "                            (reports unavailable where perf_event_open\n"
                 "                            is denied)\n",
                 self,
                 self);
    std::exit(2);
}

[[noreturn]] void bad_arg(const char* flag, const char* value, const char* expected) {
    std::fprintf(stderr, "dbsp_explore: invalid %s \"%s\" (expected %s)\n", flag, value,
                 expected);
    std::exit(2);
}

/// Strict base-10 unsigned parse: the whole string must be digits, no sign,
/// no trailing garbage, no empty string. Exits 2 on violation.
std::uint64_t parse_u64(const char* flag, const char* value) {
    std::uint64_t n = 0;
    const char* end = value + std::strlen(value);
    const auto [ptr, ec] = std::from_chars(value, end, n, 10);
    if (ec != std::errc{} || ptr != end || value == end) {
        bad_arg(flag, value, "an unsigned integer");
    }
    return n;
}

/// Strict access-function parse: "log" or "x^A" with A a full nonnegative
/// floating-point literal (no trailing garbage). Exits 2 on violation.
model::AccessFunction parse_access_function(const char* value) {
    if (std::strcmp(value, "log") == 0) return model::AccessFunction::logarithmic();
    if (std::strncmp(value, "x^", 2) == 0 && value[2] != '\0') {
        char* end = nullptr;
        const double alpha = std::strtod(value + 2, &end);
        if (end != nullptr && *end == '\0' && alpha >= 0.0) {
            return model::AccessFunction::polynomial(alpha);
        }
    }
    bad_arg("--f", value, "x^A with A a nonnegative number, or log");
}

std::unique_ptr<model::Program> make_program(const std::string& name, std::uint64_t v,
                                             std::uint64_t seed) {
    SplitMix64 rng(seed);
    if (name == "fft" || name == "fft-rec") {
        std::vector<std::complex<double>> x(v);
        for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
        if (name == "fft") return std::make_unique<algo::FftDirectProgram>(x);
        return std::make_unique<algo::FftRecursiveProgram>(x);
    }
    if (name == "matmul") {
        std::vector<model::Word> a(v), b(v);
        for (auto& w : a) w = rng.next_below(1 << 20);
        for (auto& w : b) w = rng.next_below(1 << 20);
        return std::make_unique<algo::MatMulProgram>(a, b);
    }
    if (name == "bitonic" || name == "oddeven") {
        std::vector<model::Word> keys(v);
        for (auto& k : keys) k = rng.next();
        if (name == "bitonic") return std::make_unique<algo::BitonicSortProgram>(keys);
        return std::make_unique<algo::OddEvenTranspositionSortProgram>(keys);
    }
    if (name == "route") {
        std::vector<unsigned> labels;
        for (unsigned l = 0; l <= ilog2(v); ++l) labels.push_back(ilog2(v) - l);
        return std::make_unique<algo::RandomRoutingProgram>(v, labels, seed);
    }
    return nullptr;
}

/// Per-leg tracing bundle: an aggregate table always, plus a Chrome track
/// when a JSON path was requested (the merged file is written by main, not
/// per leg). Disabled bundle when tracing is off.
report::TraceBundle make_leg_trace(bool enabled, bool chrome, const char* track) {
    return enabled ? report::TraceBundle(track, chrome) : report::TraceBundle();
}

/// Combine one leg's charge-trace bundle with the locality profiler. Returns
/// the sink to attach (nullptr when both observers are off); \p multi must
/// outlive the simulation, it fans events to both when both are on.
trace::Sink* make_leg_sink(report::TraceBundle& bundle, locality::LocalitySink& loc,
                           trace::MultiSink& multi, bool locality_enabled) {
    trace::Sink* charge = bundle.sink();
    if (!locality_enabled) return charge;
    if (charge == nullptr) return &loc;
    multi.add(charge);
    multi.add(&loc);
    return &multi;
}

/// One leg's hardware-counter summary line (multiplex-corrected ratios), or
/// the degradation reason.
void print_counters(const char* leg, const perf::CounterSnapshot& snap) {
    if (!snap.available) {
        std::printf("hw counters (%s): unavailable (%s)\n", leg, snap.reason.c_str());
        return;
    }
    auto pct = [&snap](const char* misses, const char* accesses) {
        const double r = snap.ratio(misses, accesses);
        return r < 0.0 ? 0.0 : 100.0 * r;
    };
    const double cycles = snap.scaled("cycles");
    std::printf("hw counters (%s): cycles %.4g  ipc %.2f  l1d-miss %.2f%%  "
                "llc-miss %.2f%%  dtlb-miss %.3f%%\n",
                leg, cycles, cycles > 0.0 ? snap.scaled("instructions") / cycles : 0.0,
                pct("l1d_read_misses", "l1d_read_accesses"),
                pct("llc_misses", "llc_accesses"),
                pct("dtlb_read_misses", "dtlb_read_accesses"));
}

/// Stack-distance predictions at the host's own cache geometries.
void print_cache_model(const std::string& leg, const locality::LocalityProfile& profile) {
    const auto host = locality::host_cache_geometries();
    if (host.empty()) {
        std::printf("cache model (%s): host geometries unavailable (no sysfs)\n",
                    leg.c_str());
        return;
    }
    std::printf("cache model (%s): predicted LRU miss ratios at host geometries\n",
                leg.c_str());
    for (const auto& g : host) {
        std::printf("  %-4s %12llu words: %.4f%s\n", g.name.c_str(),
                    static_cast<unsigned long long>(g.capacity_words),
                    locality::predicted_miss_ratio(profile, g.capacity_words),
                    locality::prediction_is_exact(g.capacity_words) ? ""
                                                                    : " (interpolated)");
    }
}

/// The geometry set emitted into dbsp-cachemodel-v1 sections: host caches
/// plus the simulated machine's own level boundaries.
std::vector<locality::CacheGeometry> artifact_geometries(
    const locality::LocalityProfile& profile) {
    auto geos = locality::host_cache_geometries();
    auto levels = locality::level_geometries(profile.max_level());
    geos.insert(geos.end(), levels.begin(), levels.end());
    return geos;
}

}  // namespace

int main(int argc, char** argv) {
    if (dbsp::tools::handle_version_flag(argc, argv, "dbsp_explore")) return 0;
    std::string program_name = "bitonic";
    std::string model_name = "both";
    std::uint64_t v = 256;
    std::uint64_t seed = 1;
    bool trace_enabled = false;
    std::string trace_path;
    bool locality_enabled = false;
    bool locality_sampled = false;
    double locality_rate = 0.01;
    std::string locality_path;
    bool counters_enabled = false;
    std::string counters_path;
    bool rational = false;
    std::string spec_path;
    model::AccessFunction f = model::AccessFunction::polynomial(0.5);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--program") {
            program_name = next();
        } else if (arg == "--spec") {
            spec_path = next();
        } else if (arg == "--v") {
            v = parse_u64("--v", next());
            if (v == 0) bad_arg("--v", "0", "a positive power of two");
        } else if (arg == "--f") {
            f = parse_access_function(next());
        } else if (arg == "--model") {
            model_name = next();
        } else if (arg == "--seed") {
            seed = parse_u64("--seed", next());
        } else if (arg == "--trace") {
            trace_enabled = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_enabled = true;
            trace_path = arg.substr(std::strlen("--trace="));
            if (trace_path.empty()) bad_arg("--trace", arg.c_str(), "a file path");
        } else if (arg.rfind("--locality", 0) == 0) {
            // --locality[=path][:sampled[@rate]] — optional JSON output path,
            // optional SHARDS-sampled engine with an optional explicit rate.
            locality_enabled = true;
            std::string rest = arg.substr(std::strlen("--locality"));
            const std::size_t colon = rest.rfind(":sampled");
            if (colon != std::string::npos) {
                const std::string mode = rest.substr(colon + 1);
                rest = rest.substr(0, colon);
                locality_sampled = true;
                if (mode != "sampled") {
                    const char* rate_str = mode.c_str() + std::strlen("sampled");
                    char* end = nullptr;
                    const double rate =
                        (*rate_str == '@') ? std::strtod(rate_str + 1, &end) : 0.0;
                    if (*rate_str != '@' || rate_str[1] == '\0' || end == nullptr ||
                        *end != '\0' || !(rate > 0.0) || rate > 1.0) {
                        bad_arg("--locality", arg.c_str(),
                                ":sampled or :sampled@R with R in (0, 1]");
                    }
                    locality_rate = rate;
                }
            }
            if (!rest.empty()) {
                if (rest[0] != '=' || rest.size() == 1) {
                    bad_arg("--locality", arg.c_str(),
                            "--locality[=path][:sampled[@rate]]");
                }
                locality_path = rest.substr(1);
            }
        } else if (arg == "--counters") {
            counters_enabled = true;
        } else if (arg.rfind("--counters=", 0) == 0) {
            counters_enabled = true;
            counters_path = arg.substr(std::strlen("--counters="));
            if (counters_path.empty()) bad_arg("--counters", arg.c_str(), "a file path");
        } else if (arg == "--rational") {
            rational = true;
        } else {
            usage(argv[0]);
        }
    }
    if (!is_pow2(v)) {
        std::fprintf(stderr, "dbsp_explore: --v must be a power of two (got %llu)\n",
                     static_cast<unsigned long long>(v));
        return 2;
    }
    if (model_name != "hmm" && model_name != "bt" && model_name != "both" &&
        model_name != "none") {
        bad_arg("--model", model_name.c_str(), "hmm, bt, both, or none");
    }

    if (!spec_path.empty()) {
        // Offline twin of a dbsp_serve run request: same runner, same bytes.
        if (trace_enabled || counters_enabled || !locality_path.empty()) {
            std::fprintf(stderr,
                         "dbsp_explore: --spec cannot be combined with --trace, "
                         "--counters, or a --locality output path\n");
            return 2;
        }
        std::ifstream in(spec_path);
        if (!in) {
            std::fprintf(stderr, "dbsp_explore: cannot open spec \"%s\"\n",
                         spec_path.c_str());
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        check::ProgramSpec spec;
        std::string error;
        if (!check::parse_spec(buf.str(), &spec, &error)) {
            std::fprintf(stderr, "dbsp_explore: bad spec \"%s\": %s\n", spec_path.c_str(),
                         error.c_str());
            return 2;
        }
        serve::RunOptions run;
        run.model = model_name;
        run.f = f;
        run.locality = locality_enabled;
        run.sampled = locality_sampled;
        run.sample_rate = locality_rate;
        std::printf("%s\n", serve::run_to_json(spec, run).c_str());
        return 0;
    }

    auto program = make_program(program_name, v, seed);
    if (!program) usage(argv[0]);
    const std::size_t mu = program->context_words();

    const bool chrome = !trace_path.empty();

    // Direct execution + cost model.
    report::TraceBundle direct_trace = make_leg_trace(trace_enabled, chrome, "dbsp");
    model::DbspMachine machine(f);
    machine.set_trace(direct_trace.sink());
    const auto direct = machine.run(*program);
    std::printf("program %-10s v=%llu  mu=%zu  supersteps=%zu\n", program_name.c_str(),
                static_cast<unsigned long long>(v), mu, direct.supersteps.size());
    std::printf("D-BSP(%llu, %zu, %s): T = %.4g (compute %.4g + communicate %.4g)\n",
                static_cast<unsigned long long>(v), mu, f.name().c_str(), direct.time,
                direct.computation_time(), direct.communication_time());
    direct_trace.report("dbsp_explore", "", direct.time);

    locality::LocalityOptions locality_options;
    if (locality_sampled) {
        locality_options.mode = locality::LocalityOptions::Mode::kSampled;
        locality_options.sample_rate = locality_rate;
    }

    // --counters needs the reuse-distance profile for its cache-model
    // predictions, so it implies attaching the locality sink; the profile
    // tables still print only under an explicit --locality. Neither observer
    // changes a charged cost (fuzz- and bench-enforced invariant).
    const bool locality_print = locality_enabled;
    if (counters_enabled) locality_enabled = true;
    std::unique_ptr<perf::CounterGroup> hmm_counters, bt_counters;
    perf::CounterSnapshot hmm_snap, bt_snap;
    if (counters_enabled) {
        hmm_counters = std::make_unique<perf::CounterGroup>();
        bt_counters = std::make_unique<perf::CounterGroup>();
    }

    report::TraceBundle hmm_trace = make_leg_trace(trace_enabled, chrome, "hmm");
    locality::LocalitySink hmm_loc(locality_options);
    bool have_hmm_profile = false;
    if (model_name == "hmm" || model_name == "both") {
        auto prog = make_program(program_name, v, seed);
        auto smoothed = core::smooth(*prog, core::hmm_label_set(f, mu, v));
        trace::MultiSink multi;
        core::HmmSimulator::Options options;
        options.trace = make_leg_sink(hmm_trace, hmm_loc, multi, locality_enabled);
        if (hmm_counters) hmm_counters->start();
        const auto res = core::HmmSimulator(f, options).simulate(*smoothed);
        if (hmm_counters) {
            hmm_counters->stop();
            hmm_snap = hmm_counters->read();
        }
        const double bound = core::theorem5_bound(direct, f, v, mu);
        std::printf("%s-HMM simulation: cost %.4g  slowdown/v %.3g  cost/Thm5-bound %.3g\n",
                    f.name().c_str(), res.hmm_cost,
                    res.hmm_cost / (direct.time * static_cast<double>(v)),
                    res.hmm_cost / bound);
        hmm_trace.report("dbsp_explore", "", res.hmm_cost);
        if (locality_print) hmm_loc.profile().print(stdout, f.name() + "-HMM simulation");
        if (locality_enabled) have_hmm_profile = true;
        if (counters_enabled) {
            print_counters("hmm", hmm_snap);
            print_cache_model(f.name() + "-HMM", hmm_loc.profile());
        }
    }
    report::TraceBundle bt_trace = make_leg_trace(trace_enabled, chrome, "bt");
    locality::LocalitySink bt_loc(locality_options);
    bool have_bt_profile = false;
    if (model_name == "bt" || model_name == "both") {
        auto prog = make_program(program_name, v, seed);
        auto smoothed = core::smooth(*prog, core::bt_label_set(f, mu, v));
        trace::MultiSink multi;
        core::BtSimulator::Options options;
        options.use_rational_permutations = rational;
        options.trace = make_leg_sink(bt_trace, bt_loc, multi, locality_enabled);
        if (bt_counters) bt_counters->start();
        const auto res = core::BtSimulator(f, options).simulate(*smoothed);
        if (bt_counters) {
            bt_counters->stop();
            bt_snap = bt_counters->read();
        }
        const double bound = core::theorem12_bound(direct, v, mu);
        std::printf("%s-BT  simulation: cost %.4g  cost/Thm12-bound %.3g"
                    "  (sorts %llu, transposes %llu)\n",
                    f.name().c_str(), res.bt_cost, res.bt_cost / bound,
                    static_cast<unsigned long long>(res.sort_invocations),
                    static_cast<unsigned long long>(res.transpose_invocations));
        bt_trace.report("dbsp_explore", "", res.bt_cost);
        if (locality_print) bt_loc.profile().print(stdout, f.name() + "-BT simulation");
        if (locality_enabled) have_bt_profile = true;
        if (counters_enabled) {
            print_counters("bt", bt_snap);
            print_cache_model(f.name() + "-BT", bt_loc.profile());
        }
    }

    if (chrome) {
        const std::vector<const trace::ChromeTraceSink*> tracks = {
            direct_trace.chrome(), hmm_trace.chrome(), bt_trace.chrome()};
        if (!trace::ChromeTraceSink::write_merged(tracks, trace_path)) {
            std::fprintf(stderr, "dbsp_explore: cannot write trace file \"%s\"\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
    }

    if (!locality_path.empty()) {
        report::Json doc = report::Json::object();
        doc.set("schema", "dbsp-locality-v2");
        doc.set("provenance", report::Provenance::collect().to_json());
        doc.set("program", program_name);
        doc.set("v", v);
        doc.set("f", f.name());
        doc.set("mode", locality_sampled ? "sampled" : "exact");
        if (locality_sampled) doc.set("sample_rate", locality_rate);
        report::Json profiles = report::Json::object();
        if (have_hmm_profile) profiles.set("hmm", hmm_loc.profile().to_json());
        if (have_bt_profile) profiles.set("bt", bt_loc.profile().to_json());
        doc.set("profiles", std::move(profiles));
        std::string error;
        if (!doc.save_file(locality_path, &error)) {
            std::fprintf(stderr, "dbsp_explore: cannot write locality profile \"%s\": %s\n",
                         locality_path.c_str(), error.c_str());
            return 1;
        }
        std::printf("wrote locality profile to %s\n", locality_path.c_str());
    }

    if (!counters_path.empty()) {
        // dbsp-hwcounters-v1: per-leg counter snapshots + cache-model
        // predictions. The top-level "counters" availability object is the
        // contract the CI degradation smoke asserts on.
        report::Json doc = report::Json::object();
        doc.set("schema", "dbsp-hwcounters-v1");
        doc.set("provenance", report::Provenance::collect().to_json());
        doc.set("program", program_name);
        doc.set("v", v);
        doc.set("f", f.name());
        report::Json avail = report::Json::object();
        const bool any_available = (have_hmm_profile && hmm_snap.available) ||
                                   (have_bt_profile && bt_snap.available);
        avail.set("available", any_available);
        if (!any_available) {
            avail.set("reason", have_hmm_profile ? hmm_snap.reason
                                : have_bt_profile ? bt_snap.reason
                                                  : "no simulation leg ran");
        }
        doc.set("counters", std::move(avail));
        report::Json legs = report::Json::object();
        if (have_hmm_profile) {
            report::Json leg = report::Json::object();
            leg.set("counters", hmm_snap.to_json());
            const locality::LocalityProfile p = hmm_loc.profile();
            leg.set("cachemodel", locality::cache_model_json(p, artifact_geometries(p)));
            legs.set("hmm", std::move(leg));
        }
        if (have_bt_profile) {
            report::Json leg = report::Json::object();
            leg.set("counters", bt_snap.to_json());
            const locality::LocalityProfile p = bt_loc.profile();
            leg.set("cachemodel", locality::cache_model_json(p, artifact_geometries(p)));
            legs.set("bt", std::move(leg));
        }
        doc.set("legs", std::move(legs));
        std::string error;
        if (!doc.save_file(counters_path, &error)) {
            std::fprintf(stderr, "dbsp_explore: cannot write counters file \"%s\": %s\n",
                         counters_path.c_str(), error.c_str());
            return 1;
        }
        std::printf("wrote hardware-counter report to %s\n", counters_path.c_str());
    }
    return 0;
}
