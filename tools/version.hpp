#pragma once

/// \file version.hpp
/// The one `--version` implementation every CLI tool shares: print the
/// configure-time git SHA and build type from the report::provenance
/// envelope (the same identity stamped onto every JSON artifact) and exit 0.
/// Handled before any other flag parsing so `dbsp_x --version` never
/// requires the tool's mandatory arguments.

#include <cstdio>
#include <cstring>

#include "report/provenance.hpp"

namespace dbsp::tools {

/// Suite release the tools ship with; bumped on each feature PR. The git
/// SHA remains the precise identity — this is the human-facing marker
/// (1.1.0: hardware-counter layer + cache-model predictor + E15).
inline constexpr const char* kSuiteVersion = "1.1.0";

/// True when argv contains --version, in which case the version line has
/// already been printed to stdout. Callers `return 0` on true.
inline bool handle_version_flag(int argc, char** argv, const char* tool) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--version") == 0) {
            const report::Provenance p = report::Provenance::collect();
            std::printf("%s v%s %s (%s, %s)\n", tool, kSuiteVersion,
                        p.git_sha.c_str(), p.build_type.c_str(),
                        p.compiler.c_str());
            return true;
        }
    }
    return false;
}

}  // namespace dbsp::tools
