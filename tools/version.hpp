#pragma once

/// \file version.hpp
/// The one `--version` implementation every CLI tool shares: print the
/// configure-time git SHA and build type from the report::provenance
/// envelope (the same identity stamped onto every JSON artifact) and exit 0.
/// Handled before any other flag parsing so `dbsp_x --version` never
/// requires the tool's mandatory arguments.

#include <cstdio>
#include <cstring>

#include "report/provenance.hpp"

namespace dbsp::tools {

/// True when argv contains --version, in which case the version line has
/// already been printed to stdout. Callers `return 0` on true.
inline bool handle_version_flag(int argc, char** argv, const char* tool) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--version") == 0) {
            const report::Provenance p = report::Provenance::collect();
            std::printf("%s %s (%s, %s)\n", tool, p.git_sha.c_str(),
                        p.build_type.c_str(), p.compiler.c_str());
            return true;
        }
    }
    return false;
}

}  // namespace dbsp::tools
