# Degradation smoke for the hardware-counter layer: run dbsp_explore
# --counters with perf_event_open force-denied (DBSP_NO_PERF=1), assert the
# run still succeeds, the console reports the reason, and the
# dbsp-hwcounters-v1 artifact carries "counters":{"available":false,
# "reason":...} — the contract every downstream consumer (gate checks,
# dashboard rows, bench legs) auto-waives on.
#
# Inputs: EXPLORE_TOOL (dbsp_explore binary), WORK_DIR (scratch directory).

file(MAKE_DIRECTORY ${WORK_DIR})
set(ENV{DBSP_NO_PERF} 1)
execute_process(
    COMMAND ${EXPLORE_TOOL} --program bitonic --v 64 --model both
            --counters=${WORK_DIR}/hw.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dbsp_explore --counters failed under DBSP_NO_PERF "
                      "(exit ${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "hw counters \\(hmm\\): unavailable \\(disabled by DBSP_NO_PERF\\)")
  message(FATAL_ERROR "missing degradation line in console output:\n${out}")
endif()

file(READ ${WORK_DIR}/hw.json doc)
if(NOT doc MATCHES "\"available\":[ \t\r\n]*false")
  message(FATAL_ERROR "artifact does not record counters unavailable:\n${doc}")
endif()
if(NOT doc MATCHES "\"reason\":[ \t\r\n]*\"disabled by DBSP_NO_PERF\"")
  message(FATAL_ERROR "artifact does not record the unavailability reason:\n${doc}")
endif()
if(NOT doc MATCHES "dbsp-cachemodel-v1")
  message(FATAL_ERROR "artifact lacks the cache-model section (predictions must "
                      "not depend on counter availability):\n${doc}")
endif()
message(STATUS "counters degradation smoke ok")
