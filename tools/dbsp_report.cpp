/// dbsp_report — experiment conformance reporter and regression gate.
///
/// Ingests the per-experiment JSON artifacts written by the bench_eNN
/// binaries (`bench_e1_hmm_touching --json e1.json`), or runs the binaries
/// itself (--run <bindir>), and merges them — plus an optional
/// BENCH_micro.json — into the combined BENCH_experiments.json artifact and
/// a Markdown conformance dashboard. With --check it compares the fresh
/// report against a committed baseline under per-metric tolerances and exits
/// non-zero on any regression, which is what CI runs.
///
/// Usage:
///   dbsp_report [options] [experiment.json ...]
///     --run DIR          run every bench_eNN binary found in DIR and ingest
///                        its artifact (skips binaries that do not exist)
///     --micro FILE       ingest a BENCH_micro.json perf artifact
///     --in FILE          load an existing combined report as the current one
///                        (exclusive with positional files, --run, --micro)
///     --out FILE         write the combined report JSON
///     --md FILE          write the Markdown conformance dashboard
///     --check            run the regression gate (requires --baseline)
///     --baseline FILE    committed combined report to gate / diff against
///     --subset-ok        gate: tolerate experiments/checks missing vs baseline
///     --exponent-drift X gate: max |exponent - baseline| (default 0.05)
///     --value-drift X    gate: max relative value drift (default 0.25)
///     --perf-drop X      gate: max words/sec drop, percent (default 35)
///     --locality-overhead-max X         gate: ceiling on the exact-mode
///                        enabled-path locality overhead, percent (default 4000)
///     --locality-sampled-overhead-max X gate: same for the sampled mode
///                        (default 400)
///     --locality-score-err-max X        gate: ceiling on the sampled-mode
///                        locality-score absolute error (default 0.5)
///
/// Exit status: 0 all checks pass and the gate is clean; 1 a conformance
/// check fails or the gate trips; 2 usage error or unreadable/unwritable
/// artifact.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "report/conformance.hpp"
#include "report/experiment.hpp"
#include "report/json.hpp"
#include "report/provenance.hpp"
#include "version.hpp"

namespace {

using namespace dbsp;

/// The experiment binaries --run looks for, in report order (mirrors
/// DBSP_EXPERIMENTS in bench/CMakeLists.txt).
const char* const kExperimentBinaries[] = {
    "bench_e1_hmm_touching",  "bench_e2_bt_touching",       "bench_e3_hmm_simulation",
    "bench_e4_matmul",        "bench_e5_fft",               "bench_e6_sorting",
    "bench_e7_brent",         "bench_e8_bt_simulation",     "bench_e9_bt_matmul",
    "bench_e10_bt_fft",       "bench_e11_rational_perm",    "bench_e12_smoothing",
    "bench_e13_locality_ablation", "bench_e14_locality_profile",
    "bench_e15_hardware_locality",
};

[[noreturn]] void usage(const char* self) {
    std::fprintf(stderr,
                 "usage: %s [options] [experiment.json ...]\n"
                 "  --run DIR | --micro FILE | --in FILE | --out FILE | --md FILE\n"
                 "  --check --baseline FILE [--subset-ok]\n"
                 "  [--exponent-drift X] [--value-drift X] [--perf-drop X]\n",
                 self);
    std::exit(2);
}

double parse_double(const char* flag, const char* value) {
    char* end = nullptr;
    const double x = std::strtod(value, &end);
    if (end == nullptr || *end != '\0' || end == value || !(x >= 0.0)) {
        std::fprintf(stderr, "dbsp_report: invalid %s \"%s\" (expected a nonnegative number)\n",
                     flag, value);
        std::exit(2);
    }
    return x;
}

/// Numeric sort key for experiment ids "e1".."e13"; unknown ids sort last,
/// alphabetically, so foreign artifacts still land deterministically.
std::pair<int, std::string> id_key(const std::string& id) {
    if (id.size() > 1 && id[0] == 'e') {
        char* end = nullptr;
        const long n = std::strtol(id.c_str() + 1, &end, 10);
        if (end != nullptr && *end == '\0') return {static_cast<int>(n), id};
    }
    return {1 << 20, id};
}

std::optional<report::ExperimentResult> load_experiment(const std::string& path) {
    std::string error;
    const auto doc = report::Json::load_file(path, &error);
    if (!doc) {
        std::fprintf(stderr, "dbsp_report: %s: %s\n", path.c_str(), error.c_str());
        return std::nullopt;
    }
    auto result = report::ExperimentResult::from_json(*doc, &error);
    if (!result) {
        std::fprintf(stderr, "dbsp_report: %s: %s\n", path.c_str(), error.c_str());
    }
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    if (dbsp::tools::handle_version_flag(argc, argv, "dbsp_report")) return 0;
    std::vector<std::string> inputs;
    std::string run_dir, micro_path, in_path, out_path, md_path, baseline_path;
    bool check = false;
    report::GateOptions gate;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--run") {
            run_dir = next();
        } else if (arg == "--micro") {
            micro_path = next();
        } else if (arg == "--in") {
            in_path = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--md") {
            md_path = next();
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--subset-ok") {
            gate.subset_ok = true;
        } else if (arg == "--exponent-drift") {
            gate.exponent_drift = parse_double("--exponent-drift", next());
        } else if (arg == "--value-drift") {
            gate.value_drift_rel = parse_double("--value-drift", next());
        } else if (arg == "--perf-drop") {
            gate.perf_drop_pct = parse_double("--perf-drop", next());
        } else if (arg == "--locality-overhead-max") {
            gate.locality_enabled_overhead_max_pct =
                parse_double("--locality-overhead-max", next());
        } else if (arg == "--locality-sampled-overhead-max") {
            gate.locality_sampled_overhead_max_pct =
                parse_double("--locality-sampled-overhead-max", next());
        } else if (arg == "--locality-score-err-max") {
            gate.locality_sampled_score_err_max =
                parse_double("--locality-score-err-max", next());
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "dbsp_report: unknown flag \"%s\"\n", arg.c_str());
            usage(argv[0]);
        } else {
            inputs.push_back(arg);
        }
    }
    if (check && baseline_path.empty()) {
        std::fprintf(stderr, "dbsp_report: --check requires --baseline FILE\n");
        usage(argv[0]);
    }
    if (!in_path.empty() && (!inputs.empty() || !run_dir.empty() || !micro_path.empty())) {
        std::fprintf(stderr,
                     "dbsp_report: --in is exclusive with positional files, --run, --micro\n");
        usage(argv[0]);
    }
    if (in_path.empty() && inputs.empty() && run_dir.empty() && micro_path.empty()) {
        std::fprintf(stderr, "dbsp_report: nothing to report on\n");
        usage(argv[0]);
    }

    report::CombinedReport current;
    current.provenance = report::Provenance::collect();
    std::string error;

    if (!in_path.empty()) {
        const auto doc = report::Json::load_file(in_path, &error);
        if (!doc) {
            std::fprintf(stderr, "dbsp_report: %s: %s\n", in_path.c_str(), error.c_str());
            return 2;
        }
        auto loaded = report::CombinedReport::from_json(*doc, &error);
        if (!loaded) {
            std::fprintf(stderr, "dbsp_report: %s: %s\n", in_path.c_str(), error.c_str());
            return 2;
        }
        current = std::move(*loaded);
    } else {
        // Run binaries first so positional artifacts can override a stale run.
        if (!run_dir.empty()) {
            const auto artifact_dir = std::filesystem::temp_directory_path();
            for (const char* name : kExperimentBinaries) {
                const auto binary = std::filesystem::path(run_dir) / name;
                std::error_code ec;
                if (!std::filesystem::exists(binary, ec)) {
                    std::fprintf(stderr, "dbsp_report: skipping %s (not built)\n", name);
                    continue;
                }
                const auto artifact =
                    artifact_dir / (std::string("dbsp_report_") + name + ".json");
                const std::string cmd = "\"" + binary.string() + "\" --json \"" +
                                        artifact.string() + "\" > /dev/null";
                std::printf("running %s ...\n", name);
                std::fflush(stdout);
                // A conformance failure (exit 1) still writes the artifact —
                // the failed verdicts belong in the report. Only a missing /
                // unparsable artifact is fatal here.
                (void)std::system(cmd.c_str());
                inputs.push_back(artifact.string());
            }
        }
        for (const std::string& path : inputs) {
            auto result = load_experiment(path);
            if (!result) return 2;
            const auto dup = std::find_if(
                current.experiments.begin(), current.experiments.end(),
                [&](const report::ExperimentResult& e) { return e.id == result->id; });
            if (dup != current.experiments.end()) *dup = std::move(*result);
            else current.experiments.push_back(std::move(*result));
        }
        std::stable_sort(current.experiments.begin(), current.experiments.end(),
                         [](const report::ExperimentResult& a,
                            const report::ExperimentResult& b) {
                             return id_key(a.id) < id_key(b.id);
                         });
        if (!micro_path.empty()) {
            const auto doc = report::Json::load_file(micro_path, &error);
            if (!doc) {
                std::fprintf(stderr, "dbsp_report: %s: %s\n", micro_path.c_str(),
                             error.c_str());
                return 2;
            }
            auto micro = report::MicroData::from_json(*doc, &error);
            if (!micro) {
                std::fprintf(stderr, "dbsp_report: %s: %s\n", micro_path.c_str(),
                             error.c_str());
                return 2;
            }
            current.micro = std::move(micro);
        }
    }

    std::optional<report::CombinedReport> baseline;
    if (!baseline_path.empty()) {
        const auto doc = report::Json::load_file(baseline_path, &error);
        if (!doc) {
            std::fprintf(stderr, "dbsp_report: %s: %s\n", baseline_path.c_str(),
                         error.c_str());
            return 2;
        }
        baseline = report::CombinedReport::from_json(*doc, &error);
        if (!baseline) {
            std::fprintf(stderr, "dbsp_report: %s: %s\n", baseline_path.c_str(),
                         error.c_str());
            return 2;
        }
    }

    // Console summary.
    int checks_total = 0, checks_passed = 0;
    for (const auto& e : current.experiments) {
        int passed = 0;
        for (const auto& c : e.checks) passed += c.pass ? 1 : 0;
        checks_total += static_cast<int>(e.checks.size());
        checks_passed += passed;
        std::printf("%-4s %-55s %2d/%2zu %s\n", e.id.c_str(), e.title.c_str(), passed,
                    e.checks.size(), e.pass() ? "PASS" : "FAIL");
    }
    if (current.micro) {
        std::printf("micro: %.0f words/s bulk, %.2fx speedup, costs bit-identical: %s\n",
                    current.micro->bulk_words_per_sec, current.micro->speedup,
                    current.micro->costs_bit_identical ? "yes" : "NO");
    }
    std::printf("experiments: %zu   checks: %d/%d pass\n", current.experiments.size(),
                checks_passed, checks_total);

    if (!out_path.empty()) {
        if (!current.to_json().save_file(out_path, &error)) {
            std::fprintf(stderr, "dbsp_report: cannot write %s: %s\n", out_path.c_str(),
                         error.c_str());
            return 2;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    if (!md_path.empty()) {
        const std::string md = current.markdown(baseline ? &*baseline : nullptr);
        std::FILE* f = std::fopen(md_path.c_str(), "wb");
        if (f == nullptr || std::fwrite(md.data(), 1, md.size(), f) != md.size()) {
            if (f != nullptr) std::fclose(f);
            std::fprintf(stderr, "dbsp_report: cannot write %s\n", md_path.c_str());
            return 2;
        }
        std::fclose(f);
        std::printf("wrote %s\n", md_path.c_str());
    }

    bool gate_ok = true;
    if (check) {
        const auto violations = report::gate_violations(current, *baseline, gate);
        if (violations.empty()) {
            std::printf("gate: PASS (vs %s)\n", baseline_path.c_str());
        } else {
            gate_ok = false;
            std::printf("gate: FAIL (vs %s), %zu violation%s\n", baseline_path.c_str(),
                        violations.size(), violations.size() == 1 ? "" : "s");
            for (const auto& v : violations) std::printf("  - %s\n", v.c_str());
        }
    }

    const bool conformance_ok = current.pass();
    if (!conformance_ok) std::printf("conformance: FAIL\n");
    return (conformance_ok && gate_ok) ? 0 : 1;
}
