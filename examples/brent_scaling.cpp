/// Example: capacity planning with the D-BSP self-simulation (Section 4).
///
/// Scenario: a 512-processor D-BSP job (a full routing workload) must run on
/// smaller machines whose processors have proportionally larger hierarchical
/// memories. The Brent-style self-simulation predicts the running time on
/// every configuration: time scales like v/v' with no hierarchy-induced
/// penalty, so halving the machine doubles the time — the "seamless
/// integration of memory and network hierarchies".

#include <cstdio>

#include "algos/permutation.hpp"
#include "core/self_simulator.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"

int main() {
    using namespace dbsp;
    constexpr std::uint64_t v = 512;
    const auto g = model::AccessFunction::polynomial(0.5);

    // A full workload: every label level, h = 6 relation per superstep.
    std::vector<unsigned> labels;
    for (unsigned l = 0; l <= ilog2(v); ++l) labels.push_back(ilog2(v) - l);

    algo::RandomRoutingProgram guest(v, labels, 99, /*local_ops=*/0, /*fill_messages=*/5);
    const auto direct = model::DbspMachine(g).run(guest);
    std::printf("guest: D-BSP(%llu, mu, x^0.5), T = %.1f\n\n",
                static_cast<unsigned long long>(v), direct.time);
    std::printf("%8s %14s %16s %12s %s\n", "v'", "host time", "vs previous", "global/local",
                "(runs)");

    double previous = 0.0;
    for (std::uint64_t vp = v; vp >= 1; vp /= 4) {
        algo::RandomRoutingProgram prog(v, labels, 99, 0, 5);
        const core::SelfSimulator sim(g, vp);
        const auto host = sim.simulate(prog);
        std::printf("%8llu %14.3e %15.2fx %7zu/%-4zu\n",
                    static_cast<unsigned long long>(vp), host.host_time,
                    previous > 0 ? host.host_time / previous : 0.0,
                    host.global_supersteps, host.local_runs);
        // Every configuration computes the same answer.
        for (std::uint64_t p = 0; p < v; ++p) {
            if (host.data_of(p)[0] != direct.data_of(p)[0]) {
                std::printf("MISMATCH at %llu\n", static_cast<unsigned long long>(p));
                return 1;
            }
        }
        previous = host.host_time;
    }
    std::printf("\n(after the first shrink — where host processors start paying real\n"
                "hierarchy costs — each further 4x shrink multiplies the time by a\n"
                "settling constant close to 4x: Theta(v/v') slowdown with no growing\n"
                "hierarchy penalty, Corollary 11's Brent's lemma analogue)\n");
    return 0;
}
