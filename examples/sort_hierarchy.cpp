/// Example: checking a sorting algorithm's *scaling* on an abstract memory
/// hierarchy before committing to it.
///
/// Proposition 9 says the simulated bitonic sorter is asymptotically optimal
/// on x^alpha-HMM: Theta(n^(1+alpha)), the [AACS87] sorting lower bound. A
/// flat-memory mergesort pays Theta(n^(1+alpha) log n) — its constant is far
/// smaller (it moves single words, not processor contexts), so it wins at
/// small n, but its cost *per lower-bound unit* grows with n while the
/// simulated parallel algorithm's stays flat. This example measures both
/// trajectories, which is exactly how one would use this library: as a
/// cost-model wind tunnel for algorithm choices on deep hierarchies.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "algos/bitonic_sort.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "hmm/machine.hpp"
#include "hmm/primitives.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

int main() {
    using namespace dbsp;
    const auto f = model::AccessFunction::polynomial(0.5);

    std::printf("sorting on the x^0.5-HMM: cost / n^1.5 (the sorting lower-bound "
                "shape)\n\n");
    std::printf("%8s %20s %24s\n", "n", "flat mergesort", "simulated bitonic");

    double flat_first = 0, sim_first = 0;
    double flat_last = 0, sim_last = 0;
    for (std::uint64_t n = 256; n <= 16384; n *= 4) {
        SplitMix64 rng(n);
        std::vector<model::Word> keys(n);
        for (auto& k : keys) k = rng.next();

        hmm::Machine flat(f, 2 * n);
        std::copy(keys.begin(), keys.end(), flat.raw().begin());
        flat.reset_cost();
        hmm::oblivious_merge_sort(flat, n);

        algo::BitonicSortProgram prog(keys);
        auto smoothed = core::smooth(prog, core::hmm_label_set(f, prog.context_words(), n));
        const auto sim = core::HmmSimulator(f).simulate(*smoothed);

        const double shape = std::pow(static_cast<double>(n), 1.5);
        std::printf("%8llu %20.2f %24.2f\n", static_cast<unsigned long long>(n),
                    flat.cost() / shape, sim.hmm_cost / shape);
        if (flat_first == 0) {
            flat_first = flat.cost() / shape;
            sim_first = sim.hmm_cost / shape;
        }
        flat_last = flat.cost() / shape;
        sim_last = sim.hmm_cost / shape;

        for (std::uint64_t p = 1; p < n; ++p) {
            if (flat.raw()[p - 1] > flat.raw()[p] ||
                sim.data_of(p - 1)[0] > sim.data_of(p)[0]) {
                std::printf("NOT SORTED\n");
                return 1;
            }
        }
    }

    std::printf("\nnormalized growth over the sweep: flat %.2fx (the extra log n), "
                "simulated %.2fx (optimal shape)\n",
                flat_last / flat_first, sim_last / sim_first);
    std::printf("(the simulated parallel sorter tracks the Theta(n^1.5) lower bound; "
                "its larger constant is the price of moving whole processor contexts, "
                "the flat sort's growing factor is the price of ignoring locality)\n");
    return 0;
}
