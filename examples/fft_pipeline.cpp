/// Example: a spectral-analysis pipeline on the D-BSP, ported to a memory
/// hierarchy for free.
///
/// Scenario: a 4096-point signal is distributed one sample per processor;
/// we compute its DFT with the direct FFT schedule, then ask how the same
/// *parallel* code behaves as a *sequential hierarchy-conscious* algorithm on
/// machines with different access functions — the paper's central use case
/// ("a powerful tool to obtain efficient hierarchy-conscious algorithms
/// automatically from parallel ones").

#include <cmath>
#include <complex>
#include <cstdio>
#include <numbers>

#include "algos/fft_direct.hpp"
#include "algos/serial_reference.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"

int main() {
    using namespace dbsp;
    constexpr std::uint64_t n = 4096;

    // A two-tone signal: 50 Hz + weak 333 Hz component.
    std::vector<std::complex<double>> signal(n);
    for (std::uint64_t j = 0; j < n; ++j) {
        const double t = static_cast<double>(j) / static_cast<double>(n);
        signal[j] = std::sin(2 * std::numbers::pi * 50 * t) +
                    0.25 * std::sin(2 * std::numbers::pi * 333 * t);
    }

    // Parallel execution on D-BSP(n, O(1), x^0.5).
    const auto g = model::AccessFunction::polynomial(0.5);
    algo::FftDirectProgram prog(signal);
    const auto run = model::DbspMachine(g).run(prog);
    std::printf("D-BSP FFT: T = %.1f = %.1f * n^0.5 (Proposition 8: T = Theta(n^0.5))\n",
                run.time, run.time / std::sqrt(static_cast<double>(n)));

    // Find the two spectral peaks from the distributed result (output of the
    // DIF schedule is bit-reversed: processor p holds X[bitrev(p)]).
    double best = 0, second = 0;
    std::uint64_t best_k = 0, second_k = 0;
    for (std::uint64_t p = 0; p < n; ++p) {
        const auto data = run.data_of(p);
        const std::complex<double> x(std::bit_cast<double>(data[0]),
                                     std::bit_cast<double>(data[1]));
        const std::uint64_t k = reverse_bits(p, ilog2(n));
        if (k == 0 || k >= n / 2) continue;
        const double mag = std::abs(x);
        if (mag > best) {
            second = best;
            second_k = best_k;
            best = mag;
            best_k = k;
        } else if (mag > second) {
            second = mag;
            second_k = k;
        }
    }
    std::printf("spectral peaks at bins %llu and %llu (expected 50 and 333)\n",
                static_cast<unsigned long long>(best_k),
                static_cast<unsigned long long>(second_k));

    // The same program as a sequential algorithm, on two different memory
    // hierarchies, via the Theorem 5 simulation.
    for (const auto& f :
         {model::AccessFunction::polynomial(0.5), model::AccessFunction::logarithmic()}) {
        algo::FftDirectProgram sim_prog(signal);
        auto smoothed =
            core::smooth(sim_prog, core::hmm_label_set(f, sim_prog.context_words(), n));
        const auto res = core::HmmSimulator(f).simulate(*smoothed);
        std::printf("as a %s-HMM algorithm: cost %.3e (%.1f per butterfly)\n",
                    f.name().c_str(), res.hmm_cost,
                    res.hmm_cost / (static_cast<double>(n) * ilog2(n)));
        // Verify the simulated machine computed the same spectrum.
        const auto data = res.data_of(reverse_bits(best_k, ilog2(n)));
        const std::complex<double> x(std::bit_cast<double>(data[0]),
                                     std::bit_cast<double>(data[1]));
        if (std::abs(std::abs(x) - best) > 1e-6) {
            std::printf("MISMATCH in simulated spectrum\n");
            return 1;
        }
    }
    std::printf("hierarchy-conscious ports verified against the parallel run\n");
    return 0;
}
