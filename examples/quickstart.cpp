/// Quickstart: write a D-BSP program, execute it directly, then simulate it
/// on the HMM and BT models and compare the costs.
///
/// The program below is a minimal "nearest-neighbour average": every
/// processor holds a number, repeatedly averages with its partner at
/// decreasing distances (a superstep per level, label l = level), and ends
/// with a global synchronization. It exercises the whole public API surface:
/// Program, StepContext, DbspMachine, smoothing, HmmSimulator, BtSimulator.
///
/// Build & run:  cmake -B build -G Ninja && cmake --build build
///               ./build/examples/quickstart

#include <bit>
#include <cstdio>

#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"

namespace {

using namespace dbsp;

/// Each superstep l (0 <= l < log v): processor p exchanges its value with
/// p ^ (v >> (l+1)) — a partner inside its l-cluster — and stores the mean.
class NeighbourAverage final : public model::Program {
public:
    explicit NeighbourAverage(std::vector<double> input) : input_(std::move(input)) {
        log_v_ = ilog2(input_.size());
    }

    std::string name() const override { return "neighbour-average"; }
    std::uint64_t num_processors() const override { return input_.size(); }
    std::size_t data_words() const override { return 1; }
    std::size_t max_messages() const override { return 1; }
    model::StepIndex num_supersteps() const override { return log_v_ + 1; }
    unsigned label(model::StepIndex s) const override {
        return s < log_v_ ? static_cast<unsigned>(s) : 0u;
    }
    void init(model::ProcId p, std::span<model::Word> data) const override {
        data[0] = std::bit_cast<model::Word>(input_[p]);
    }
    void step(model::StepIndex s, model::ProcId p, model::StepContext& ctx) override {
        // Fold in the partner value received from the previous superstep.
        if (ctx.inbox_size() > 0) {
            const double theirs = std::bit_cast<double>(ctx.inbox(0).payload0);
            const double mine = ctx.load_double(0);
            ctx.store_double(0, 0.5 * (mine + theirs));
        }
        if (s >= log_v_) return;  // final global synchronization
        const std::uint64_t partner = p ^ (input_.size() >> (s + 1));
        ctx.send(partner, std::bit_cast<model::Word>(ctx.load_double(0)));
    }

private:
    std::vector<double> input_;
    unsigned log_v_;
};

}  // namespace

int main() {
    constexpr std::uint64_t v = 256;
    std::vector<double> input(v);
    for (std::uint64_t p = 0; p < v; ++p) input[p] = static_cast<double>(p);

    // 1. Execute directly on the D-BSP machine (g(x) = x^0.5).
    const auto g = model::AccessFunction::polynomial(0.5);
    NeighbourAverage direct_prog(input);
    const auto direct = model::DbspMachine(g).run(direct_prog);
    std::printf("D-BSP time T = %.1f over %zu supersteps\n", direct.time,
                direct.supersteps.size());
    std::printf("result at P0 = %.3f (everyone converges to the global mean %.3f)\n",
                std::bit_cast<double>(direct.data_of(0)[0]), (v - 1) / 2.0);

    // 2. Simulate on the f(x)-HMM with f = g (Corollary 6: slowdown ~ v).
    NeighbourAverage hmm_prog(input);
    auto smoothed = core::smooth(hmm_prog, core::hmm_label_set(g, hmm_prog.context_words(), v));
    const auto hmm = core::HmmSimulator(g).simulate(*smoothed);
    std::printf("HMM simulation cost = %.3e  -> slowdown/v = %.2f\n", hmm.hmm_cost,
                hmm.hmm_cost / (direct.time * static_cast<double>(v)));

    // 3. Simulate on the f(x)-BT model (Theorem 12).
    NeighbourAverage bt_prog(input);
    auto bt_smoothed =
        core::smooth(bt_prog, core::bt_label_set(g, bt_prog.context_words(), v));
    const auto bt = core::BtSimulator(g).simulate(*bt_smoothed);
    std::printf("BT  simulation cost = %.3e (independent of f up to constants)\n",
                bt.bt_cost);

    // All three executions produce bit-identical data words.
    for (std::uint64_t p = 0; p < v; ++p) {
        if (hmm.data_of(p) != direct.data_of(p) || bt.data_of(p) != direct.data_of(p)) {
            std::printf("MISMATCH at processor %llu\n", static_cast<unsigned long long>(p));
            return 1;
        }
    }
    std::printf("functional equivalence verified across all three executions\n");
    return 0;
}
