#pragma once

/// \file aggregate.hpp
/// In-memory aggregating sink with a paper-style table printer: per-level
/// cost histogram (where in the hierarchy did the charges land) and
/// per-(phase, superstep-label) breakdown (which simulation activity paid
/// them), each with its share of the total. This is the instrument for the
/// paper's central claim — submachine locality showing up as charge
/// concentration at the cheap levels — and a second audit of the charging
/// code: total() must equal the machine's charged cost bit for bit.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "trace/sink.hpp"

namespace dbsp::trace {

class AggregateSink final : public Sink {
public:
    struct LevelStats {
        std::uint64_t words = 0;
        double cost = 0.0;
    };
    struct PhaseKey {
        Phase phase = Phase::kNone;
        unsigned label = 0;
        bool operator<(const PhaseKey& o) const {
            return phase != o.phase ? phase < o.phase : label < o.label;
        }
    };
    struct PhaseStats {
        std::uint64_t scopes = 0;  ///< phase_begin count (kSuperstep: supersteps)
        std::uint64_t words = 0;
        double cost = 0.0;
        std::map<unsigned, LevelStats> levels;
    };

    /// Aggregated views (levels keyed by hierarchy level; kNoLevel collects
    /// pure-compute charges).
    const std::map<unsigned, LevelStats>& levels() const { return levels_; }
    const std::map<PhaseKey, PhaseStats>& phases() const { return phases_; }
    std::uint64_t block_transfers() const { return transfers_; }
    std::uint64_t transfer_volume() const { return transfer_volume_; }
    std::uint64_t message_count() const { return messages_; }

    /// Sum of attributed bucket costs; equals total() up to floating-point
    /// reassociation (the grand total is the exact mirror, the buckets are a
    /// partition of the same events summed independently).
    double attributed_cost() const { return attributed_; }

    /// Cost attributed to a phase, over all labels.
    double phase_cost(Phase p) const;

    /// Paper-style report.
    void print(std::FILE* out = stdout) const;
    std::string to_string() const;

protected:
    void on_bucket(unsigned level, std::uint64_t words, double cost) override;
    void on_phase_begin(Phase phase, unsigned label, double model_time) override;
    void on_phase_end(Phase phase, double model_time) override;
    void on_transfer(std::uint64_t len, double latency) override;
    void on_messages(std::uint64_t count) override;
    void on_superstep(unsigned label, std::uint64_t tau, std::size_t h, double comm_arg,
                      double cost) override;

private:
    std::map<unsigned, LevelStats> levels_;
    std::map<PhaseKey, PhaseStats> phases_;
    std::vector<PhaseKey> stack_;
    double attributed_ = 0.0;
    std::uint64_t transfers_ = 0;
    std::uint64_t transfer_volume_ = 0;
    std::uint64_t messages_ = 0;

    PhaseKey current_() const { return stack_.empty() ? PhaseKey{} : stack_.back(); }
};

}  // namespace dbsp::trace
