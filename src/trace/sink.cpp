#include "trace/sink.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace dbsp::trace {

const char* phase_name(Phase p) {
    switch (p) {
        case Phase::kNone: return "(untraced)";
        case Phase::kStepExec: return "step-exec";
        case Phase::kContextMove: return "context-move";
        case Phase::kDeliver: return "deliver";
        case Phase::kDeliverSort: return "deliver-sort";
        case Phase::kDeliverTranspose: return "deliver-transpose";
        case Phase::kDummyStep: return "dummy-superstep";
        case Phase::kLocalRun: return "local-run";
        case Phase::kGlobalStep: return "global-step";
        case Phase::kCommunication: return "communication";
        case Phase::kSuperstep: return "superstep";
    }
    return "?";
}

void Sink::attribute_range(std::span<const double> prefix, Addr begin, Addr end,
                           unsigned touches) {
    Addr x = begin;
    while (x < end) {
        const unsigned lev = level_of(x);
        const Addr lev_end = lev == 0 ? 1 : Addr{1} << lev;
        const Addr seg_end = std::min<Addr>(end, lev_end);
        on_bucket(lev, touches * (seg_end - x),
                  static_cast<double>(touches) * (prefix[seg_end] - prefix[x]));
        x = seg_end;
    }
}

void Sink::access(Addr x, double cost) {
    total_ += cost;
    on_bucket(level_of(x), 1, cost);
}

void Sink::access_range(std::span<const double> prefix, Addr begin, Addr end) {
    // Mirror of CostTable::accumulate: fold word by word, ascending.
    for (Addr x = begin; x < end; ++x) {
        total_ += prefix[x + 1] - prefix[x];
    }
    attribute_range(prefix, begin, end, 1);
}

void Sink::charge(double cost) {
    total_ += cost;
    on_bucket(kNoLevel, 0, cost);
}

void Sink::block_op(std::span<const double> prefix, double delta, unsigned touches,
                    std::initializer_list<AddrRange> ranges) {
    total_ += delta;
    for (const AddrRange& r : ranges) {
        attribute_range(prefix, r.begin, r.end, touches);
    }
}

void Sink::block_transfer(Addr src, Addr dst, std::uint64_t len, double latency,
                          double delta) {
    total_ += delta;
    on_transfer(len, latency);
    // The f()-latency is paid at the deeper of the two block ends (f is
    // nondecreasing, so the deeper end is the larger address); the pipelined
    // part costs one unit per destination cell.
    on_bucket(level_of(std::max(src, dst) + len - 1), 1, latency);
    Addr x = dst;
    const Addr end = dst + len;
    while (x < end) {
        const unsigned lev = level_of(x);
        const Addr lev_end = lev == 0 ? 1 : Addr{1} << lev;
        const Addr seg_end = std::min<Addr>(end, lev_end);
        on_bucket(lev, seg_end - x, static_cast<double>(seg_end - x));
        x = seg_end;
    }
}

void Sink::messages(std::uint64_t count) { on_messages(count); }

void Sink::superstep(unsigned label, std::uint64_t tau, std::size_t h, double comm_arg,
                     double cost) {
    total_ += cost;
    on_superstep(label, tau, h, comm_arg, cost);
}

void Sink::phase_begin(Phase phase, unsigned label) { on_phase_begin(phase, label, total_); }

void Sink::phase_end(Phase phase) { on_phase_end(phase, total_); }

void Sink::merge_replay(const BufferSink& shard) {
    // Replay drives attribution (per-level buckets, transfer and message
    // hooks); event-wise folding of the total would round differently than
    // the machine's account merge, so the total is overwritten with the same
    // `saved + shard_total` sum the machine computes.
    const double saved = total();
    shard.replay(*this);
    set_total(saved + shard.total());
}

void BufferSink::access(Addr x, double cost) {
    Sink::access(x, cost);
    Event e{};
    e.kind = Kind::kAccess;
    e.a = x;
    e.x = cost;
    events_.push_back(e);
}

void BufferSink::access_range(std::span<const double> prefix, Addr begin, Addr end) {
    Sink::access_range(prefix, begin, end);
    Event e{};
    e.kind = Kind::kRange;
    e.a = begin;
    e.b = end;
    e.prefix = prefix.data();
    e.prefix_size = prefix.size();
    events_.push_back(e);
}

void BufferSink::charge(double cost) {
    Sink::charge(cost);
    Event e{};
    e.kind = Kind::kCharge;
    e.x = cost;
    events_.push_back(e);
}

void BufferSink::block_op(std::span<const double> prefix, double delta, unsigned touches,
                          std::initializer_list<AddrRange> ranges) {
    Sink::block_op(prefix, delta, touches, ranges);
    DBSP_REQUIRE(ranges.size() <= 2);  // every emission site uses 1 or 2 ranges
    Event e{};
    e.kind = Kind::kBlockOp;
    e.touches = touches;
    e.nranges = static_cast<unsigned>(ranges.size());
    e.x = delta;
    e.prefix = prefix.data();
    e.prefix_size = prefix.size();
    const AddrRange* r = ranges.begin();
    if (e.nranges > 0) e.r0 = r[0];
    if (e.nranges > 1) e.r1 = r[1];
    events_.push_back(e);
}

void BufferSink::block_transfer(Addr src, Addr dst, std::uint64_t len, double latency,
                                double delta) {
    Sink::block_transfer(src, dst, len, latency, delta);
    Event e{};
    e.kind = Kind::kTransfer;
    e.a = src;
    e.b = dst;
    e.n = len;
    e.y = latency;
    e.x = delta;
    events_.push_back(e);
}

void BufferSink::messages(std::uint64_t count) {
    Sink::messages(count);
    Event e{};
    e.kind = Kind::kMessages;
    e.n = count;
    events_.push_back(e);
}

void BufferSink::replay(Sink& into) const {
    for (const Event& e : events_) {
        switch (e.kind) {
            case Kind::kAccess: into.access(e.a, e.x); break;
            case Kind::kRange:
                into.access_range({e.prefix, e.prefix_size}, e.a, e.b);
                break;
            case Kind::kCharge: into.charge(e.x); break;
            case Kind::kBlockOp:
                if (e.nranges == 0) {
                    into.block_op({e.prefix, e.prefix_size}, e.x, e.touches, {});
                } else if (e.nranges == 1) {
                    into.block_op({e.prefix, e.prefix_size}, e.x, e.touches, {e.r0});
                } else {
                    into.block_op({e.prefix, e.prefix_size}, e.x, e.touches, {e.r0, e.r1});
                }
                break;
            case Kind::kTransfer: into.block_transfer(e.a, e.b, e.n, e.y, e.x); break;
            case Kind::kMessages: into.messages(e.n); break;
        }
    }
}

void BufferSink::clear() {
    events_.clear();
    reset_total();
}

void MultiSink::access(Addr x, double cost) {
    Sink::access(x, cost);
    for (Sink* c : children_) c->access(x, cost);
}
void MultiSink::access_range(std::span<const double> prefix, Addr begin, Addr end) {
    Sink::access_range(prefix, begin, end);
    for (Sink* c : children_) c->access_range(prefix, begin, end);
}
void MultiSink::charge(double cost) {
    Sink::charge(cost);
    for (Sink* c : children_) c->charge(cost);
}
void MultiSink::block_op(std::span<const double> prefix, double delta, unsigned touches,
                         std::initializer_list<AddrRange> ranges) {
    Sink::block_op(prefix, delta, touches, ranges);
    for (Sink* c : children_) c->block_op(prefix, delta, touches, ranges);
}
void MultiSink::block_transfer(Addr src, Addr dst, std::uint64_t len, double latency,
                               double delta) {
    Sink::block_transfer(src, dst, len, latency, delta);
    for (Sink* c : children_) c->block_transfer(src, dst, len, latency, delta);
}
void MultiSink::messages(std::uint64_t count) {
    Sink::messages(count);
    for (Sink* c : children_) c->messages(count);
}
void MultiSink::superstep(unsigned label, std::uint64_t tau, std::size_t h, double comm_arg,
                          double cost) {
    Sink::superstep(label, tau, h, comm_arg, cost);
    for (Sink* c : children_) c->superstep(label, tau, h, comm_arg, cost);
}
void MultiSink::phase_begin(Phase phase, unsigned label) {
    for (Sink* c : children_) c->phase_begin(phase, label);
}
void MultiSink::phase_end(Phase phase) {
    for (Sink* c : children_) c->phase_end(phase);
}
void MultiSink::reset_total() {
    Sink::reset_total();
    for (Sink* c : children_) c->reset_total();
}
void MultiSink::merge_replay(const BufferSink& shard) {
    // Each child overwrites its own total from the shard sum (the default
    // would fold event-wise through the forwarding overrides and drift in
    // the last ulps), then this sink's total advances by the same amount.
    const double saved = total();
    for (Sink* c : children_) c->merge_replay(shard);
    set_total(saved + shard.total());
}
void MultiSink::shard_begin() {
    // Bracket this sink's own total and every child's: each keeps folding
    // the directly-delivered shard events through the forwarding overrides
    // and rebases independently at shard_end, mirroring merge_replay.
    Sink::shard_begin();
    for (Sink* c : children_) c->shard_begin();
}
void MultiSink::shard_end() {
    Sink::shard_end();
    for (Sink* c : children_) c->shard_end();
}

}  // namespace dbsp::trace
