#pragma once

/// \file sink.hpp
/// Charge-trace event interface. The machines (hmm::Machine, bt::Machine,
/// model::DbspMachine) emit a charge event for every unit of model cost they
/// account; the simulators bracket the events in named phase scopes
/// (context movement, step execution, message delivery, ...). A sink consumes
/// the stream and attributes every charged unit to
/// (phase x memory level x superstep label).
///
/// Zero overhead when disabled: a machine holds a raw `trace::Sink*`
/// (nullptr by default) and every emission site is guarded by a single
/// branch on that pointer — no virtual call, no allocation, no work on the
/// hot path unless a sink is attached (overhead budget verified by
/// bench_micro, see EXPERIMENTS.md "Harness performance").
///
/// Exactness contract: a sink's total() must equal the machine's charged
/// cost bit for bit. Floating-point addition does not commute, so the base
/// class reproduces the *accumulation procedure* of the machines rather than
/// summing opaque deltas:
///  * scalar charges arrive as the exact double the machine added and are
///    folded with the same `+=`;
///  * per-word ranges arrive as (prefix array, address range) and are folded
///    word by word in ascending order — the mirror image of
///    CostTable::accumulate.
/// Per-level and per-phase sub-totals are attribution statistics (each adds
/// its bucket in its own order) and are exact only as a partition of events,
/// not of floating-point roundings; the grand total is the audited quantity.

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "model/types.hpp"

namespace dbsp::trace {

using model::Addr;

/// Simulation phases a charge can be attributed to. kNone is the implicit
/// phase outside any scope (e.g. native algorithms run directly on a
/// machine).
enum class Phase : unsigned char {
    kNone = 0,          ///< outside any scope
    kStepExec,          ///< guest step callbacks (local computation)
    kContextMove,       ///< context load/store: swaps, pack/unpack, rotations
    kDeliver,           ///< message delivery (scan + inbox writes)
    kDeliverSort,       ///< BT sort-based delivery (Section 5.2)
    kDeliverTranspose,  ///< BT rational-permutation delivery (Section 6)
    kDummyStep,         ///< rounds for smoothing-inserted dummy supersteps
    kLocalRun,          ///< self-simulation: local window runs
    kGlobalStep,        ///< self-simulation: global superstep computation
    kCommunication,     ///< self-simulation: host h-relation charges
    kSuperstep,         ///< direct D-BSP superstep (per-label attribution)
};
inline constexpr unsigned kPhaseCount = 11;

/// Stable display name ("step-exec", "deliver-sort", ...).
const char* phase_name(Phase p);

/// Memory hierarchy level of an address: level 0 is address 0, level l >= 1
/// covers [2^(l-1), 2^l) — the doubling bands over which a (2,c)-uniform
/// access function varies by at most the constant c.
inline unsigned level_of(Addr x) { return static_cast<unsigned>(std::bit_width(x)); }

/// Level tag for pure-compute charges that touch no memory cell.
inline constexpr unsigned kNoLevel = ~0u;

/// An address range [begin, end) touched by a bulk operation.
struct AddrRange {
    Addr begin;
    Addr end;
};

class BufferSink;

class Sink {
public:
    virtual ~Sink() = default;

    /// --- charge events (emitted by the machines) ---------------------------
    /// Single word access at \p x, charged \p cost (= f(x)).
    virtual void access(Addr x, double cost);

    /// Range access [begin, end) charged word by word in ascending order
    /// through \p prefix (the machine's cost-table prefix sums); mirrors
    /// CostTable::accumulate exactly.
    virtual void access_range(std::span<const double> prefix, Addr begin, Addr end);

    /// Pure-computation charge (unit ops; no memory level).
    virtual void charge(double cost);

    /// Bulk HMM operation over \p ranges (swap_blocks, copy_block,
    /// charge_range). \p delta is the exact double added to the machine's
    /// cost accumulator; \p touches is the per-cell touch multiplicity
    /// (2 for a swap: one read + one write per cell of each range).
    virtual void block_op(std::span<const double> prefix, double delta, unsigned touches,
                          std::initializer_list<AddrRange> ranges);

    /// BT block transfer [src, src+len) -> [dst, dst+len): charged
    /// \p delta = \p latency + len. The latency is attributed to the deeper
    /// block end's level; the pipelined per-cell unit costs to the
    /// destination range's levels.
    virtual void block_transfer(Addr src, Addr dst, std::uint64_t len, double latency,
                                double delta);

    /// \p count messages moved by the enclosing delivery phase.
    virtual void messages(std::uint64_t count);

    /// One executed D-BSP superstep (direct machine): charged \p cost =
    /// max(tau, 1) + h * g(comm_arg).
    virtual void superstep(unsigned label, std::uint64_t tau, std::size_t h,
                           double comm_arg, double cost);

    /// --- phase scopes (emitted by the simulators) --------------------------
    virtual void phase_begin(Phase phase, unsigned label);
    virtual void phase_end(Phase phase);

    /// Mirrors Machine::reset_cost (clears the running total, keeps
    /// attribution statistics).
    virtual void reset_total() { total_ = 0.0; }

    /// Fold a shard's buffered events into this sink: replays every event
    /// for attribution (levels, phases-independent buckets, transfers), then
    /// overwrites the running total with `total() + shard.total()` — the
    /// exact double the owning machine adds when it merges the matching
    /// shard account, so the bit-for-bit mirror survives sharded execution.
    virtual void merge_replay(const BufferSink& shard);

    /// Direct-delivery counterpart of merge_replay for *serial* execution:
    /// when a simulator runs a shard's step at the position where its buffer
    /// would have been replayed anyway, it can skip the BufferSink entirely
    /// and stream the events straight into this sink between shard_begin()
    /// and shard_end(). The bracket reproduces merge_replay's total
    /// arithmetic exactly: begin stashes the running total and zeroes it (so
    /// the shard's events fold from zero, just as they would in a fresh
    /// BufferSink), end overwrites it with `stashed + shard subtotal` — the
    /// same single add the machine's account merge performs. Event order and
    /// every total are bit-identical to the buffer+replay path. Brackets do
    /// not nest.
    virtual void shard_begin() {
        shard_saved_ = total_;
        total_ = 0.0;
    }
    virtual void shard_end() { total_ = shard_saved_ + total_; }

    /// Running mirror of the machine's charged cost; equals it bit for bit.
    double total() const { return total_; }

protected:
    /// Attribution hooks, invoked by the default event implementations after
    /// the total has been updated. \p level is kNoLevel for pure compute.
    virtual void on_bucket(unsigned level, std::uint64_t words, double cost) {
        (void)level, (void)words, (void)cost;
    }
    virtual void on_phase_begin(Phase phase, unsigned label, double model_time) {
        (void)phase, (void)label, (void)model_time;
    }
    virtual void on_phase_end(Phase phase, double model_time) { (void)phase, (void)model_time; }
    virtual void on_transfer(std::uint64_t len, double latency) { (void)len, (void)latency; }
    virtual void on_messages(std::uint64_t count) { (void)count; }
    virtual void on_superstep(unsigned label, std::uint64_t tau, std::size_t h,
                              double comm_arg, double cost) {
        (void)label, (void)tau, (void)h, (void)comm_arg, (void)cost;
    }

    /// Split [begin, end) at level boundaries and report each segment to
    /// on_bucket with cost `touches * (prefix[seg_end] - prefix[seg_begin])`.
    void attribute_range(std::span<const double> prefix, Addr begin, Addr end,
                         unsigned touches);

    /// Overwrite the running total (merge_replay implementations only).
    void set_total(double total) { total_ = total; }

private:
    double total_ = 0.0;
    double shard_saved_ = 0.0;  ///< total stashed by an open shard_begin()
};

/// RAII phase scope; null-safe so emission sites need no branching of their
/// own beyond the sink pointer check.
class PhaseScope {
public:
    PhaseScope(Sink* sink, Phase phase, unsigned label = 0) : sink_(sink), phase_(phase) {
        if (sink_ != nullptr) sink_->phase_begin(phase_, label);
    }
    ~PhaseScope() {
        if (sink_ != nullptr) sink_->phase_end(phase_);
    }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

private:
    Sink* sink_;
    Phase phase_;
};

/// Records charge events verbatim for later replay into another sink. Each
/// execution shard of a parallel superstep charges into its own BufferSink;
/// the simulator then replays the buffers in cluster-index order on the real
/// sink, reproducing the serial event stream exactly. The base-class event
/// implementations run first, so total() folds the shard's charges with the
/// machines' own accumulation procedure — it equals the matching shard
/// account's cost bit for bit.
///
/// Prefix spans are stored as raw pointers: the CostTable that backs them is
/// cached per access function (ScopedCostTableCache) and outlives the
/// buffered events. Phase scopes are deliberately unsupported — shards run
/// inside one phase; the merging simulator brackets each replay itself.
class BufferSink final : public Sink {
public:
    void access(Addr x, double cost) override;
    void access_range(std::span<const double> prefix, Addr begin, Addr end) override;
    void charge(double cost) override;
    void block_op(std::span<const double> prefix, double delta, unsigned touches,
                  std::initializer_list<AddrRange> ranges) override;
    void block_transfer(Addr src, Addr dst, std::uint64_t len, double latency,
                        double delta) override;
    void messages(std::uint64_t count) override;

    /// Re-emit every buffered event on \p into, in recording order.
    void replay(Sink& into) const;

    /// Drop buffered events and reset the total for shard reuse.
    void clear();

    bool empty() const { return events_.empty(); }

private:
    enum class Kind : unsigned char {
        kAccess,
        kRange,
        kCharge,
        kBlockOp,
        kTransfer,
        kMessages,
    };
    struct Event {
        Kind kind;
        unsigned touches = 0;   ///< block_op touch multiplicity
        unsigned nranges = 0;   ///< block_op range count (1 or 2)
        Addr a = 0;             ///< access x / range begin / transfer src
        Addr b = 0;             ///< range end / transfer dst
        std::uint64_t n = 0;    ///< transfer len / message count
        double x = 0.0;         ///< cost / delta
        double y = 0.0;         ///< transfer latency
        const double* prefix = nullptr;
        std::size_t prefix_size = 0;
        AddrRange r0{0, 0};
        AddrRange r1{0, 0};
    };
    std::vector<Event> events_;
};

/// Fan-out sink: maintains its own exact total and forwards every event
/// verbatim to each child, so every child keeps an exact mirror as well.
/// Used by dbsp_explore to feed the aggregate table and the Chrome trace
/// writer from a single run.
class MultiSink final : public Sink {
public:
    MultiSink() = default;
    MultiSink(std::initializer_list<Sink*> children) : children_(children) {}
    void add(Sink* child) { children_.push_back(child); }

    void access(Addr x, double cost) override;
    void access_range(std::span<const double> prefix, Addr begin, Addr end) override;
    void charge(double cost) override;
    void block_op(std::span<const double> prefix, double delta, unsigned touches,
                  std::initializer_list<AddrRange> ranges) override;
    void block_transfer(Addr src, Addr dst, std::uint64_t len, double latency,
                        double delta) override;
    void messages(std::uint64_t count) override;
    void superstep(unsigned label, std::uint64_t tau, std::size_t h, double comm_arg,
                   double cost) override;
    void phase_begin(Phase phase, unsigned label) override;
    void phase_end(Phase phase) override;
    void reset_total() override;
    void merge_replay(const BufferSink& shard) override;
    void shard_begin() override;
    void shard_end() override;

private:
    std::vector<Sink*> children_;
};

}  // namespace dbsp::trace
