#include "trace/chrome_trace.hpp"

#include <cstdlib>

namespace dbsp::trace {

void ChromeTraceSink::on_phase_begin(Phase phase, unsigned label, double model_time) {
    events_.push_back(Event{'B', phase, label, model_time});
}

void ChromeTraceSink::on_phase_end(Phase phase, double model_time) {
    events_.push_back(Event{'E', phase, 0, model_time});
}

void ChromeTraceSink::on_superstep(unsigned label, std::uint64_t tau, std::size_t h,
                                   double comm_arg, double cost) {
    (void)tau, (void)h, (void)comm_arg;
    // The superstep event fires after total() was advanced by `cost`; the
    // complete ('X') event spans [total - cost, total] in model time.
    events_.push_back(Event{'X', Phase::kSuperstep, label, total() - cost, cost});
}

void ChromeTraceSink::append_events(std::FILE* out, bool* first) const {
    for (const Event& e : events_) {
        if (!*first) std::fprintf(out, ",\n");
        *first = false;
        if (e.type == 'B') {
            std::fprintf(out,
                         "{\"ph\":\"B\",\"pid\":1,\"tid\":\"%s\",\"ts\":%.17g,"
                         "\"name\":\"%s\",\"args\":{\"label\":%u}}",
                         track_.c_str(), e.ts, phase_name(e.phase), e.label);
        } else if (e.type == 'E') {
            std::fprintf(out, "{\"ph\":\"E\",\"pid\":1,\"tid\":\"%s\",\"ts\":%.17g}",
                         track_.c_str(), e.ts);
        } else {
            std::fprintf(out,
                         "{\"ph\":\"X\",\"pid\":1,\"tid\":\"%s\",\"ts\":%.17g,"
                         "\"dur\":%.17g,\"name\":\"%s\",\"args\":{\"label\":%u}}",
                         track_.c_str(), e.ts, e.dur, phase_name(e.phase), e.label);
        }
    }
}

void ChromeTraceSink::write(std::FILE* out) const {
    std::fprintf(out, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    bool first = true;
    append_events(out, &first);
    std::fprintf(out, "\n]}\n");
}

bool ChromeTraceSink::write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    write(f);
    std::fclose(f);
    return true;
}

void ChromeTraceSink::write_merged(std::span<const ChromeTraceSink* const> sinks,
                                   std::FILE* out) {
    std::fprintf(out, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    bool first = true;
    for (const ChromeTraceSink* sink : sinks) {
        if (sink != nullptr) sink->append_events(out, &first);
    }
    std::fprintf(out, "\n]}\n");
}

bool ChromeTraceSink::write_merged(std::span<const ChromeTraceSink* const> sinks,
                                   const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    write_merged(sinks, f);
    std::fclose(f);
    return true;
}

std::string ChromeTraceSink::to_json() const {
    char* buf = nullptr;
    std::size_t size = 0;
    std::FILE* mem = open_memstream(&buf, &size);
    if (mem == nullptr) return {};
    write(mem);
    std::fclose(mem);
    std::string s(buf, size);
    std::free(buf);
    return s;
}

}  // namespace dbsp::trace
