#include "trace/aggregate.hpp"

#include <cinttypes>

namespace dbsp::trace {

void AggregateSink::on_bucket(unsigned level, std::uint64_t words, double cost) {
    attributed_ += cost;
    auto& l = levels_[level];
    l.words += words;
    l.cost += cost;
    auto& p = phases_[current_()];
    p.words += words;
    p.cost += cost;
    auto& pl = p.levels[level];
    pl.words += words;
    pl.cost += cost;
}

void AggregateSink::on_phase_begin(Phase phase, unsigned label, double model_time) {
    (void)model_time;
    stack_.push_back(PhaseKey{phase, label});
    ++phases_[stack_.back()].scopes;
}

void AggregateSink::on_phase_end(Phase phase, double model_time) {
    (void)phase, (void)model_time;
    if (!stack_.empty()) stack_.pop_back();
}

void AggregateSink::on_transfer(std::uint64_t len, double latency) {
    (void)latency;
    ++transfers_;
    transfer_volume_ += len;
}

void AggregateSink::on_messages(std::uint64_t count) { messages_ += count; }

void AggregateSink::on_superstep(unsigned label, std::uint64_t tau, std::size_t h,
                                 double comm_arg, double cost) {
    (void)tau, (void)h, (void)comm_arg;
    attributed_ += cost;
    auto& p = phases_[PhaseKey{Phase::kSuperstep, label}];
    ++p.scopes;
    p.cost += cost;
}

double AggregateSink::phase_cost(Phase p) const {
    double c = 0.0;
    for (const auto& [key, stats] : phases_) {
        if (key.phase == p) c += stats.cost;
    }
    return c;
}

namespace {

void print_level_row(std::FILE* out, unsigned level, const AggregateSink::LevelStats& s,
                     double total) {
    const double pct = total > 0.0 ? 100.0 * s.cost / total : 0.0;
    if (level == kNoLevel) {
        std::fprintf(out, "  %7s %21s %12" PRIu64 " %14.6g %7.2f%%\n", "(ops)", "-",
                     s.words, s.cost, pct);
        return;
    }
    char range[32];
    if (level == 0) {
        std::snprintf(range, sizeof range, "[0, 1)");
    } else {
        std::snprintf(range, sizeof range, "[2^%u, 2^%u)", level - 1, level);
    }
    std::fprintf(out, "  %7u %21s %12" PRIu64 " %14.6g %7.2f%%\n", level, range, s.words,
                 s.cost, pct);
}

}  // namespace

void AggregateSink::print(std::FILE* out) const {
    std::fprintf(out, "charge trace: total cost %.17g  (attributed %.17g)\n", total(),
                 attributed_);
    if (transfers_ > 0 || messages_ > 0) {
        std::fprintf(out,
                     "  block transfers %" PRIu64 " (volume %" PRIu64
                     " words), messages delivered %" PRIu64 "\n",
                     transfers_, transfer_volume_, messages_);
    }

    if (!levels_.empty()) {
        std::fprintf(out, "per-level histogram:\n");
        std::fprintf(out, "  %7s %21s %12s %14s %8s\n", "level", "addresses", "words",
                     "cost", "% total");
        for (const auto& [level, stats] : levels_) {
            print_level_row(out, level, stats, total());
        }
    }

    if (!phases_.empty()) {
        std::fprintf(out, "per-phase breakdown:\n");
        std::fprintf(out, "  %-18s %6s %9s %12s %14s %8s\n", "phase", "label", "scopes",
                     "words", "cost", "% total");
        for (const auto& [key, stats] : phases_) {
            const double pct = total() > 0.0 ? 100.0 * stats.cost / total() : 0.0;
            std::fprintf(out, "  %-18s %6u %9" PRIu64 " %12" PRIu64 " %14.6g %7.2f%%\n",
                         phase_name(key.phase), key.label, stats.scopes, stats.words,
                         stats.cost, pct);
        }
    }
}

std::string AggregateSink::to_string() const {
    char* buf = nullptr;
    std::size_t size = 0;
    std::FILE* mem = open_memstream(&buf, &size);
    if (mem == nullptr) return {};
    print(mem);
    std::fclose(mem);
    std::string s(buf, size);
    std::free(buf);
    return s;
}

}  // namespace dbsp::trace
