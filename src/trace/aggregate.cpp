#include "trace/aggregate.hpp"

#include <algorithm>
#include <cinttypes>
#include <string>
#include <vector>

namespace dbsp::trace {

void AggregateSink::on_bucket(unsigned level, std::uint64_t words, double cost) {
    attributed_ += cost;
    auto& l = levels_[level];
    l.words += words;
    l.cost += cost;
    auto& p = phases_[current_()];
    p.words += words;
    p.cost += cost;
    auto& pl = p.levels[level];
    pl.words += words;
    pl.cost += cost;
}

void AggregateSink::on_phase_begin(Phase phase, unsigned label, double model_time) {
    (void)model_time;
    stack_.push_back(PhaseKey{phase, label});
    ++phases_[stack_.back()].scopes;
}

void AggregateSink::on_phase_end(Phase phase, double model_time) {
    (void)phase, (void)model_time;
    if (!stack_.empty()) stack_.pop_back();
}

void AggregateSink::on_transfer(std::uint64_t len, double latency) {
    (void)latency;
    ++transfers_;
    transfer_volume_ += len;
}

void AggregateSink::on_messages(std::uint64_t count) { messages_ += count; }

void AggregateSink::on_superstep(unsigned label, std::uint64_t tau, std::size_t h,
                                 double comm_arg, double cost) {
    (void)tau, (void)h, (void)comm_arg;
    attributed_ += cost;
    auto& p = phases_[PhaseKey{Phase::kSuperstep, label}];
    ++p.scopes;
    p.cost += cost;
}

double AggregateSink::phase_cost(Phase p) const {
    double c = 0.0;
    for (const auto& [key, stats] : phases_) {
        if (key.phase == p) c += stats.cost;
    }
    return c;
}

namespace {

/// Right-aligned (left for the first column when \p left_first) text block
/// with per-column widths measured from the actual cells, so counts and
/// charge totals of any magnitude stay aligned — fixed printf widths used to
/// shear once a total passed 12 digits.
class CellBlock {
public:
    explicit CellBlock(bool left_first) : left_first_(left_first) {}

    void add(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print(std::FILE* out) const {
        std::vector<std::size_t> widths;
        for (const auto& row : rows_) {
            if (widths.size() < row.size()) widths.resize(row.size());
            for (std::size_t c = 0; c < row.size(); ++c) {
                widths[c] = std::max(widths[c], row[c].size());
            }
        }
        for (const auto& row : rows_) {
            std::fputs(" ", out);
            for (std::size_t c = 0; c < row.size(); ++c) {
                const int w = static_cast<int>(widths[c]);
                if (c == 0 && left_first_) {
                    std::fprintf(out, " %-*s", w, row[c].c_str());
                } else {
                    std::fprintf(out, " %*s", w, row[c].c_str());
                }
            }
            std::fputs("\n", out);
        }
    }

private:
    bool left_first_;
    std::vector<std::vector<std::string>> rows_;
};

std::string fmt_u64(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    return buf;
}

std::string fmt_cost(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

std::string fmt_pct(double cost, double total) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f%%", total > 0.0 ? 100.0 * cost / total : 0.0);
    return buf;
}

std::string level_range(unsigned level) {
    if (level == 0) return "[0, 1)";
    char buf[32];
    std::snprintf(buf, sizeof buf, "[2^%u, 2^%u)", level - 1, level);
    return buf;
}

}  // namespace

void AggregateSink::print(std::FILE* out) const {
    std::fprintf(out, "charge trace: total cost %.17g  (attributed %.17g)\n", total(),
                 attributed_);
    if (transfers_ > 0 || messages_ > 0) {
        std::fprintf(out,
                     "  block transfers %" PRIu64 " (volume %" PRIu64
                     " words), messages delivered %" PRIu64 "\n",
                     transfers_, transfer_volume_, messages_);
    }

    if (!levels_.empty()) {
        std::fprintf(out, "per-level histogram:\n");
        CellBlock block(/*left_first=*/false);
        block.add({"level", "addresses", "words", "cost", "% total"});
        for (const auto& [level, stats] : levels_) {
            block.add({level == kNoLevel ? "(ops)" : fmt_u64(level),
                       level == kNoLevel ? "-" : level_range(level), fmt_u64(stats.words),
                       fmt_cost(stats.cost), fmt_pct(stats.cost, total())});
        }
        block.print(out);
    }

    if (!phases_.empty()) {
        std::fprintf(out, "per-phase breakdown:\n");
        CellBlock block(/*left_first=*/true);
        block.add({"phase", "label", "scopes", "words", "cost", "% total"});
        for (const auto& [key, stats] : phases_) {
            block.add({phase_name(key.phase), fmt_u64(key.label), fmt_u64(stats.scopes),
                       fmt_u64(stats.words), fmt_cost(stats.cost),
                       fmt_pct(stats.cost, total())});
        }
        block.print(out);
    }
}

std::string AggregateSink::to_string() const {
    char* buf = nullptr;
    std::size_t size = 0;
    std::FILE* mem = open_memstream(&buf, &size);
    if (mem == nullptr) return {};
    print(mem);
    std::fclose(mem);
    std::string s(buf, size);
    std::free(buf);
    return s;
}

}  // namespace dbsp::trace
