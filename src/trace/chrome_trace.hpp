#pragma once

/// \file chrome_trace.hpp
/// Chrome `trace_event` JSON writer (load the output into chrome://tracing or
/// https://ui.perfetto.dev). Phase scopes become duration (B/E) events whose
/// timestamps are the *model time* — the cumulative charged cost at scope
/// entry/exit — so the timeline shows where charged cost accrues, not wall
/// clock. Charge totals per scope land in the E event's args.

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace dbsp::trace {

class ChromeTraceSink final : public Sink {
public:
    /// \p track names the timeline row ("tid" in the trace).
    explicit ChromeTraceSink(std::string track = "model") : track_(std::move(track)) {}

    /// Serialise the collected events as a `{"traceEvents": [...]}` document.
    void write(std::FILE* out) const;
    bool write(const std::string& path) const;
    std::string to_json() const;

    /// Serialise several sinks into one document; each sink's track becomes
    /// its own timeline row. Used by dbsp_explore to put the D-BSP, HMM and
    /// BT legs of one run side by side.
    static void write_merged(std::span<const ChromeTraceSink* const> sinks,
                             std::FILE* out);
    static bool write_merged(std::span<const ChromeTraceSink* const> sinks,
                             const std::string& path);

    std::size_t event_count() const { return events_.size(); }

protected:
    void on_phase_begin(Phase phase, unsigned label, double model_time) override;
    void on_phase_end(Phase phase, double model_time) override;
    void on_superstep(unsigned label, std::uint64_t tau, std::size_t h, double comm_arg,
                      double cost) override;

private:
    struct Event {
        char type;  // 'B' or 'E' or 'X' (complete, for supersteps)
        Phase phase;
        unsigned label;
        double ts;        // model time (cumulative charged cost)
        double dur = 0.0;  // 'X' only
    };

    void append_events(std::FILE* out, bool* first) const;

    std::string track_;
    std::vector<Event> events_;
};

}  // namespace dbsp::trace
