#include "telemetry/telemetry.hpp"

#include <dirent.h>

#include <cmath>

#include "telemetry/clock.hpp"
#include "util/parallel.hpp"

namespace dbsp::telemetry {

report::Json RequestRecord::to_json() const {
    report::Json j = report::Json::object();
    j.set("id", id);
    j.set("op", op);
    j.set("ok", ok);
    if (op == "run") j.set("cached", cached);
    j.set("ms", ms);
    j.set("bytes_in", bytes_in);
    j.set("bytes_out", bytes_out);
    if (hmm_slack > 0.0 || bt_slack > 0.0) {
        report::Json slack = report::Json::object();
        if (hmm_slack > 0.0) slack.set("hmm", hmm_slack);
        if (bt_slack > 0.0) slack.set("bt", bt_slack);
        j.set("bound_slack", std::move(slack));
    }
    j.set("spans", root.to_json());
    return j;
}

Telemetry::Telemetry(Options options)
    : options_(options), start_ns_(steady_now_ns()) {
    counters_.start();
}

void Telemetry::record_request(RequestRecord record) {
    const std::int64_t now_s = steady_seconds();
    requests_.add(now_s);
    if (!record.ok) errors_.add(now_s);
    latency_us_.observe(now_s, static_cast<std::uint64_t>(record.ms * 1000.0));
    if (record.hmm_slack > 0.0) {
        hmm_slack_permille_.observe(
            now_s, static_cast<std::uint64_t>(std::llround(record.hmm_slack * 1000.0)));
    }
    if (record.bt_slack > 0.0) {
        bt_slack_permille_.observe(
            now_s, static_cast<std::uint64_t>(std::llround(record.bt_slack * 1000.0)));
    }

    if (options_.logger != nullptr && options_.slow_ms > 0.0 &&
        record.ms >= options_.slow_ms &&
        options_.logger->enabled(LogLevel::kWarn)) {
        report::Json fields = report::Json::object();
        fields.set("id", record.id);
        fields.set("op", record.op);
        fields.set("ms", record.ms);
        fields.set("slow_ms", options_.slow_ms);
        fields.set("spans", record.root.to_json());
        options_.logger->log(LogLevel::kWarn, "slow-request", std::move(fields));
    }

    std::lock_guard<std::mutex> lock(ring_mutex_);
    ring_.push_back(std::move(record));
    while (ring_.size() > options_.span_ring) ring_.pop_front();
}

void Telemetry::record_cache(bool hit) {
    const std::int64_t now_s = steady_seconds();
    (hit ? cache_hits_ : cache_misses_).add(now_s);
}

report::Json Telemetry::window_json(std::int64_t now_s, unsigned window_s) const {
    report::Json w = report::Json::object();
    w.set("qps", requests_.rate_over(now_s, window_s));
    const auto lat = latency_us_.window_over(now_s, window_s);
    w.set("p50_ms", lat.quantile(0.50) / 1000.0);
    w.set("p99_ms", lat.quantile(0.99) / 1000.0);
    const double hits = static_cast<double>(cache_hits_.sum_over(now_s, window_s));
    const double misses = static_cast<double>(cache_misses_.sum_over(now_s, window_s));
    w.set("cache_hit_ratio", hits + misses > 0.0 ? hits / (hits + misses) : 0.0);
    w.set("errors", errors_.sum_over(now_s, window_s));
    return w;
}

namespace {

report::Json slack_json(const report::WindowedHistogram& h, std::int64_t now_s) {
    const auto w = h.window_over(now_s, 60);
    report::Json j = report::Json::object();
    j.set("p50", w.quantile(0.50) / 1000.0);
    j.set("p99", w.quantile(0.99) / 1000.0);
    j.set("count", w.total);
    return j;
}

}  // namespace

report::Json Telemetry::frame(std::uint64_t seq, const ServerVitals& vitals) const {
    const std::int64_t now_s = steady_seconds();
    report::Json f = report::Json::object();
    f.set("schema", kSchema);
    f.set("seq", seq);
    f.set("uptime_s", static_cast<double>(steady_now_ns() - start_ns_) / 1e9);

    report::Json windows = report::Json::object();
    windows.set("1s", window_json(now_s, 1));
    windows.set("10s", window_json(now_s, 10));
    windows.set("60s", window_json(now_s, 60));
    f.set("windows", std::move(windows));

    report::Json slack = report::Json::object();
    slack.set("hmm", slack_json(hmm_slack_permille_, now_s));
    slack.set("bt", slack_json(bt_slack_permille_, now_s));
    f.set("bound_slack", std::move(slack));

    report::Json server = report::Json::object();
    server.set("requests", vitals.requests);
    server.set("runs", vitals.runs);
    server.set("errors", vitals.errors);
    server.set("active_runs", in_flight_runs());
    server.set("connections", vitals.connections);
    server.set("threads_option", vitals.threads_opt);
    report::Json cache = report::Json::object();
    cache.set("hits", vitals.cache_hits);
    cache.set("misses", vitals.cache_misses);
    cache.set("entries", vitals.cache_entries);
    server.set("cache", std::move(cache));
    f.set("server", std::move(server));

    const util::PoolStats pool = util::pool_stats();
    report::Json pj = report::Json::object();
    pj.set("workers", static_cast<std::uint64_t>(pool.workers));
    pj.set("busy", static_cast<std::uint64_t>(pool.busy));
    f.set("pool", std::move(pj));

    report::Json log = report::Json::object();
    if (options_.logger != nullptr) {
        const Logger::Stats ls = options_.logger->stats();
        log.set("enabled", options_.logger->active());
        log.set("written", ls.written);
        log.set("dropped", ls.dropped);
        log.set("rotations", ls.rotations);
    } else {
        log.set("enabled", false);
        log.set("written", std::uint64_t{0});
        log.set("dropped", std::uint64_t{0});
        log.set("rotations", std::uint64_t{0});
    }
    f.set("log", std::move(log));

    report::Json proc = report::Json::object();
    proc.set("open_fds", proc_count("/proc/self/fd"));
    proc.set("threads", proc_count("/proc/self/task"));
    f.set("proc", std::move(proc));

    // Process-wide hardware counters since boot (multiplex-corrected; see
    // perf/counters.hpp). Purely observational: the section rides only in
    // telemetry frames, never in deterministic replies.
    f.set("counters", counters_.read().to_json());
    return f;
}

report::Json Telemetry::spans_json(std::size_t limit) const {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    report::Json arr = report::Json::array();
    std::size_t emitted = 0;
    for (auto it = ring_.rbegin(); it != ring_.rend() && emitted < limit; ++it, ++emitted) {
        arr.push_back(it->to_json());
    }
    return arr;
}

std::uint64_t proc_count(const char* dir) {
    DIR* d = ::opendir(dir);
    if (d == nullptr) return 0;
    std::uint64_t n = 0;
    while (const dirent* entry = ::readdir(d)) {
        if (entry->d_name[0] == '.') continue;
        ++n;
    }
    ::closedir(d);
    return n;
}

}  // namespace dbsp::telemetry
