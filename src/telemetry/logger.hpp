#pragma once

/// \file logger.hpp
/// Structured JSONL event log for long-lived processes (dbsp_serve). One
/// line per event: {"ts_ms":...,"level":"info","event":"...", ...fields}.
///
/// Design constraints, in order:
///  1. Logging can NEVER block the request path. log() appends to a bounded
///     in-memory queue under a mutex held for O(1) work; when the queue is
///     full the line is counted in dropped() and discarded — backpressure
///     shows up as a counter in the telemetry frame, not as latency.
///  2. Lines are atomic. A single background writer thread drains the queue
///     and writes each line with one fwrite, so concurrent connection
///     threads can never interleave fragments (the PR-8 daemon's
///     unsynchronized-stderr bug this replaces).
///  3. Bounded disk: size-based rotation. When the live file exceeds
///     max_bytes it is renamed to "<path>.1" (replacing any previous one)
///     and a fresh file is opened — at most 2x max_bytes on disk.
///
/// A default-constructed / pathless Logger is disabled: enabled() is false
/// for every level and log() is a cheap early return, so call sites need no
/// null checks.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "report/json.hpp"

namespace dbsp::telemetry {

enum class LogLevel : unsigned char { kDebug = 0, kInfo, kWarn, kError };

const char* level_name(LogLevel level);

/// Strict parse of a --log-level value; nullopt on anything but
/// "debug" | "info" | "warn" | "error".
std::optional<LogLevel> parse_level(std::string_view text);

class Logger {
public:
    struct Options {
        /// Log destination: a file path, "-" for stdout, empty = disabled.
        std::string path;
        LogLevel level = LogLevel::kInfo;
        /// Rotation threshold for file sinks (0 = never rotate; "-" never
        /// rotates regardless).
        std::size_t max_bytes = 64u << 20;
        /// Queue bound; log() drops (and counts) beyond it.
        std::size_t queue_capacity = 4096;
    };

    Logger() = default;
    explicit Logger(Options options);
    ~Logger();

    Logger(const Logger&) = delete;
    Logger& operator=(const Logger&) = delete;

    /// False for a pathless logger AND when the sink failed to open (the
    /// caller decides whether that is fatal; dbsp_serve exits 1).
    bool active() const { return active_; }

    bool enabled(LogLevel level) const {
        return active_ && level >= options_.level;
    }

    /// Emit one event line. \p fields must be an object (or null); its
    /// members are appended after the ts/level/event header fields.
    void log(LogLevel level, std::string_view event,
             report::Json fields = report::Json());

    struct Stats {
        std::uint64_t written = 0;    ///< lines flushed to the sink
        std::uint64_t dropped = 0;    ///< lines lost to queue overflow
        std::uint64_t rotations = 0;  ///< file rotations performed
    };
    Stats stats() const;

    /// Block until every line enqueued so far has been written (tests; the
    /// destructor drains implicitly).
    void flush();

private:
    void writer_loop();
    void open_sink();
    void rotate_locked();

    Options options_;
    bool active_ = false;
    std::FILE* file_ = nullptr;  ///< owned unless stdout
    bool is_stdout_ = false;
    std::size_t file_bytes_ = 0;

    std::mutex mutex_;
    std::condition_variable cv_;       ///< wakes the writer
    std::condition_variable idle_cv_;  ///< wakes flush() waiters
    std::deque<std::string> queue_;
    bool stop_ = false;
    bool writing_ = false;  ///< writer holds a dequeued batch
    std::thread writer_;

    std::atomic<std::uint64_t> written_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> rotations_{0};
};

}  // namespace dbsp::telemetry
