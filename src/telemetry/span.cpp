#include "telemetry/span.hpp"

namespace dbsp::telemetry {

report::Json Span::to_json() const {
    report::Json j = report::Json::object();
    j.set("name", name);
    if (label != 0) j.set("label", static_cast<std::uint64_t>(label));
    j.set("start_ms", static_cast<double>(start_ns) / 1e6);
    j.set("ms", ms());
    if (count != 1) j.set("count", count);
    if (!children.empty()) {
        report::Json kids = report::Json::array();
        for (const Span& c : children) kids.push_back(c.to_json());
        j.set("children", std::move(kids));
    }
    return j;
}

void SpanSink::phase_begin(trace::Phase phase, unsigned label) {
    open_.push_back({phase, label, steady_now_ns()});
}

void SpanSink::phase_end(trace::Phase phase) {
    const std::uint64_t now = steady_now_ns();
    // Scopes close strictly LIFO (PhaseScope is RAII); an unmatched end is
    // ignored rather than asserted — telemetry must never take a daemon down.
    if (open_.empty() || open_.back().phase != phase) return;
    const Open top = open_.back();
    open_.pop_back();
    record(trace::phase_name(phase), top.label, top.start_ns - t0_ns_,
           now - top.start_ns, static_cast<unsigned>(phase));
}

void SpanSink::superstep(unsigned label, std::uint64_t tau, std::size_t h,
                         double comm_arg, double cost) {
    (void)tau, (void)h, (void)comm_arg, (void)cost;
    const std::uint64_t now = steady_now_ns();
    if (last_superstep_ns_ == 0) last_superstep_ns_ = t0_ns_;
    const std::uint64_t start = last_superstep_ns_;
    record("superstep", label, start - t0_ns_, now - start, trace::kPhaseCount);
    last_superstep_ns_ = now;
}

void SpanSink::record(const char* name, unsigned label, std::uint64_t start_ns,
                      std::uint64_t dur_ns, unsigned phase_index) {
    Aggregate& agg = aggregate_[phase_index];
    if (agg.count == 0) agg.first_start_ns = start_ns;
    ++agg.count;
    agg.dur_ns += dur_ns;
    if (detail_.size() < kMaxDetail) {
        Span s;
        s.name = name;
        s.label = label;
        s.start_ns = start_ns;
        s.dur_ns = dur_ns;
        detail_.push_back(std::move(s));
    }
}

Span SpanSink::take(std::string leg_name) {
    Span leg;
    leg.name = std::move(leg_name);
    leg.children = std::move(detail_);
    detail_.clear();

    // Count how many instances the detail spans already cover, per phase.
    std::uint64_t detailed[trace::kPhaseCount + 1] = {};
    for (const Span& s : leg.children) {
        for (unsigned p = 0; p <= trace::kPhaseCount; ++p) {
            const char* name = p < trace::kPhaseCount
                                   ? trace::phase_name(static_cast<trace::Phase>(p))
                                   : "superstep";
            if (s.name == name) {
                ++detailed[p];
                break;
            }
        }
    }
    for (unsigned p = 0; p <= trace::kPhaseCount; ++p) {
        const Aggregate& agg = aggregate_[p];
        if (agg.count <= detailed[p]) continue;
        Span folded;
        folded.name = p < trace::kPhaseCount
                          ? trace::phase_name(static_cast<trace::Phase>(p))
                          : "superstep";
        folded.count = agg.count - detailed[p];
        folded.start_ns = agg.first_start_ns;
        // The folded node carries the phase total minus what the detail
        // spans already account for.
        std::uint64_t detailed_ns = 0;
        for (const Span& s : leg.children) {
            if (s.name == folded.name) detailed_ns += s.dur_ns;
        }
        folded.dur_ns = agg.dur_ns > detailed_ns ? agg.dur_ns - detailed_ns : 0;
        leg.children.push_back(std::move(folded));
    }
    for (auto& agg : aggregate_) agg = Aggregate{};
    last_superstep_ns_ = 0;
    return leg;
}

}  // namespace dbsp::telemetry
