#pragma once

/// \file telemetry.hpp
/// The live-telemetry hub behind dbsp_serve's `watch` and `spans` ops: a
/// time-dimensioned layer over the monotonic metrics registry. It owns
///  * sliding 1s/10s/60s windows (report::WindowedCounter/-Histogram) over
///    requests, errors, cache probes and request latency, yielding rolling
///    QPS, p50/p99 and cache-hit ratio;
///  * per-request bound-slack gauges — measured simulated cost divided by
///    the paper's Theorem 5 (HMM) / Theorem 12 (BT) predictions, windowed so
///    `dbsp_top` flags a served workload drifting from its theoretical cost
///    envelope live;
///  * the recent-request ring of span trees served by op:"spans";
///  * frame() — one "dbsp-telemetry-v1" document combining the windows with
///    process vitals (/proc fd + thread counts, worker-pool occupancy,
///    logger backpressure counters).
///
/// Everything here observes wall time and never feeds the deterministic
/// reply path: frames and span trees travel only through the telemetry ops
/// and the JSONL log.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "perf/counters.hpp"
#include "report/json.hpp"
#include "report/metrics.hpp"
#include "telemetry/logger.hpp"
#include "telemetry/span.hpp"

namespace dbsp::telemetry {

/// Everything the telemetry layer keeps about one completed request.
struct RequestRecord {
    std::uint64_t id = 0;
    std::string op;
    bool ok = true;
    bool cached = false;
    double ms = 0.0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    /// Simulated cost / theorem bound; 0 = not computed on this request
    /// (non-run op, cache hit, or the model leg was not requested).
    double hmm_slack = 0.0;
    double bt_slack = 0.0;
    Span root;  ///< full span tree (parse -> ... -> reply-write)

    report::Json to_json() const;
};

/// Counters the Server owns but the frame reports (totals since boot plus
/// cache state); passed by value into frame() so the hub stays decoupled
/// from serve::Server.
struct ServerVitals {
    std::uint64_t requests = 0;
    std::uint64_t runs = 0;
    std::uint64_t errors = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_entries = 0;
    std::uint64_t connections = 0;  ///< currently open
    std::uint64_t threads_opt = 0;  ///< configured simulator threads (0=env)
};

class Telemetry {
public:
    struct Options {
        std::size_t span_ring = 256;    ///< recent-request ring capacity
        double slow_ms = 0.0;           ///< 0 disables slow-request logging
        Logger* logger = nullptr;       ///< not owned; may be null
    };

    explicit Telemetry(Options options);

    /// Monotonic request ids, assigned at parse time.
    std::uint64_t next_request_id() {
        return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /// Fold one finished request into the windows and the span ring; emits
    /// the slow-request log line (full span tree) when ms >= slow_ms.
    void record_request(RequestRecord record);

    /// Cache probe outcome for the windowed hit ratio.
    void record_cache(bool hit);

    std::uint64_t in_flight_runs() const {
        return in_flight_.load(std::memory_order_relaxed);
    }
    void run_begin() { in_flight_.fetch_add(1, std::memory_order_relaxed); }
    void run_end() { in_flight_.fetch_sub(1, std::memory_order_relaxed); }

    /// One "dbsp-telemetry-v1" frame. \p seq is the caller's frame counter
    /// (per watch stream).
    report::Json frame(std::uint64_t seq, const ServerVitals& vitals) const;

    /// The op:"spans" body: newest-first span trees, at most \p limit.
    report::Json spans_json(std::size_t limit) const;

    /// Schema identifier carried by every frame.
    static constexpr const char* kSchema = "dbsp-telemetry-v1";

private:
    report::Json window_json(std::int64_t now_s, unsigned window_s) const;

    Options options_;
    std::uint64_t start_ns_;
    std::atomic<std::uint64_t> next_id_{0};
    std::atomic<std::uint64_t> in_flight_{0};

    report::WindowedCounter requests_;
    report::WindowedCounter errors_;
    report::WindowedCounter cache_hits_;
    report::WindowedCounter cache_misses_;
    report::WindowedHistogram latency_us_;
    /// Slack ratios stored as permille (ratio * 1000) so the log2 buckets
    /// resolve the interesting [0.1, 10] band.
    report::WindowedHistogram hmm_slack_permille_;
    report::WindowedHistogram bt_slack_permille_;

    mutable std::mutex ring_mutex_;
    std::deque<RequestRecord> ring_;  ///< newest at the back

    /// Process-wide hardware counters (inherit=1: opened at construction,
    /// before the worker pool spawns, so child threads count too). Counting
    /// runs from boot; each frame reports the totals so far. Unavailable
    /// groups (containers, DBSP_NO_PERF) degrade to an
    /// {"available":false, "reason":...} section — never an error.
    perf::CounterGroup counters_{perf::CounterGroup::Options{/*inherit=*/true}};
};

/// Count of entries in a /proc/self directory (open fds, task threads);
/// 0 when unreadable. Cheap enough to call once per frame.
std::uint64_t proc_count(const char* dir);

}  // namespace dbsp::telemetry
