#include "telemetry/logger.hpp"

#include <cstdio>
#include <utility>
#include <vector>

#include "telemetry/clock.hpp"

namespace dbsp::telemetry {

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kError: return "error";
    }
    return "info";
}

std::optional<LogLevel> parse_level(std::string_view text) {
    if (text == "debug") return LogLevel::kDebug;
    if (text == "info") return LogLevel::kInfo;
    if (text == "warn") return LogLevel::kWarn;
    if (text == "error") return LogLevel::kError;
    return std::nullopt;
}

Logger::Logger(Options options) : options_(std::move(options)) {
    if (options_.path.empty()) return;
    is_stdout_ = options_.path == "-";
    open_sink();
    if (file_ == nullptr) return;
    active_ = true;
    writer_ = std::thread([this] { writer_loop(); });
}

Logger::~Logger() {
    if (!active_) return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    writer_.join();
    if (!is_stdout_ && file_ != nullptr) std::fclose(file_);
}

void Logger::open_sink() {
    if (is_stdout_) {
        file_ = stdout;
        file_bytes_ = 0;
        return;
    }
    file_ = std::fopen(options_.path.c_str(), "a");
    if (file_ != nullptr) {
        const long pos = std::ftell(file_);
        file_bytes_ = pos > 0 ? static_cast<std::size_t>(pos) : 0;
    }
}

void Logger::rotate_locked() {
    std::fclose(file_);
    file_ = nullptr;
    const std::string old = options_.path + ".1";
    std::remove(old.c_str());
    std::rename(options_.path.c_str(), old.c_str());
    open_sink();
    rotations_.fetch_add(1, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, std::string_view event, report::Json fields) {
    if (!enabled(level)) return;
    report::Json line = report::Json::object();
    line.set("ts_ms", static_cast<double>(wall_now_ms()));
    line.set("level", level_name(level));
    line.set("event", std::string(event));
    for (const auto& [key, value] : fields.members()) line.set(key, value);
    std::string text = line.dump_compact();
    text += '\n';
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.size() >= options_.queue_capacity) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        queue_.push_back(std::move(text));
    }
    cv_.notify_one();
}

void Logger::writer_loop() {
    std::vector<std::string> batch;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            if (queue_.empty() && stop_) return;
            while (!queue_.empty()) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            writing_ = true;
        }
        for (const std::string& line : batch) {
            if (file_ != nullptr) {
                std::fwrite(line.data(), 1, line.size(), file_);
                file_bytes_ += line.size();
                written_.fetch_add(1, std::memory_order_relaxed);
                if (!is_stdout_ && options_.max_bytes > 0 &&
                    file_bytes_ >= options_.max_bytes) {
                    rotate_locked();
                }
            }
        }
        if (file_ != nullptr) std::fflush(file_);
        batch.clear();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            writing_ = false;
        }
        idle_cv_.notify_all();
    }
}

Logger::Stats Logger::stats() const {
    Stats s;
    s.written = written_.load(std::memory_order_relaxed);
    s.dropped = dropped_.load(std::memory_order_relaxed);
    s.rotations = rotations_.load(std::memory_order_relaxed);
    return s;
}

void Logger::flush() {
    if (!active_) return;
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return queue_.empty() && !writing_; });
}

}  // namespace dbsp::telemetry
