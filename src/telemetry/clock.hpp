#pragma once

/// \file clock.hpp
/// The telemetry layer's two clocks, kept deliberately apart:
///  * steady_now_ns() — monotonic, for span durations, window epochs and
///    latency quantiles (never jumps, comparable within a process);
///  * wall_now_ms() — CLOCK_REALTIME, for the "ts_ms" field of JSONL log
///    lines only (human-correlatable, may jump).
/// Neither clock ever reaches a "dbsp-serve-result-v1" document: serve
/// replies are pure functions of (spec, options), and the regression tests
/// in tests/serve_test.cpp pin reply bytes with telemetry on vs off.

#include <chrono>
#include <cstdint>

namespace dbsp::telemetry {

inline std::uint64_t steady_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Steady epoch second for the windowed instruments.
inline std::int64_t steady_seconds() {
    return static_cast<std::int64_t>(steady_now_ns() / 1000000000ull);
}

inline std::int64_t wall_now_ms() {
    return static_cast<std::int64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

}  // namespace dbsp::telemetry
