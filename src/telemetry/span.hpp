#pragma once

/// \file span.hpp
/// Request spans: every serve request gets a monotonically assigned id and a
/// tree of named, steady-clock-timed spans (parse -> cache-probe -> run ->
/// superstep[i] -> reply-write). SpanBuilder assembles the tree on the
/// request thread; SpanSink rides the existing trace::Sink phase-scope hooks
/// to time the simulator legs at superstep granularity without touching the
/// charging paths.
///
/// Spans observe wall time only. They never feed back into charged costs,
/// fingerprints or reply bytes — the span tree travels exclusively through
/// the op:"spans" telemetry ring and the slow-request log.

#include <cstdint>
#include <string>
#include <vector>

#include "report/json.hpp"
#include "telemetry/clock.hpp"
#include "trace/sink.hpp"

namespace dbsp::telemetry {

/// One node of a request's span tree. Timestamps are nanoseconds relative to
/// the request's own start, so trees serialize small and compare across
/// requests. `count > 1` marks an aggregated span (many phase instances
/// folded into one node once the per-leg detail cap is reached).
struct Span {
    std::string name;
    unsigned label = 0;           ///< superstep label, where one applies
    std::uint64_t start_ns = 0;   ///< relative to the request start
    std::uint64_t dur_ns = 0;
    std::uint64_t count = 1;      ///< instances folded into this node
    std::vector<Span> children;

    double ms() const { return static_cast<double>(dur_ns) / 1e6; }
    report::Json to_json() const;
};

/// Stack-shaped builder for one request's span tree. Not thread-safe: one
/// builder lives on one request thread.
class SpanBuilder {
public:
    SpanBuilder() : t0_ns_(steady_now_ns()) { root_.name = "request"; }

    std::uint64_t t0_ns() const { return t0_ns_; }

    /// Open a child of the innermost open span.
    void begin(std::string name) {
        Span s;
        s.name = std::move(name);
        s.start_ns = steady_now_ns() - t0_ns_;
        open_.push_back(std::move(s));
    }

    /// Close the innermost open span; returns a reference to the finished
    /// node (valid until its parent gains another child).
    Span& end() {
        Span done = std::move(open_.back());
        open_.pop_back();
        done.dur_ns = steady_now_ns() - t0_ns_ - done.start_ns;
        Span& parent = open_.empty() ? root_ : open_.back();
        parent.children.push_back(std::move(done));
        return parent.children.back();
    }

    /// Close the root and take the finished tree.
    Span finish() {
        while (!open_.empty()) end();
        root_.dur_ns = steady_now_ns() - t0_ns_;
        return std::move(root_);
    }

private:
    std::uint64_t t0_ns_;
    Span root_;
    std::vector<Span> open_;
};

/// trace::Sink adapter that turns the simulators' phase scopes (and the
/// direct machine's superstep events) into timed spans. Charge events are
/// deliberately no-ops: the base class's exact per-word mirror folding is
/// the expensive path tracing pays for bit-identity audits, and spans need
/// none of it — attaching a SpanSink costs one virtual call per *phase*,
/// not per word.
///
/// Detail is bounded: the first kMaxDetail phase instances are recorded as
/// individual spans ("superstep[i]" resolution — each simulator round is one
/// superstep); everything beyond folds into one aggregated span per phase,
/// so a million-round request produces a fixed-size tree.
class SpanSink final : public trace::Sink {
public:
    static constexpr std::size_t kMaxDetail = 48;

    /// \p t0_ns: the owning request's start stamp (SpanBuilder::t0_ns), so
    /// leg spans share the request-relative timebase.
    explicit SpanSink(std::uint64_t t0_ns) : t0_ns_(t0_ns) {}

    // Charge events: cheap no-ops (see file comment). total() stays 0; the
    // cost mirror is the AggregateSink's job, not ours.
    void access(trace::Addr, double) override {}
    void access_range(std::span<const double>, trace::Addr, trace::Addr) override {}
    void charge(double) override {}
    void block_op(std::span<const double>, double, unsigned,
                  std::initializer_list<trace::AddrRange>) override {}
    void block_transfer(trace::Addr, trace::Addr, std::uint64_t, double,
                        double) override {}
    void messages(std::uint64_t) override {}
    void merge_replay(const trace::BufferSink&) override {}
    void shard_begin() override {}
    void shard_end() override {}
    void reset_total() override {}

    void phase_begin(trace::Phase phase, unsigned label) override;
    void phase_end(trace::Phase phase) override;

    /// Direct-machine superstep events carry no scope; the time between
    /// consecutive events is superstep i's duration.
    void superstep(unsigned label, std::uint64_t tau, std::size_t h, double comm_arg,
                   double cost) override;

    /// Assemble the leg span: recorded detail spans first, then one
    /// aggregated span per phase for the folded tail.
    Span take(std::string leg_name);

private:
    struct Open {
        trace::Phase phase;
        unsigned label;
        std::uint64_t start_ns;
    };
    struct Aggregate {
        std::uint64_t count = 0;
        std::uint64_t dur_ns = 0;
        std::uint64_t first_start_ns = 0;
    };

    void record(const char* name, unsigned label, std::uint64_t start_ns,
                std::uint64_t dur_ns, unsigned phase_index);

    std::uint64_t t0_ns_;
    std::uint64_t last_superstep_ns_ = 0;  ///< previous superstep event stamp
    std::vector<Open> open_;
    std::vector<Span> detail_;
    // Phases plus one extra slot for direct-machine superstep events.
    Aggregate aggregate_[trace::kPhaseCount + 1] = {};
};

}  // namespace dbsp::telemetry
