#pragma once

/// \file transpose.hpp
/// Square-matrix transposition on the BT model — the concrete *rational
/// permutation* used by the improved DFT simulation of Section 6 (a transpose
/// permutes the bits of the element address by rotation, which is the
/// paper's canonical example of a rational permutation from [ACS87]).
///
/// Algorithm (DESIGN.md §5): partition the s x s matrix into k x k tiles with
/// k = Theta(f(n)); gather each tile into the staging region near the top of
/// memory with k row-wise block transfers (cost k f(n) + k^2 = O(k^2) when
/// k >= f(n)), transpose it *recursively* there, and scatter it to its
/// transposed home. The recursion tower mirrors the touching algorithm,
/// giving cost O(n * c*(n)) = O(n log log n) for f(x) = x^alpha
/// (alpha <= 1/2) and O(n log* n)-flavoured costs for f(x) = log x —
/// strictly cheaper than the O(n log n) of sort-based data movement, which
/// is what Experiment E11 demonstrates.

#include "bt/machine.hpp"

namespace dbsp::bt {

/// Transpose the s x s row-major matrix stored at [base, base + s*s).
/// \p s must be a power of two. [stage_base, stage_base + stage_words) is
/// free working space, disjoint from the matrix and as shallow as possible
/// (ideally stage_base ~ 0): staged tiles and the recursion tower live there,
/// using at most 4 k^2 = O(min(f(n)^2, stage_words)) of it.
void transpose_square(Machine& m, Addr base, std::uint64_t s, Addr stage_base,
                      std::uint64_t stage_words);

/// Convenience overload: stage in [0, base).
inline void transpose_square(Machine& m, Addr base, std::uint64_t s) {
    transpose_square(m, base, s, 0, base);
}

}  // namespace dbsp::bt
