#pragma once

/// \file sort.hpp
/// BT-efficient sorting of fixed-size records.
///
/// The paper's simulation (Section 5.2.1) delivers messages by sorting
/// Theta(mu |C|) constant-size elements with the Approx-Median-Sort of
/// [ACS87], quoted as O(m log m) time for f(x) = O(x^alpha) using
/// Theta(m log log m) space. The full description of that algorithm is not in
/// the paper; we substitute a bottom-up merge sort whose merge passes stream
/// both inputs and the output through top-of-memory staging chunks of size
/// Theta(f(m)) (see DESIGN.md §5). Each pass costs O(m) block-transfer time
/// plus O(m f(Theta(f(m)))) staged element work, giving O(m log m) up to a
/// doubly-logarithmic staged-access factor that is constant at every scale we
/// run; auxiliary space is O(m), within the budget the simulation frees.
///
/// Records are r consecutive words; ordering is lexicographic on the first
/// two words (key0, key1). The sort is stable for equal keys.

#include "bt/machine.hpp"

namespace dbsp::bt {

/// Sort \p n_records records of \p record_words words each, located at
/// [base, base + n*r). Requirements:
///  * [scratch, scratch + n*r) is a free region disjoint from the data;
///  * [stage, stage + stage_words) is free, disjoint from both, and
///    stage_words >= 3 * record_words.
/// The sorted result is written back to [base, base + n*r).
void merge_sort_records(Machine& m, Addr base, std::uint64_t n_records,
                        std::uint64_t record_words, Addr scratch, Addr stage,
                        std::uint64_t stage_words);

}  // namespace dbsp::bt
