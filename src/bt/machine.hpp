#pragma once

/// \file machine.hpp
/// The f(x)-BT model of Aggarwal, Chandra and Snir [ACS87], Section 2 of the
/// paper: an f(x)-HMM augmented with block transfer. Touching address x costs
/// f(x); in addition, a block of b cells [x-b+1, x] can be copied onto a
/// disjoint block [y-b+1, y] in time max{f(x), f(y)} + b — i.e. one access at
/// the deeper of the two block ends plus one unit per cell, modelling fully
/// pipelined bulk movement.
///
/// As with hmm::Machine, the instance stores real words and meters the exact
/// model cost of every operation.

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "model/access_function.hpp"
#include "model/cost_table.hpp"
#include "model/types.hpp"
#include "trace/sink.hpp"
#include "util/contracts.hpp"

namespace dbsp::bt {

using model::AccessFunction;
using model::Addr;
using model::Word;

/// Private cost/telemetry accumulator for one execution shard of a parallel
/// simulation round — the BT counterpart of hmm::ShardAccount (see there for
/// the determinism argument). cost and word_access fold independently, the
/// same decomposition Machine::read_range documents.
struct ShardAccount {
    double cost = 0.0;
    double word_access = 0.0;
    double unit_ops = 0.0;
    std::uint64_t range_ops = 0;
    std::uint64_t range_words = 0;

    void clear() { *this = ShardAccount{}; }

    /// Mirror of Machine::charge into the shard.
    void charge(double c) {
        DBSP_REQUIRE(c >= 0.0);
        cost += c;
        unit_ops += c;
    }
};

class Machine {
public:
    Machine(AccessFunction f, std::uint64_t capacity);

    /// Publish the accumulated range/transfer telemetry to the global
    /// metrics registry in one batch and zero the local accumulators
    /// (plain-member accumulation on the hot paths; see the note in
    /// machine.cpp). Safe to call repeatedly — a long-lived process
    /// (dbsp_serve) flushes after each request without double-counting at
    /// destruction.
    void publish_metrics();

    /// Publishes any telemetry not yet flushed via publish_metrics().
    ~Machine();

    /// --- charged word accesses (HMM-style) ---------------------------------
    Word read(Addr x);
    void write(Addr x, Word value);

    /// --- charged bulk accesses ---------------------------------------------
    /// Read [x, x + out.size()) into \p out; cost-equivalent (bit for bit,
    /// including the word-access decomposition) to a read() loop in ascending
    /// address order.
    void read_range(Addr x, std::span<Word> out);

    /// Write \p values onto [x, x + values.size()); cost-equivalent to a
    /// write() loop in ascending address order.
    void write_range(Addr x, std::span<const Word> values);

    /// --- block transfer ----------------------------------------------------
    /// Copy [src, src+len) onto the disjoint [dst, dst+len).
    /// Cost: max(f(src+len-1), f(dst+len-1)) + len.
    void block_copy(Addr src, Addr dst, std::uint64_t len);

    /// Charge \p c units of pure computation.
    void charge(double c);

    /// Charge exactly what block_copy(src, dst, len) would charge — cost
    /// decomposition, transfer telemetry, and the trace event — WITHOUT
    /// copying any data. The parallel BT simulator's charge walk replays the
    /// data-independent movement schedule of a round through this during the
    /// deterministic merge while the contexts execute in place.
    void charge_transfer(Addr src, Addr dst, std::uint64_t len);

    /// Fold one shard's accumulators into the machine; the cost fold is the
    /// single add the merged trace mirror performs (Sink::merge_replay).
    void merge_shard(const ShardAccount& account);

    /// --- accounting --------------------------------------------------------
    double cost() const { return cost_; }
    void reset_cost() {
        cost_ = 0.0;
        transfer_latency_ = transfer_volume_ = word_access_ = unit_ops_ = 0.0;
        if (trace_ != nullptr) trace_->reset_total();
    }

    /// Attach (or detach, with nullptr) a charge-trace sink. Not owned; every
    /// charge site is guarded by one branch on this pointer.
    void set_trace(trace::Sink* sink) { trace_ = sink; }
    trace::Sink* trace() const { return trace_; }

    /// Number of block_copy operations issued (for diagnostics/tests).
    std::uint64_t block_transfers() const { return block_transfers_; }

    /// Cost decomposition (sums to cost()): the max(f(x), f(y)) latency part
    /// of block transfers, their per-cell part, charged single-word accesses,
    /// and explicit unit-op charges. Diagnostics for the E8 analysis.
    double transfer_latency_cost() const { return transfer_latency_; }
    double transfer_volume_cost() const { return transfer_volume_; }
    double word_access_cost() const { return word_access_; }
    double unit_op_cost() const { return unit_ops_; }

    std::uint64_t capacity() const { return table_->capacity(); }
    const model::CostTable& table() const { return *table_; }
    const AccessFunction& function() const { return table_->function(); }

    /// Uncharged raw access for test setup/verification only.
    std::span<Word> raw() { return memory_; }
    std::span<const Word> raw() const { return memory_; }

private:
    /// Out-of-line cold tails for the per-word trace hook; see the note in
    /// hmm::Machine — the traced path finishes the operation in a tail call
    /// so the null-sink read()/write() stay leaf functions.
    [[gnu::cold]] [[gnu::noinline]] Word traced_read_tail(Addr x);
    [[gnu::cold]] [[gnu::noinline]] void traced_write_tail(Addr x, Word value);

    std::shared_ptr<const model::CostTable> table_;
    std::vector<Word> memory_;
    double cost_ = 0.0;
    double transfer_latency_ = 0.0;
    double transfer_volume_ = 0.0;
    double word_access_ = 0.0;
    double unit_ops_ = 0.0;
    std::uint64_t block_transfers_ = 0;
    trace::Sink* trace_ = nullptr;  ///< not owned; nullptr = tracing off
    std::uint64_t range_ops_ = 0;
    std::uint64_t range_words_ = 0;
    std::uint64_t transfer_words_ = 0;
    /// Block-transfer count per log2 size class (indexed by bit_width of
    /// len); mirrors report::Histogram's bucketing.
    std::array<std::uint64_t, 65> transfer_size_by_bucket_{};
};

}  // namespace dbsp::bt
