#include "bt/primitives.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace dbsp::bt {

std::uint64_t pow2_at_most(std::uint64_t x) {
    DBSP_REQUIRE(x >= 1);
    std::uint64_t p = 1;
    while (p * 2 <= x) p *= 2;
    return p;
}

std::uint64_t chunk_words(const Machine& m, Addr deepest, std::uint64_t cap) {
    DBSP_REQUIRE(cap >= 1);
    const double f = m.function()(deepest);
    const auto f_floor = static_cast<std::uint64_t>(std::max(1.0, std::floor(f)));
    return pow2_at_most(std::min(f_floor, cap));
}

Word touch_region(Machine& m, Addr base, std::uint64_t n) {
    if (n == 0) return 0;
    DBSP_REQUIRE(base + n <= m.capacity());
    // Candidate staging chunk: balance the per-chunk transfer cost f(end)
    // against the chunk length, bounded by half the problem and by the free
    // space above `base` (the stage lives at [c, 2c)).
    const std::uint64_t c =
        (base >= 4 && n >= 2) ? chunk_words(m, base + n - 1, std::min(n / 2, base / 2)) : 0;
    if (c < 8 || n <= 32) {
        // Direct reads. Reached either at the top of the recursion tower
        // (where f is tiny, so each read is cheap) or for trivially small
        // inputs.
        Word acc = 0;
        for (std::uint64_t i = 0; i < n; ++i) acc ^= m.read(base + i);
        return acc;
    }
    Word acc = 0;
    for (std::uint64_t off = 0; off < n; off += c) {
        const std::uint64_t len = std::min(c, n - off);
        m.block_copy(base + off, c, len);
        acc ^= touch_region(m, c, len);  // recursion stages strictly below c
    }
    return acc;
}

StageTower::StageTower(const Machine& m, Addr stage, std::uint64_t chunk,
                       std::uint64_t align, std::uint64_t lane, std::uint64_t lanes) {
    DBSP_REQUIRE(align >= 1);
    DBSP_REQUIRE(chunk >= align && chunk % align == 0);
    DBSP_REQUIRE(lanes >= 1 && lane < lanes);
    // Raw level sizes: s_{k+1} ~ f(s_k), aligned, until levels stop paying
    // for themselves. Sizes are a function of (chunk, align, lanes) only, so
    // all lanes compute identical layouts.
    std::vector<std::uint64_t> sizes{chunk};
    while (true) {
        std::uint64_t nxt = chunk_words(m, stage + lanes * sizes.back(), sizes.back() / 4);
        nxt -= nxt % align;
        if (nxt < align || nxt < 8 || 4 * nxt > sizes.back()) break;
        sizes.push_back(nxt);
    }
    // Inner levels keep their size; the outermost absorbs the remainder so
    // each lane's tower occupies exactly chunk words.
    std::uint64_t inner_total = 0;
    for (std::size_t k = 1; k < sizes.size(); ++k) inner_total += sizes[k];
    DBSP_ASSERT(inner_total < chunk);
    levels.resize(sizes.size());
    for (std::size_t k = 0; k < sizes.size(); ++k) {
        levels[k].capacity = (k == 0) ? chunk - inner_total : sizes[k];
    }
    // Depth-interleaved layout: all lanes' level-(K-1) buffers first, then
    // all level-(K-2) buffers, ..., outermost last.
    Addr at = stage;
    for (std::size_t k = sizes.size(); k-- > 0;) {
        levels[k].addr = at + lane * levels[k].capacity;
        at += lanes * levels[k].capacity;
    }
}

StagedReader::StagedReader(Machine& m, Addr begin, std::uint64_t len, Addr stage,
                           std::uint64_t chunk, std::uint64_t align, std::uint64_t lane,
                           std::uint64_t lanes)
    : m_(m), begin_(begin), len_(len), tower_(m, stage, chunk, align, lane, lanes),
      lo_(tower_.levels.size(), 0), hi_(tower_.levels.size(), 0) {
    DBSP_REQUIRE(begin_ + len_ <= m_.capacity());
    DBSP_REQUIRE(stage + lanes * chunk <= m_.capacity());
    DBSP_REQUIRE(stage + lanes * chunk <= begin_ || begin_ + len_ <= stage);
}

void StagedReader::refill(std::size_t level) {
    DBSP_ASSERT(pos_ < len_);
    lo_[level] = pos_;
    const std::uint64_t parent_hi = (level == 0) ? len_ : hi_[level - 1];
    hi_[level] = std::min(pos_ + tower_.levels[level].capacity, parent_hi);
    const Addr src = (level == 0)
                         ? begin_ + pos_
                         : tower_.levels[level - 1].addr + (pos_ - lo_[level - 1]);
    m_.block_copy(src, tower_.levels[level].addr, hi_[level] - lo_[level]);
}

Word StagedReader::peek(std::uint64_t offset) {
    const std::uint64_t at = pos_ + offset;
    DBSP_REQUIRE(at < len_);
    const std::size_t inner = tower_.levels.size() - 1;
    if (at >= hi_[inner]) {
        // A record never straddles windows when every capacity is a multiple
        // of the record size and advance() moves in whole records, so a miss
        // always lands exactly at the consumption point.
        DBSP_ASSERT(pos_ >= hi_[inner]);
        for (std::size_t k = 0; k <= inner; ++k) {
            if (pos_ >= hi_[k]) refill(k);
        }
    }
    DBSP_ASSERT(at >= lo_[inner]);
    return m_.read(tower_.levels[inner].addr + (at - lo_[inner]));
}

void StagedReader::advance(std::uint64_t words) {
    DBSP_REQUIRE(pos_ + words <= len_);
    pos_ += words;
}

StagedWriter::StagedWriter(Machine& m, Addr begin, std::uint64_t len, Addr stage,
                           std::uint64_t chunk, std::uint64_t align, std::uint64_t lane,
                           std::uint64_t lanes)
    : m_(m), begin_(begin), len_(len), tower_(m, stage, chunk, align, lane, lanes),
      fill_(tower_.levels.size(), 0) {
    DBSP_REQUIRE(begin_ + len_ <= m_.capacity());
    DBSP_REQUIRE(stage + lanes * chunk <= m_.capacity());
    DBSP_REQUIRE(stage + lanes * chunk <= begin_ || begin_ + len_ <= stage);
}

StagedWriter::~StagedWriter() { flush(); }

std::uint64_t StagedWriter::written() const {
    std::uint64_t total = written_;
    for (std::uint64_t f : fill_) total += f;
    return total;
}

void StagedWriter::push(Word w) {
    DBSP_REQUIRE(written() < len_);
    const std::size_t inner = tower_.levels.size() - 1;
    m_.write(tower_.levels[inner].addr + fill_[inner], w);
    if (++fill_[inner] == tower_.levels[inner].capacity) spill(inner);
}

void StagedWriter::spill(std::size_t level) {
    if (fill_[level] == 0) return;
    if (level == 0) {
        m_.block_copy(tower_.levels[0].addr, begin_ + written_, fill_[0]);
        written_ += fill_[0];
        fill_[0] = 0;
        return;
    }
    const std::size_t parent = level - 1;
    if (tower_.levels[parent].capacity - fill_[parent] < fill_[level]) {
        spill(parent);
    }
    m_.block_copy(tower_.levels[level].addr,
                  tower_.levels[parent].addr + fill_[parent], fill_[level]);
    fill_[parent] += fill_[level];
    fill_[level] = 0;
}

void StagedWriter::flush() {
    for (std::size_t k = tower_.levels.size(); k-- > 0;) spill(k);
}

}  // namespace dbsp::bt
