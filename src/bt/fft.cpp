#include "bt/fft.hpp"

#include <bit>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "bt/transpose.hpp"
#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::bt {

namespace {

std::complex<double> unit_root(std::uint64_t n, std::uint64_t exponent) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(exponent) / static_cast<double>(n);
    return {std::cos(angle), std::sin(angle)};
}

std::complex<double> load_c(Machine& m, Addr re, Addr im, std::uint64_t e) {
    return {std::bit_cast<double>(m.read(re + e)), std::bit_cast<double>(m.read(im + e))};
}

void store_c(Machine& m, Addr re, Addr im, std::uint64_t e, std::complex<double> v) {
    m.write(re + e, std::bit_cast<Word>(v.real()));
    m.write(im + e, std::bit_cast<Word>(v.imag()));
}

void dft_direct(Machine& m, Addr re, Addr im, std::uint64_t n) {
    std::vector<std::complex<double>> x(n), out(n);
    for (std::uint64_t e = 0; e < n; ++e) x[e] = load_c(m, re, im, e);
    for (std::uint64_t k = 0; k < n; ++k) {
        std::complex<double> sum{0, 0};
        for (std::uint64_t j = 0; j < n; ++j) sum += x[j] * unit_root(n, (j * k) % n);
        out[k] = sum;
        m.charge(static_cast<double>(8 * n));
    }
    for (std::uint64_t e = 0; e < n; ++e) store_c(m, re, im, e, out[e]);
}

/// Words of top-of-memory staging the recursion needs (a row pair per level,
/// stacked at the very top so recursive work happens at the cheapest
/// addresses — the cost recurrence's "bring each row to the top").
std::uint64_t stage_need(std::uint64_t n) {
    if (n <= 4) return 0;
    const std::uint64_t side = std::uint64_t{1} << (ilog2(n) / 2);
    return stage_need(side) + 2 * side;
}

/// Recursion over the planar layout; [0, re_base) must be free with
/// re_base >= stage_need(n).
void fft_rec(Machine& m, Addr re_base, Addr im_base, std::uint64_t n) {
    if (n <= 4) {
        dft_direct(m, re_base, im_base, n);
        return;
    }
    const std::uint64_t side = std::uint64_t{1} << (ilog2(n) / 2);
    const Addr stage_re = stage_need(side);    // staged row, re plane
    const Addr stage_im = stage_re + side;     // staged row, im plane
    DBSP_REQUIRE(re_base >= stage_im + side);

    auto transpose_planes = [&] {
        // Rational permutation on each plane; the whole free region below the
        // planes is available to the tile tower (the row buffers are idle
        // during transposes and may be scribbled over).
        transpose_square(m, re_base, side, 0, re_base);
        transpose_square(m, im_base, side, 0, re_base);
    };

    // Step 1: transpose, so columns become contiguous rows.
    transpose_planes();

    // Step 2: column DFTs with the four-step twiddle folded in.
    for (std::uint64_t row = 0; row < side; ++row) {
        m.block_copy(re_base + row * side, stage_re, side);
        m.block_copy(im_base + row * side, stage_im, side);
        fft_rec(m, stage_re, stage_im, side);
        for (std::uint64_t rp = 0; rp < side; ++rp) {
            store_c(m, stage_re, stage_im, rp,
                    load_c(m, stage_re, stage_im, rp) * unit_root(n, (row * rp) % n));
            m.charge(8.0);
        }
        m.block_copy(stage_re, re_base + row * side, side);
        m.block_copy(stage_im, im_base + row * side, side);
    }

    // Step 3: regroup.
    transpose_planes();

    // Step 4: row DFTs.
    for (std::uint64_t row = 0; row < side; ++row) {
        m.block_copy(re_base + row * side, stage_re, side);
        m.block_copy(im_base + row * side, stage_im, side);
        fft_rec(m, stage_re, stage_im, side);
        m.block_copy(stage_re, re_base + row * side, side);
        m.block_copy(stage_im, im_base + row * side, side);
    }

    // Step 5: final transpose yields natural order.
    transpose_planes();
}

}  // namespace

void fft_natural_planar(Machine& m, Addr base, std::uint64_t n) {
    DBSP_REQUIRE(is_pow2(n));
    DBSP_REQUIRE(n <= 4 || is_pow2(ilog2(n)));
    DBSP_REQUIRE(base + 2 * n <= m.capacity());
    DBSP_REQUIRE(base >= stage_need(n));
    fft_rec(m, base, base + n, n);
}

}  // namespace dbsp::bt
