#include "bt/sort.hpp"

#include <algorithm>

#include "bt/primitives.hpp"
#include "util/contracts.hpp"

namespace dbsp::bt {

namespace {

/// Merge the sorted runs [a, a+la) and [b, b+lb) (word lengths, both multiples
/// of r) into dst, using three staging buffers of `chunk` words each at
/// stage, stage+chunk, stage+2*chunk.
void merge_runs(Machine& m, Addr a, std::uint64_t la, Addr b, std::uint64_t lb, Addr dst,
                std::uint64_t r, Addr stage, std::uint64_t chunk) {
    // Three cooperating streams share one depth-interleaved staging tower,
    // so all their innermost buffers sit at the top of the stage window.
    StagedReader ra(m, a, la, stage, chunk, /*align=*/r, /*lane=*/0, /*lanes=*/3);
    StagedReader rb(m, b, lb, stage, chunk, /*align=*/r, /*lane=*/1, /*lanes=*/3);
    StagedWriter out(m, dst, la + lb, stage, chunk, /*align=*/r, /*lane=*/2, /*lanes=*/3);

    auto take = [&](StagedReader& src) {
        for (std::uint64_t t = 0; t < r; ++t) out.push(src.peek(t));
        src.advance(r);
    };

    while (!ra.done() && !rb.done()) {
        const Word ka0 = ra.peek(0);
        const Word kb0 = rb.peek(0);
        m.charge(1.0);  // key comparison
        bool a_first;
        if (ka0 != kb0) {
            a_first = ka0 < kb0;
        } else {
            const Word ka1 = ra.peek(1);
            const Word kb1 = rb.peek(1);
            m.charge(1.0);
            a_first = ka1 <= kb1;  // <=: stability, run A precedes run B
        }
        take(a_first ? ra : rb);
    }
    while (!ra.done()) take(ra);
    while (!rb.done()) take(rb);
    out.flush();
}

}  // namespace

void merge_sort_records(Machine& m, Addr base, std::uint64_t n_records,
                        std::uint64_t record_words, Addr scratch, Addr stage,
                        std::uint64_t stage_words) {
    const std::uint64_t r = record_words;
    DBSP_REQUIRE(r >= 2);  // need (key0, key1)
    DBSP_REQUIRE(stage_words >= 3 * r);
    if (n_records <= 1) return;
    const std::uint64_t total = n_records * r;
    DBSP_REQUIRE(base + total <= m.capacity());
    DBSP_REQUIRE(scratch + total <= m.capacity());

    // Staging chunk: a multiple of the record size, sized like f(deepest cell
    // the sort touches) so per-chunk transfer cost amortizes to O(1)/cell.
    const Addr deepest = std::max(base, scratch) + total - 1;
    std::uint64_t chunk = chunk_words(m, deepest, stage_words / 3);
    chunk = std::max<std::uint64_t>(chunk - chunk % r, r);

    Addr src = base;
    Addr dst = scratch;
    for (std::uint64_t width = 1; width < n_records; width *= 2) {
        for (std::uint64_t lo = 0; lo < n_records; lo += 2 * width) {
            const std::uint64_t mid = std::min(lo + width, n_records);
            const std::uint64_t hi = std::min(lo + 2 * width, n_records);
            const std::uint64_t la = (mid - lo) * r;
            const std::uint64_t lb = (hi - mid) * r;
            if (lb == 0) {
                // Odd tail: copy through unchanged.
                m.block_copy(src + lo * r, dst + lo * r, la);
                continue;
            }
            merge_runs(m, src + lo * r, la, src + mid * r, lb, dst + lo * r, r, stage, chunk);
        }
        std::swap(src, dst);
    }
    if (src != base) {
        m.block_copy(src, base, total);
    }
}

}  // namespace dbsp::bt
