#pragma once

/// \file fft.hpp
/// A hierarchy-conscious FFT written *directly* for the f(x)-BT model — the
/// Theta(n log n) native algorithm of [ACS87] that Section 6's improved
/// simulation matches. Four-step recursion where all bulk movement uses
/// block transfer:
///
///  * the input is stored as two planes (re at [base, base+n), im at
///    [base+n, base+2n)), so every matrix transpose is a word-level square
///    transpose handled by the tiled rational-permutation primitive;
///  * rows (contiguous in each plane) are staged to the top of memory with
///    block transfers, solved recursively there, twiddled in place, and
///    written back.
///
/// Cost: Theta(n log n) for every f(x) = O(x^alpha) — the scalar butterfly
/// work dominates once block transfer has flattened the data movement, which
/// is the "access costs hidden almost completely" phenomenon of [ACS87].
///
/// Layout contract: [0, base) free; n with log2 n a power of two (or <= 4).
/// Output is the natural-order DFT.

#include "bt/machine.hpp"

namespace dbsp::bt {

/// In-place natural-order DFT of the n complex elements stored as planes
/// re = [base, base+n), im = [base+n, base+2n).
void fft_natural_planar(Machine& m, Addr base, std::uint64_t n);

}  // namespace dbsp::bt
