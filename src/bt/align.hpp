#pragma once

/// \file align.hpp
/// The ALIGN(n) subroutine of Section 5.2.1: after the sort-based message
/// delivery, the records of each processor form a variable-length group in a
/// contiguous region; ALIGN redistributes the groups so that group j starts
/// exactly at block j, using recursive halving with block transfers:
///
///   ALIGN(n):
///     if n = 1 then exit
///     locate the (n/2)-th topmost context          (binary search over tags)
///     copy contexts n/2 .. n-1 to the region at block n
///     ALIGN(n/2)                                   (align the first half)
///     swap blocks 0 .. n/2-1 with blocks n .. 3n/2-1
///     ALIGN(n/2)                                   (align the second half)
///     copy blocks 0 .. n/2-1 onto blocks n/2 .. n-1
///     copy blocks n .. 3n/2-1 onto blocks 0 .. n/2-1
///
/// Running time O(mu n log(mu n)) — the same order as the sort it follows.
///
/// The BtSimulator itself rebuilds contexts with a single streamed pass
/// (DESIGN.md §3.4), which subsumes this step; ALIGN is provided as a faithful
/// standalone implementation of the paper's subroutine, with its own tests
/// and cost measurements.

#include "bt/machine.hpp"

namespace dbsp::bt {

/// Align n variable-length record groups inside [base, base + n*block_words).
///
/// On entry, the region holds the concatenation of n groups packed at the
/// front (total <= n*block_words words); each record is record_words long and
/// its first word is the *owner tag* g in [0, n) — records are sorted by tag,
/// and group g contains at most block_words / record_words records. Unused
/// record slots after the packed records must carry tags >= n (e.g. ~0
/// sentinels), which is how the packed length is located. On exit, group g
/// starts at base + g*block_words (tail slack within each block is
/// unspecified).
///
/// [base + n*block_words, base + (3n/2)*block_words) must be free working
/// space, per the paper's layout. Requires n to be a power of two.
void align_groups(Machine& m, Addr base, std::uint64_t n, std::uint64_t block_words,
                  std::uint64_t record_words);

}  // namespace dbsp::bt
