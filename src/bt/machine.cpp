#include "bt/machine.hpp"

#include <algorithm>

#include "model/cost_table_cache.hpp"
#include "util/contracts.hpp"

namespace dbsp::bt {

Machine::Machine(AccessFunction f, std::uint64_t capacity)
    : table_(model::CostTableCache::global().get(f, capacity)), memory_(capacity, 0) {}

Word Machine::read(Addr x) {
    DBSP_REQUIRE(x < capacity());
    cost_ += table_->cost(x);
    word_access_ += table_->cost(x);
    return memory_[x];
}

void Machine::write(Addr x, Word value) {
    DBSP_REQUIRE(x < capacity());
    cost_ += table_->cost(x);
    word_access_ += table_->cost(x);
    memory_[x] = value;
}

void Machine::read_range(Addr x, std::span<Word> out) {
    if (out.empty()) return;
    DBSP_REQUIRE(x + out.size() <= capacity());
    // The two accumulators are independent in the per-word loop, so folding
    // each one separately reproduces its value bit for bit.
    cost_ = table_->accumulate(x, x + out.size(), cost_);
    word_access_ = table_->accumulate(x, x + out.size(), word_access_);
    std::copy_n(memory_.begin() + static_cast<std::ptrdiff_t>(x), out.size(), out.begin());
}

void Machine::write_range(Addr x, std::span<const Word> values) {
    if (values.empty()) return;
    DBSP_REQUIRE(x + values.size() <= capacity());
    cost_ = table_->accumulate(x, x + values.size(), cost_);
    word_access_ = table_->accumulate(x, x + values.size(), word_access_);
    std::copy_n(values.begin(), values.size(),
                memory_.begin() + static_cast<std::ptrdiff_t>(x));
}

void Machine::block_copy(Addr src, Addr dst, std::uint64_t len) {
    if (len == 0) return;
    DBSP_REQUIRE(src + len <= capacity() && dst + len <= capacity());
    DBSP_REQUIRE(src + len <= dst || dst + len <= src);  // disjoint, per the model
    const double latency = std::max(table_->cost(src + len - 1), table_->cost(dst + len - 1));
    cost_ += latency + static_cast<double>(len);
    transfer_latency_ += latency;
    transfer_volume_ += static_cast<double>(len);
    ++block_transfers_;
    std::copy(memory_.begin() + static_cast<std::ptrdiff_t>(src),
              memory_.begin() + static_cast<std::ptrdiff_t>(src + len),
              memory_.begin() + static_cast<std::ptrdiff_t>(dst));
}

void Machine::charge(double c) {
    DBSP_REQUIRE(c >= 0.0);
    cost_ += c;
    unit_ops_ += c;
}

}  // namespace dbsp::bt
