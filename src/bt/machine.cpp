#include "bt/machine.hpp"

#include <algorithm>
#include <bit>

#include "model/cost_table_cache.hpp"
#include "report/metrics.hpp"
#include "util/contracts.hpp"

namespace dbsp::bt {

Machine::Machine(AccessFunction f, std::uint64_t capacity)
    : table_(model::CostTableCache::global().get(f, capacity)), memory_(capacity, 0) {}

// Telemetry accumulates in plain members and is published to the registry in
// one batch per machine lifetime — same discipline (and same reason) as
// hmm::Machine::note_bulk: per-op atomics are unaffordable on range ops that
// often move single message records. Per-word read()/write() carry no hook.
void Machine::publish_metrics() {
    if (range_ops_ == 0 && block_transfers_ == 0) return;
    static auto& ops = report::metric_counter("bt.range_ops");
    static auto& range_words = report::metric_counter("bt.range_words");
    static auto& transfers = report::metric_counter("bt.block_transfers");
    static auto& transfer_words = report::metric_counter("bt.transfer_words");
    static auto& transfer_size = report::metric_histogram("bt.transfer_size");
    ops.add(range_ops_);
    range_words.add(range_words_);
    transfers.add(block_transfers_);
    transfer_words.add(transfer_words_);
    for (unsigned b = 0; b < transfer_size_by_bucket_.size(); ++b) {
        if (transfer_size_by_bucket_[b] != 0) {
            transfer_size.add_to_bucket(b, transfer_size_by_bucket_[b]);
        }
    }
    range_ops_ = 0;
    range_words_ = 0;
    block_transfers_ = 0;
    transfer_words_ = 0;
    transfer_size_by_bucket_.fill(0);
}

Machine::~Machine() { publish_metrics(); }

Word Machine::traced_read_tail(Addr x) {
    trace_->access(x, table_->cost(x));
    return memory_[x];
}

void Machine::traced_write_tail(Addr x, Word value) {
    trace_->access(x, table_->cost(x));
    memory_[x] = value;
}

Word Machine::read(Addr x) {
    DBSP_REQUIRE(x < capacity());
    const double delta = table_->cost(x);
    cost_ += delta;
    word_access_ += delta;
    if (trace_ != nullptr) [[unlikely]] return traced_read_tail(x);
    return memory_[x];
}

void Machine::write(Addr x, Word value) {
    DBSP_REQUIRE(x < capacity());
    const double delta = table_->cost(x);
    cost_ += delta;
    word_access_ += delta;
    if (trace_ != nullptr) [[unlikely]] { traced_write_tail(x, value); return; }
    memory_[x] = value;
}

void Machine::read_range(Addr x, std::span<Word> out) {
    if (out.empty()) return;
    DBSP_REQUIRE(x + out.size() <= capacity());
    // The two accumulators are independent in the per-word loop, so folding
    // each one separately reproduces its value bit for bit.
    cost_ = table_->accumulate(x, x + out.size(), cost_);
    word_access_ = table_->accumulate(x, x + out.size(), word_access_);
    ++range_ops_;
    range_words_ += out.size();
    if (trace_ != nullptr) trace_->access_range(table_->prefix(), x, x + out.size());
    std::copy_n(memory_.begin() + static_cast<std::ptrdiff_t>(x), out.size(), out.begin());
}

void Machine::write_range(Addr x, std::span<const Word> values) {
    if (values.empty()) return;
    DBSP_REQUIRE(x + values.size() <= capacity());
    cost_ = table_->accumulate(x, x + values.size(), cost_);
    word_access_ = table_->accumulate(x, x + values.size(), word_access_);
    ++range_ops_;
    range_words_ += values.size();
    if (trace_ != nullptr) trace_->access_range(table_->prefix(), x, x + values.size());
    std::copy_n(values.begin(), values.size(),
                memory_.begin() + static_cast<std::ptrdiff_t>(x));
}

void Machine::block_copy(Addr src, Addr dst, std::uint64_t len) {
    if (len == 0) return;
    DBSP_REQUIRE(src + len <= capacity() && dst + len <= capacity());
    DBSP_REQUIRE(src + len <= dst || dst + len <= src);  // disjoint, per the model
    const double latency = std::max(table_->cost(src + len - 1), table_->cost(dst + len - 1));
    const double delta = latency + static_cast<double>(len);
    cost_ += delta;
    transfer_latency_ += latency;
    transfer_volume_ += static_cast<double>(len);
    ++block_transfers_;
    transfer_words_ += len;
    transfer_size_by_bucket_[std::bit_width(len)] += 1;
    if (trace_ != nullptr) trace_->block_transfer(src, dst, len, latency, delta);
    std::copy(memory_.begin() + static_cast<std::ptrdiff_t>(src),
              memory_.begin() + static_cast<std::ptrdiff_t>(src + len),
              memory_.begin() + static_cast<std::ptrdiff_t>(dst));
}

void Machine::charge(double c) {
    DBSP_REQUIRE(c >= 0.0);
    cost_ += c;
    unit_ops_ += c;
    if (trace_ != nullptr) trace_->charge(c);
}

void Machine::charge_transfer(Addr src, Addr dst, std::uint64_t len) {
    // block_copy minus the std::copy: same delta, same decomposition, same
    // telemetry, same trace event.
    if (len == 0) return;
    DBSP_REQUIRE(src + len <= capacity() && dst + len <= capacity());
    DBSP_REQUIRE(src + len <= dst || dst + len <= src);  // disjoint, per the model
    const double latency = std::max(table_->cost(src + len - 1), table_->cost(dst + len - 1));
    const double delta = latency + static_cast<double>(len);
    cost_ += delta;
    transfer_latency_ += latency;
    transfer_volume_ += static_cast<double>(len);
    ++block_transfers_;
    transfer_words_ += len;
    transfer_size_by_bucket_[std::bit_width(len)] += 1;
    if (trace_ != nullptr) trace_->block_transfer(src, dst, len, latency, delta);
}

void Machine::merge_shard(const ShardAccount& account) {
    cost_ += account.cost;
    word_access_ += account.word_access;
    unit_ops_ += account.unit_ops;
    range_ops_ += account.range_ops;
    range_words_ += account.range_words;
}

}  // namespace dbsp::bt
