#include "bt/machine.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace dbsp::bt {

Machine::Machine(AccessFunction f, std::uint64_t capacity)
    : table_(std::move(f), capacity), memory_(capacity, 0) {}

Word Machine::read(Addr x) {
    DBSP_REQUIRE(x < capacity());
    cost_ += table_.cost(x);
    word_access_ += table_.cost(x);
    return memory_[x];
}

void Machine::write(Addr x, Word value) {
    DBSP_REQUIRE(x < capacity());
    cost_ += table_.cost(x);
    word_access_ += table_.cost(x);
    memory_[x] = value;
}

void Machine::block_copy(Addr src, Addr dst, std::uint64_t len) {
    if (len == 0) return;
    DBSP_REQUIRE(src + len <= capacity() && dst + len <= capacity());
    DBSP_REQUIRE(src + len <= dst || dst + len <= src);  // disjoint, per the model
    const double latency = std::max(table_.cost(src + len - 1), table_.cost(dst + len - 1));
    cost_ += latency + static_cast<double>(len);
    transfer_latency_ += latency;
    transfer_volume_ += static_cast<double>(len);
    ++block_transfers_;
    std::copy(memory_.begin() + static_cast<std::ptrdiff_t>(src),
              memory_.begin() + static_cast<std::ptrdiff_t>(src + len),
              memory_.begin() + static_cast<std::ptrdiff_t>(dst));
}

void Machine::charge(double c) {
    DBSP_REQUIRE(c >= 0.0);
    cost_ += c;
    unit_ops_ += c;
}

}  // namespace dbsp::bt
