#include "bt/align.hpp"

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::bt {

namespace {

/// First record index in [0, count) whose owner tag is >= target; records
/// are rw words at base, tag-sorted. Charged binary search, O(log count)
/// single-word reads.
std::uint64_t lower_bound_tag(Machine& m, Addr base, std::uint64_t count,
                              std::uint64_t rw, Word target) {
    std::uint64_t lo = 0, hi = count;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (m.read(base + mid * rw) < target) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

/// ALIGN over groups [tag_base, tag_base + n) with `count` records packed at
/// the front of [base, base + n*bw); workspace at [base + n*bw, base +
/// (3n/2)*bw).
void align_rec(Machine& m, Addr base, std::uint64_t n, std::uint64_t bw,
               std::uint64_t rw, Word tag_base, std::uint64_t count) {
    if (n == 1) {
        DBSP_ASSERT(count * rw <= bw);
        return;  // a single packed group is already at its block
    }
    const std::uint64_t half_blocks_words = (n / 2) * bw;
    const Addr work = base + n * bw;

    // Locate the boundary of the first n/2 groups (binary search over tags).
    const std::uint64_t mid_idx =
        lower_bound_tag(m, base, count, rw, tag_base + n / 2);
    const std::uint64_t first_words = mid_idx * rw;
    const std::uint64_t second_words = (count - mid_idx) * rw;
    DBSP_ASSERT(first_words <= half_blocks_words);
    DBSP_ASSERT(second_words <= half_blocks_words);

    // Park the second half's records in the workspace.
    if (second_words > 0) m.block_copy(base + first_words, work, second_words);

    // Align the first half in place; its own workspace is blocks
    // [n/2, n), which the parking just freed.
    align_rec(m, base, n / 2, bw, rw, tag_base, mid_idx);

    // Swap the aligned first half with the parked second half, through the
    // free blocks [n/2, n) (three block transfers).
    m.block_copy(base, base + half_blocks_words, half_blocks_words);
    if (second_words > 0) m.block_copy(work, base, second_words);
    m.block_copy(base + half_blocks_words, work, half_blocks_words);

    // Align the second half (tags offset by n/2).
    align_rec(m, base, n / 2, bw, rw, tag_base + n / 2, count - mid_idx);

    // Put both halves at their homes: the aligned second half to blocks
    // [n/2, n), the aligned first half back on top.
    m.block_copy(base, base + half_blocks_words, half_blocks_words);
    m.block_copy(work, base, half_blocks_words);
}

}  // namespace

void align_groups(Machine& m, Addr base, std::uint64_t n, std::uint64_t block_words,
                  std::uint64_t record_words) {
    DBSP_REQUIRE(is_pow2(n));
    DBSP_REQUIRE(record_words >= 1 && block_words >= record_words);
    DBSP_REQUIRE(block_words % record_words == 0);
    DBSP_REQUIRE(base + n * block_words + (n / 2) * block_words <= m.capacity());

    // Count the packed records: they are tag-sorted with tags < n, so scan
    // group boundaries via binary search per possible end... simpler and
    // within budget: the caller's packing invariant means the record count is
    // the index of the first slot whose tag is out of range or out of order.
    // We require the caller to have zero-padded one trailing record slot or
    // the region to be exactly full; detect the packed length by binary
    // searching the highest tag's group end.
    const std::uint64_t max_records = n * (block_words / record_words);
    // First find how many records there are: positions < count hold tags in
    // [0, n) in nondecreasing order; the slack holds the sentinel ~0.
    std::uint64_t count = lower_bound_tag(m, base, max_records, record_words, n);
    align_rec(m, base, n, block_words, record_words, 0, count);
}

}  // namespace dbsp::bt
