#pragma once

/// \file primitives.hpp
/// Building blocks for BT algorithms. The recurring pattern of efficient BT
/// code (per [ACS87] and Section 5 of the paper) is *chunked staging*: data is
/// moved to the top of memory in blocks of size Theta(f(n)) — so the per-chunk
/// transfer cost f(n) + c is O(1) amortized per cell — and processed there,
/// recursively re-staging when even top-of-chunk access costs matter.
///
/// This file provides:
///  * touch_region — the touching problem (Fact 2), Theta(n f*(n));
///  * StagedReader / StagedWriter — sequential charged streams over deep
///    regions that stage chunks at the top via block transfer (the machinery
///    behind the BT merge sort and the simulator's context rewrites). Both
///    build the full touching-recursion tower inside their stage window:
///    level k+1 is a Theta(f(size of level k))-sized buffer, down to O(1),
///    so the per-word access cost is O(f*(n))-amortized — this is what makes
///    Theorem 12's f-independence hold in the measurements, not just in the
///    asymptotics.

#include <vector>

#include "bt/machine.hpp"

namespace dbsp::bt {

/// Largest power of two <= x; requires x >= 1.
std::uint64_t pow2_at_most(std::uint64_t x);

/// Staging chunk size for a region ending at address \p deepest: the largest
/// power of two <= min(f(deepest), cap), and >= 1.
std::uint64_t chunk_words(const Machine& m, Addr deepest, std::uint64_t cap);

/// Touch every cell of [base, base+n): the Fact 2 touching problem. Chunks
/// are staged at [c, 2c) with recursion staging strictly below, so the caller
/// must keep [0, base) free; cost is Theta(n f*(n)) for (2,c)-uniform f.
/// Returns the XOR of all touched words (forces real reads).
Word touch_region(Machine& m, Addr base, std::uint64_t n);

/// The staging tower shared by StagedReader and StagedWriter: buffer levels
/// inside the window [stage, stage + lanes*chunk), outermost (largest) level
/// first. Level k+1 has size ~f(level k's size), rounded to the record
/// alignment, ending when a level is small enough that elementwise access to
/// it is cheap.
///
/// When several streams cooperate (e.g. the two inputs and the output of a
/// merge), each takes one of \p lanes lanes over a shared window: the levels
/// of all lanes are interleaved depth-wise, so every stream's innermost
/// buffer sits at the very top of the window — the whole point of the tower
/// is that the cheapest addresses serve the per-word traffic of *all*
/// streams.
struct StageTower {
    StageTower(const Machine& m, Addr stage, std::uint64_t chunk, std::uint64_t align,
               std::uint64_t lane, std::uint64_t lanes);

    struct Level {
        Addr addr;
        std::uint64_t capacity;
    };
    std::vector<Level> levels;  ///< [0] = outermost, back() = innermost
};

/// Sequential reader over the \p len words at [begin, begin+len). Data
/// cascades through the staging tower in [stage, stage+chunk) (a multiple of
/// \p align) via block transfers; reads are served from the innermost level.
/// The stage window must be disjoint from the source region.
class StagedReader {
public:
    StagedReader(Machine& m, Addr begin, std::uint64_t len, Addr stage,
                 std::uint64_t chunk, std::uint64_t align = 1, std::uint64_t lane = 0,
                 std::uint64_t lanes = 1);

    /// Words not yet consumed.
    std::uint64_t remaining() const { return len_ - pos_; }
    bool done() const { return pos_ == len_; }

    /// Charged read of the word at (current position + offset); requires the
    /// addressed word to lie within the innermost staged window, which holds
    /// whenever offset < align and advance() moves in align units.
    Word peek(std::uint64_t offset = 0);

    /// Consume \p words words.
    void advance(std::uint64_t words);

private:
    void refill(std::size_t level);

    Machine& m_;
    Addr begin_;
    std::uint64_t len_;
    StageTower tower_;
    std::uint64_t pos_ = 0;                    ///< consumed words
    std::vector<std::uint64_t> lo_, hi_;       ///< staged region-offset windows
};

/// Sequential writer over the \p len words at [begin, begin+len); words are
/// accumulated in the innermost tower level and flushed outwards with block
/// transfers. Mirrors StagedReader's layout.
class StagedWriter {
public:
    StagedWriter(Machine& m, Addr begin, std::uint64_t len, Addr stage,
                 std::uint64_t chunk, std::uint64_t align = 1, std::uint64_t lane = 0,
                 std::uint64_t lanes = 1);
    ~StagedWriter();

    StagedWriter(const StagedWriter&) = delete;
    StagedWriter& operator=(const StagedWriter&) = delete;

    /// Append one word; requires fewer than len words pushed so far.
    void push(Word w);

    /// Flush all buffered words to the destination. Also called by the
    /// destructor; idempotent.
    void flush();

    std::uint64_t written() const;

private:
    void spill(std::size_t level);  ///< move level's contents one step out

    Machine& m_;
    Addr begin_;
    std::uint64_t len_;
    StageTower tower_;
    std::uint64_t written_ = 0;        ///< words already at the destination
    std::vector<std::uint64_t> fill_;  ///< buffered words per level
};

}  // namespace dbsp::bt
