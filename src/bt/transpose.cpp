#include "bt/transpose.hpp"

#include <algorithm>

#include "bt/primitives.hpp"
#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::bt {

namespace {

/// Elementwise in-place transpose with charged accesses; the recursion base
/// case, reached only for matrices sitting in the (cheap) staging region or
/// for trivially small inputs.
void transpose_direct(Machine& m, Addr base, std::uint64_t s) {
    for (std::uint64_t i = 0; i < s; ++i) {
        for (std::uint64_t j = i + 1; j < s; ++j) {
            const Addr p = base + i * s + j;
            const Addr q = base + j * s + i;
            const Word a = m.read(p);
            const Word b = m.read(q);
            m.write(p, b);
            m.write(q, a);
        }
    }
}

/// Copy the k x k tile with top-left element at `tile` (row stride s) to or
/// from the contiguous buffer at `buf`, one block transfer per row.
void move_tile(Machine& m, Addr tile, std::uint64_t s, Addr buf, std::uint64_t k,
               bool to_tile) {
    for (std::uint64_t r = 0; r < k; ++r) {
        const Addr row = tile + r * s;
        const Addr stg = buf + r * k;
        if (to_tile) {
            m.block_copy(stg, row, k);
        } else {
            m.block_copy(row, stg, k);
        }
    }
}

}  // namespace

void transpose_square(Machine& m, Addr base, std::uint64_t s, Addr stage_base,
                      std::uint64_t stage_words) {
    DBSP_REQUIRE(is_pow2(s));
    const std::uint64_t n = s * s;
    DBSP_REQUIRE(base + n <= m.capacity());
    DBSP_REQUIRE(stage_base + stage_words <= m.capacity());
    DBSP_REQUIRE(stage_base + stage_words <= base || base + n <= stage_base);
    if (s <= 8) {
        transpose_direct(m, base, s);
        return;
    }

    // Tile size: ~f(n) for amortized-O(1)/cell gathers, but at least 8 (when
    // f is tiny the per-gather overhead f/k < 1 already), at most s/2 (need
    // a 2 x 2 tiling), and small enough that two staged tiles plus the
    // recursion tower fit: 4 k^2 <= stage_words.
    std::uint64_t k;
    {
        const double f = m.function()(base + n - 1);
        const auto f_floor = static_cast<std::uint64_t>(std::max(1.0, f));
        std::uint64_t cap = s / 2;
        while (cap > 1 && cap * cap * 4 > stage_words) cap /= 2;
        k = std::min(pow2_at_most(std::max<std::uint64_t>(f_floor, 8)), cap);
    }
    if (k < 2 || k >= s) {
        transpose_direct(m, base, s);
        return;
    }

    const std::uint64_t kk = k * k;
    // Window layout: the recursion tower occupies the *shallow* end of the
    // stage window and this level's tile buffers sit just above it, so the
    // innermost (elementwise) level works at depth O(k_last^2) rather than
    // O(f(n)^2) — this is what keeps the per-element cost O(1) at the base.
    const std::uint64_t sub_words = std::min(stage_words - 2 * kk, kk);
    const Addr sub_stage = stage_base;                   // recursion tower
    const Addr buf0 = stage_base + sub_words;            // staged tile A
    const Addr buf1 = buf0 + kk;                         // staged tile B
    DBSP_ASSERT(stage_words >= 4 * kk);

    const std::uint64_t t = s / k;
    for (std::uint64_t bi = 0; bi < t; ++bi) {
        // Diagonal tile: transpose in place.
        const Addr diag = base + (bi * k) * s + bi * k;
        move_tile(m, diag, s, buf0, k, false);
        transpose_square(m, buf0, k, sub_stage, sub_words);
        move_tile(m, diag, s, buf0, k, true);
        // Off-diagonal pair (bi, bj) / (bj, bi): transpose both tiles and
        // swap their homes. Both are gathered before either is scattered
        // (the first scatter overwrites the second tile's home).
        for (std::uint64_t bj = bi + 1; bj < t; ++bj) {
            const Addr tile_a = base + (bi * k) * s + bj * k;
            const Addr tile_b = base + (bj * k) * s + bi * k;
            move_tile(m, tile_a, s, buf0, k, false);
            move_tile(m, tile_b, s, buf1, k, false);
            transpose_square(m, buf0, k, sub_stage, sub_words);
            move_tile(m, tile_b, s, buf0, k, true);  // A^T -> home of B
            m.block_copy(buf1, buf0, kk);
            transpose_square(m, buf0, k, sub_stage, sub_words);
            move_tile(m, tile_a, s, buf0, k, true);  // B^T -> home of A
        }
    }
}

}  // namespace dbsp::bt
