#include "report/trace_bundle.hpp"

#include <cstdlib>
#include <string_view>

namespace dbsp::report {

TraceBundle TraceBundle::from_env(const char* track) {
    const char* env = std::getenv("DBSP_TRACE");
    if (env == nullptr || *env == '\0' || std::string_view(env) == "0") return {};
    const bool with_chrome = std::string_view(env) != "1";
    TraceBundle bundle(track, with_chrome);
    if (with_chrome) bundle.chrome_path_ = env;
    return bundle;
}

void TraceBundle::report(const char* tool, const std::string& what,
                         double charged_cost) const {
    if (!enabled()) return;
    if (!what.empty()) {
        std::printf("\n--- charge trace: %s ---\n", what.c_str());
    }
    aggregate_->print(stdout);
    if (aggregate_->total() != charged_cost) {
        std::fprintf(stderr, "%s: trace total %.17g != charged cost %.17g\n", tool,
                     aggregate_->total(), charged_cost);
    }
    if (chrome_ != nullptr && !chrome_path_.empty()) {
        if (chrome_->write(chrome_path_)) {
            std::printf("wrote Chrome trace to %s\n", chrome_path_.c_str());
        } else {
            std::fprintf(stderr, "%s: cannot write \"%s\"\n", tool, chrome_path_.c_str());
        }
    }
}

}  // namespace dbsp::report
