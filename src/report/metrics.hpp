#pragma once

/// \file metrics.hpp
/// Process-wide metrics registry: named counters, gauges and log-bucketed
/// histograms with lock-free (relaxed-atomic) update paths. The simulators,
/// the machines' bulk operations, the cost-table cache and the parallel
/// harness all publish always-on operational telemetry here; bench binaries
/// and dbsp_report snapshot the registry into the "metrics" section of their
/// JSON artifacts.
///
/// Cost discipline (the bench_micro <=2% budget): instruments are updated at
/// *operation* granularity, never per word — one relaxed atomic add per bulk
/// range op, per message-delivery batch, per superstep, per cache probe. The
/// innermost per-word read()/write() paths carry no metrics hook at all, for
/// the same reason they carry no trace hook (see hmm::Machine). Registration
/// (name lookup) happens once per call site through a function-local static
/// reference, so the hot path never touches the registry mutex.
///
/// reset_values() zeroes every instrument but keeps registrations (and the
/// references call sites already hold) valid — instruments are never
/// deallocated once registered.
///
/// Windowed instruments (WindowedCounter / WindowedHistogram) add the time
/// dimension the monotonic registry lacks: a ring of per-second slots over
/// which the telemetry layer computes rolling rates (QPS), ratios and
/// bucket-interpolated quantiles for the 1s/10s/60s windows of the
/// dbsp-telemetry-v1 frames. Time enters as an explicit integer epoch second
/// supplied by the caller (steady-clock seconds in production, synthetic in
/// tests) — the instruments themselves never read a clock, so window
/// rollover is unit-testable without sleeping.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dbsp::report {

/// Monotonic event count.
class Counter {
public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (e.g. configured thread count). Stored as double so the
/// snapshot layer has one scalar type.
class Gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram of nonnegative integer samples. Bucket i counts
/// samples whose bit_width is i: bucket 0 holds the value 0, bucket 1 holds
/// 1, bucket 2 holds 2-3, bucket 3 holds 4-7, ... bucket 64 holds the top
/// half of the uint64 range. Also usable as a direct-indexed bucket array
/// (add_to_bucket) for quantities that already come with a level, e.g.
/// per-memory-level words touched.
class Histogram {
public:
    static constexpr unsigned kBuckets = 65;

    void observe(std::uint64_t value, std::uint64_t weight = 1) {
        add_to_bucket(bucket_of(value), weight);
    }

    /// Add \p weight directly to \p bucket (clamped to the last bucket).
    void add_to_bucket(unsigned bucket, std::uint64_t weight = 1) {
        if (bucket >= kBuckets) bucket = kBuckets - 1;
        buckets_[bucket].fetch_add(weight, std::memory_order_relaxed);
        total_.fetch_add(weight, std::memory_order_relaxed);
    }

    static unsigned bucket_of(std::uint64_t value) {
        unsigned w = 0;
        while (value != 0) {
            ++w;
            value >>= 1;
        }
        return w;
    }

    std::uint64_t bucket(unsigned i) const {
        return i < kBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
    }
    std::uint64_t total() const { return total_.load(std::memory_order_relaxed); }

    /// Index of the last non-empty bucket plus one (0 when empty).
    unsigned populated_buckets() const;

    void reset();

private:
    std::atomic<std::uint64_t> buckets_[kBuckets]{};
    std::atomic<std::uint64_t> total_{0};
};

/// Sliding-window event counter: a ring of per-second slots. A window query
/// covers the last `window_s` *completed* seconds — epochs in
/// [now_s - window_s, now_s - 1] — so a rate never includes the partial
/// current second (which would systematically undercount). Slots whose epoch
/// has fallen out of the ring are lazily reclaimed on the next add() that
/// lands on them; sum_over() ignores stale epochs, so an idle window decays
/// to zero without any background sweeper.
///
/// Thread-safe via a per-instrument mutex: updates happen at request
/// granularity (never per word), so contention is negligible and the
/// concurrent record-vs-snapshot path is TSAN-clean by construction.
class WindowedCounter {
public:
    /// Ring capacity in seconds; must exceed the largest window queried
    /// (60s) plus the live second.
    static constexpr unsigned kSlots = 64;

    void add(std::int64_t now_s, std::uint64_t n = 1);

    /// Total events in the last \p window_s completed seconds.
    std::uint64_t sum_over(std::int64_t now_s, unsigned window_s) const;

    /// Events per second over the window (sum_over / window_s).
    double rate_over(std::int64_t now_s, unsigned window_s) const;

private:
    struct Slot {
        std::int64_t epoch = -1;  ///< second this slot currently counts
        std::uint64_t count = 0;
    };
    mutable std::mutex mutex_;
    std::array<Slot, kSlots> slots_{};
};

/// Sliding-window log2 histogram: per-second slots of Histogram-compatible
/// buckets (same bucket_of law), merged over a window into a snapshot that
/// yields rolling bucket-interpolated quantiles. Window semantics match
/// WindowedCounter: the last `window_s` completed seconds.
class WindowedHistogram {
public:
    static constexpr unsigned kSlots = 64;
    static constexpr unsigned kBuckets = Histogram::kBuckets;

    void observe(std::int64_t now_s, std::uint64_t value, std::uint64_t weight = 1);

    /// Merged window view. quantile() is deterministic: rank
    /// r = clamp(ceil(q * total), 1, total); within the containing bucket
    /// [lo, hi] the estimate interpolates linearly by rank position —
    /// lo + (r - rank_before) / bucket_count * (hi - lo) — so a bucket
    /// holding one sample reports its lower... upper bound exactly at the
    /// matching rank, and an empty window reports 0.
    struct Window {
        std::uint64_t total = 0;
        std::array<std::uint64_t, kBuckets> buckets{};

        double quantile(double q) const;
    };
    Window window_over(std::int64_t now_s, unsigned window_s) const;

    /// Inclusive value bounds of bucket \p b under Histogram::bucket_of:
    /// bucket 0 = [0,0], bucket b>=1 = [2^(b-1), 2^b - 1].
    static double bucket_lo(unsigned b);
    static double bucket_hi(unsigned b);

private:
    struct Slot {
        std::int64_t epoch = -1;
        std::uint64_t total = 0;
        std::array<std::uint64_t, kBuckets> buckets{};
    };
    mutable std::mutex mutex_;
    std::array<Slot, kSlots> slots_{};
};

/// One registered instrument (snapshot view).
struct MetricValue {
    enum class Kind { kCounter, kGauge, kHistogram };
    std::string name;
    Kind kind;
    std::uint64_t count = 0;                ///< counter value / histogram total
    double gauge = 0.0;                     ///< gauge value
    std::vector<std::uint64_t> buckets;     ///< histogram buckets, trimmed
};

class Registry {
public:
    /// The process-wide registry used by all built-in instrumentation.
    static Registry& global();

    /// Find-or-register. References stay valid for the process lifetime.
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);

    /// Ordered (by name) snapshot of every registered instrument.
    std::vector<MetricValue> snapshot() const;

    /// Zero every instrument; registrations (and outstanding references)
    /// survive. Used by tests and by bench binaries that want per-phase
    /// deltas.
    void reset_values();

    std::size_t size() const;

private:
    struct Impl;
    Registry();
    ~Registry();
    Impl* impl_;
};

/// Call-site helpers: resolve once, then update lock-free.
///   static auto& c = report::metric_counter("hmm.range_ops");
inline Counter& metric_counter(std::string_view name) {
    return Registry::global().counter(name);
}
inline Gauge& metric_gauge(std::string_view name) { return Registry::global().gauge(name); }
inline Histogram& metric_histogram(std::string_view name) {
    return Registry::global().histogram(name);
}

}  // namespace dbsp::report
