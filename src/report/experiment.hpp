#pragma once

/// \file experiment.hpp
/// The machine-checkable form of one paper claim: an ExperimentResult holds
/// the measured series, the closed-form predictions, and a list of
/// conformance checks, each with a declared tolerance and a pass/fail
/// verdict. Every bench_eNN binary produces one of these (next to its
/// paper-style console tables); dbsp_report merges them into
/// BENCH_experiments.json and gates regressions against a committed baseline.
///
/// Check kinds:
///  * "exponent" — a fit_loglog growth exponent must land within `tolerance`
///    of `predicted` (the theorem's closed-form exponent). Carries the fit's
///    R^2 and max |log-residual| for auditability.
///  * "band"     — the max/min spread of a measured/predicted ratio series
///    must stay below `tolerance`: the empirical signature of a Theta() bound.
///    `measured` is the spread, `predicted` 1.
///  * "min"      — `measured` must be >= `predicted` (e.g. a gap that the
///    paper says grows must actually exceed a floor).
///  * "max"      — `measured` must be <= `predicted`.
/// All verdicts are computed when the check is recorded, from exact model
/// costs, so they are deterministic for a given tree.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "report/json.hpp"
#include "report/provenance.hpp"
#include "util/stats.hpp"

namespace dbsp::report {

inline constexpr const char* kExperimentSchema = "dbsp-experiment-v1";
inline constexpr const char* kCombinedSchema = "dbsp-experiments-v1";

struct Check {
    std::string id;      ///< stable slug, unique within the experiment
    std::string label;   ///< human-readable description (console line)
    std::string kind;    ///< "exponent" | "band" | "min" | "max"
    double measured = 0.0;
    double predicted = 0.0;
    double tolerance = 0.0;
    /// Fit diagnostics; only meaningful for kind == "exponent".
    double r_squared = 0.0;
    double max_residual = 0.0;
    bool pass = false;
    /// Waived checks record that their measurement was *unavailable* rather
    /// than wrong (e.g. hardware counters denied in a container): pass is
    /// forced true, `waive_reason` says why, and the regression gate skips
    /// drift comparison whenever either side of a baseline pair is waived.
    bool waived = false;
    std::string waive_reason;

    /// Evaluate the verdict from kind/measured/predicted/tolerance.
    static bool evaluate(const std::string& kind, double measured, double predicted,
                         double tolerance);

    Json to_json() const;
    /// Strict parse: wrong types or missing required fields -> nullopt with
    /// a diagnostic in \p error.
    static std::optional<Check> from_json(const Json& j, std::string* error);
};

/// One measured data series (xs strictly positive parameter values, ys the
/// measured costs) — the raw numbers behind the fitted checks, kept in the
/// artifact so a reviewer can re-fit offline.
struct Series {
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;

    Json to_json() const;
    static std::optional<Series> from_json(const Json& j, std::string* error);
};

struct ExperimentResult {
    std::string id;     ///< "e1" ... "e13"
    std::string title;  ///< "E1  HMM touching (Fact 1)"
    std::string claim;  ///< the paper claim under test
    std::vector<Series> series;
    std::vector<Check> checks;

    bool pass() const;

    /// Full artifact: schema tag, provenance envelope, series, checks,
    /// metrics snapshot (when \p with_metrics).
    Json to_json(const Provenance& provenance, bool with_metrics = true) const;

    /// Strict parse of one experiment artifact (or one element of the
    /// combined report's "experiments" array).
    static std::optional<ExperimentResult> from_json(const Json& j, std::string* error);

    /// Derive a stable check id from a display label: lowercase alnum runs
    /// joined by '-', e.g. "slope: cost vs n [x^0.35]" -> "slope-cost-vs-n-x-0-35".
    static std::string slugify(const std::string& label);
};

/// Snapshot of the global metrics registry as a JSON object
/// (counters/gauges as scalars, histograms as bucket arrays).
Json metrics_to_json();

}  // namespace dbsp::report
