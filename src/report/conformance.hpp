#pragma once

/// \file conformance.hpp
/// The combined conformance report: all 13 experiments' results merged into
/// one artifact (BENCH_experiments.json), a Markdown dashboard mapping each
/// paper claim to its measured exponent/band and verdict, and the regression
/// gate that compares a fresh report against a committed baseline under
/// per-metric tolerances (dbsp_report --check).
///
/// Gate semantics — a run fails the gate if any of:
///  * a conformance check fails outright in the current report (a theorem's
///    verdict broke at head);
///  * a fitted exponent drifted from the baseline by more than
///    `exponent_drift` (absolute, in exponent units);
///  * a band/min/max check's measured value drifted by more than
///    `value_drift_rel` (relative);
///  * an experiment or check present in the baseline is missing from the
///    current report (unless `subset_ok`, for CI runs that exercise a fast
///    subset);
///  * the microbenchmark words/sec dropped more than `perf_drop_pct` percent
///    below the baseline (only when both sides carry micro data — model-cost
///    conformance is deterministic, wall-clock is not, so the perf gate has
///    its own, wider tolerance).

#include <optional>
#include <string>
#include <vector>

#include "report/experiment.hpp"

namespace dbsp::report {

/// The subset of BENCH_micro.json the gate reasons about (the raw document
/// is preserved alongside inside the combined artifact).
struct MicroData {
    Json raw;
    double bulk_words_per_sec = 0.0;
    double speedup = 0.0;
    double tracing_overhead_pct = 0.0;
    /// A/A re-measurement of the untraced leg: the LocalitySink disabled
    /// path *is* the null-sink path, so this is its measured overhead.
    double locality_overhead_pct = 0.0;
    /// Overhead of actually attaching a LocalitySink (reuse-distance engine
    /// on every reference).
    double locality_enabled_overhead_pct = 0.0;
    bool costs_bit_identical = true;
    bool trace_exact = true;
    /// LocalitySink reference counts matched words_touched on every rep.
    bool locality_counts_exact = true;

    static std::optional<MicroData> from_json(const Json& j, std::string* error);
};

struct CombinedReport {
    Provenance provenance;
    std::vector<ExperimentResult> experiments;
    std::optional<MicroData> micro;

    const ExperimentResult* find(const std::string& id) const;
    bool pass() const;

    Json to_json() const;
    static std::optional<CombinedReport> from_json(const Json& j, std::string* error);

    /// Render the Markdown conformance dashboard. When \p baseline is given,
    /// each check row carries its measured-value delta vs the baseline.
    std::string markdown(const CombinedReport* baseline) const;
};

struct GateOptions {
    double exponent_drift = 0.05;
    double value_drift_rel = 0.25;
    double perf_drop_pct = 35.0;
    bool subset_ok = false;
};

/// Empty result == gate passes. Each entry is one human-readable violation.
std::vector<std::string> gate_violations(const CombinedReport& current,
                                         const CombinedReport& baseline,
                                         const GateOptions& options);

}  // namespace dbsp::report
