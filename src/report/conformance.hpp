#pragma once

/// \file conformance.hpp
/// The combined conformance report: all 13 experiments' results merged into
/// one artifact (BENCH_experiments.json), a Markdown dashboard mapping each
/// paper claim to its measured exponent/band and verdict, and the regression
/// gate that compares a fresh report against a committed baseline under
/// per-metric tolerances (dbsp_report --check).
///
/// Gate semantics — a run fails the gate if any of:
///  * a conformance check fails outright in the current report (a theorem's
///    verdict broke at head);
///  * a fitted exponent drifted from the baseline by more than
///    `exponent_drift` (absolute, in exponent units);
///  * a band/min/max check's measured value drifted by more than
///    `value_drift_rel` (relative);
///  * an experiment or check present in the baseline is missing from the
///    current report (unless `subset_ok`, for CI runs that exercise a fast
///    subset);
///  * the microbenchmark words/sec dropped more than `perf_drop_pct` percent
///    below the baseline (only when both sides carry micro data — model-cost
///    conformance is deterministic, wall-clock is not, so the perf gate has
///    its own, wider tolerance).

#include <optional>
#include <string>
#include <vector>

#include "report/experiment.hpp"

namespace dbsp::report {

/// The subset of BENCH_micro.json the gate reasons about (the raw document
/// is preserved alongside inside the combined artifact).
struct MicroData {
    Json raw;
    double bulk_words_per_sec = 0.0;
    double speedup = 0.0;
    double tracing_overhead_pct = 0.0;
    /// A/A re-measurement of the untraced leg: the LocalitySink disabled
    /// path *is* the null-sink path, so this is its measured overhead.
    double locality_overhead_pct = 0.0;
    /// Overhead of actually attaching a LocalitySink (exact reuse-distance
    /// engine on every reference), paired-round median.
    double locality_enabled_overhead_pct = 0.0;
    /// Same with the SHARDS-sampled engine at the production rate.
    double locality_sampled_overhead_pct = 0.0;
    /// |sampled score - exact score| over one rep of the E3 workload: the
    /// SHARDS estimation error at the production rate.
    double locality_sampled_score_abs_err = 0.0;
    bool costs_bit_identical = true;
    bool trace_exact = true;
    /// LocalitySink reference counts matched words_touched on every rep.
    bool locality_counts_exact = true;
    /// The counter leg charged the same cost as the untraced leg, bit for
    /// bit — arming perf counters must be pure observation. Computed (and
    /// gated) regardless of whether the PMU was actually available.
    bool counters_cost_bit_identical = true;
    /// Whether the hardware-counter snapshot in the document carries live
    /// readings; informational (never gated — a counter-less host is a
    /// waiver, not a failure). `counters_reason` explains unavailability.
    bool counters_available = false;
    std::string counters_reason;

    static std::optional<MicroData> from_json(const Json& j, std::string* error);
};

struct CombinedReport {
    Provenance provenance;
    std::vector<ExperimentResult> experiments;
    std::optional<MicroData> micro;

    const ExperimentResult* find(const std::string& id) const;
    bool pass() const;

    Json to_json() const;
    static std::optional<CombinedReport> from_json(const Json& j, std::string* error);

    /// Render the Markdown conformance dashboard. When \p baseline is given,
    /// each check row carries its measured-value delta vs the baseline.
    std::string markdown(const CombinedReport* baseline) const;
};

struct GateOptions {
    double exponent_drift = 0.05;
    /// Default relative drift allowance for band/min/max checks. A baseline
    /// check that declares its own non-zero tolerance is instead allowed
    /// that much *absolute* drift (see bench::Experiment::check_min) — the
    /// escape hatch for exact-but-fold-order-sensitive values like locality
    /// scores, whose third decimal moves whenever an engine change regroups
    /// the identical event stream.
    double value_drift_rel = 0.25;
    double perf_drop_pct = 35.0;
    /// Absolute ceilings on the enabled-path locality overheads (percent
    /// throughput loss vs the untraced leg on bench_micro's E3 workload) and
    /// on the sampled-mode score error. The untraced leg charges bulk ops in
    /// closed form without touching their words (~1 ns per charged word), so
    /// any per-reference measurement is a large multiple of it; these
    /// ceilings are the measured paired-round medians (~3050% exact, ~250%
    /// sampled @0.01, ~0.21 score error) plus headroom for machine-to-
    /// machine variance — honest measured bounds, not aspirations. See
    /// EXPERIMENTS.md "Locality profiling cost" for the floor decomposition.
    double locality_enabled_overhead_max_pct = 4000.0;
    double locality_sampled_overhead_max_pct = 400.0;
    double locality_sampled_score_err_max = 0.5;
    bool subset_ok = false;
};

/// Empty result == gate passes. Each entry is one human-readable violation.
std::vector<std::string> gate_violations(const CombinedReport& current,
                                         const CombinedReport& baseline,
                                         const GateOptions& options);

}  // namespace dbsp::report
