#include "report/provenance.hpp"

#include <ctime>

#include "report/build_info.hpp"
#include "util/parallel.hpp"

namespace dbsp::report {

Provenance Provenance::collect() {
    Provenance p;
    p.git_sha = DBSP_BUILD_GIT_SHA;
    p.build_type = DBSP_BUILD_TYPE;
    p.compiler = DBSP_BUILD_COMPILER;
    p.threads = util::default_threads();
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &utc);
    p.timestamp = buf;
    return p;
}

Json ProvenanceLeg::to_json() const {
    Json j = Json::object();
    j.set("name", name);
    j.set("wall_seconds", wall_seconds);
    j.set("threads", threads);
    return j;
}

ProvenanceLeg ProvenanceLeg::from_json(const Json& j) {
    ProvenanceLeg leg;
    leg.name = j["name"].is_string() ? j["name"].as_string() : "unknown";
    leg.wall_seconds = j["wall_seconds"].as_double(0.0);
    leg.threads = static_cast<std::uint64_t>(j["threads"].as_double(1.0));
    return leg;
}

Json Provenance::to_json() const {
    Json j = Json::object();
    j.set("git_sha", git_sha);
    j.set("build_type", build_type);
    j.set("compiler", compiler);
    j.set("threads", threads);
    j.set("timestamp", timestamp);
    if (!legs.empty()) {
        Json arr = Json::array();
        for (const auto& leg : legs) arr.push_back(leg.to_json());
        j.set("legs", std::move(arr));
    }
    return j;
}

Provenance Provenance::from_json(const Json& j) {
    Provenance p;
    p.git_sha = j["git_sha"].is_string() ? j["git_sha"].as_string() : "unknown";
    p.build_type = j["build_type"].is_string() ? j["build_type"].as_string() : "unknown";
    p.compiler = j["compiler"].is_string() ? j["compiler"].as_string() : "unknown";
    p.threads = static_cast<std::uint64_t>(j["threads"].as_double(0.0));
    p.timestamp = j["timestamp"].is_string() ? j["timestamp"].as_string() : "unknown";
    if (j["legs"].is_array()) {
        for (const Json& lj : j["legs"].items()) p.legs.push_back(ProvenanceLeg::from_json(lj));
    }
    return p;
}

}  // namespace dbsp::report
