#include "report/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace dbsp::report {

void WindowedCounter::add(std::int64_t now_s, std::uint64_t n) {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[static_cast<std::size_t>(now_s) % kSlots];
    if (slot.epoch != now_s) {
        slot.epoch = now_s;
        slot.count = 0;
    }
    slot.count += n;
}

std::uint64_t WindowedCounter::sum_over(std::int64_t now_s, unsigned window_s) const {
    std::lock_guard<std::mutex> lock(mutex_);
    // The live second is excluded; the ring must hold the window plus it.
    const unsigned w = std::min(window_s, kSlots - 1);
    std::uint64_t sum = 0;
    for (const Slot& slot : slots_) {
        if (slot.epoch >= now_s - static_cast<std::int64_t>(w) && slot.epoch < now_s) {
            sum += slot.count;
        }
    }
    return sum;
}

double WindowedCounter::rate_over(std::int64_t now_s, unsigned window_s) const {
    if (window_s == 0) return 0.0;
    return static_cast<double>(sum_over(now_s, window_s)) / window_s;
}

void WindowedHistogram::observe(std::int64_t now_s, std::uint64_t value,
                                std::uint64_t weight) {
    const unsigned bucket = Histogram::bucket_of(value);
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[static_cast<std::size_t>(now_s) % kSlots];
    if (slot.epoch != now_s) {
        slot.epoch = now_s;
        slot.total = 0;
        slot.buckets.fill(0);
    }
    slot.buckets[bucket] += weight;
    slot.total += weight;
}

WindowedHistogram::Window WindowedHistogram::window_over(std::int64_t now_s,
                                                         unsigned window_s) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const unsigned w = std::min(window_s, kSlots - 1);
    Window out;
    for (const Slot& slot : slots_) {
        if (slot.epoch >= now_s - static_cast<std::int64_t>(w) && slot.epoch < now_s) {
            out.total += slot.total;
            for (unsigned b = 0; b < kBuckets; ++b) out.buckets[b] += slot.buckets[b];
        }
    }
    return out;
}

double WindowedHistogram::bucket_lo(unsigned b) {
    if (b == 0) return 0.0;
    return std::ldexp(1.0, static_cast<int>(b) - 1);
}

double WindowedHistogram::bucket_hi(unsigned b) {
    if (b == 0) return 0.0;
    return std::ldexp(1.0, static_cast<int>(b)) - 1.0;
}

double WindowedHistogram::Window::quantile(double q) const {
    if (total == 0) return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t before = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = buckets[b];
        if (n == 0) continue;
        if (before + n >= rank) {
            const double lo = bucket_lo(b);
            const double hi = bucket_hi(b);
            const double pos =
                static_cast<double>(rank - before) / static_cast<double>(n);
            return lo + pos * (hi - lo);
        }
        before += n;
    }
    return bucket_hi(kBuckets - 1);  // unreachable when totals are consistent
}

unsigned Histogram::populated_buckets() const {
    unsigned last = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (bucket(i) != 0) last = i + 1;
    }
    return last;
}

void Histogram::reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
}

/// Instruments are stored behind unique_ptr in name-keyed maps: rehashing or
/// rebalancing moves the pointers, never the atomics, so references handed to
/// call sites stay valid forever.
struct Registry::Impl {
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
    // Leaked intentionally: instrumentation sites in static destructors must
    // never observe a destroyed registry.
    static Registry* registry = new Registry;
    return *registry;
}

Counter& Registry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->counters.find(name);
    if (it == impl_->counters.end()) {
        it = impl_->counters.emplace(std::string(name), std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->gauges.find(name);
    if (it == impl_->gauges.end()) {
        it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->histograms.find(name);
    if (it == impl_->histograms.end()) {
        it = impl_->histograms.emplace(std::string(name), std::make_unique<Histogram>()).first;
    }
    return *it->second;
}

std::vector<MetricValue> Registry::snapshot() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::vector<MetricValue> out;
    out.reserve(impl_->counters.size() + impl_->gauges.size() + impl_->histograms.size());
    for (const auto& [name, c] : impl_->counters) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::kCounter;
        v.count = c->value();
        out.push_back(std::move(v));
    }
    for (const auto& [name, g] : impl_->gauges) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::kGauge;
        v.gauge = g->value();
        out.push_back(std::move(v));
    }
    for (const auto& [name, h] : impl_->histograms) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::kHistogram;
        v.count = h->total();
        const unsigned n = h->populated_buckets();
        v.buckets.reserve(n);
        for (unsigned i = 0; i < n; ++i) v.buckets.push_back(h->bucket(i));
        out.push_back(std::move(v));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
    return out;
}

void Registry::reset_values() {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto& [name, c] : impl_->counters) c->reset();
    for (auto& [name, g] : impl_->gauges) g->reset();
    for (auto& [name, h] : impl_->histograms) h->reset();
}

std::size_t Registry::size() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->counters.size() + impl_->gauges.size() + impl_->histograms.size();
}

}  // namespace dbsp::report
