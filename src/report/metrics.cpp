#include "report/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace dbsp::report {

unsigned Histogram::populated_buckets() const {
    unsigned last = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (bucket(i) != 0) last = i + 1;
    }
    return last;
}

void Histogram::reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
}

/// Instruments are stored behind unique_ptr in name-keyed maps: rehashing or
/// rebalancing moves the pointers, never the atomics, so references handed to
/// call sites stay valid forever.
struct Registry::Impl {
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
    // Leaked intentionally: instrumentation sites in static destructors must
    // never observe a destroyed registry.
    static Registry* registry = new Registry;
    return *registry;
}

Counter& Registry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->counters.find(name);
    if (it == impl_->counters.end()) {
        it = impl_->counters.emplace(std::string(name), std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->gauges.find(name);
    if (it == impl_->gauges.end()) {
        it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->histograms.find(name);
    if (it == impl_->histograms.end()) {
        it = impl_->histograms.emplace(std::string(name), std::make_unique<Histogram>()).first;
    }
    return *it->second;
}

std::vector<MetricValue> Registry::snapshot() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::vector<MetricValue> out;
    out.reserve(impl_->counters.size() + impl_->gauges.size() + impl_->histograms.size());
    for (const auto& [name, c] : impl_->counters) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::kCounter;
        v.count = c->value();
        out.push_back(std::move(v));
    }
    for (const auto& [name, g] : impl_->gauges) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::kGauge;
        v.gauge = g->value();
        out.push_back(std::move(v));
    }
    for (const auto& [name, h] : impl_->histograms) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::kHistogram;
        v.count = h->total();
        const unsigned n = h->populated_buckets();
        v.buckets.reserve(n);
        for (unsigned i = 0; i < n; ++i) v.buckets.push_back(h->bucket(i));
        out.push_back(std::move(v));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
    return out;
}

void Registry::reset_values() {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto& [name, c] : impl_->counters) c->reset();
    for (auto& [name, g] : impl_->gauges) g->reset();
    for (auto& [name, h] : impl_->histograms) h->reset();
}

std::size_t Registry::size() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->counters.size() + impl_->gauges.size() + impl_->histograms.size();
}

}  // namespace dbsp::report
