#include "report/experiment.hpp"

#include <cctype>
#include <cmath>

#include "report/metrics.hpp"

namespace dbsp::report {

bool Check::evaluate(const std::string& kind, double measured, double predicted,
                     double tolerance) {
    if (!std::isfinite(measured)) return false;
    if (kind == "exponent") return std::fabs(measured - predicted) <= tolerance;
    if (kind == "band") return measured <= tolerance;
    if (kind == "min") return measured >= predicted;
    if (kind == "max") return measured <= predicted;
    return false;
}

Json Check::to_json() const {
    Json j = Json::object();
    j.set("id", id);
    j.set("label", label);
    j.set("kind", kind);
    j.set("measured", measured);
    j.set("predicted", predicted);
    j.set("tolerance", tolerance);
    if (kind == "exponent") {
        j.set("r_squared", r_squared);
        j.set("max_residual", max_residual);
    }
    if (waived) {
        j.set("waived", true);
        j.set("waive_reason", waive_reason);
    }
    j.set("pass", pass);
    return j;
}

namespace {

bool require_string(const Json& j, const char* key, std::string& out, std::string* error) {
    if (!j[key].is_string()) {
        if (error != nullptr) *error = std::string("missing or non-string \"") + key + "\"";
        return false;
    }
    out = j[key].as_string();
    return true;
}

bool require_number(const Json& j, const char* key, double& out, std::string* error) {
    if (!j[key].is_number()) {
        if (error != nullptr) *error = std::string("missing or non-numeric \"") + key + "\"";
        return false;
    }
    out = j[key].as_double();
    return true;
}

}  // namespace

std::optional<Check> Check::from_json(const Json& j, std::string* error) {
    Check c;
    if (!j.is_object()) {
        if (error != nullptr) *error = "check is not an object";
        return std::nullopt;
    }
    if (!require_string(j, "id", c.id, error) || !require_string(j, "label", c.label, error) ||
        !require_string(j, "kind", c.kind, error) ||
        !require_number(j, "measured", c.measured, error) ||
        !require_number(j, "predicted", c.predicted, error) ||
        !require_number(j, "tolerance", c.tolerance, error)) {
        return std::nullopt;
    }
    if (c.kind != "exponent" && c.kind != "band" && c.kind != "min" && c.kind != "max") {
        if (error != nullptr) *error = "unknown check kind \"" + c.kind + "\"";
        return std::nullopt;
    }
    c.r_squared = j["r_squared"].as_double(0.0);
    c.max_residual = j["max_residual"].as_double(0.0);
    // Optional (absent in pre-waiver artifacts). A waived check must not
    // record a failing verdict: waiving exists precisely so unavailable
    // measurements don't fail, and a hand-edited waived+fail pair is
    // malformed.
    c.waived = j["waived"].as_bool(false);
    c.waive_reason = j["waive_reason"].is_string() ? j["waive_reason"].as_string() : "";
    if (!j["pass"].is_bool()) {
        if (error != nullptr) *error = "missing or non-boolean \"pass\"";
        return std::nullopt;
    }
    c.pass = j["pass"].as_bool();
    if (c.waived && !c.pass) {
        if (error != nullptr) *error = "check \"" + c.id + "\" is waived but records pass=false";
        return std::nullopt;
    }
    return c;
}

Json Series::to_json() const {
    Json j = Json::object();
    j.set("name", name);
    Json xs_json = Json::array();
    for (double x : xs) xs_json.push_back(x);
    Json ys_json = Json::array();
    for (double y : ys) ys_json.push_back(y);
    j.set("xs", std::move(xs_json));
    j.set("ys", std::move(ys_json));
    return j;
}

std::optional<Series> Series::from_json(const Json& j, std::string* error) {
    Series s;
    if (!j.is_object() || !require_string(j, "name", s.name, error)) {
        if (error != nullptr && error->empty()) *error = "series is not an object";
        return std::nullopt;
    }
    for (const char* key : {"xs", "ys"}) {
        const Json& arr = j[key];
        if (!arr.is_array()) {
            if (error != nullptr) *error = std::string("series \"") + key + "\" is not an array";
            return std::nullopt;
        }
        auto& dst = (key[0] == 'x') ? s.xs : s.ys;
        for (const Json& v : arr.items()) {
            if (!v.is_number()) {
                if (error != nullptr) {
                    *error = std::string("non-numeric entry in series \"") + key + "\"";
                }
                return std::nullopt;
            }
            dst.push_back(v.as_double());
        }
    }
    if (s.xs.size() != s.ys.size()) {
        if (error != nullptr) *error = "series \"" + s.name + "\": xs/ys length mismatch";
        return std::nullopt;
    }
    return s;
}

bool ExperimentResult::pass() const {
    for (const auto& c : checks) {
        if (!c.pass) return false;
    }
    return true;
}

Json ExperimentResult::to_json(const Provenance& provenance, bool with_metrics) const {
    Json j = Json::object();
    j.set("schema", kExperimentSchema);
    j.set("provenance", provenance.to_json());
    j.set("id", id);
    j.set("title", title);
    j.set("claim", claim);
    Json series_json = Json::array();
    for (const auto& s : series) series_json.push_back(s.to_json());
    j.set("series", std::move(series_json));
    Json checks_json = Json::array();
    for (const auto& c : checks) checks_json.push_back(c.to_json());
    j.set("checks", std::move(checks_json));
    j.set("pass", pass());
    if (with_metrics) j.set("metrics", metrics_to_json());
    return j;
}

std::optional<ExperimentResult> ExperimentResult::from_json(const Json& j, std::string* error) {
    ExperimentResult r;
    if (!j.is_object()) {
        if (error != nullptr) *error = "experiment is not an object";
        return std::nullopt;
    }
    if (j.contains("schema") && j["schema"].as_string() != kExperimentSchema) {
        if (error != nullptr) *error = "unsupported schema \"" + j["schema"].as_string() + "\"";
        return std::nullopt;
    }
    if (!require_string(j, "id", r.id, error) || !require_string(j, "title", r.title, error) ||
        !require_string(j, "claim", r.claim, error)) {
        return std::nullopt;
    }
    if (!j["checks"].is_array() || j["checks"].size() == 0) {
        if (error != nullptr) *error = "experiment \"" + r.id + "\": missing checks array";
        return std::nullopt;
    }
    for (const Json& cj : j["checks"].items()) {
        auto c = Check::from_json(cj, error);
        if (!c) {
            if (error != nullptr) *error = "experiment \"" + r.id + "\": " + *error;
            return std::nullopt;
        }
        r.checks.push_back(std::move(*c));
    }
    for (const Json& sj : j["series"].items()) {
        auto s = Series::from_json(sj, error);
        if (!s) {
            if (error != nullptr) *error = "experiment \"" + r.id + "\": " + *error;
            return std::nullopt;
        }
        r.series.push_back(std::move(*s));
    }
    // The recorded overall verdict must agree with the checks: a hand-edited
    // artifact that claims "pass" over failing checks is malformed.
    if (j["pass"].is_bool() && j["pass"].as_bool() != r.pass()) {
        if (error != nullptr) {
            *error = "experiment \"" + r.id + "\": recorded pass flag contradicts checks";
        }
        return std::nullopt;
    }
    return r;
}

std::string ExperimentResult::slugify(const std::string& label) {
    std::string out;
    bool pending_dash = false;
    for (unsigned char c : label) {
        if (std::isalnum(c)) {
            if (pending_dash && !out.empty()) out += '-';
            pending_dash = false;
            out += static_cast<char>(std::tolower(c));
        } else {
            pending_dash = true;
        }
    }
    return out.empty() ? "check" : out;
}

Json metrics_to_json() {
    Json j = Json::object();
    for (const auto& m : Registry::global().snapshot()) {
        switch (m.kind) {
            case MetricValue::Kind::kCounter: j.set(m.name, m.count); break;
            case MetricValue::Kind::kGauge: j.set(m.name, m.gauge); break;
            case MetricValue::Kind::kHistogram: {
                Json h = Json::object();
                h.set("total", m.count);
                Json buckets = Json::array();
                for (std::uint64_t b : m.buckets) buckets.push_back(b);
                h.set("log2_buckets", std::move(buckets));
                j.set(m.name, std::move(h));
                break;
            }
        }
    }
    return j;
}

}  // namespace dbsp::report
