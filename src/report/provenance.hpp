#pragma once

/// \file provenance.hpp
/// The provenance envelope stamped onto every JSON artifact the repo emits
/// (experiment results, BENCH_experiments.json, BENCH_micro.json): enough
/// context to audit a committed baseline — which tree built it, how, and on
/// how many threads it ran.

#include <string>

#include "report/json.hpp"

namespace dbsp::report {

struct Provenance {
    std::string git_sha;     ///< configure-time git SHA ("unknown" outside a checkout)
    std::string build_type;  ///< CMAKE_BUILD_TYPE
    std::string compiler;    ///< compiler id + version
    std::uint64_t threads = 1;  ///< harness worker count (util::default_threads)
    std::string timestamp;   ///< UTC, ISO 8601

    /// Collect the envelope for the current process/build.
    static Provenance collect();

    Json to_json() const;

    /// Parse from the "provenance" object of an artifact. Missing fields
    /// default to "unknown"/0 — old artifacts without an envelope still load.
    static Provenance from_json(const Json& j);
};

}  // namespace dbsp::report
