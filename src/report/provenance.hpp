#pragma once

/// \file provenance.hpp
/// The provenance envelope stamped onto every JSON artifact the repo emits
/// (experiment results, BENCH_experiments.json, BENCH_micro.json): enough
/// context to audit a committed baseline — which tree built it, how, and on
/// how many threads it ran.

#include <string>
#include <vector>

#include "report/json.hpp"

namespace dbsp::report {

/// Wall-clock record of one timed section of a bench binary (a sweep, a
/// serial trace re-run, ...). Legs record the *actual* worker count the
/// section ran on, so a committed artifact shows whether a baseline was
/// produced serially or in parallel. Wall time is informational only —
/// the regression gate never compares it (model costs are what must be
/// bit-stable; seconds vary by host).
struct ProvenanceLeg {
    std::string name;
    double wall_seconds = 0.0;
    std::uint64_t threads = 1;  ///< worker count the leg actually used

    Json to_json() const;
    static ProvenanceLeg from_json(const Json& j);
};

struct Provenance {
    std::string git_sha;     ///< configure-time git SHA ("unknown" outside a checkout)
    std::string build_type;  ///< CMAKE_BUILD_TYPE
    std::string compiler;    ///< compiler id + version
    std::uint64_t threads = 1;  ///< harness worker count (util::default_threads)
    std::string timestamp;   ///< UTC, ISO 8601
    /// Per-leg wall times (empty for binaries that don't record any).
    std::vector<ProvenanceLeg> legs;

    /// Collect the envelope for the current process/build.
    static Provenance collect();

    Json to_json() const;

    /// Parse from the "provenance" object of an artifact. Missing fields
    /// default to "unknown"/0 — old artifacts without an envelope still load.
    static Provenance from_json(const Json& j);
};

}  // namespace dbsp::report
