#include "report/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dbsp::report {

const Json& Json::operator[](std::string_view key) const {
    static const Json null;
    const Json* found = find(key);
    return found != nullptr ? *found : null;
}

const Json* Json::find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : members_) {
        if (k == key) return &v;
    }
    return nullptr;
}

Json& Json::set(std::string key, Json value) {
    if (is_null()) type_ = Type::kObject;
    for (auto& [k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
}

Json& Json::push_back(Json value) {
    if (is_null()) type_ = Type::kArray;
    array_.push_back(std::move(value));
    return *this;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += static_cast<char>(c);
                }
        }
    }
    out += '"';
}

void write_number(std::string& out, double d) {
    // Integral values inside the exactly-representable range print as
    // integers: counters and sizes stay readable and diff-stable.
    if (std::nearbyint(d) == d && std::fabs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", d);
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
}

void indent_to(std::string& out, int indent) { out.append(static_cast<std::size_t>(indent) * 2, ' '); }

}  // namespace

void Json::write_compact(std::string& out) const {
    switch (type_) {
        case Type::kNull: out += "null"; return;
        case Type::kBool: out += bool_ ? "true" : "false"; return;
        case Type::kNumber: write_number(out, number_); return;
        case Type::kString: write_escaped(out, string_); return;
        case Type::kArray: {
            out += '[';
            for (std::size_t i = 0; i < array_.size(); ++i) {
                if (i > 0) out += ',';
                array_[i].write_compact(out);
            }
            out += ']';
            return;
        }
        case Type::kObject: {
            out += '{';
            for (std::size_t i = 0; i < members_.size(); ++i) {
                if (i > 0) out += ',';
                write_escaped(out, members_[i].first);
                out += ':';
                members_[i].second.write_compact(out);
            }
            out += '}';
            return;
        }
    }
}

void Json::write(std::string& out, int indent) const {
    switch (type_) {
        case Type::kNull: out += "null"; return;
        case Type::kBool: out += bool_ ? "true" : "false"; return;
        case Type::kNumber: write_number(out, number_); return;
        case Type::kString: write_escaped(out, string_); return;
        case Type::kArray: {
            if (array_.empty()) {
                out += "[]";
                return;
            }
            // Arrays of scalars print on one line (series data stays compact);
            // arrays holding containers go one element per line.
            bool scalar = true;
            for (const auto& v : array_) {
                if (v.is_array() || v.is_object()) scalar = false;
            }
            if (scalar) {
                out += '[';
                for (std::size_t i = 0; i < array_.size(); ++i) {
                    if (i > 0) out += ", ";
                    array_[i].write(out, indent);
                }
                out += ']';
                return;
            }
            out += "[\n";
            for (std::size_t i = 0; i < array_.size(); ++i) {
                indent_to(out, indent + 1);
                array_[i].write(out, indent + 1);
                if (i + 1 < array_.size()) out += ',';
                out += '\n';
            }
            indent_to(out, indent);
            out += ']';
            return;
        }
        case Type::kObject: {
            if (members_.empty()) {
                out += "{}";
                return;
            }
            out += "{\n";
            for (std::size_t i = 0; i < members_.size(); ++i) {
                indent_to(out, indent + 1);
                write_escaped(out, members_[i].first);
                out += ": ";
                members_[i].second.write(out, indent + 1);
                if (i + 1 < members_.size()) out += ',';
                out += '\n';
            }
            indent_to(out, indent);
            out += '}';
            return;
        }
    }
}

std::string Json::dump() const {
    std::string out;
    write(out, 0);
    out += '\n';
    return out;
}

std::string Json::dump_compact() const {
    std::string out;
    write_compact(out);
    return out;
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
public:
    Parser(std::string_view text, const ParseLimits& limits)
        : text_(text), limits_(limits) {}

    std::optional<Json> run(std::string* error) {
        if (limits_.max_bytes != 0 && text_.size() > limits_.max_bytes) {
            fail("document exceeds " + std::to_string(limits_.max_bytes) + " bytes");
            emit(error);
            return std::nullopt;
        }
        skip_ws();
        Json value;
        if (!parse_value(value)) {
            emit(error);
            return std::nullopt;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
            emit(error);
            return std::nullopt;
        }
        return value;
    }

private:
    void emit(std::string* error) const {
        if (error == nullptr) return;
        std::size_t line = 1;
        for (std::size_t i = 0; i < error_pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') ++line;
        }
        *error = "line " + std::to_string(line) + ": " + error_;
    }

    bool fail(const std::string& message) {
        if (error_.empty()) {
            error_ = message;
            error_pos_ = pos_;
        }
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    bool parse_value(Json& out) {
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        switch (text_[pos_]) {
            case 'n': return literal("null") ? (out = Json(), true) : fail("bad literal");
            case 't': return literal("true") ? (out = Json(true), true) : fail("bad literal");
            case 'f': return literal("false") ? (out = Json(false), true) : fail("bad literal");
            case '"': return parse_string_into(out);
            case '[': return parse_array(out);
            case '{': return parse_object(out);
            default: return parse_number(out);
        }
    }

    bool parse_number(Json& out) {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            pos_ = start;
            return fail("invalid value");
        }
        const std::size_t int_start = pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
        if (text_[int_start] == '0' && pos_ - int_start > 1) {
            return fail("leading zero in number");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                return fail("digit expected after decimal point");
            }
            while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                return fail("digit expected in exponent");
            }
            while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        const double value = std::strtod(token.c_str(), nullptr);
        if (!std::isfinite(value)) return fail("number out of range");
        out = Json(value);
        return true;
    }

    bool parse_string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size()) return fail("unterminated string");
            const unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) return fail("raw control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size()) return fail("unterminated escape");
            switch (text_[pos_]) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 >= text_.size()) return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int k = 1; k <= 4; ++k) {
                        const char h = text_[pos_ + static_cast<std::size_t>(k)];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else return fail("invalid hex digit in \\u escape");
                    }
                    pos_ += 4;
                    // Encode the code point as UTF-8 (surrogates pass through
                    // as-is; the artifacts we emit never contain them).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: return fail("invalid escape character");
            }
            ++pos_;
        }
    }

    bool parse_string_into(Json& out) {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
    }

    /// Container-entry guard: depth is checked *before* recursing, so a
    /// `[[[[...` bomb is rejected with a diagnostic long before the stack
    /// frames of the recursive descent can overflow.
    bool enter() {
        if (limits_.max_depth != 0 && depth_ >= limits_.max_depth) {
            return fail("nesting depth exceeds " + std::to_string(limits_.max_depth));
        }
        ++depth_;
        return true;
    }

    bool parse_array(Json& out) {
        if (!enter()) return false;
        ++pos_;  // '['
        out = Json::array();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            Json element;
            skip_ws();
            if (!parse_value(element)) return false;
            out.push_back(std::move(element));
            skip_ws();
            if (pos_ >= text_.size()) return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("',' or ']' expected in array");
        }
    }

    bool parse_object(Json& out) {
        if (!enter()) return false;
        ++pos_;  // '{'
        out = Json::object();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') return fail("object key expected");
            std::string key;
            if (!parse_string(key)) return false;
            if (out.contains(key)) return fail("duplicate object key \"" + key + "\"");
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != ':') return fail("':' expected after key");
            ++pos_;
            skip_ws();
            Json value;
            if (!parse_value(value)) return false;
            out.set(std::move(key), std::move(value));
            skip_ws();
            if (pos_ >= text_.size()) return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("',' or '}' expected in object");
        }
    }

    std::string_view text_;
    ParseLimits limits_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
    std::string error_;
    std::size_t error_pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error,
                                const ParseLimits& limits) {
    return Parser(text, limits).run(error);
}

std::optional<Json> Json::load_file(const std::string& path, std::string* error) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (error != nullptr) *error = "cannot open \"" + path + "\"";
        return std::nullopt;
    }
    std::string text;
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        if (error != nullptr) *error = "read error on \"" + path + "\"";
        return std::nullopt;
    }
    std::string parse_error;
    auto parsed = parse(text, &parse_error);
    if (!parsed && error != nullptr) *error = path + ": " + parse_error;
    return parsed;
}

bool Json::save_file(const std::string& path, std::string* error) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr) *error = "cannot open \"" + path + "\" for writing";
        return false;
    }
    const std::string text = dump();
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    const bool closed = std::fclose(f) == 0;
    if (!(ok && closed)) {
        if (error != nullptr) *error = "write error on \"" + path + "\"";
        return false;
    }
    return true;
}

}  // namespace dbsp::report
