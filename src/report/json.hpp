#pragma once

/// \file json.hpp
/// Minimal JSON value + strict parser + pretty writer for the observability
/// layer. Every machine-readable artifact the repo emits (experiment results,
/// BENCH_experiments.json, BENCH_micro.json) goes through this writer, and
/// dbsp_report ingests them back through the parser, so writer and parser are
/// kept round-trip exact for the values we produce (finite doubles written
/// with %.17g, UTF-8 strings passed through verbatim, \uXXXX escapes decoded
/// to UTF-8).
///
/// The parser is strict: trailing garbage, unterminated constructs, control
/// characters inside strings, duplicate keys and non-finite numbers are all
/// rejected with a position-tagged error message — malformed baselines must
/// fail loudly in the regression gate, never be silently coerced.
///
/// The parser is also bounded: nesting depth and document size are checked
/// against ParseLimits and violations are *rejected* (an error message, not a
/// recursive descent into a stack overflow). The defaults are far above
/// anything the repo's own artifacts use; callers feeding the parser
/// untrusted input (the dbsp_serve request path) pass tighter limits.
///
/// Objects preserve insertion order (a vector of pairs, not a map) so the
/// emitted artifacts diff cleanly across regenerations.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dbsp::report {

class Json;
using JsonMember = std::pair<std::string, Json>;

/// Bounds enforced while parsing (see file comment). A zero field disables
/// that bound.
struct ParseLimits {
    /// Maximum container nesting depth (arrays + objects). The repo's own
    /// artifacts stay under 8; the default caps adversarial `[[[[...` input
    /// long before the recursive-descent parser can exhaust the stack.
    std::size_t max_depth = 64;
    /// Maximum document size in bytes.
    std::size_t max_bytes = 0;
};

class Json {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Json() : type_(Type::kNull) {}
    Json(std::nullptr_t) : type_(Type::kNull) {}
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(double d) : type_(Type::kNumber), number_(d) {}
    Json(int i) : type_(Type::kNumber), number_(i) {}
    Json(std::uint64_t u) : type_(Type::kNumber), number_(static_cast<double>(u)) {}
    Json(const char* s) : type_(Type::kString), string_(s) {}
    Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

    static Json array() {
        Json j;
        j.type_ = Type::kArray;
        return j;
    }
    static Json object() {
        Json j;
        j.type_ = Type::kObject;
        return j;
    }

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    /// Typed accessors; defaulted when the value has a different type, so
    /// readers can probe optional fields without branching on type() first.
    bool as_bool(bool fallback = false) const { return is_bool() ? bool_ : fallback; }
    double as_double(double fallback = 0.0) const { return is_number() ? number_ : fallback; }
    const std::string& as_string() const {
        static const std::string empty;
        return is_string() ? string_ : empty;
    }

    const std::vector<Json>& items() const {
        static const std::vector<Json> empty;
        return is_array() ? array_ : empty;
    }
    const std::vector<JsonMember>& members() const {
        static const std::vector<JsonMember> empty;
        return is_object() ? members_ : empty;
    }

    /// Object lookup; returns a shared null value when absent or not an
    /// object (chains safely: j["a"]["b"].as_double()).
    const Json& operator[](std::string_view key) const;

    bool contains(std::string_view key) const { return find(key) != nullptr; }
    const Json* find(std::string_view key) const;

    std::size_t size() const {
        return is_array() ? array_.size() : (is_object() ? members_.size() : 0);
    }

    /// --- building ----------------------------------------------------------
    /// Sets (or replaces) a member; converts this value to an object if null.
    Json& set(std::string key, Json value);
    /// Appends to an array; converts this value to an array if null.
    Json& push_back(Json value);

    /// --- serialization -----------------------------------------------------
    /// Pretty-print with two-space indentation and a trailing newline at the
    /// top level. Doubles that hold integral values within 2^53 print without
    /// an exponent or decimal point; everything else uses %.17g (round-trip
    /// exact).
    std::string dump() const;

    /// Single-line serialization with no indentation or spaces between
    /// tokens, same number/string formatting as dump(). Never contains a
    /// newline, so a compact document is exactly one line of the dbsp_serve
    /// wire protocol. dump_compact() output re-parses to an equal value.
    std::string dump_compact() const;

    /// Strict parse of a complete JSON document. On failure returns nullopt
    /// and, when \p error is non-null, stores a "line N: message" diagnostic.
    static std::optional<Json> parse(std::string_view text, std::string* error = nullptr,
                                     const ParseLimits& limits = {});

    /// Convenience: read and parse a file. Distinguishes I/O failure from
    /// parse failure via the error message.
    static std::optional<Json> load_file(const std::string& path,
                                         std::string* error = nullptr);

    /// Write dump() to a file; returns false (and sets error) on I/O failure.
    bool save_file(const std::string& path, std::string* error = nullptr) const;

private:
    void write(std::string& out, int indent) const;
    void write_compact(std::string& out) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<JsonMember> members_;
};

}  // namespace dbsp::report
