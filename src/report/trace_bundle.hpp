#pragma once

/// \file trace_bundle.hpp
/// One charge-trace attachment bundle: an AggregateSink for the printed
/// phase/level table, an optional ChromeTraceSink when a JSON path was
/// requested, and a MultiSink fanning events to both. This used to be
/// copy-pasted as bench::EnvTrace and dbsp_explore's LegTrace; both now wrap
/// this class.
///
/// The bundle is not thread-safe (the sinks aren't): attach it to one serial
/// run, never to parallel sweep workers.

#include <cstdio>
#include <memory>
#include <string>

#include "trace/aggregate.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/sink.hpp"

namespace dbsp::report {

class TraceBundle {
public:
    /// Disabled bundle: sink() returns nullptr, report() is a no-op.
    TraceBundle() = default;

    /// Enabled bundle writing to \p track; a Chrome sink is attached when
    /// \p with_chrome (the caller writes the file, possibly merged across
    /// bundles, via chrome()).
    TraceBundle(std::string track, bool with_chrome) {
        aggregate_ = std::make_unique<trace::AggregateSink>();
        multi_.add(aggregate_.get());
        if (with_chrome) {
            chrome_ = std::make_unique<trace::ChromeTraceSink>(std::move(track));
            multi_.add(chrome_.get());
        }
    }

    /// The DBSP_TRACE convention shared by the bench binaries:
    ///   unset / "" / "0" — disabled;
    ///   "1"              — aggregate report only;
    ///   anything else    — treated as a path: aggregate report AND a Chrome
    ///                      trace file written there by report().
    static TraceBundle from_env(const char* track);

    bool enabled() const { return aggregate_ != nullptr; }
    trace::Sink* sink() { return enabled() ? &multi_ : nullptr; }
    const trace::ChromeTraceSink* chrome() const { return chrome_.get(); }
    const std::string& chrome_path() const { return chrome_path_; }

    /// Print the aggregate table and audit the mirrored total against the
    /// machine's own charged cost; if from_env() captured a Chrome path,
    /// also write the trace file there. \p tool prefixes diagnostics.
    void report(const char* tool, const std::string& what, double charged_cost) const;

private:
    std::unique_ptr<trace::AggregateSink> aggregate_;
    std::unique_ptr<trace::ChromeTraceSink> chrome_;
    trace::MultiSink multi_;
    std::string chrome_path_;  ///< only set by from_env()
};

}  // namespace dbsp::report
