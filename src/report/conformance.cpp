#include "report/conformance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dbsp::report {

std::optional<MicroData> MicroData::from_json(const Json& j, std::string* error) {
    if (!j.is_object()) {
        if (error != nullptr) *error = "micro document is not an object";
        return std::nullopt;
    }
    MicroData m;
    m.raw = j;
    const Json& bulk = j["measurements"]["bulk_with_cache"];
    if (!bulk["words_per_sec"].is_number()) {
        if (error != nullptr) {
            *error = "micro document lacks measurements.bulk_with_cache.words_per_sec";
        }
        return std::nullopt;
    }
    m.bulk_words_per_sec = bulk["words_per_sec"].as_double();
    m.speedup = j["speedup_bulk_vs_per_word"].as_double(0.0);
    m.tracing_overhead_pct = j["tracing_overhead_pct"].as_double(0.0);
    m.locality_overhead_pct = j["locality_overhead_pct"].as_double(0.0);
    m.locality_enabled_overhead_pct = j["locality_enabled_overhead_pct"].as_double(0.0);
    m.locality_sampled_overhead_pct = j["locality_sampled_overhead_pct"].as_double(0.0);
    m.locality_sampled_score_abs_err =
        j["locality_sampled_score_abs_err"].as_double(0.0);
    m.costs_bit_identical = j["costs_bit_identical"].as_bool(true);
    m.trace_exact = j["trace_total_equals_cost"].as_bool(true);
    m.locality_counts_exact = j["locality_counts_exact"].as_bool(true);
    m.counters_cost_bit_identical = j["costs_bit_identical_counters"].as_bool(true);
    m.counters_available = j["counters"]["available"].as_bool(false);
    m.counters_reason = j["counters"]["reason"].as_string();
    return m;
}

const ExperimentResult* CombinedReport::find(const std::string& id) const {
    for (const auto& e : experiments) {
        if (e.id == id) return &e;
    }
    return nullptr;
}

bool CombinedReport::pass() const {
    for (const auto& e : experiments) {
        if (!e.pass()) return false;
    }
    if (micro && !(micro->costs_bit_identical && micro->trace_exact &&
                   micro->locality_counts_exact && micro->counters_cost_bit_identical)) {
        return false;
    }
    return true;
}

Json CombinedReport::to_json() const {
    Json j = Json::object();
    j.set("schema", kCombinedSchema);
    j.set("provenance", provenance.to_json());
    Json exps = Json::array();
    // Per-experiment metrics snapshots are meaningful only in the process
    // that ran the experiment; the combined artifact records each
    // experiment's result plus one top-level snapshot from the merge run.
    for (const auto& e : experiments) exps.push_back(e.to_json(provenance, false));
    j.set("experiments", std::move(exps));
    if (micro) j.set("micro", micro->raw);
    std::size_t total_checks = 0, passed_checks = 0;
    for (const auto& e : experiments) {
        total_checks += e.checks.size();
        for (const auto& c : e.checks) passed_checks += c.pass ? 1 : 0;
    }
    j.set("checks_total", total_checks);
    j.set("checks_passed", passed_checks);
    j.set("pass", pass());
    return j;
}

std::optional<CombinedReport> CombinedReport::from_json(const Json& j, std::string* error) {
    if (!j.is_object()) {
        if (error != nullptr) *error = "combined report is not an object";
        return std::nullopt;
    }
    if (j.contains("schema") && j["schema"].as_string() != kCombinedSchema) {
        if (error != nullptr) *error = "unsupported schema \"" + j["schema"].as_string() + "\"";
        return std::nullopt;
    }
    CombinedReport r;
    r.provenance = Provenance::from_json(j["provenance"]);
    if (!j["experiments"].is_array()) {
        if (error != nullptr) *error = "missing experiments array";
        return std::nullopt;
    }
    for (const Json& ej : j["experiments"].items()) {
        auto e = ExperimentResult::from_json(ej, error);
        if (!e) return std::nullopt;
        if (r.find(e->id) != nullptr) {
            if (error != nullptr) *error = "duplicate experiment id \"" + e->id + "\"";
            return std::nullopt;
        }
        r.experiments.push_back(std::move(*e));
    }
    if (j.contains("micro")) {
        auto m = MicroData::from_json(j["micro"], error);
        if (!m) return std::nullopt;
        r.micro = std::move(*m);
    }
    return r;
}

namespace {

std::string fmt(double v) {
    char buf[48];
    if (v == 0.0) return "0";
    const double a = std::fabs(v);
    if (a >= 1e6 || a < 1e-3) {
        std::snprintf(buf, sizeof buf, "%.3e", v);
    } else {
        std::snprintf(buf, sizeof buf, "%.3f", v);
    }
    return buf;
}

const Check* find_check(const ExperimentResult& e, const std::string& id) {
    for (const auto& c : e.checks) {
        if (c.id == id) return &c;
    }
    return nullptr;
}

/// Series named "table:<group>:<x header>:<column header>" render as data
/// tables on the dashboard (bench_e14 ships its per-level hit ratios this
/// way). Consecutive series with the same group and identical xs merge into
/// one multi-column table.
struct TableName {
    std::string group;
    std::string x_header;
    std::string column;
};

bool parse_table_name(const std::string& name, TableName& out) {
    if (name.rfind("table:", 0) != 0) return false;
    const std::size_t a = name.find(':', 6);
    if (a == std::string::npos) return false;
    const std::size_t b = name.find(':', a + 1);
    if (b == std::string::npos) return false;
    out.group = name.substr(6, a - 6);
    out.x_header = name.substr(a + 1, b - a - 1);
    out.column = name.substr(b + 1);
    return true;
}

void render_table_series(const ExperimentResult& e, std::string& out) {
    std::size_t i = 0;
    while (i < e.series.size()) {
        TableName first;
        if (!parse_table_name(e.series[i].name, first)) {
            ++i;
            continue;
        }
        std::size_t j = i + 1;
        std::vector<const Series*> cols = {&e.series[i]};
        TableName next;
        while (j < e.series.size() && parse_table_name(e.series[j].name, next) &&
               next.group == first.group && e.series[j].xs == e.series[i].xs) {
            cols.push_back(&e.series[j]);
            ++j;
        }
        out += "\n**" + first.group + "**\n\n";
        out += "| " + first.x_header + " |";
        std::string rule = "|---|";
        for (const Series* s : cols) {
            TableName tn;
            parse_table_name(s->name, tn);
            out += " " + tn.column + " |";
            rule += "---|";
        }
        out += "\n" + rule + "\n";
        for (std::size_t r = 0; r < e.series[i].xs.size(); ++r) {
            out += "| " + fmt(e.series[i].xs[r]) + " |";
            for (const Series* s : cols) out += " " + fmt(s->ys[r]) + " |";
            out += "\n";
        }
        i = j;
    }
}

}  // namespace

std::string CombinedReport::markdown(const CombinedReport* baseline) const {
    std::string out;
    out += "# Conformance dashboard\n\n";
    out += "Paper: *Translating Submachine Locality into Locality of Reference*.\n";
    out += "Each row is one machine-checked claim: the measured exponent/band from\n";
    out += "exact model costs vs the closed-form prediction, under the declared\n";
    out += "tolerance. Generated by `dbsp_report`.\n\n";
    out += "- git: `" + provenance.git_sha + "`  build: " + provenance.build_type +
           "  compiler: " + provenance.compiler + "\n";
    out += "- generated: " + provenance.timestamp + "  threads: " +
           std::to_string(provenance.threads) + "\n";
    if (baseline != nullptr) {
        out += "- baseline: `" + baseline->provenance.git_sha + "` (" +
               baseline->provenance.timestamp + ")\n";
    }
    std::size_t total = 0, passed = 0;
    for (const auto& e : experiments) {
        total += e.checks.size();
        for (const auto& c : e.checks) passed += c.pass ? 1 : 0;
    }
    out += "\n**" + std::to_string(passed) + "/" + std::to_string(total) +
           " checks pass** across " + std::to_string(experiments.size()) + " experiments.\n";

    for (const auto& e : experiments) {
        out += "\n## " + e.title + " — " + (e.pass() ? "PASS" : "**FAIL**") + "\n\n";
        out += "*" + e.claim + "*\n\n";
        out += "| check | kind | measured | predicted | tolerance | R² | Δ vs baseline | verdict |\n";
        out += "|---|---|---|---|---|---|---|---|\n";
        const ExperimentResult* base_exp =
            baseline != nullptr ? baseline->find(e.id) : nullptr;
        for (const auto& c : e.checks) {
            std::string delta = "—";
            if (base_exp != nullptr) {
                if (const Check* bc = find_check(*base_exp, c.id)) {
                    delta = fmt(c.measured - bc->measured);
                }
            }
            const std::string verdict =
                c.waived ? "waived (" + c.waive_reason + ")"
                         : (c.pass ? std::string("pass") : std::string("**FAIL**"));
            out += "| " + c.label + " | " + c.kind + " | " +
                   (c.waived ? std::string("—") : fmt(c.measured)) + " | " +
                   fmt(c.predicted) + " | " + fmt(c.tolerance) + " | " +
                   (c.kind == "exponent" ? fmt(c.r_squared) : std::string("—")) + " | " +
                   delta + " | " + verdict + " |\n";
        }
        render_table_series(e, out);
    }

    if (micro) {
        out += "\n## Harness microbenchmark (wall-clock, not a paper claim)\n\n";
        out += "- bulk path: " + fmt(micro->bulk_words_per_sec) + " words/s\n";
        out += "- bulk-vs-per-word speedup: " + fmt(micro->speedup) + "x\n";
        out += "- tracing overhead (AggregateSink attached): " +
               fmt(micro->tracing_overhead_pct) + "%\n";
        out += "- locality profiling overhead: disabled path " +
               fmt(micro->locality_overhead_pct) + "% (A/A re-measurement of the "
               "null-sink leg), exact engine " +
               fmt(micro->locality_enabled_overhead_pct) + "%, sampled engine " +
               fmt(micro->locality_sampled_overhead_pct) + "% (score abs err " +
               fmt(micro->locality_sampled_score_abs_err) + ")\n";
        out += std::string("- costs bit-identical: ") +
               (micro->costs_bit_identical ? "yes" : "**NO**") + ", trace mirror exact: " +
               (micro->trace_exact ? "yes" : "**NO**") + ", locality counts exact: " +
               (micro->locality_counts_exact ? "yes" : "**NO**") +
               ", counter leg cost bit-identical: " +
               (micro->counters_cost_bit_identical ? "yes" : "**NO**") + "\n";
        out += std::string("- hardware counters: ") +
               (micro->counters_available
                    ? "available (multiplex-corrected snapshot in artifact)"
                    : "unavailable" + (micro->counters_reason.empty()
                                           ? std::string()
                                           : " (" + micro->counters_reason + ")")) +
               "\n";
        if (baseline != nullptr && baseline->micro) {
            const double base = baseline->micro->bulk_words_per_sec;
            if (base > 0.0) {
                out += "- words/s vs baseline: " +
                       fmt(100.0 * (micro->bulk_words_per_sec - base) / base) + "%\n";
            }
        }
    }
    return out;
}

std::vector<std::string> gate_violations(const CombinedReport& current,
                                         const CombinedReport& baseline,
                                         const GateOptions& options) {
    std::vector<std::string> violations;
    const auto violation = [&violations](std::string msg) {
        violations.push_back(std::move(msg));
    };

    for (const auto& e : current.experiments) {
        for (const auto& c : e.checks) {
            if (!c.pass) {
                violation(e.id + "/" + c.id + ": conformance check FAILED (" + c.label +
                          ": measured " + fmt(c.measured) + ", predicted " + fmt(c.predicted) +
                          ", tolerance " + fmt(c.tolerance) + ")");
            }
        }
    }

    for (const auto& base_exp : baseline.experiments) {
        const ExperimentResult* cur_exp = current.find(base_exp.id);
        if (cur_exp == nullptr) {
            if (!options.subset_ok) {
                violation(base_exp.id + ": experiment present in baseline but missing from "
                                        "current report");
            }
            continue;
        }
        for (const auto& bc : base_exp.checks) {
            const Check* cc = find_check(*cur_exp, bc.id);
            if (cc == nullptr) {
                if (!options.subset_ok) {
                    violation(base_exp.id + "/" + bc.id +
                              ": check present in baseline but missing from current report");
                }
                continue;
            }
            // A waived side has no measurement to drift against: a check
            // waived at baseline (recorded on a counter-less machine) or at
            // head (counters denied in this run) is auto-excused from the
            // drift rules. The unconditional !pass rule above still fires
            // for non-waived failures.
            if (bc.waived || cc->waived) continue;
            if (bc.kind == "exponent") {
                const double drift = std::fabs(cc->measured - bc.measured);
                if (drift > options.exponent_drift) {
                    violation(base_exp.id + "/" + bc.id + ": fitted exponent drifted " +
                              fmt(drift) + " from baseline (" + fmt(bc.measured) + " -> " +
                              fmt(cc->measured) + ", allowed " + fmt(options.exponent_drift) +
                              ")");
                }
            } else if ((bc.kind == "min" || bc.kind == "max") && bc.tolerance > 0.0) {
                // The check declares its own absolute drift allowance (an
                // exact but fold-order-sensitive value; see GateOptions).
                const double drift = std::fabs(cc->measured - bc.measured);
                if (drift > bc.tolerance) {
                    violation(base_exp.id + "/" + bc.id + ": measured value drifted " +
                              fmt(drift) + " from baseline (" + fmt(bc.measured) + " -> " +
                              fmt(cc->measured) + ", allowed " + fmt(bc.tolerance) +
                              " absolute)");
                }
            } else {
                const double denom = std::max(std::fabs(bc.measured), 1e-12);
                const double drift = std::fabs(cc->measured - bc.measured) / denom;
                if (drift > options.value_drift_rel) {
                    violation(base_exp.id + "/" + bc.id + ": measured value drifted " +
                              fmt(100.0 * drift) + "% from baseline (" + fmt(bc.measured) +
                              " -> " + fmt(cc->measured) + ", allowed " +
                              fmt(100.0 * options.value_drift_rel) + "%)");
                }
            }
        }
    }

    if (current.micro && baseline.micro && baseline.micro->bulk_words_per_sec > 0.0) {
        const double drop_pct = 100.0 *
                                (baseline.micro->bulk_words_per_sec -
                                 current.micro->bulk_words_per_sec) /
                                baseline.micro->bulk_words_per_sec;
        if (drop_pct > options.perf_drop_pct) {
            violation("micro: bulk-path words/sec regressed " + fmt(drop_pct) +
                      "% vs baseline (allowed " + fmt(options.perf_drop_pct) + "%)");
        }
        if (!current.micro->costs_bit_identical) {
            violation("micro: bulk and per-word paths no longer charge bit-identical costs");
        }
        if (!current.micro->trace_exact) {
            violation("micro: trace mirror no longer equals charged cost");
        }
        if (!current.micro->locality_counts_exact) {
            violation("micro: LocalitySink reference counts no longer match words_touched");
        }
        if (!current.micro->counters_cost_bit_identical) {
            violation("micro: arming hardware counters changed the charged cost "
                      "(counters must be pure observation)");
        }
    }

    // Enabled-path ceilings are absolute bounds on the current run (no
    // baseline needed): "profiling stays affordable" is a property of head,
    // not a drift. Old artifacts without the keys default to 0 and pass.
    if (current.micro) {
        if (current.micro->locality_enabled_overhead_pct >
            options.locality_enabled_overhead_max_pct) {
            violation("micro: exact locality profiling overhead " +
                      fmt(current.micro->locality_enabled_overhead_pct) +
                      "% exceeds ceiling " +
                      fmt(options.locality_enabled_overhead_max_pct) + "%");
        }
        if (current.micro->locality_sampled_overhead_pct >
            options.locality_sampled_overhead_max_pct) {
            violation("micro: sampled locality profiling overhead " +
                      fmt(current.micro->locality_sampled_overhead_pct) +
                      "% exceeds ceiling " +
                      fmt(options.locality_sampled_overhead_max_pct) + "%");
        }
        if (current.micro->locality_sampled_score_abs_err >
            options.locality_sampled_score_err_max) {
            violation("micro: sampled locality score error " +
                      fmt(current.micro->locality_sampled_score_abs_err) +
                      " exceeds ceiling " + fmt(options.locality_sampled_score_err_max));
        }
    }

    return violations;
}

}  // namespace dbsp::report
