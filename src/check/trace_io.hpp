#pragma once

/// \file trace_io.hpp
/// Text serialization for fuzzer repro cases, in two line-oriented formats:
///
///  * "dbsp-spec v1" — a check::ProgramSpec. Replays through
///    GeneratedProgram, reproducing the full generated behaviour (inbox
///    digests, data-word mixing, payload salting), so the complete
///    differential matrix re-runs exactly as it did when the bug was found.
///  * "dbsp-trace v2" — a model::Trace. Replays through
///    model::RecordedProgram: same labels, ops, and message pattern, with
///    the digest-fold step semantics. Preferred for committed repros when
///    the divergence survives the trace replay, since it freezes the
///    *computation* independent of the generator's hashing choices.
///
/// Both formats are committed under tests/repros/ and re-checked by
/// fuzz_oracle_test.cpp; dbsp_fuzz emits them on failure. Parsers are strict
/// (any malformed or out-of-range field fails with a message, never aborts)
/// so a corrupted repro file degrades into a test failure, not a crash.

#include <memory>
#include <optional>
#include <string>

#include "check/program_gen.hpp"
#include "model/recorded_program.hpp"

namespace dbsp::check {

std::string serialize_spec(const ProgramSpec& spec);
bool parse_spec(const std::string& text, ProgramSpec* out, std::string* error);

std::string serialize_trace(const model::Trace& trace);
bool parse_trace(const std::string& text, model::Trace* out, std::string* error);

/// A loaded repro case: exactly one of spec/trace is set.
struct Repro {
    std::optional<ProgramSpec> spec;
    std::optional<model::Trace> trace;

    /// Instantiate the replay program (GeneratedProgram or RecordedProgram).
    std::unique_ptr<model::Program> make_program() const;
};

/// Parse either format, sniffing the header line.
bool parse_repro(const std::string& text, Repro* out, std::string* error);

/// Read and parse a repro file; returns false with a message on I/O or
/// parse failure.
bool load_repro_file(const std::string& path, Repro* out, std::string* error);

}  // namespace dbsp::check
