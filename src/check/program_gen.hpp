#pragma once

/// \file program_gen.hpp
/// Seedable random D-BSP program generation for the differential fuzzing
/// oracle (tools/dbsp_fuzz, tests/fuzz_oracle_test.cpp).
///
/// A generated computation is described by a fully explicit ProgramSpec —
/// machine geometry plus one event per (superstep, processor) — so a failing
/// program can be mutated structurally by the shrinker and serialized as a
/// regression repro. GeneratedProgram replays a spec as a model::Program
/// whose step callbacks are pure functions of (superstep, processor, context,
/// inbox), as the executors require: every data flow (inbox digests, data-
/// word mixing, payload salting) is derived from context state, so any
/// divergence an executor introduces propagates into the final memory image
/// instead of washing out.
///
/// The generator deliberately over-samples the paper's adversarial edge
/// geometries: tiny machines (v in {1, 2, 4}), empty supersteps (h = 0),
/// max-degree funnels (in-degree = B), descending-label runs that force
/// L-smoothing to insert dummy supersteps, and inboxes left unread across
/// supersteps so stale messages must survive cluster scheduling.

#include <cstdint>
#include <string>
#include <vector>

#include "model/program.hpp"

namespace dbsp::check {

/// Fully explicit description of one generated D-BSP computation.
struct ProgramSpec {
    std::uint64_t processors = 1;  ///< v; power of two
    std::size_t data_words = 2;    ///< D >= 1
    std::size_t max_messages = 1;  ///< B >= 1
    std::uint64_t seed = 0;        ///< generator seed (init() values, reporting)
    std::vector<unsigned> labels;  ///< per superstep; last must be 0

    struct Send {
        model::ProcId dest = 0;
        model::Word payload0 = 0;
        model::Word payload1 = 0;
    };
    struct Event {
        std::uint64_t extra_ops = 0;  ///< charge_ops() on top of implicit ops
        bool read_inbox = false;      ///< fold the inbox into data word 0
        bool touch_data = false;      ///< mix every data word in place
        std::vector<Send> sends;
    };
    std::vector<std::vector<Event>> events;  ///< [superstep][processor]

    std::uint64_t total_messages() const;

    /// One-line geometry summary for failure reports, e.g.
    /// "v=4 D=3 B=2 steps=5 labels=[2,1,2,0,0] msgs=11".
    std::string describe() const;
};

/// Validate the executor discipline a spec must respect to be runnable at
/// all (as opposed to divergence-free): power-of-two v, labels in range with
/// a final 0, per-sender message counts <= B, destinations inside the
/// sender's label-cluster, and inbox occupancy never exceeding B under the
/// read-clears / unread-persists rule. The shrinker uses this to discard
/// candidate mutations that would abort an executor on a contract violation
/// instead of reproducing a divergence. Returns false and fills \p why (if
/// non-null) on the first violation.
bool spec_valid(const ProgramSpec& spec, std::string* why = nullptr);

/// Knobs for generate_spec. Defaults keep programs small enough that a full
/// differential check (every executor, every mode combination) runs in a few
/// milliseconds while still covering every cluster level of a 16-processor
/// tree.
struct GenConfig {
    std::vector<std::uint64_t> v_choices{1, 2, 4, 4, 8, 16};  ///< duplicates = weight
    std::size_t max_supersteps = 8;   ///< supersteps per program, >= 1
    std::size_t max_data_words = 7;   ///< D range [1, max_data_words]
    std::size_t max_buffer = 3;       ///< B range [1, max_buffer]
    std::uint64_t max_extra_ops = 4;  ///< extra_ops range [0, max_extra_ops]
};

/// Deterministically generate a valid spec from \p seed. The same
/// (config, seed) pair yields an identical spec on every platform.
ProgramSpec generate_spec(const GenConfig& config, std::uint64_t seed);

/// Replay a ProgramSpec as a D-BSP program. Step behaviour per event:
///  1. read_inbox: fold (src, payloads) of every received message into data
///     word 0 with an order-sensitive hash — inbox-ordering divergence
///     becomes memory-image divergence;
///  2. touch_data: chain-mix all data words in place — any stale or
///     misplaced word poisons every later word;
///  3. charge extra_ops;
///  4. sends: payload0 is XOR-salted with data word 0, so messages carry
///     state forward and delivery bugs cascade.
class GeneratedProgram final : public model::Program {
public:
    /// Requires spec_valid(spec).
    explicit GeneratedProgram(ProgramSpec spec);

    std::string name() const override { return "fuzz-gen"; }
    std::uint64_t num_processors() const override { return spec_.processors; }
    std::size_t data_words() const override { return spec_.data_words; }
    std::size_t max_messages() const override { return spec_.max_messages; }
    model::StepIndex num_supersteps() const override { return spec_.labels.size(); }
    unsigned label(model::StepIndex s) const override { return spec_.labels[s]; }
    void init(model::ProcId p, std::span<model::Word> data) const override;
    void step(model::StepIndex s, model::ProcId p, model::StepContext& ctx) override;

    const ProgramSpec& spec() const { return spec_; }

private:
    ProgramSpec spec_;
};

}  // namespace dbsp::check
