#include "check/program_gen.hpp"

#include <algorithm>
#include <sstream>

#include "util/bits.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace dbsp::check {

using model::ProcId;
using model::StepIndex;
using model::Word;

namespace {

/// Stateless mix for init values and data-word churn; distinct from the
/// executors' arithmetic so a generated program can't accidentally cancel a
/// simulator bug.
constexpr Word mix64(Word x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 29;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 32;
    return x;
}

}  // namespace

std::uint64_t ProgramSpec::total_messages() const {
    std::uint64_t n = 0;
    for (const auto& step : events) {
        for (const auto& ev : step) n += ev.sends.size();
    }
    return n;
}

std::string ProgramSpec::describe() const {
    std::ostringstream os;
    os << "v=" << processors << " D=" << data_words << " B=" << max_messages
       << " steps=" << labels.size() << " labels=[";
    for (std::size_t s = 0; s < labels.size(); ++s) {
        if (s > 0) os << ",";
        os << labels[s];
    }
    os << "] msgs=" << total_messages();
    return os.str();
}

bool spec_valid(const ProgramSpec& spec, std::string* why) {
    const auto fail = [&](const std::string& reason) {
        if (why != nullptr) *why = reason;
        return false;
    };
    if (!is_pow2(spec.processors)) return fail("processors not a power of two");
    if (spec.data_words == 0) return fail("data_words == 0");
    if (spec.max_messages == 0) return fail("max_messages == 0");
    if (spec.labels.empty()) return fail("no supersteps");
    if (spec.labels.back() != 0) return fail("last label != 0");
    const unsigned log_v = ilog2(spec.processors);
    for (unsigned l : spec.labels) {
        if (l > log_v) return fail("label out of range");
    }
    if (spec.events.size() != spec.labels.size()) return fail("events/labels size mismatch");

    const model::ClusterTree tree(spec.processors);
    // Inbox-occupancy simulation under the executors' discipline: a step that
    // reads its inbox clears it, an unread inbox persists, and deliveries
    // must never push occupancy past B (superstep_exec.cpp aborts via
    // DBSP_REQUIRE otherwise — a crash, not a divergence).
    std::vector<std::size_t> occupancy(spec.processors, 0);
    std::vector<std::size_t> arrivals(spec.processors, 0);
    for (StepIndex s = 0; s < spec.labels.size(); ++s) {
        if (spec.events[s].size() != spec.processors) return fail("event row size mismatch");
        std::fill(arrivals.begin(), arrivals.end(), 0);
        for (ProcId p = 0; p < spec.processors; ++p) {
            const ProgramSpec::Event& ev = spec.events[s][p];
            if (ev.sends.size() > spec.max_messages) return fail("more than B sends");
            for (const ProgramSpec::Send& send : ev.sends) {
                if (send.dest >= spec.processors) return fail("dest out of range");
                if (!tree.same_cluster(p, send.dest, spec.labels[s])) {
                    return fail("dest outside label-cluster");
                }
                ++arrivals[send.dest];
            }
        }
        for (ProcId p = 0; p < spec.processors; ++p) {
            if (spec.events[s][p].read_inbox) occupancy[p] = 0;
            occupancy[p] += arrivals[p];
            if (occupancy[p] > spec.max_messages) return fail("inbox overflow");
        }
    }
    return true;
}

namespace {

/// Per-superstep send-pattern shapes the generator samples from. Weights are
/// tuned toward the adversarial cases: funnels exercise max-degree relations
/// and inbox-capacity edges, scatter exercises irregular h.
enum class SendPattern { kEmpty, kPermutation, kFunnel, kScatter };

SendPattern pick_pattern(SplitMix64& rng) {
    switch (rng.next_below(8)) {
        case 0: return SendPattern::kEmpty;
        case 1:
        case 2:
        case 3: return SendPattern::kPermutation;
        case 4:
        case 5: return SendPattern::kFunnel;
        default: return SendPattern::kScatter;
    }
}

/// Label sequences; each style stresses a different smoothing/scheduling
/// path. All styles force the final label to 0.
enum class LabelStyle { kUniform, kDescending, kExtremes, kMostlyFine };

std::vector<unsigned> make_labels(SplitMix64& rng, unsigned log_v, std::size_t steps) {
    std::vector<unsigned> labels(steps, 0);
    const auto style = static_cast<LabelStyle>(rng.next_below(4));
    switch (style) {
        case LabelStyle::kUniform:
            for (std::size_t s = 0; s + 1 < steps; ++s) {
                labels[s] = static_cast<unsigned>(rng.next_below(log_v + 1));
            }
            break;
        case LabelStyle::kDescending: {
            // Repeated climbs followed by strict descents: every descent of
            // more than one level forces L-smoothing to insert dummy steps.
            unsigned cur = log_v;
            for (std::size_t s = 0; s + 1 < steps; ++s) {
                labels[s] = cur;
                if (cur == 0 || rng.next_below(3) == 0) {
                    cur = static_cast<unsigned>(rng.next_below(log_v + 1));
                } else {
                    cur -= static_cast<unsigned>(
                        std::min<std::uint64_t>(cur, 1 + rng.next_below(2)));
                }
            }
            break;
        }
        case LabelStyle::kExtremes:
            for (std::size_t s = 0; s + 1 < steps; ++s) {
                labels[s] = (s % 2 == 0) ? log_v : 0;
            }
            break;
        case LabelStyle::kMostlyFine:
            for (std::size_t s = 0; s + 1 < steps; ++s) {
                labels[s] = rng.next_below(4) == 0
                                ? static_cast<unsigned>(rng.next_below(log_v + 1))
                                : log_v;
            }
            break;
    }
    return labels;
}

}  // namespace

ProgramSpec generate_spec(const GenConfig& config, std::uint64_t seed) {
    DBSP_REQUIRE(!config.v_choices.empty());
    DBSP_REQUIRE(config.max_supersteps >= 1);
    DBSP_REQUIRE(config.max_data_words >= 1);
    DBSP_REQUIRE(config.max_buffer >= 1);
    SplitMix64 rng(seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);

    ProgramSpec spec;
    spec.seed = seed;
    spec.processors = config.v_choices[rng.next_below(config.v_choices.size())];
    DBSP_REQUIRE(is_pow2(spec.processors));
    spec.data_words = 1 + rng.next_below(config.max_data_words);
    spec.max_messages = 1 + rng.next_below(config.max_buffer);
    const unsigned log_v = ilog2(spec.processors);
    const std::size_t steps = 1 + rng.next_below(config.max_supersteps);
    spec.labels = make_labels(rng, log_v, steps);

    const model::ClusterTree tree(spec.processors);
    const std::uint64_t v = spec.processors;
    const std::size_t B = spec.max_messages;
    spec.events.assign(steps, std::vector<ProgramSpec::Event>(v));

    // Occupancy under the read-clears / unread-persists rule; room[p] is the
    // number of deliveries processor p can still absorb this superstep.
    std::vector<std::size_t> occupancy(v, 0);
    std::vector<std::size_t> room(v, 0);
    for (StepIndex s = 0; s < steps; ++s) {
        const unsigned label = spec.labels[s];
        const std::uint64_t csize = tree.cluster_size(label);
        for (ProcId p = 0; p < v; ++p) {
            ProgramSpec::Event& ev = spec.events[s][p];
            ev.extra_ops = rng.next_below(config.max_extra_ops + 1);
            ev.touch_data = rng.next_below(3) != 0;
            // Bias toward reading when messages are waiting, but regularly
            // leave a non-empty inbox unread so it must survive scheduling
            // (and smoothing dummies) untouched.
            ev.read_inbox = occupancy[p] > 0 ? rng.next_below(4) != 0
                                             : rng.next_below(2) == 0;
            room[p] = B - (ev.read_inbox ? 0 : occupancy[p]);
        }
        for (std::uint64_t c = 0; c < tree.num_clusters(label); ++c) {
            const ProcId first = tree.cluster_first(c, label);
            const SendPattern pattern = pick_pattern(rng);
            const auto payload = [&rng] { return rng.next(); };
            switch (pattern) {
                case SendPattern::kEmpty:
                    break;
                case SendPattern::kPermutation: {
                    // Rotate by a random shift within the cluster.
                    const std::uint64_t shift = rng.next_below(csize);
                    for (std::uint64_t k = 0; k < csize; ++k) {
                        const ProcId p = first + k;
                        const ProcId dest = first + (k + shift) % csize;
                        if (room[dest] == 0) continue;
                        --room[dest];
                        spec.events[s][p].sends.push_back({dest, payload(), payload()});
                    }
                    break;
                }
                case SendPattern::kFunnel: {
                    // Max in-degree: everyone targets one processor until its
                    // inbox capacity is exhausted.
                    const ProcId target = first + rng.next_below(csize);
                    for (std::uint64_t k = 0; k < csize && room[target] > 0; ++k) {
                        const ProcId p = first + (target - first + k) % csize;
                        --room[target];
                        spec.events[s][p].sends.push_back({target, payload(), payload()});
                    }
                    break;
                }
                case SendPattern::kScatter: {
                    for (std::uint64_t k = 0; k < csize; ++k) {
                        const ProcId p = first + k;
                        const std::uint64_t wanted = rng.next_below(B + 1);
                        for (std::uint64_t m = 0; m < wanted; ++m) {
                            const ProcId dest = first + rng.next_below(csize);
                            if (room[dest] == 0) continue;
                            --room[dest];
                            spec.events[s][p].sends.push_back({dest, payload(), payload()});
                        }
                    }
                    break;
                }
            }
        }
        for (ProcId p = 0; p < v; ++p) {
            if (spec.events[s][p].read_inbox) occupancy[p] = 0;
        }
        for (ProcId p = 0; p < v; ++p) {
            for (const ProgramSpec::Send& send : spec.events[s][p].sends) {
                ++occupancy[send.dest];
            }
        }
    }

    DBSP_ENSURE(spec_valid(spec));
    return spec;
}

GeneratedProgram::GeneratedProgram(ProgramSpec spec) : spec_(std::move(spec)) {
    std::string why;
    if (!spec_valid(spec_, &why)) {
        DBSP_REQUIRE(false && "GeneratedProgram: invalid spec");
    }
}

void GeneratedProgram::init(ProcId p, std::span<Word> data) const {
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = mix64(spec_.seed ^ (p * 0x100000001b3ull) ^ (i + 1));
    }
}

void GeneratedProgram::step(StepIndex s, ProcId p, model::StepContext& ctx) {
    const ProgramSpec::Event& ev = spec_.events[s][p];
    if (ev.read_inbox) {
        // Order-sensitive fold: a simulator delivering the same multiset of
        // messages in a different canonical order produces a different word.
        const std::size_t n = ctx.inbox_size();
        Word digest = ctx.load(0);
        for (std::size_t k = 0; k < n; ++k) {
            const model::Message m = ctx.inbox(k);
            digest = digest * 1099511628211ull ^ mix64(m.payload0) ^
                     (m.payload1 << 1) ^ (m.src * 0x9e3779b97f4a7c15ull);
        }
        ctx.store(0, digest);
    }
    if (ev.touch_data) {
        // Chain-mix every data word so one stale or misplaced word corrupts
        // the whole context image by the end of the program.
        Word carry = ctx.load(0);
        for (std::size_t i = 1; i < spec_.data_words; ++i) {
            carry = mix64(ctx.load(i) + carry);
            ctx.store(i, carry);
        }
        ctx.store(0, mix64(carry ^ ctx.load(0)));
    }
    if (ev.extra_ops > 0) ctx.charge_ops(ev.extra_ops);
    const Word salt = ctx.load(0);
    for (const ProgramSpec::Send& send : ev.sends) {
        ctx.send(send.dest, send.payload0 ^ salt, send.payload1);
    }
}

}  // namespace dbsp::check
