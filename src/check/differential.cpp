#include "check/differential.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/bounds.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/naive_bt_simulator.hpp"
#include "core/naive_hmm_simulator.hpp"
#include "core/self_simulator.hpp"
#include "core/smoothing.hpp"
#include "locality/cache_model.hpp"
#include "locality/sink.hpp"
#include "model/cost_table_cache.hpp"
#include "model/dbsp_machine.hpp"
#include "model/recorded_program.hpp"
#include "model/superstep_exec.hpp"
#include "report/metrics.hpp"
#include "trace/sink.hpp"
#include "util/contracts.hpp"

namespace dbsp::check {

using model::ContextLayout;
using model::ProcId;
using model::StepIndex;
using model::Word;

namespace {

/// Empirical slack for the Theorem 5/12 tripwires. The theorems are O()
/// statements; these constants were calibrated by sweeping the fuzzer's own
/// program distribution and sit an order of magnitude above the largest
/// observed simulator/bound ratio, so a trip means a gross charging
/// regression, not an unlucky constant.
constexpr double kTheorem5Slack = 64.0;
constexpr double kTheorem12Slack = 64.0;

/// Machines the theorem tripwires apply to: below this the BT staging pad
/// (>= 4096 words) and per-round fixed costs dominate the asymptotic terms.
constexpr std::uint64_t kBoundMinProcessors = 8;

std::string describe_word_diff(const std::vector<Word>& a, const std::vector<Word>& b) {
    std::ostringstream os;
    if (a.size() != b.size()) {
        os << "image sizes differ: " << a.size() << " vs " << b.size();
        return os.str();
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) {
            os << "word " << i << ": " << a[i] << " vs " << b[i];
            return os.str();
        }
    }
    os << "identical";
    return os.str();
}

/// Collects failures with a shared context prefix (access-function name).
class Reporter {
public:
    Reporter(DiffReport& report, std::string context)
        : report_(report), context_(std::move(context)) {}

    void fail(const std::string& tag, const std::string& detail) {
        report_.failures.push_back({tag, "[" + context_ + "] " + detail});
    }

    void check_cost(const std::string& tag, const std::string& what, double expected,
                    double actual) {
        // Bit-identical, not approximately equal: the mode axes promise the
        // exact same fold of the exact same doubles.
        if (expected != actual) {
            std::ostringstream os;
            os.precision(17);
            os << what << ": expected " << expected << ", got " << actual;
            fail(tag, os.str());
        }
    }

    void check_images(const std::string& tag, const std::string& what,
                      const std::vector<std::vector<Word>>& expected,
                      const std::vector<std::vector<Word>>& actual) {
        DBSP_REQUIRE(expected.size() == actual.size());
        for (ProcId p = 0; p < expected.size(); ++p) {
            if (expected[p] != actual[p]) {
                std::ostringstream os;
                os << what << ": processor " << p << " diverges ("
                   << describe_word_diff(expected[p], actual[p]) << ")";
                fail(tag, os.str());
                return;  // one image failure per comparison is enough
            }
        }
    }

private:
    DiffReport& report_;
    std::string context_;
};

/// Locality-profiler mode axes, shared by the HMM and BT blocks. \p run
/// re-executes the simulation with the given sink attached; it must be
/// deterministic, so every sink sees the identical reference stream.
///  * batched vs per-word: the engine's O(log n + b) bulk path promises an
///    event stream — and therefore a profile — bit-identical to feeding
///    every word through record() alone;
///  * sampled rate 1.0: the SHARDS filter passes every address and all rate
///    corrections are the identity, so the profile must equal exact's;
///  * sampled rate 0.25: the estimates are unbiased but noisy; the band
///    below is a tripwire calibrated like the theorem slacks — wide enough
///    that only a broken rate correction (not an unlucky sample) trips it,
///    and gated on a minimum measured-reference count so tiny programs
///    don't produce degenerate estimates.
template <typename RunTraced>
void check_locality_modes(Reporter& rep, const std::string& tag, RunTraced&& run) {
    locality::LocalitySink exact_sink;
    run(exact_sink);
    const locality::LocalityProfile exact = exact_sink.profile();

    // MRC comparison capacities: powers of two (exact predictions) and
    // interior points (interpolated) — the cache-model axis of each mode
    // promise below. Bit-identical profiles must predict bit-identical miss
    // ratios at *every* capacity, interpolated or not.
    constexpr std::uint64_t kMrcCapacities[] = {1, 2, 5, 8, 64, 1000, 4096};

    {
        locality::LocalityOptions opts;
        opts.batched = false;
        locality::LocalitySink per_word(opts);
        run(per_word);
        if (!exact.identical(per_word.profile())) {
            rep.fail(tag, "batched profile differs from per-word profile");
        }
        for (const std::uint64_t c : kMrcCapacities) {
            const double mb = locality::predicted_miss_ratio(exact, c);
            const double mw = locality::predicted_miss_ratio(per_word.profile(), c);
            if (mb != mw) {
                std::ostringstream os;
                os.precision(17);
                os << "predicted miss ratio at capacity " << c << " differs between "
                   << "batched (" << mb << ") and per-word (" << mw << ") engines";
                rep.fail(tag, os.str());
            }
        }
    }
    {
        locality::LocalityOptions opts;
        opts.mode = locality::LocalityOptions::Mode::kSampled;
        opts.sample_rate = 1.0;
        locality::LocalitySink full(opts);
        run(full);
        if (!exact.identical(full.profile())) {
            rep.fail(tag, "rate-1.0 sampled profile differs from exact profile");
        }
        for (const std::uint64_t c : kMrcCapacities) {
            const double me = locality::predicted_miss_ratio(exact, c);
            const double mf = locality::predicted_miss_ratio(full.profile(), c);
            if (me != mf) {
                std::ostringstream os;
                os.precision(17);
                os << "predicted miss ratio at capacity " << c << " differs between "
                   << "exact (" << me << ") and rate-1.0 sampled (" << mf << ") modes";
                rep.fail(tag, os.str());
            }
        }
    }
    {
        locality::LocalityOptions opts;
        opts.mode = locality::LocalityOptions::Mode::kSampled;
        opts.sample_rate = 0.25;
        locality::LocalitySink sampled_sink(opts);
        run(sampled_sink);
        locality::LocalityProfile approx = sampled_sink.profile();
        if (approx.accesses != exact.accesses) {
            std::ostringstream os;
            os << "sampled mode counted " << approx.accesses << " references, exact "
               << exact.accesses;
            rep.fail(tag, os.str());
        }
        // SHARDS estimation error scales with the *sampled working set*
        // (roughly 1/sqrt(distinct sampled addresses)), so the band is only
        // meaningful once the sample holds enough addresses — tiny fuzz
        // programs where three sampled addresses decide every hit fraction
        // are skipped rather than band-checked.
        constexpr std::uint64_t kMinSampledRefs = 512;
        constexpr std::uint64_t kMinSampledAddrs = 64;
        if (approx.sampled_accesses >= kMinSampledRefs &&
            approx.distinct_addresses >= kMinSampledAddrs) {
            const double ds = std::abs(approx.locality_score() - exact.locality_score());
            if (!(ds <= std::max(1.5, 0.5 * exact.locality_score()))) {
                std::ostringstream os;
                os.precision(17);
                os << "sampled locality score " << approx.locality_score()
                   << " outside band of exact " << exact.locality_score();
                rep.fail(tag, os.str());
            }
            for (unsigned level = 1; level <= exact.max_level(); ++level) {
                const double dh =
                    std::abs(approx.hit_fraction(level) - exact.hit_fraction(level));
                if (!(dh <= 0.45)) {
                    std::ostringstream os;
                    os.precision(17);
                    os << "sampled hit fraction at level " << level << " is "
                       << approx.hit_fraction(level) << ", exact "
                       << exact.hit_fraction(level);
                    rep.fail(tag, os.str());
                }
                // Same band for the predicted MRC at the level's capacity:
                // SHARDS rate correction feeds the miss-ratio denominator,
                // so a broken correction skews the whole curve, not just
                // one hit fraction.
                const std::uint64_t cap = std::uint64_t{1} << level;
                const double dm = std::abs(locality::predicted_miss_ratio(approx, cap) -
                                           locality::predicted_miss_ratio(exact, cap));
                if (!(dm <= 0.45)) {
                    std::ostringstream os;
                    os.precision(17);
                    os << "sampled predicted miss ratio at capacity " << cap << " is "
                       << locality::predicted_miss_ratio(approx, cap) << ", exact "
                       << locality::predicted_miss_ratio(exact, cap);
                    rep.fail(tag, os.str());
                }
            }
        }
    }
}

std::vector<std::vector<Word>> images_of(const std::vector<std::vector<Word>>& contexts,
                                         const ContextLayout& layout) {
    std::vector<std::vector<Word>> images;
    images.reserve(contexts.size());
    for (const auto& ctx : contexts) images.push_back(functional_image(ctx, layout));
    return images;
}

/// Self-simulation host sizes to exercise: the degenerate single-HMM host,
/// the identity host, and one strictly intermediate size when it exists.
std::vector<std::uint64_t> self_sim_hosts(std::uint64_t v) {
    std::vector<std::uint64_t> hosts{1};
    const std::uint64_t mid = std::uint64_t{1} << (ilog2(v) / 2);
    if (mid > 1 && mid < v) hosts.push_back(mid);
    if (v > 1) hosts.push_back(v);
    return hosts;
}

}  // namespace

bool DiffReport::has_tag(const std::string& tag) const {
    return std::any_of(failures.begin(), failures.end(),
                       [&](const DiffFailure& f) { return f.tag == tag; });
}

std::string DiffReport::summary() const {
    std::ostringstream os;
    for (const auto& f : failures) os << f.tag << ": " << f.detail << "\n";
    return os.str();
}

std::vector<Word> functional_image(const std::vector<Word>& context,
                                   const ContextLayout& layout) {
    DBSP_REQUIRE(context.size() == layout.context_words());
    std::vector<Word> image(context.begin(),
                            context.begin() + static_cast<std::ptrdiff_t>(layout.data_words));
    const Word in_count = context[layout.in_count_offset()];
    DBSP_REQUIRE(in_count <= layout.max_messages);
    image.push_back(in_count);
    for (Word k = 0; k < in_count; ++k) {
        const std::size_t off = layout.in_record_offset(k);
        image.push_back(context[off]);
        image.push_back(context[off + 1]);
        image.push_back(context[off + 2]);
    }
    image.push_back(context[layout.out_count_offset()]);
    return image;
}

DiffReport check_program(model::Program& program, const DiffConfig& config) {
    DiffReport report;
    const std::vector<model::AccessFunction> functions =
        config.functions.empty()
            ? std::vector<model::AccessFunction>{model::AccessFunction::polynomial(0.35),
                                                 model::AccessFunction::polynomial(0.5),
                                                 model::AccessFunction::logarithmic()}
            : config.functions;

    const std::uint64_t v = program.num_processors();
    const ContextLayout layout = program.layout();
    const std::size_t mu = layout.context_words();

    for (const model::AccessFunction& f : functions) {
        Reporter rep(report, "f=" + f.name());

        // --- direct executor: the functional + cost reference -------------
        const auto run_direct = [&](bool bulk, bool cache, trace::Sink* sink,
                                    std::size_t threads = 1) -> model::DbspResult {
            model::ScopedBulkAccess sb(bulk);
            model::ScopedCostTableCache sc(cache);
            model::DbspMachine machine(f);
            machine.set_trace(sink);
            machine.set_threads(threads);
            return machine.run(program);
        };
        const model::DbspResult ref = run_direct(true, true, nullptr);
        const auto ref_images = images_of(ref.contexts, layout);

        {
            // Monotone accumulation: every superstep adds >= 1, and the total
            // is exactly the in-order fold of the per-superstep costs.
            double fold = 0.0;
            for (const auto& s : ref.supersteps) {
                if (!(s.cost >= 1.0)) {
                    std::ostringstream os;
                    os.precision(17);
                    os << "superstep cost " << s.cost << " < 1";
                    rep.fail("direct-cost-monotone", os.str());
                }
                fold += s.cost;
            }
            rep.check_cost("direct-cost-fold", "sum of superstep costs vs total", ref.time,
                           fold);
        }
        for (const bool bulk : {false, true}) {
            const model::DbspResult alt = run_direct(bulk, /*cache=*/bulk, nullptr);
            rep.check_cost("direct-cost-mode",
                           bulk ? "bulk direct time" : "per-word direct time", ref.time,
                           alt.time);
            rep.check_images("direct-image-mode",
                             bulk ? "bulk direct image" : "per-word direct image",
                             ref.contexts, alt.contexts);
        }
        {
            trace::Sink sink;
            const model::DbspResult traced = run_direct(true, true, &sink);
            rep.check_cost("direct-trace", "trace mirror vs direct time", traced.time,
                           sink.total());
            rep.check_cost("direct-cost-mode", "traced direct time", ref.time, traced.time);
        }
        for (const std::size_t t : config.threads) {
            trace::Sink sink;
            const model::DbspResult par = run_direct(true, true, &sink, t);
            std::ostringstream what;
            what << "direct (threads=" << t << ")";
            rep.check_cost("direct-cost-threads", what.str() + " time", ref.time, par.time);
            rep.check_images("direct-image-threads", what.str() + " image", ref.contexts,
                             par.contexts);
            rep.check_cost("direct-trace", what.str() + " trace mirror", par.time,
                           sink.total());
        }

        // --- HMM simulator on an hmm_label_set smoothing ------------------
        {
            const std::vector<unsigned> labels = core::hmm_label_set(f, mu, v);
            auto smoothed = core::smooth(program, labels);
            if (!core::is_smooth(*smoothed, labels)) {
                rep.fail("smooth-hmm-def3", "hmm_label_set smoothing is not L-smooth");
            }
            // Smoothing must be functionally invisible.
            const model::DbspResult sm_direct = [&] {
                model::DbspMachine machine(f);
                return machine.run(*smoothed);
            }();
            rep.check_images("smooth-hmm-image", "direct run of smoothed program",
                             ref_images, images_of(sm_direct.contexts, layout));

            const auto run_hmm = [&](bool bulk, bool cache, trace::Sink* sink,
                                     std::size_t threads = 1) -> core::HmmSimResult {
                model::ScopedBulkAccess sb(bulk);
                model::ScopedCostTableCache sc(cache);
                core::HmmSimulator::Options opt;
                opt.trace = sink;
                opt.threads = threads;
                return core::HmmSimulator(f, opt).simulate(*smoothed);
            };
            const core::HmmSimResult hmm = run_hmm(true, true, nullptr);
            rep.check_images("hmm-image", "HMM simulation image", ref_images,
                             images_of(hmm.contexts, layout));
            for (const auto& [bulk, cache] :
                 {std::pair{false, true}, std::pair{true, false}, std::pair{false, false}}) {
                const core::HmmSimResult alt = run_hmm(bulk, cache, nullptr);
                std::ostringstream what;
                what << "HMM cost (bulk=" << bulk << " cache=" << cache << ")";
                rep.check_cost("hmm-cost-mode", what.str(), hmm.hmm_cost, alt.hmm_cost);
                rep.check_images("hmm-image-mode", what.str() + " image", hmm.contexts,
                                 alt.contexts);
            }
            for (const std::size_t t : config.threads) {
                trace::Sink sink;
                const core::HmmSimResult par = run_hmm(true, true, &sink, t);
                std::ostringstream what;
                what << "HMM (threads=" << t << ")";
                rep.check_cost("hmm-cost-threads", what.str() + " cost", hmm.hmm_cost,
                               par.hmm_cost);
                rep.check_images("hmm-image-threads", what.str() + " image", hmm.contexts,
                                 par.contexts);
                rep.check_cost("hmm-trace", what.str() + " trace mirror", par.hmm_cost,
                               sink.total());
            }
            {
                // A LocalitySink is a Sink, so it must keep the exact cost
                // mirror — and its reference count must equal the machine's
                // own word accounting, both the per-run result field and the
                // metrics-registry counter the machine publishes on
                // destruction (the oracle runs serially, so the registry
                // delta around one run is that run's contribution).
                locality::LocalitySink sink;
                auto& touched = report::metric_counter("hmm.words_touched");
                const std::uint64_t touched_before = touched.value();
                const core::HmmSimResult traced = run_hmm(true, true, &sink);
                const std::uint64_t touched_delta = touched.value() - touched_before;
                rep.check_cost("hmm-trace", "trace mirror vs hmm_cost", traced.hmm_cost,
                               sink.total());
                rep.check_cost("hmm-cost-mode", "traced HMM cost", hmm.hmm_cost,
                               traced.hmm_cost);
                if (sink.recorded_accesses() != traced.words_touched) {
                    std::ostringstream os;
                    os << "LocalitySink recorded " << sink.recorded_accesses()
                       << " references, machine touched " << traced.words_touched
                       << " words";
                    rep.fail("locality-counts", os.str());
                }
                if (touched_delta != traced.words_touched) {
                    std::ostringstream os;
                    os << "hmm.words_touched registry delta " << touched_delta
                       << " vs machine words_touched " << traced.words_touched;
                    rep.fail("locality-counts", os.str());
                }
            }
            if (config.check_locality) {
                check_locality_modes(rep, "hmm-locality-modes",
                                     [&](locality::LocalitySink& sink) {
                                         (void)run_hmm(true, true, &sink);
                                     });
            }
            if (config.check_bounds && v >= kBoundMinProcessors) {
                const double bound =
                    kTheorem5Slack * core::theorem5_bound(sm_direct, f, v, mu);
                if (!(hmm.hmm_cost <= bound)) {
                    std::ostringstream os;
                    os.precision(17);
                    os << "hmm_cost " << hmm.hmm_cost << " exceeds slacked Theorem 5 bound "
                       << bound;
                    rep.fail("hmm-bound", os.str());
                }
            }
        }

        // --- BT simulator on a bt_label_set smoothing ---------------------
        {
            const std::vector<unsigned> labels = core::bt_label_set(f, mu, v);
            auto smoothed = core::smooth(program, labels);
            if (!core::is_smooth(*smoothed, labels)) {
                rep.fail("smooth-bt-def3", "bt_label_set smoothing is not L-smooth");
            }
            const model::DbspResult sm_direct = [&] {
                model::DbspMachine machine(f);
                return machine.run(*smoothed);
            }();
            rep.check_images("smooth-bt-image", "direct run of BT-smoothed program",
                             ref_images, images_of(sm_direct.contexts, layout));

            const auto run_bt = [&](bool bulk, bool cache, trace::Sink* sink,
                                    std::size_t threads = 1) -> core::BtSimResult {
                model::ScopedBulkAccess sb(bulk);
                model::ScopedCostTableCache sc(cache);
                core::BtSimulator::Options opt;
                opt.trace = sink;
                opt.threads = threads;
                return core::BtSimulator(f, opt).simulate(*smoothed);
            };
            const core::BtSimResult bt = run_bt(true, true, nullptr);
            rep.check_images("bt-image", "BT simulation image", ref_images,
                             images_of(bt.contexts, layout));
            for (const auto& [bulk, cache] :
                 {std::pair{false, true}, std::pair{true, false}, std::pair{false, false}}) {
                const core::BtSimResult alt = run_bt(bulk, cache, nullptr);
                std::ostringstream what;
                what << "BT cost (bulk=" << bulk << " cache=" << cache << ")";
                rep.check_cost("bt-cost-mode", what.str(), bt.bt_cost, alt.bt_cost);
                rep.check_images("bt-image-mode", what.str() + " image", bt.contexts,
                                 alt.contexts);
            }
            for (const std::size_t t : config.threads) {
                trace::Sink sink;
                const core::BtSimResult par = run_bt(true, true, &sink, t);
                std::ostringstream what;
                what << "BT (threads=" << t << ")";
                rep.check_cost("bt-cost-threads", what.str() + " cost", bt.bt_cost,
                               par.bt_cost);
                rep.check_cost("bt-cost-threads", what.str() + " compute cost",
                               bt.compute_cost, par.compute_cost);
                rep.check_images("bt-image-threads", what.str() + " image", bt.contexts,
                                 par.contexts);
                rep.check_cost("bt-trace", what.str() + " trace mirror", par.bt_cost,
                               sink.total());
            }
            {
                // Same invariant on the BT side: the sink's per-stream word
                // counts must match the counters bt::Machine publishes when
                // the simulator (and with it the machine) is destroyed at
                // the end of run_bt's full expression.
                locality::LocalitySink sink;
                auto& range_words = report::metric_counter("bt.range_words");
                auto& transfer_words = report::metric_counter("bt.transfer_words");
                const std::uint64_t ranged_before = range_words.value();
                const std::uint64_t transferred_before = transfer_words.value();
                const core::BtSimResult traced = run_bt(true, true, &sink);
                const std::uint64_t ranged = range_words.value() - ranged_before;
                const std::uint64_t transferred =
                    transfer_words.value() - transferred_before;
                rep.check_cost("bt-trace", "trace mirror vs bt_cost", traced.bt_cost,
                               sink.total());
                rep.check_cost("bt-cost-mode", "traced BT cost", bt.bt_cost, traced.bt_cost);
                if (sink.range_words() != ranged) {
                    std::ostringstream os;
                    os << "LocalitySink saw " << sink.range_words()
                       << " range words, bt.range_words registry delta " << ranged;
                    rep.fail("locality-counts", os.str());
                }
                if (sink.transfer_words() != transferred) {
                    std::ostringstream os;
                    os << "LocalitySink saw " << sink.transfer_words()
                       << " transfer words, bt.transfer_words registry delta "
                       << transferred;
                    rep.fail("locality-counts", os.str());
                }
            }
            if (config.check_locality) {
                check_locality_modes(rep, "bt-locality-modes",
                                     [&](locality::LocalitySink& sink) {
                                         (void)run_bt(true, true, &sink);
                                     });
            }
            {
                // Component attribution must account for the whole charge.
                // The components are window differences of one accumulator
                // summed in separate buckets, so allow only fp re-association
                // noise, not a structural gap.
                const double components =
                    bt.compute_cost + bt.deliver_cost + bt.layout_cost;
                const double tol = 1e-9 * std::max(1.0, bt.bt_cost);
                if (!(std::abs(components - bt.bt_cost) <= tol)) {
                    std::ostringstream os;
                    os.precision(17);
                    os << "compute+deliver+layout = " << components << " vs bt_cost "
                       << bt.bt_cost;
                    rep.fail("bt-components", os.str());
                }
            }
            if (config.check_bounds && v >= kBoundMinProcessors) {
                const double bound = kTheorem12Slack * core::theorem12_bound(sm_direct, v, mu);
                if (!(bt.bt_cost <= bound)) {
                    std::ostringstream os;
                    os.precision(17);
                    os << "bt_cost " << bt.bt_cost << " exceeds slacked Theorem 12 bound "
                       << bound;
                    rep.fail("bt-bound", os.str());
                }
            }
        }

        // --- naive (pinned-context) baselines -----------------------------
        {
            const auto run_naive_hmm = [&](bool bulk, bool cache,
                                           std::size_t threads = 1) -> core::HmmSimResult {
                model::ScopedBulkAccess sb(bulk);
                model::ScopedCostTableCache sc(cache);
                core::NaiveHmmSimulator::Options opt;
                opt.threads = threads;
                return core::NaiveHmmSimulator(f, opt).simulate(program);
            };
            const core::HmmSimResult nh = run_naive_hmm(true, true);
            rep.check_images("naive-hmm-image", "naive HMM image", ref_images,
                             images_of(nh.contexts, layout));
            const core::HmmSimResult nh_alt = run_naive_hmm(false, false);
            rep.check_cost("naive-hmm-cost-mode", "per-word naive HMM cost", nh.hmm_cost,
                           nh_alt.hmm_cost);
            rep.check_images("naive-hmm-image", "per-word naive HMM image", nh.contexts,
                             nh_alt.contexts);
            for (const std::size_t t : config.threads) {
                const core::HmmSimResult par = run_naive_hmm(true, true, t);
                std::ostringstream what;
                what << "naive HMM (threads=" << t << ")";
                rep.check_cost("naive-hmm-cost-threads", what.str() + " cost", nh.hmm_cost,
                               par.hmm_cost);
                rep.check_images("naive-hmm-image-threads", what.str() + " image",
                                 nh.contexts, par.contexts);
            }

            const auto run_naive_bt = [&](bool bulk, bool cache) -> core::BtSimResult {
                model::ScopedBulkAccess sb(bulk);
                model::ScopedCostTableCache sc(cache);
                return core::NaiveBtSimulator(f).simulate(program);
            };
            const core::BtSimResult nb = run_naive_bt(true, true);
            rep.check_images("naive-bt-image", "naive BT image", ref_images,
                             images_of(nb.contexts, layout));
            const core::BtSimResult nb_alt = run_naive_bt(false, false);
            rep.check_cost("naive-bt-cost-mode", "per-word naive BT cost", nb.bt_cost,
                           nb_alt.bt_cost);
            rep.check_images("naive-bt-image", "per-word naive BT image", nb.contexts,
                             nb_alt.contexts);
        }

        // --- Section 4 self-simulation ------------------------------------
        if (config.check_self_sim) {
            for (const std::uint64_t v_prime : self_sim_hosts(v)) {
                const auto run_self = [&](bool bulk, bool cache,
                                          trace::Sink* sink) -> core::SelfSimResult {
                    model::ScopedBulkAccess sb(bulk);
                    model::ScopedCostTableCache sc(cache);
                    core::SelfSimulator sim(f, v_prime);
                    sim.set_trace(sink);
                    return sim.simulate(program);
                };
                const core::SelfSimResult self = run_self(true, true, nullptr);
                std::ostringstream what;
                what << "self-sim v'=" << v_prime;
                rep.check_images("self-image", what.str() + " image", ref_images,
                                 images_of(self.contexts, layout));
                const core::SelfSimResult alt = run_self(false, false, nullptr);
                rep.check_cost("self-cost-mode", what.str() + " per-word host time",
                               self.host_time, alt.host_time);
                rep.check_images("self-image", what.str() + " per-word image",
                                 self.contexts, alt.contexts);
                trace::Sink sink;
                const core::SelfSimResult traced = run_self(true, true, &sink);
                rep.check_cost("self-trace", what.str() + " trace mirror", traced.host_time,
                               sink.total());
                rep.check_cost("self-cost-mode", what.str() + " traced host time",
                               self.host_time, traced.host_time);
            }
        }

        // --- recorded-trace replay ----------------------------------------
        if (config.check_recorded) {
            model::Trace trace = model::record(program);
            model::RecordedProgram replay(std::move(trace));
            model::DbspMachine machine(f);
            const model::DbspResult rr = machine.run(replay);
            if (rr.supersteps.size() != ref.supersteps.size()) {
                std::ostringstream os;
                os << "replay has " << rr.supersteps.size() << " supersteps, original "
                   << ref.supersteps.size();
                rep.fail("recorded-shape", os.str());
            } else {
                for (StepIndex s = 0; s < rr.supersteps.size(); ++s) {
                    if (rr.supersteps[s].label != ref.supersteps[s].label) {
                        std::ostringstream os;
                        os << "superstep " << s << " label " << rr.supersteps[s].label
                           << " vs " << ref.supersteps[s].label;
                        rep.fail("recorded-labels", os.str());
                        break;
                    }
                    if (rr.supersteps[s].h != ref.supersteps[s].h) {
                        std::ostringstream os;
                        os << "superstep " << s << " h " << rr.supersteps[s].h << " vs "
                           << ref.supersteps[s].h;
                        rep.fail("recorded-h", os.str());
                        break;
                    }
                }
            }
        }
    }
    return report;
}

}  // namespace dbsp::check
