#pragma once

/// \file differential.hpp
/// The differential oracle: run one D-BSP program through every executor and
/// mode combination and cross-check the results.
///
/// Executors covered: direct DbspMachine, HmmSimulator (Figure-1 scheduling,
/// on a hmm_label_set-smoothed relabeling), BtSimulator (on a bt_label_set
/// smoothing), NaiveHmmSimulator, NaiveBtSimulator, and SelfSimulator at up
/// to three host sizes v' | v. Mode axes crossed on each: bulk vs per-word
/// accessors (ScopedBulkAccess), cached vs uncached cost tables
/// (ScopedCostTableCache), traced vs untraced (trace::Sink mirror).
///
/// Checks, in decreasing order of strength:
///  * functional: every executor ends with the identical observable memory
///    image — data words, unread inbox (count + records in canonical
///    delivery order), and drained out-buffer count;
///  * cost determinism: within one executor, charged cost is bit-identical
///    across every bulk/cache/trace combination;
///  * trace mirror: an attached sink's total() equals the executor's charged
///    cost bit for bit;
///  * locality modes: the profiler's batched fast path reproduces the
///    per-word reference path bit for bit, SHARDS sampling at rate 1.0
///    degenerates to the exact profile, and sub-rate sampling stays inside
///    a generous error band of the exact analytics;
///  * model invariants: per-superstep direct costs are >= 1 and fold exactly
///    to the total (monotone accumulation); smoothed relabelings satisfy
///    Definition 3 (is_smooth); BT component attribution
///    (compute + deliver + layout) accounts for the full bt_cost; recorded
///    traces replay with identical structure (labels, h per superstep);
///  * theorem bounds: simulator cost stays below a generously slacked
///    Theorem-5 (HMM) / Theorem-12 (BT) prediction — a gross-regression
///    tripwire, not a tight constant check, and only applied for v >= 8
///    where the asymptotic terms dominate fixed overheads (the BT staging
///    pad swamps everything on tiny machines).
///
/// check_program is deterministic and side-effect-free on the program (the
/// program's step() must be pure, which the executors require anyway).

#include <string>
#include <vector>

#include "model/access_function.hpp"
#include "model/program.hpp"

namespace dbsp::check {

/// One observed discrepancy. `tag` is a stable machine-readable identifier of
/// the check that fired (e.g. "hmm-image", "bt-cost-bulk"); the shrinker uses
/// it to keep reducing the *same* bug. `detail` is human-readable.
struct DiffFailure {
    std::string tag;
    std::string detail;
};

struct DiffReport {
    std::vector<DiffFailure> failures;

    bool ok() const { return failures.empty(); }
    /// True iff some failure carries \p tag.
    bool has_tag(const std::string& tag) const;
    /// Multi-line human-readable report ("" when ok()).
    std::string summary() const;
};

struct DiffConfig {
    /// Access functions to run the whole matrix under. Empty = the paper's
    /// case-study trio {x^0.35, x^0.5, log x}.
    std::vector<model::AccessFunction> functions;
    /// Cross-check the Section 4 self-simulation (v' in {1, mid, v}).
    bool check_self_sim = true;
    /// Check Theorem 5/12 slack bounds (v >= 8 only).
    bool check_bounds = true;
    /// Record the program and re-check the replay's structure.
    bool check_recorded = true;
    /// Cross-check the locality-profiler mode axes on the HMM and BT
    /// simulators: batched vs per-word profiles must be bit-identical,
    /// rate-1.0 sampling must degenerate to the exact profile, and a
    /// down-sampled profile must stay inside a wide sanity corridor of the
    /// exact one (broken rate correction, not sampling noise, trips it).
    bool check_locality = true;
    /// Worker-thread counts for the parallel-execution axis. Every threaded
    /// executor (direct, HMM, BT, naive HMM) re-runs at each count and must
    /// reproduce its serial run exactly: bit-identical cost, bit-identical
    /// trace mirror, identical final contexts. Empty disables the axis.
    std::vector<std::size_t> threads{2, 4};
};

/// Run the full differential matrix on \p program. The program must satisfy
/// the executor discipline (in-range labels ending at 0, sends within the
/// label-cluster, inbox occupancy <= B) — see spec_valid for generated specs.
DiffReport check_program(model::Program& program, const DiffConfig& config = {});

/// Observable memory image of one processor's final context: data words,
/// then in-count, the in_count live incoming records, and the out count.
/// Stale buffer words beyond the live counts are excluded — the executors
/// legitimately differ there (the BT rebuild zeroes what the direct machine
/// leaves stale). Exposed for tests.
std::vector<model::Word> functional_image(const std::vector<model::Word>& context,
                                          const model::ContextLayout& layout);

}  // namespace dbsp::check
