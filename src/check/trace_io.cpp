#include "check/trace_io.hpp"

#include <fstream>
#include <sstream>

namespace dbsp::check {

using model::Message;
using model::ProcId;
using model::StepIndex;
using model::Word;

namespace {

constexpr const char* kSpecHeader = "dbsp-spec v1";
constexpr const char* kTraceHeader = "dbsp-trace v2";

/// Geometry ceilings enforced *before* any event-table allocation. A repro
/// file is a few kilobytes and the fuzz corpus stays under v=16, steps=8 —
/// but the same parser now also reads untrusted dbsp_serve requests, where
/// "v 1152921504606846976" must produce an error reply, not an out-of-memory
/// abort while sizing the event matrix. The per-field caps are generous
/// (64Ki processors, 4Ki supersteps); the cell cap bounds the one allocation
/// the header controls, steps x v event slots.
constexpr std::uint64_t kMaxProcessors = 1ull << 16;
constexpr std::uint64_t kMaxSupersteps = 1ull << 12;
constexpr std::uint64_t kMaxDataWords = 1ull << 12;
constexpr std::uint64_t kMaxMessages = 1ull << 12;
constexpr std::uint64_t kMaxEventCells = 1ull << 20;

/// Line-oriented reader with one-token lookahead on the line keyword.
/// Comment lines (leading '#') and blank lines are skipped.
class LineReader {
public:
    explicit LineReader(const std::string& text) : in_(text) { advance(); }

    bool eof() const { return eof_; }
    const std::string& keyword() const { return keyword_; }
    std::istringstream& rest() { return rest_; }

    void advance() {
        std::string line;
        while (std::getline(in_, line)) {
            std::size_t i = line.find_first_not_of(" \t\r");
            if (i == std::string::npos || line[i] == '#') continue;
            rest_ = std::istringstream(line);
            rest_ >> keyword_;
            return;
        }
        eof_ = true;
        keyword_.clear();
    }

    /// Extract trailing integer fields from the current line.
    template <typename... Ts>
    bool fields(Ts&... out) {
        return static_cast<bool>((rest_ >> ... >> out));
    }

private:
    std::istringstream in_;
    std::istringstream rest_;
    std::string keyword_;
    bool eof_ = false;
};

bool fail(std::string* error, const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
}

struct Header {
    std::uint64_t v = 0;
    std::size_t data_words = 0;
    std::size_t max_messages = 0;
    std::uint64_t seed = 0;
    std::vector<unsigned> labels;
};

/// Parse the shared v/D/B/seed/steps/labels preamble; stops before the first
/// "event" line.
bool parse_header(LineReader& reader, Header* h, std::string* error) {
    std::size_t steps = 0;
    bool have_steps = false;
    bool have_v = false, have_d = false, have_b = false, have_seed = false,
         have_labels = false;
    // Each section may appear at most once: a duplicate "v"/"labels"/... line
    // in a hand-edited (or adversarial) file silently overriding or extending
    // the earlier one is exactly the kind of ambiguity a strict parser must
    // reject.
    const auto once = [&](bool& seen, const char* what) {
        if (seen) return fail(error, std::string("duplicate ") + what + " line");
        seen = true;
        return true;
    };
    while (!reader.eof()) {
        const std::string& kw = reader.keyword();
        if (kw == "event" || kw == "end") break;
        if (kw == "v") {
            if (!once(have_v, "v")) return false;
            if (!reader.fields(h->v)) return fail(error, "bad v line");
        } else if (kw == "D") {
            if (!once(have_d, "D")) return false;
            if (!reader.fields(h->data_words)) return fail(error, "bad D line");
        } else if (kw == "B") {
            if (!once(have_b, "B")) return false;
            if (!reader.fields(h->max_messages)) return fail(error, "bad B line");
        } else if (kw == "seed") {
            if (!once(have_seed, "seed")) return false;
            if (!reader.fields(h->seed)) return fail(error, "bad seed line");
        } else if (kw == "steps") {
            if (!once(have_steps, "steps")) return false;
            if (!reader.fields(steps)) return fail(error, "bad steps line");
        } else if (kw == "labels") {
            if (!once(have_labels, "labels")) return false;
            unsigned l = 0;
            while (reader.rest() >> l) {
                if (h->labels.size() >= kMaxSupersteps) {
                    return fail(error, "too many labels");
                }
                h->labels.push_back(l);
            }
        } else {
            return fail(error, "unknown header keyword: " + kw);
        }
        reader.advance();
    }
    if (h->v == 0) return fail(error, "missing v");
    if (h->max_messages == 0) return fail(error, "missing B");
    if (!have_steps || h->labels.size() != steps) {
        return fail(error, "steps/labels mismatch");
    }
    if (h->labels.empty()) return fail(error, "no supersteps");
    // Geometry ceilings — checked here, before the caller sizes the
    // steps x v event matrix off these fields.
    if (h->v > kMaxProcessors) return fail(error, "v exceeds parser limit");
    if (h->data_words > kMaxDataWords) return fail(error, "D exceeds parser limit");
    if (h->max_messages > kMaxMessages) return fail(error, "B exceeds parser limit");
    if (h->labels.size() > kMaxSupersteps) {
        return fail(error, "steps exceeds parser limit");
    }
    if (h->labels.size() * h->v > kMaxEventCells) {
        return fail(error, "steps * v exceeds parser limit");
    }
    return true;
}

void write_header(std::ostringstream& os, std::uint64_t v, std::size_t data_words,
                  std::size_t max_messages, std::uint64_t seed,
                  const std::vector<unsigned>& labels) {
    os << "v " << v << "\n";
    os << "D " << data_words << "\n";
    os << "B " << max_messages << "\n";
    if (seed != 0) os << "seed " << seed << "\n";
    os << "steps " << labels.size() << "\n";
    os << "labels";
    for (unsigned l : labels) os << " " << l;
    os << "\n";
}

}  // namespace

std::string serialize_spec(const ProgramSpec& spec) {
    std::ostringstream os;
    os << kSpecHeader << "\n";
    os << "# " << spec.describe() << "\n";
    write_header(os, spec.processors, spec.data_words, spec.max_messages, spec.seed,
                 spec.labels);
    for (StepIndex s = 0; s < spec.events.size(); ++s) {
        for (ProcId p = 0; p < spec.events[s].size(); ++p) {
            const ProgramSpec::Event& ev = spec.events[s][p];
            if (ev.extra_ops == 0 && !ev.read_inbox && !ev.touch_data && ev.sends.empty()) {
                continue;  // all-default events are implicit
            }
            os << "event " << s << " " << p << " " << ev.extra_ops << " "
               << int{ev.read_inbox} << " " << int{ev.touch_data} << " "
               << ev.sends.size() << "\n";
            for (const ProgramSpec::Send& send : ev.sends) {
                os << "send " << send.dest << " " << send.payload0 << " " << send.payload1
                   << "\n";
            }
        }
    }
    os << "end\n";
    return os.str();
}

bool parse_spec(const std::string& text, ProgramSpec* out, std::string* error) {
    LineReader reader(text);
    if (reader.eof() || reader.keyword() != "dbsp-spec") {
        return fail(error, "not a dbsp-spec file");
    }
    std::string version;
    reader.fields(version);
    if (version != "v1") return fail(error, "unsupported dbsp-spec version");
    reader.advance();

    Header h;
    if (!parse_header(reader, &h, error)) return false;
    ProgramSpec spec;
    spec.processors = h.v;
    spec.data_words = h.data_words;
    spec.max_messages = h.max_messages;
    spec.seed = h.seed;
    spec.labels = h.labels;
    spec.events.assign(spec.labels.size(), std::vector<ProgramSpec::Event>(spec.processors));

    while (!reader.eof() && reader.keyword() == "event") {
        StepIndex s = 0;
        ProcId p = 0;
        std::uint64_t extra_ops = 0;
        int read_inbox = 0;
        int touch_data = 0;
        std::size_t nsends = 0;
        if (!reader.fields(s, p, extra_ops, read_inbox, touch_data, nsends)) {
            return fail(error, "bad event line");
        }
        if (s >= spec.labels.size() || p >= spec.processors) {
            return fail(error, "event index out of range");
        }
        ProgramSpec::Event& ev = spec.events[s][p];
        ev.extra_ops = extra_ops;
        ev.read_inbox = read_inbox != 0;
        ev.touch_data = touch_data != 0;
        reader.advance();
        for (std::size_t k = 0; k < nsends; ++k) {
            if (reader.eof() || reader.keyword() != "send") {
                return fail(error, "missing send line");
            }
            ProgramSpec::Send send;
            if (!reader.fields(send.dest, send.payload0, send.payload1)) {
                return fail(error, "bad send line");
            }
            ev.sends.push_back(send);
            reader.advance();
        }
    }
    if (reader.eof() || reader.keyword() != "end") return fail(error, "missing end line");

    std::string why;
    if (!spec_valid(spec, &why)) return fail(error, "invalid spec: " + why);
    *out = std::move(spec);
    return true;
}

std::string serialize_trace(const model::Trace& trace) {
    std::ostringstream os;
    os << kTraceHeader << "\n";
    write_header(os, trace.processors, trace.data_words, trace.max_messages, /*seed=*/0,
                 trace.labels);
    for (StepIndex s = 0; s < trace.events.size(); ++s) {
        for (ProcId p = 0; p < trace.events[s].size(); ++p) {
            const model::Trace::Event& ev = trace.events[s][p];
            if (ev.ops == 0 && !ev.read_inbox && ev.messages.empty()) continue;
            os << "event " << s << " " << p << " " << ev.ops << " " << int{ev.read_inbox}
               << " " << ev.messages.size() << "\n";
            for (const Message& m : ev.messages) {
                os << "msg " << m.src << " " << m.dest << " " << m.payload0 << " "
                   << m.payload1 << "\n";
            }
        }
    }
    os << "end\n";
    return os.str();
}

bool parse_trace(const std::string& text, model::Trace* out, std::string* error) {
    LineReader reader(text);
    if (reader.eof() || reader.keyword() != "dbsp-trace") {
        return fail(error, "not a dbsp-trace file");
    }
    std::string version;
    reader.fields(version);
    if (version != "v2") return fail(error, "unsupported dbsp-trace version");
    reader.advance();

    Header h;
    if (!parse_header(reader, &h, error)) return false;
    model::Trace trace;
    trace.processors = h.v;
    trace.max_messages = h.max_messages;
    trace.data_words = h.data_words == 0 ? 2 : h.data_words;
    trace.labels = h.labels;
    if (trace.labels.back() != 0) return fail(error, "last label != 0");
    trace.events.assign(trace.labels.size(),
                        std::vector<model::Trace::Event>(trace.processors));

    while (!reader.eof() && reader.keyword() == "event") {
        StepIndex s = 0;
        ProcId p = 0;
        std::uint64_t ops = 0;
        int read_inbox = 0;
        std::size_t nmsgs = 0;
        if (!reader.fields(s, p, ops, read_inbox, nmsgs)) {
            return fail(error, "bad event line");
        }
        if (s >= trace.labels.size() || p >= trace.processors) {
            return fail(error, "event index out of range");
        }
        model::Trace::Event& ev = trace.events[s][p];
        ev.ops = ops;
        ev.read_inbox = read_inbox != 0;
        reader.advance();
        for (std::size_t k = 0; k < nmsgs; ++k) {
            if (reader.eof() || reader.keyword() != "msg") {
                return fail(error, "missing msg line");
            }
            Message m;
            if (!reader.fields(m.src, m.dest, m.payload0, m.payload1)) {
                return fail(error, "bad msg line");
            }
            if (m.dest >= trace.processors) return fail(error, "msg dest out of range");
            ev.messages.push_back(m);
            reader.advance();
        }
    }
    if (reader.eof() || reader.keyword() != "end") return fail(error, "missing end line");
    *out = std::move(trace);
    return true;
}

std::unique_ptr<model::Program> Repro::make_program() const {
    if (spec.has_value()) return std::make_unique<GeneratedProgram>(*spec);
    if (trace.has_value()) return std::make_unique<model::RecordedProgram>(*trace);
    return nullptr;
}

bool parse_repro(const std::string& text, Repro* out, std::string* error) {
    // Sniff the first non-blank, non-comment line.
    LineReader reader(text);
    if (reader.eof()) return fail(error, "empty repro");
    if (reader.keyword() == "dbsp-spec") {
        ProgramSpec spec;
        if (!parse_spec(text, &spec, error)) return false;
        out->spec = std::move(spec);
        out->trace.reset();
        return true;
    }
    if (reader.keyword() == "dbsp-trace") {
        model::Trace trace;
        if (!parse_trace(text, &trace, error)) return false;
        out->trace = std::move(trace);
        out->spec.reset();
        return true;
    }
    return fail(error, "unrecognized repro header: " + reader.keyword());
}

bool load_repro_file(const std::string& path, Repro* out, std::string* error) {
    std::ifstream in(path);
    if (!in) return fail(error, "cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_repro(buf.str(), out, error);
}

}  // namespace dbsp::check
