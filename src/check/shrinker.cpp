#include "check/shrinker.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::check {

using model::ProcId;
using model::StepIndex;

namespace {

/// Drop supersteps [begin, begin+count) and re-anchor the final label to 0.
ProgramSpec drop_steps(const ProgramSpec& spec, StepIndex begin, StepIndex count) {
    ProgramSpec out = spec;
    out.labels.erase(out.labels.begin() + static_cast<std::ptrdiff_t>(begin),
                     out.labels.begin() + static_cast<std::ptrdiff_t>(begin + count));
    out.events.erase(out.events.begin() + static_cast<std::ptrdiff_t>(begin),
                     out.events.begin() + static_cast<std::ptrdiff_t>(begin + count));
    if (!out.labels.empty()) out.labels.back() = 0;
    return out;
}

/// Restrict to the first half of the machine: keep processors [0, v/2) and
/// every event among them. Valid only when no surviving send crosses into
/// the dropped half (spec_valid re-checks cluster membership afterwards).
ProgramSpec halve_processors(const ProgramSpec& spec) {
    ProgramSpec out = spec;
    const std::uint64_t half = spec.processors / 2;
    out.processors = half;
    for (auto& step : out.events) {
        step.resize(half);
        for (auto& ev : step) {
            for (const ProgramSpec::Send& send : ev.sends) {
                if (send.dest >= half) return spec;  // crossing send; reject
            }
        }
    }
    for (unsigned& l : out.labels) l = std::min(l, half == 0 ? 0u : ilog2(half));
    return out;
}

}  // namespace

DiffReport check_spec(const ProgramSpec& spec, const DiffConfig& config) {
    GeneratedProgram program(spec);
    return check_program(program, config);
}

ShrinkResult shrink(const ProgramSpec& spec, const std::string& tag,
                    const DiffConfig& config, std::uint64_t max_attempts) {
    DBSP_REQUIRE(check_spec(spec, config).has_tag(tag));
    ShrinkResult result = shrink_with(
        spec,
        [&](const ProgramSpec& candidate) { return check_spec(candidate, config).has_tag(tag); },
        max_attempts);
    result.tag = tag;
    DBSP_ENSURE(check_spec(result.spec, config).has_tag(tag));
    return result;
}

ShrinkResult shrink_with(const ProgramSpec& spec,
                         const std::function<bool(const ProgramSpec&)>& predicate,
                         std::uint64_t max_attempts) {
    ShrinkResult result;
    result.spec = spec;

    const auto still_fails = [&](const ProgramSpec& candidate) -> bool {
        if (result.attempts >= max_attempts) return false;
        if (!spec_valid(candidate)) return false;
        ++result.attempts;
        const bool fails = predicate(candidate);
        if (fails) ++result.accepted;
        return fails;
    };

    bool progressed = true;
    while (progressed && result.attempts < max_attempts) {
        progressed = false;

        // Pass 1: bisect supersteps — try dropping runs, largest first.
        for (StepIndex run = result.spec.labels.size(); run >= 1; run /= 2) {
            for (StepIndex begin = 0; begin + run <= result.spec.labels.size();) {
                if (result.spec.labels.size() == run) break;  // keep >= 1 step
                const ProgramSpec candidate = drop_steps(result.spec, begin, run);
                if (still_fails(candidate)) {
                    result.spec = candidate;
                    progressed = true;
                } else {
                    begin += run;
                }
            }
            if (run == 1) break;
        }

        // Pass 2: drop individual messages.
        for (StepIndex s = 0; s < result.spec.labels.size(); ++s) {
            for (ProcId p = 0; p < result.spec.processors; ++p) {
                auto& sends = result.spec.events[s][p];
                for (std::size_t k = 0; k < sends.sends.size();) {
                    ProgramSpec candidate = result.spec;
                    auto& cs = candidate.events[s][p].sends;
                    cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(k));
                    if (still_fails(candidate)) {
                        result.spec = candidate;
                        progressed = true;
                    } else {
                        ++k;
                    }
                }
            }
        }

        // Pass 3: clear per-event flags and work.
        for (StepIndex s = 0; s < result.spec.labels.size(); ++s) {
            for (ProcId p = 0; p < result.spec.processors; ++p) {
                const ProgramSpec::Event& ev = result.spec.events[s][p];
                if (ev.extra_ops > 0) {
                    ProgramSpec candidate = result.spec;
                    candidate.events[s][p].extra_ops = 0;
                    if (still_fails(candidate)) {
                        result.spec = candidate;
                        progressed = true;
                    }
                }
                if (ev.touch_data) {
                    ProgramSpec candidate = result.spec;
                    candidate.events[s][p].touch_data = false;
                    if (still_fails(candidate)) {
                        result.spec = candidate;
                        progressed = true;
                    }
                }
                if (ev.read_inbox) {
                    ProgramSpec candidate = result.spec;
                    candidate.events[s][p].read_inbox = false;
                    if (still_fails(candidate)) {
                        result.spec = candidate;
                        progressed = true;
                    }
                }
            }
        }

        // Pass 4: shrink the geometry.
        while (result.spec.processors > 1) {
            const ProgramSpec candidate = halve_processors(result.spec);
            if (candidate.processors != result.spec.processors && still_fails(candidate)) {
                result.spec = candidate;
                progressed = true;
            } else {
                break;
            }
        }
        while (result.spec.data_words > 1) {
            ProgramSpec candidate = result.spec;
            --candidate.data_words;
            if (still_fails(candidate)) {
                result.spec = candidate;
                progressed = true;
            } else {
                break;
            }
        }
        while (result.spec.max_messages > 1) {
            ProgramSpec candidate = result.spec;
            --candidate.max_messages;
            if (still_fails(candidate)) {
                result.spec = candidate;
                progressed = true;
            } else {
                break;
            }
        }

        // Pass 5: canonicalize payloads toward small constants.
        for (StepIndex s = 0; s < result.spec.labels.size(); ++s) {
            for (ProcId p = 0; p < result.spec.processors; ++p) {
                for (std::size_t k = 0; k < result.spec.events[s][p].sends.size(); ++k) {
                    const ProgramSpec::Send& send = result.spec.events[s][p].sends[k];
                    if (send.payload0 == 0 && send.payload1 == 0) continue;
                    ProgramSpec candidate = result.spec;
                    candidate.events[s][p].sends[k].payload0 = 0;
                    candidate.events[s][p].sends[k].payload1 = 0;
                    if (still_fails(candidate)) {
                        result.spec = candidate;
                        progressed = true;
                    }
                }
            }
        }
    }

    return result;
}

}  // namespace dbsp::check
