#pragma once

/// \file shrinker.hpp
/// Automatic test-case reduction for differential-oracle failures.
///
/// Given a failing ProgramSpec, the shrinker searches for a smaller spec
/// that (a) still satisfies the executor discipline (spec_valid) and (b)
/// still fails the oracle *with the same failure tag* — so reduction cannot
/// wander from one bug to a different one. Reduction passes, iterated to a
/// fixed point:
///  * bisect the superstep sequence (drop contiguous runs, largest first);
///  * drop whole messages, then clear read_inbox/touch_data flags and zero
///    extra_ops per event;
///  * shrink the geometry (halve v onto the first cluster, drop trailing
///    data words, lower B to the live maximum) and canonicalize payloads
///    toward small constants.
///
/// Every candidate evaluation runs the full differential matrix, so
/// shrinking a failure costs (candidates tried) x (matrix cost); the passes
/// are ordered to discard the most work per accepted candidate first.

#include <cstdint>
#include <functional>

#include "check/differential.hpp"
#include "check/program_gen.hpp"

namespace dbsp::check {

struct ShrinkResult {
    ProgramSpec spec;         ///< minimal failing spec found
    std::string tag;          ///< failure tag being preserved
    std::uint64_t attempts = 0;  ///< candidate specs evaluated
    std::uint64_t accepted = 0;  ///< candidates that kept the failure
};

/// Reduce \p spec, preserving failure \p tag (which check_program(spec) must
/// currently produce). \p max_attempts bounds the total candidate
/// evaluations, so shrinking always terminates quickly even when every
/// reduction is rejected.
ShrinkResult shrink(const ProgramSpec& spec, const std::string& tag,
                    const DiffConfig& config = {}, std::uint64_t max_attempts = 2000);

/// Predicate-driven core of shrink(): reduce \p spec while \p still_fails
/// keeps holding. The predicate sees only spec_valid candidates and the
/// returned spec always satisfies it. Exposed so the reduction passes can be
/// exercised against synthetic predicates (and reused by custom oracles).
ShrinkResult shrink_with(const ProgramSpec& spec,
                         const std::function<bool(const ProgramSpec&)>& still_fails,
                         std::uint64_t max_attempts = 2000);

/// Convenience: run the oracle on a spec (wraps it in a GeneratedProgram).
DiffReport check_spec(const ProgramSpec& spec, const DiffConfig& config = {});

}  // namespace dbsp::check
