#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace dbsp {

LogLogFit fit_loglog(const std::vector<double>& xs, const std::vector<double>& ys) {
    DBSP_REQUIRE(xs.size() == ys.size());
    DBSP_REQUIRE(xs.size() >= 2);
    const std::size_t n = xs.size();
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        DBSP_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0);
        const double lx = std::log(xs[i]);
        const double ly = std::log(ys[i]);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
        syy += ly * ly;
    }
    const double dn = static_cast<double>(n);
    const double denom = dn * sxx - sx * sx;
    LogLogFit fit;
    // denom = n * variance of the log-xs: it vanishes when all xs are equal
    // (and can round to a tiny non-zero either side of 0), leaving the slope
    // undefined. Return the degenerate horizontal fit through the mean
    // instead of dividing — a NaN here used to poison every downstream bench
    // report silently. The threshold is relative to sxx so it scales with
    // the magnitude of the data.
    if (std::abs(denom) <= 1e-12 * std::max(1.0, dn * sxx)) {
        fit.slope = 0.0;
        fit.intercept = sy / dn;
        fit.r_squared = 0.0;
        fit.max_residual = 0.0;
        return fit;
    }
    fit.slope = (dn * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / dn;
    const double ss_tot = syy - sy * sy / dn;
    double ss_res = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double pred = fit.intercept + fit.slope * std::log(xs[i]);
        const double resid = std::log(ys[i]) - pred;
        ss_res += resid * resid;
        fit.max_residual = std::max(fit.max_residual, std::abs(resid));
    }
    fit.r_squared = (ss_tot > 0) ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

double mean(const std::vector<double>& v) {
    DBSP_REQUIRE(!v.empty());
    double s = 0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
}

double geometric_mean(const std::vector<double>& v) {
    DBSP_REQUIRE(!v.empty());
    double s = 0;
    for (double x : v) {
        DBSP_REQUIRE(x > 0.0);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(v.size()));
}

double spread(const std::vector<double>& v) {
    DBSP_REQUIRE(!v.empty());
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    DBSP_REQUIRE(*lo > 0.0);
    return *hi / *lo;
}

}  // namespace dbsp
