#pragma once

/// \file table.hpp
/// ASCII table printer for the benchmark harness. Every experiment binary
/// prints one or more of these tables so that bench_output.txt reads like the
/// paper's evaluation section: one row per parameter point, columns for
/// measured cost, predicted cost and their ratio.

#include <string>
#include <vector>

namespace dbsp {

/// A fixed-schema text table. Cells are preformatted strings; the printer
/// right-aligns numbers-looking cells and pads columns to the widest entry.
class Table {
public:
    /// Create a table with the given column headers.
    explicit Table(std::vector<std::string> headers);

    /// Append one row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    /// Convenience: format doubles/integers into a row.
    void add_row_values(const std::vector<double>& values);

    /// Render the table (header, rule, rows) as a string.
    std::string str() const;

    /// Render to stdout.
    void print() const;

    std::size_t rows() const { return rows_.size(); }

    /// Format a double compactly: integers without decimals, small values in
    /// fixed point, large values in scientific notation.
    static std::string fmt(double v);

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace dbsp
