#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/contracts.hpp"

namespace dbsp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    DBSP_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
    DBSP_REQUIRE(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) cells.push_back(fmt(v));
    add_row(std::move(cells));
}

std::string Table::fmt(double v) {
    char buf[64];
    const double av = std::fabs(v);
    if (v == std::floor(v) && av < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", v);
    } else if (av >= 1e7 || (av < 1e-3 && av > 0)) {
        std::snprintf(buf, sizeof buf, "%.3e", v);
    } else {
        std::snprintf(buf, sizeof buf, "%.4f", v);
    }
    return buf;
}

std::string Table::str() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "| " : " | ");
            // Right-align everything for numeric readability.
            out << std::string(widths[c] - row[c].size(), ' ') << row[c];
        }
        out << " |\n";
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    out << "-|\n";
    for (const auto& row : rows_) emit_row(row);
    return out.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace dbsp
