#pragma once

/// \file contracts.hpp
/// Lightweight precondition / postcondition / invariant checks in the style
/// of the C++ Core Guidelines' Expects()/Ensures(). Violations abort with a
/// message; checks are active in all build types because the simulators are
/// correctness-critical reference implementations, not hot production loops.

#include <cstdio>
#include <cstdlib>

namespace dbsp::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
    std::fprintf(stderr, "%s violated: (%s) at %s:%d\n", kind, expr, file, line);
    std::abort();
}

}  // namespace dbsp::detail

/// Precondition: argument/state requirements at function entry.
#define DBSP_REQUIRE(expr)                                                       \
    ((expr) ? static_cast<void>(0)                                               \
            : ::dbsp::detail::contract_failure("Precondition", #expr, __FILE__,  \
                                               __LINE__))

/// Postcondition: guarantees at function exit.
#define DBSP_ENSURE(expr)                                                        \
    ((expr) ? static_cast<void>(0)                                               \
            : ::dbsp::detail::contract_failure("Postcondition", #expr, __FILE__, \
                                               __LINE__))

/// Internal consistency condition.
#define DBSP_ASSERT(expr)                                                        \
    ((expr) ? static_cast<void>(0)                                               \
            : ::dbsp::detail::contract_failure("Invariant", #expr, __FILE__,     \
                                               __LINE__))
