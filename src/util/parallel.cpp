#include "util/parallel.hpp"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "report/metrics.hpp"

namespace dbsp::util {

std::optional<std::size_t> parse_thread_count(std::string_view value) {
    std::size_t n = 0;
    const char* end = value.data() + value.size();
    const auto [ptr, ec] = std::from_chars(value.data(), end, n, 10);
    if (ec != std::errc{} || ptr != end || n == 0) return std::nullopt;
    return n;
}

std::size_t default_threads() {
    static std::once_flag warned;
    for (const char* var : {"DBSP_BENCH_THREADS", "DBSP_THREADS"}) {
        if (const char* env = std::getenv(var)) {
            if (const auto n = parse_thread_count(env)) return *n;
            std::call_once(warned, [var, env] {
                std::fprintf(stderr,
                             "dbsp: warning: ignoring %s=\"%s\" (expected a "
                             "positive integer); using hardware concurrency\n",
                             var, env);
            });
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
    if (n == 0) return;
    if (threads == 0) threads = default_threads();
    if (threads > n) threads = n;
    // Utilization telemetry, once per call (never per task).
    static auto& metric_calls = report::metric_counter("parallel.for_calls");
    static auto& metric_tasks = report::metric_counter("parallel.tasks");
    static auto& metric_workers = report::metric_histogram("parallel.workers");
    metric_calls.add();
    metric_tasks.add(n);
    metric_workers.observe(threads);
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&] {
        while (true) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
    worker();
    for (auto& th : pool) th.join();
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dbsp::util
