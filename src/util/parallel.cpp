#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "report/metrics.hpp"

namespace dbsp::util {

std::optional<std::size_t> parse_thread_count(std::string_view value) {
    std::size_t n = 0;
    const char* end = value.data() + value.size();
    const auto [ptr, ec] = std::from_chars(value.data(), end, n, 10);
    if (ec != std::errc{} || ptr != end || n == 0) return std::nullopt;
    return n;
}

std::size_t default_threads() {
    static std::once_flag warned;
    for (const char* var : {"DBSP_BENCH_THREADS", "DBSP_THREADS"}) {
        if (const char* env = std::getenv(var)) {
            if (const auto n = parse_thread_count(env)) return *n;
            std::call_once(warned, [var, env] {
                std::fprintf(stderr,
                             "dbsp: warning: ignoring %s=\"%s\" (expected a "
                             "positive integer); using hardware concurrency\n",
                             var, env);
            });
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

namespace {

/// Set while a thread is running pool work (workers permanently, callers for
/// the duration of their own job). Nested parallel_for calls from inside a
/// job run inline instead of re-entering the pool — composing an outer
/// benchmark sweep with executor-internal sharding must not oversubscribe.
thread_local bool t_in_parallel_region = false;

/// Lazily grown pool of persistent workers. One job runs at a time
/// (serialized by job_mutex_); the caller participates, and exactly
/// min(threads - 1, pool size) workers join it via the slot counter, so an
/// explicit `threads = k` uses k participants even on a wide machine —
/// scaling measurements stay honest.
class Pool {
public:
    static Pool& instance() {
        static Pool pool;
        return pool;
    }

    PoolStats stats() {
        std::lock_guard<std::mutex> lock(mutex_);
        return {workers_.size(), busy_};
    }

    void run(std::size_t n, std::size_t nchunks, std::size_t grain, void* ctx,
             detail::ChunkFn fn, std::size_t threads) {
        std::lock_guard<std::mutex> job(job_mutex_);
        ensure_workers(threads - 1);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            n_ = n;
            nchunks_ = nchunks;
            grain_ = grain;
            ctx_ = ctx;
            fn_ = fn;
            error_ = nullptr;
            next_.store(0, std::memory_order_relaxed);
            const std::size_t helpers = std::min(threads - 1, workers_.size());
            slots_.store(static_cast<long>(helpers), std::memory_order_relaxed);
            ++epoch_;
        }
        work_cv_.notify_all();

        const bool was_inside = t_in_parallel_region;
        t_in_parallel_region = true;
        drain();
        t_in_parallel_region = was_inside;

        {
            std::unique_lock<std::mutex> lock(mutex_);
            done_cv_.wait(lock, [&] { return busy_ == 0; });
            // Workers that wake late for this epoch must find no free slot.
            slots_.store(0, std::memory_order_relaxed);
        }
        if (error_) std::rethrow_exception(error_);
    }

private:
    Pool() = default;

    ~Pool() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (auto& worker : workers_) worker.join();
    }

    void ensure_workers(std::size_t want) {
        std::lock_guard<std::mutex> lock(mutex_);
        while (workers_.size() < want) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }

    void worker_loop() {
        t_in_parallel_region = true;
        std::unique_lock<std::mutex> lock(mutex_);
        std::uint64_t seen = 0;
        while (true) {
            work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
            if (stop_) return;
            seen = epoch_;
            if (slots_.fetch_sub(1, std::memory_order_acquire) <= 0) continue;
            ++busy_;
            lock.unlock();
            drain();
            lock.lock();
            if (--busy_ == 0) done_cv_.notify_all();
        }
    }

    /// Claim and run chunks until the job's counter is exhausted. Captures
    /// the first exception; later chunks still run so the job always drains.
    void drain() {
        while (true) {
            const std::size_t k = next_.fetch_add(1, std::memory_order_relaxed);
            if (k >= nchunks_) return;
            const std::size_t begin = k * grain_;
            const std::size_t end = std::min(n_, begin + grain_);
            try {
                fn_(ctx_, begin, end);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex_);
                if (!error_) error_ = std::current_exception();
            }
        }
    }

    std::mutex job_mutex_;  ///< serializes top-level jobs

    std::mutex mutex_;  ///< guards epoch_/busy_/stop_/workers_ + job fields
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_;
    std::uint64_t epoch_ = 0;
    std::size_t busy_ = 0;
    bool stop_ = false;

    // Current job (written under mutex_ before the epoch bump publishes it).
    std::size_t n_ = 0;
    std::size_t nchunks_ = 0;
    std::size_t grain_ = 1;
    void* ctx_ = nullptr;
    detail::ChunkFn fn_ = nullptr;
    std::atomic<std::size_t> next_{0};
    std::atomic<long> slots_{0};
    std::mutex error_mutex_;
    std::exception_ptr error_;
};

}  // namespace

PoolStats pool_stats() { return Pool::instance().stats(); }

namespace detail {

void parallel_for_impl(std::size_t n, std::size_t grain, void* ctx, ChunkFn fn,
                       std::size_t threads) {
    if (n == 0) return;
    if (threads == 0) threads = default_threads();
    const std::size_t nchunks = (n + grain - 1) / grain;
    if (threads > nchunks) threads = nchunks;

    // Utilization telemetry, once per call (never per task).
    static auto& metric_calls = report::metric_counter("parallel.for_calls");
    static auto& metric_tasks = report::metric_counter("parallel.tasks");
    static auto& metric_workers = report::metric_histogram("parallel.workers");
    metric_calls.add();
    metric_tasks.add(n);
    metric_workers.observe(threads);

    if (threads <= 1 || t_in_parallel_region) {
        for (std::size_t k = 0; k < nchunks; ++k) {
            const std::size_t begin = k * grain;
            fn(ctx, begin, std::min(n, begin + grain));
        }
        return;
    }
    Pool::instance().run(n, nchunks, grain, ctx, fn, threads);
}

}  // namespace detail

}  // namespace dbsp::util
