#include "util/bits.hpp"

namespace dbsp {

namespace {

/// Spread the low 32 bits of x so that bit k moves to bit 2k.
std::uint64_t spread_bits(std::uint64_t x) noexcept {
    x &= 0xffffffffull;
    x = (x | (x << 16)) & 0x0000ffff0000ffffull;
    x = (x | (x << 8)) & 0x00ff00ff00ff00ffull;
    x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0full;
    x = (x | (x << 2)) & 0x3333333333333333ull;
    x = (x | (x << 1)) & 0x5555555555555555ull;
    return x;
}

/// Inverse of spread_bits: compact every other bit into the low 32 bits.
std::uint32_t compact_bits(std::uint64_t x) noexcept {
    x &= 0x5555555555555555ull;
    x = (x | (x >> 1)) & 0x3333333333333333ull;
    x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0full;
    x = (x | (x >> 4)) & 0x00ff00ff00ff00ffull;
    x = (x | (x >> 8)) & 0x0000ffff0000ffffull;
    x = (x | (x >> 16)) & 0x00000000ffffffffull;
    return static_cast<std::uint32_t>(x);
}

}  // namespace

std::uint64_t morton_encode(std::uint32_t row, std::uint32_t col) noexcept {
    return (spread_bits(row) << 1) | spread_bits(col);
}

RowCol morton_decode(std::uint64_t code) noexcept {
    return RowCol{compact_bits(code >> 1), compact_bits(code)};
}

}  // namespace dbsp
