#pragma once

/// \file parallel.hpp
/// Minimal persistent-pool parallel-for shared by the benchmark harness and
/// the executors. Benchmarks use it across independent (access function,
/// size) sweep points; the simulators use it to run the independent
/// submachines of a D-BSP superstep concurrently (see
/// docs in EXPERIMENTS.md: parallelism never changes what is charged — every
/// executor folds costs through per-shard accumulators merged in a fixed
/// order, so results are bit-identical at every thread count).
///
/// The callable is a template parameter (no std::function allocation or
/// per-index indirect call on the hot path); the type-erased trampoline
/// hands contiguous index blocks to the pool.

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>
#include <type_traits>

namespace dbsp::util {

/// Strictly parse a thread-count override value: the entire string must be a
/// positive base-10 integer (no sign, no trailing garbage, no empty string).
/// Returns nullopt on any violation. Exposed for unit testing of the
/// DBSP_BENCH_THREADS / DBSP_THREADS handling.
std::optional<std::size_t> parse_thread_count(std::string_view value);

/// Number of worker threads parallel_for uses when `threads == 0`:
/// the value of DBSP_BENCH_THREADS (or DBSP_THREADS) if set and valid per
/// parse_thread_count, otherwise the hardware concurrency (at least 1).
/// An invalid value (e.g. "abc", "4x", "0") is ignored with a one-time
/// warning on stderr.
std::size_t default_threads();

/// Live occupancy snapshot of the persistent worker pool, for the telemetry
/// layer (dbsp-telemetry-v1 "pool" section). `workers` counts threads ever
/// spawned (the pool grows lazily and never shrinks); `busy` counts workers
/// currently inside a job. The caller participating in a job is not counted
/// in either. Values are instantaneous and advisory — never used to make
/// scheduling decisions.
struct PoolStats {
    std::size_t workers = 0;
    std::size_t busy = 0;
};
PoolStats pool_stats();

namespace detail {

/// Type-erased chunk runner: invoke the callable at `ctx` for [begin, end).
using ChunkFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

/// Dispatch `n` indices in blocks of `grain` to up to `threads` participants
/// (callers + pool workers). Runs inline when threads <= 1, when only one
/// block exists, or when already inside a pool worker (nested calls never
/// oversubscribe). The first exception thrown by any block is rethrown on
/// the caller's thread after the job drains.
void parallel_for_impl(std::size_t n, std::size_t grain, void* ctx, ChunkFn fn,
                       std::size_t threads);

}  // namespace detail

/// Run body(i) for i in [0, n) on up to `threads` workers (0 = default).
/// Index blocks are handed out through an atomic counter, so the assignment
/// of indices to threads is dynamic but every index runs exactly once.
template <typename F>
void parallel_for(std::size_t n, F&& body, std::size_t threads = 0) {
    using Fn = std::remove_reference_t<F>;
    detail::parallel_for_impl(
        n, 1, const_cast<std::remove_const_t<Fn>*>(std::addressof(body)),
        [](void* ctx, std::size_t begin, std::size_t end) {
            Fn& f = *static_cast<Fn*>(ctx);
            for (std::size_t i = begin; i < end; ++i) f(i);
        },
        threads);
}

/// Blocked variant: body(begin, end) receives whole index ranges of up to
/// `block` indices each. Use when per-index work is tiny and the body can
/// amortize setup across a contiguous run (the executors' shard loops).
template <typename F>
void parallel_for_blocked(std::size_t n, std::size_t block, F&& body,
                          std::size_t threads = 0) {
    using Fn = std::remove_reference_t<F>;
    detail::parallel_for_impl(
        n, block > 0 ? block : 1,
        const_cast<std::remove_const_t<Fn>*>(std::addressof(body)),
        [](void* ctx, std::size_t begin, std::size_t end) {
            (*static_cast<Fn*>(ctx))(begin, end);
        },
        threads);
}

}  // namespace dbsp::util
