#pragma once

/// \file parallel.hpp
/// Minimal thread-pool parallel-for used by the benchmark harness. The
/// simulators themselves stay single-threaded (the cost models are
/// sequential by definition); parallelism only exploits the independence of
/// distinct (access function, size) sweep points.

#include <cstddef>
#include <functional>
#include <optional>
#include <string_view>

namespace dbsp::util {

/// Strictly parse a thread-count override value: the entire string must be a
/// positive base-10 integer (no sign, no trailing garbage, no empty string).
/// Returns nullopt on any violation. Exposed for unit testing of the
/// DBSP_BENCH_THREADS / DBSP_THREADS handling.
std::optional<std::size_t> parse_thread_count(std::string_view value);

/// Number of worker threads parallel_for uses when `threads == 0`:
/// the value of DBSP_BENCH_THREADS (or DBSP_THREADS) if set and valid per
/// parse_thread_count, otherwise the hardware concurrency (at least 1).
/// An invalid value (e.g. "abc", "4x", "0") is ignored with a one-time
/// warning on stderr.
std::size_t default_threads();

/// Run body(i) for i in [0, n) on up to `threads` workers (0 = default).
/// Indices are handed out through an atomic counter, so the assignment of
/// indices to threads is dynamic but every index runs exactly once. The
/// first exception thrown by any body is rethrown on the caller's thread
/// after all workers have joined.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace dbsp::util
