#pragma once

/// \file parallel.hpp
/// Minimal thread-pool parallel-for used by the benchmark harness. The
/// simulators themselves stay single-threaded (the cost models are
/// sequential by definition); parallelism only exploits the independence of
/// distinct (access function, size) sweep points.

#include <cstddef>
#include <functional>

namespace dbsp::util {

/// Number of worker threads parallel_for uses when `threads == 0`:
/// the value of DBSP_BENCH_THREADS (or DBSP_THREADS) if set and positive,
/// otherwise the hardware concurrency (at least 1).
std::size_t default_threads();

/// Run body(i) for i in [0, n) on up to `threads` workers (0 = default).
/// Indices are handed out through an atomic counter, so the assignment of
/// indices to threads is dynamic but every index runs exactly once. The
/// first exception thrown by any body is rethrown on the caller's thread
/// after all workers have joined.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace dbsp::util
