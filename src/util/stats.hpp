#pragma once

/// \file stats.hpp
/// Small statistics helpers used by the benchmark harness to compare measured
/// simulated costs against the paper's closed-form predictions: log-log slope
/// fits (growth-exponent estimation), ratio summaries, and geometric means.

#include <cstddef>
#include <vector>

namespace dbsp {

/// Result of an ordinary least-squares fit of log(y) against log(x).
/// For a cost following y = c * x^e, `slope` estimates e and
/// exp(`intercept`) estimates c.
struct LogLogFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
    /// Largest |log(y) - fitted log(y)| over the sample points: the worst
    /// multiplicative deviation is exp(max_residual). 0 for the degenerate
    /// all-equal-xs fit (no line was fitted, so residuals are not meaningful).
    double max_residual = 0.0;
};

/// Least-squares fit of log(ys[i]) vs log(xs[i]). Requires xs.size() ==
/// ys.size() >= 2 and all values strictly positive. When the xs are all
/// (numerically) equal the slope is undefined; the fit degenerates to the
/// horizontal line through the mean of log(ys) with r_squared = 0 instead of
/// returning NaNs.
LogLogFit fit_loglog(const std::vector<double>& xs, const std::vector<double>& ys);

/// Arithmetic mean; requires non-empty input.
double mean(const std::vector<double>& v);

/// Geometric mean; requires non-empty input of positive values.
double geometric_mean(const std::vector<double>& v);

/// max(v) / min(v); requires non-empty input of positive values. A spread
/// close to 1 across a parameter sweep is the empirical signature of a
/// Theta(.) bound: measured / predicted stays within a constant band.
double spread(const std::vector<double>& v);

}  // namespace dbsp
