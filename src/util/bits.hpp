#pragma once

/// \file bits.hpp
/// Bit-manipulation helpers shared by the machine models: power-of-two
/// arithmetic, integer logarithms, bit reversal and Morton (Z-order) codes.
/// Morton codes give the quadrant-recursive matrix layout used by the D-BSP
/// matrix-multiplication algorithm (Fig. 3 of the paper), where the top two
/// bits of a processor index select its 2-cluster/quadrant.

#include <cstdint>

namespace dbsp {

/// True iff \p x is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)); requires x > 0.
constexpr unsigned ilog2(std::uint64_t x) noexcept {
    unsigned r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/// Smallest power of two >= x; requires x >= 1.
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
    std::uint64_t p = 1;
    while (p < x) p <<= 1;
    return p;
}

/// Reverse the low \p bits bits of \p x (classic FFT index permutation).
constexpr std::uint64_t reverse_bits(std::uint64_t x, unsigned bits) noexcept {
    std::uint64_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | ((x >> i) & 1u);
    }
    return r;
}

/// Interleave the low 32 bits of \p row and \p col into a Morton code:
/// bit 2k of the result is bit k of \p col, bit 2k+1 is bit k of \p row.
std::uint64_t morton_encode(std::uint32_t row, std::uint32_t col) noexcept;

/// Inverse of morton_encode.
struct RowCol {
    std::uint32_t row;
    std::uint32_t col;
};
RowCol morton_decode(std::uint64_t code) noexcept;

/// Integer power base^exp (no overflow checking; callers use small values).
constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) noexcept {
    std::uint64_t r = 1;
    while (exp-- > 0) r *= base;
    return r;
}

}  // namespace dbsp
