#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation. All experiments in the
/// repository are reproducible: the same seed yields the same workload on any
/// platform, so simulated model costs are bit-identical across runs.

#include <cstdint>

#include "util/contracts.hpp"

namespace dbsp {

/// SplitMix64: tiny, high-quality 64-bit PRNG (Steele et al.), used both
/// directly and to seed derived streams.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform value in [0, bound); requires bound > 0.
    std::uint64_t next_below(std::uint64_t bound) noexcept {
        DBSP_REQUIRE(bound > 0);
        // Rejection sampling to avoid modulo bias for non-power-of-two bounds.
        const std::uint64_t limit = ~0ull - (~0ull % bound + 1) % bound;
        std::uint64_t v = next();
        while (v > limit) v = next();
        return v % bound;
    }

    /// Uniform double in [0, 1).
    double next_double() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

private:
    std::uint64_t state_;
};

}  // namespace dbsp
