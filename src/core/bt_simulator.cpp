#include "core/bt_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "bt/primitives.hpp"
#include "bt/sort.hpp"
#include "bt/transpose.hpp"
#include "model/superstep_exec.hpp"
#include "report/metrics.hpp"
#include "util/bits.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace dbsp::core {

namespace {

using model::Addr;
using model::ClusterTree;
using model::ContextAccessor;
using model::ContextLayout;
using model::ProcId;
using model::StepIndex;
using model::Word;

/// Serialized element format (Section 5.2.1): constant-size records of
/// kRecWords words, ordered lexicographically by (key0, key1).
///   key0 = owning/destination processor
///   key1 = class and sub-ordering:
///     data words:  (0 << 60) | pair index
///     messages:    (1 << 60) | (prio << 41) | (src << 21) | seq
///       prio 0: message already in the inbox before delivery (seq = slot);
///       prio 1: newly sent message (ordered by sender, send sequence).
///   w0, w1, w2 = payload (two data words, or src/payload0/payload1).
constexpr std::uint64_t kRecWords = 5;
constexpr Word kClassShift = 60;
constexpr Word kPrioShift = 41;
constexpr Word kSrcShift = 21;

Word data_key1(std::uint64_t pair_index) { return pair_index; }
Word msg_key1(Word prio, Word src, Word seq) {
    return (Word{1} << kClassShift) | (prio << kPrioShift) | (src << kSrcShift) | seq;
}

constexpr std::int64_t kEmptySlot = -1;

/// Context accessor for COMPUTE's base case, charging into a shard account
/// (and trace buffer when Traced) with exactly bt::Machine's accounting —
/// including the independent cost/word_access decomposition of read_range —
/// at the *virtual* address (0: the top of memory, where the serial schedule
/// executes the context) while the data stays in place at the *physical*
/// base (the context's entry slot). The BT counterpart of HmmShardAccessor.
template <bool Traced>
class BtShardAccessor final : public ContextAccessor {
public:
    BtShardAccessor(bt::Machine& m, bt::ShardAccount& account, trace::BufferSink* buffer,
                    Addr vbase, Addr pbase, std::size_t mu)
        : m_(m), account_(account), buffer_(buffer), vbase_(vbase), pbase_(pbase),
          mu_(mu) {}

    Word get(std::size_t index) const override {
        DBSP_REQUIRE(index < mu_);
        const Addr vx = vbase_ + index;
        DBSP_REQUIRE(vx < m_.capacity() && pbase_ + index < m_.capacity());
        const double delta = m_.table().cost(vx);
        account_.cost += delta;
        account_.word_access += delta;
        if constexpr (Traced) buffer_->access(vx, delta);
        return m_.raw()[pbase_ + index];
    }

    void set(std::size_t index, Word value) override {
        DBSP_REQUIRE(index < mu_);
        const Addr vx = vbase_ + index;
        DBSP_REQUIRE(vx < m_.capacity() && pbase_ + index < m_.capacity());
        const double delta = m_.table().cost(vx);
        account_.cost += delta;
        account_.word_access += delta;
        if constexpr (Traced) buffer_->access(vx, delta);
        m_.raw()[pbase_ + index] = value;
    }

    void get_range(std::size_t index, std::span<Word> out) const override {
        DBSP_REQUIRE(index + out.size() <= mu_);
        if (out.empty()) return;
        const Addr vx = vbase_ + index;
        DBSP_REQUIRE(vx + out.size() <= m_.capacity() &&
                     pbase_ + index + out.size() <= m_.capacity());
        account_.cost = m_.table().accumulate(vx, vx + out.size(), account_.cost);
        account_.word_access =
            m_.table().accumulate(vx, vx + out.size(), account_.word_access);
        ++account_.range_ops;
        account_.range_words += out.size();
        if constexpr (Traced) buffer_->access_range(m_.table().prefix(), vx, vx + out.size());
        const auto raw = m_.raw();
        std::copy_n(raw.begin() + static_cast<std::ptrdiff_t>(pbase_ + index), out.size(),
                    out.begin());
    }

    void set_range(std::size_t index, std::span<const Word> values) override {
        DBSP_REQUIRE(index + values.size() <= mu_);
        if (values.empty()) return;
        const Addr vx = vbase_ + index;
        DBSP_REQUIRE(vx + values.size() <= m_.capacity() &&
                     pbase_ + index + values.size() <= m_.capacity());
        account_.cost = m_.table().accumulate(vx, vx + values.size(), account_.cost);
        account_.word_access =
            m_.table().accumulate(vx, vx + values.size(), account_.word_access);
        ++account_.range_ops;
        account_.range_words += values.size();
        if constexpr (Traced) {
            buffer_->access_range(m_.table().prefix(), vx, vx + values.size());
        }
        const auto raw = m_.raw();
        std::copy_n(values.begin(), values.size(),
                    raw.begin() + static_cast<std::ptrdiff_t>(pbase_ + index));
    }

private:
    bt::Machine& m_;
    bt::ShardAccount& account_;
    trace::BufferSink* buffer_;  ///< non-null iff Traced
    Addr vbase_;                 ///< charged addresses
    Addr pbase_;                 ///< data addresses
    std::size_t mu_;
};

/// A parsed processor context (executor bookkeeping; all words it carries
/// were charged when read from the machine).
struct ParsedContext {
    std::vector<Word> data;
    std::vector<model::Message> outgoing;                  ///< dest/payloads
    std::vector<std::array<Word, 3>> old_inbox;            ///< src, p0, p1
};

/// The whole simulation state for one run.
class BtSim {
public:
    BtSim(const model::AccessFunction& f, model::Program& program,
          const BtSimulator::Options& options)
        : program_(program), options_(options), tree_(program.num_processors()),
          layout_(program.layout()), v_(program.num_processors()),
          mu_(layout_.context_words()), d_(layout_.data_words), b_(layout_.max_messages),
          dr_((d_ + 1) / 2), max_rec_per_proc_(dr_ + 2 * b_),
          pad_(compute_pad(f, v_, mu_)),
          total_slots_(2 * v_ + gap_slots(v_) + 2),
          machine_(f, pad_ + total_slots_ * mu_ + 64),
          proc_of_slot_(total_slots_, kEmptySlot), slot_of_proc_(v_), sigma_(v_, 0),
          threads_(options.threads == 0 ? util::default_threads() : options.threads) {
        machine_.set_trace(options_.trace);
    }

    BtSimResult run();

private:
    // --- geometry -----------------------------------------------------------
    static Addr compute_pad(const model::AccessFunction& f, std::uint64_t v, std::size_t mu);

    Addr slot_addr(std::uint64_t slot) const { return pad_ + slot * mu_; }

    std::uint64_t rec_region_words(std::uint64_t csize) const {
        return csize * max_rec_per_proc_ * kRecWords;
    }
    /// Slots of gap needed for sorting a csize-cluster: records + scratch.
    std::uint64_t gap_slots(std::uint64_t csize) const {
        return (2 * rec_region_words(csize) + mu_ - 1) / mu_ + 1;
    }

    // --- slot bookkeeping ---------------------------------------------------
    void move_slot_run(std::uint64_t src, std::uint64_t dst, std::uint64_t n);
    void swap_slot_runs(std::uint64_t a, std::uint64_t b, std::uint64_t n,
                        std::uint64_t buf);
    void shift_slots_right(std::uint64_t begin, std::uint64_t count, std::uint64_t by);
    void shift_slots_left(std::uint64_t begin, std::uint64_t count, std::uint64_t by);

    // --- the paper's subroutines -------------------------------------------
    void unpack(unsigned i);
    void pack(unsigned i);
    void compute(StepIndex s, std::uint64_t n);
    void compute_walk(StepIndex s, std::uint64_t n);
    void deliver_sort(unsigned label, ProcId first, std::uint64_t csize);
    bool deliver_transpose(ProcId first, std::uint64_t csize, std::uint64_t grain);

    // --- streaming helpers --------------------------------------------------
    std::uint64_t stream_chunk(Addr deepest, std::uint64_t share,
                               std::uint64_t align) const;
    ParsedContext parse_context(bt::StagedReader& rd) const;
    std::uint64_t serialize_cluster(ProcId first, std::uint64_t csize, Addr dst);
    void deserialize_cluster(ProcId first, std::uint64_t csize, Addr src,
                             std::uint64_t n_rec);

    void check_round_invariants(ProcId first, std::uint64_t csize, StepIndex s) const;

    model::Program& program_;
    BtSimulator::Options options_;
    ClusterTree tree_;
    ContextLayout layout_;
    std::uint64_t v_;
    std::size_t mu_, d_, b_, dr_, max_rec_per_proc_;
    Addr pad_;
    std::uint64_t total_slots_;
    bt::Machine machine_;
    std::vector<std::int64_t> proc_of_slot_;
    std::vector<std::uint64_t> slot_of_proc_;
    std::vector<StepIndex> sigma_;
    std::size_t threads_;
    BtSimResult result_;
    std::uint64_t last_outgoing_ = 0;  ///< messages emitted by the last serialize

    /// One entry of COMPUTE's charge walk: the serial schedule as data. A
    /// kTransfer op is a block_copy whose charges will be replayed without
    /// moving data (the schedule is a net identity on memory); a kExec op is
    /// one processor's step execution, run in place at its entry slot.
    struct ComputeOp {
        enum Kind : std::uint8_t { kTransfer, kExec } kind;
        Addr src = 0;                  ///< kTransfer
        Addr dst = 0;                  ///< kTransfer
        std::uint64_t len = 0;         ///< kTransfer
        ProcId exec_proc = 0;          ///< kExec
        std::uint64_t exec_slot = 0;   ///< kExec: slot at COMPUTE entry
    };
    std::vector<ComputeOp> walk_ops_;
    std::vector<std::uint64_t> entry_slot_;  ///< slot_of_proc_ at COMPUTE entry
    bool walking_ = false;  ///< move_slot_run records ops instead of copying
};

Addr BtSim::compute_pad(const model::AccessFunction& f, std::uint64_t v, std::size_t mu) {
    // Rough capacity estimate (pad excluded; only feeds f, so slack is fine).
    const double est_cap = static_cast<double>(mu) * static_cast<double>(v) * 16.0;
    const auto f_est = static_cast<std::uint64_t>(std::max(1.0, f.at(est_cap)));
    const std::uint64_t chunk_est = bt::pow2_at_most(std::max<std::uint64_t>(f_est, 8));
    // Room for ~6 concurrent stream stages and a few whole contexts. Kept as
    // small as possible: every slot address is offset by the pad, so an
    // oversized pad inflates the f()-latency of all shallow operations. The
    // transpose tile tower also stages here and simply clamps its tile size
    // to what fits.
    std::uint64_t pad = std::max<std::uint64_t>({8 * chunk_est, 8 * mu, 4096});
    pad = next_pow2(pad);
    // Never let the pad dominate memory: beyond this it only buys constant
    // factors while distorting every depth.
    const std::uint64_t cap = std::max<std::uint64_t>(4096, next_pow2(mu * v));
    return std::min(pad, cap);
}

void BtSim::move_slot_run(std::uint64_t src, std::uint64_t dst, std::uint64_t n) {
    if (n == 0 || src == dst) return;
    if (walking_) {
        walk_ops_.push_back(
            {ComputeOp::kTransfer, slot_addr(src), slot_addr(dst), n * mu_, 0, 0});
    } else {
        machine_.block_copy(slot_addr(src), slot_addr(dst), n * mu_);
    }
    for (std::uint64_t k = 0; k < n; ++k) {
        const std::int64_t p = proc_of_slot_[src + k];
        proc_of_slot_[dst + k] = p;
        proc_of_slot_[src + k] = kEmptySlot;
        if (p != kEmptySlot) slot_of_proc_[static_cast<std::uint64_t>(p)] = dst + k;
    }
}

void BtSim::swap_slot_runs(std::uint64_t a, std::uint64_t b, std::uint64_t n,
                           std::uint64_t buf) {
    if (a == b || n == 0) return;
    // Three block transfers through the adjacent buffer space (Section 5.2.2).
    move_slot_run(a, buf, n);
    move_slot_run(b, a, n);
    move_slot_run(buf, b, n);
}

void BtSim::shift_slots_right(std::uint64_t begin, std::uint64_t count, std::uint64_t by) {
    // Overlapping shift decomposed into disjoint block copies of length <= by,
    // processed from the deep end.
    std::uint64_t off = count;
    while (off > 0) {
        const std::uint64_t step = std::min(by, off);
        off -= step;
        move_slot_run(begin + off, begin + off + by, step);
    }
}

void BtSim::shift_slots_left(std::uint64_t begin, std::uint64_t count, std::uint64_t by) {
    std::uint64_t off = 0;
    while (off < count) {
        const std::uint64_t step = std::min(by, count - off);
        move_slot_run(begin + off, begin + off - by, step);
        off += step;
    }
}

void BtSim::unpack(unsigned i) {
    // Precondition: the contexts of the topmost i-cluster are packed in slots
    // [0, v/2^i) and slots [v/2^i, 2 v/2^i) are empty.
    if (i == tree_.log_processors()) return;
    const std::uint64_t half = v_ >> (i + 1);
    move_slot_run(half, 2 * half, half);
    unpack(i + 1);
}

void BtSim::pack(unsigned i) {
    if (i == tree_.log_processors()) return;
    pack(i + 1);
    const std::uint64_t half = v_ >> (i + 1);
    move_slot_run(2 * half, half, half);
}

void BtSim::compute_walk(StepIndex s, std::uint64_t n) {
    // Precondition: n contexts packed in slots [0, n), slots [n, 2n) empty.
    if (n == 1) {
        const std::int64_t p = proc_of_slot_[0];
        DBSP_ASSERT(p != kEmptySlot);
        // Serial schedule: hop the context over the staging pad to the true
        // top of memory (two block transfers), so the elementwise step
        // execution pays f(mu) = O(1)-ish per access instead of f(pad).
        walk_ops_.push_back({ComputeOp::kTransfer, slot_addr(0), 0, mu_, 0, 0});
        walk_ops_.push_back({ComputeOp::kExec, 0, 0, 0, static_cast<ProcId>(p),
                             entry_slot_[static_cast<std::uint64_t>(p)]});
        walk_ops_.push_back({ComputeOp::kTransfer, 0, slot_addr(0), mu_, 0, 0});
        return;
    }
    // c(n): greatest power of two <= min(f(mu n)/mu, n/2).
    const double f_val = machine_.function().at(static_cast<double>(mu_) * static_cast<double>(n));
    const auto per_block = static_cast<std::uint64_t>(
        std::max(1.0, std::floor(f_val / static_cast<double>(mu_))));
    const std::uint64_t c = bt::pow2_at_most(std::min(per_block, n / 2));
    const std::uint64_t t = n / c;

    shift_slots_right(c, n - c, c);  // blocks c..n-1 -> 2c..n+c-1
    compute_walk(s, c);
    for (std::uint64_t j = 2; j <= t; ++j) {
        swap_slot_runs(0, j * c, c, /*buf=*/c);
        compute_walk(s, c);
        swap_slot_runs(0, j * c, c, /*buf=*/c);
    }
    shift_slots_left(2 * c, n - c, c);
}

void BtSim::compute(StepIndex s, std::uint64_t n) {
    // Pass A: record the serial COMPUTE schedule (Fig. 6) as a charge walk.
    // The walk performs only the slot-map updates; since the schedule is a
    // net identity on memory and each context executes exactly once, the
    // maps return to their entry state and no data needs to move. This runs
    // at every thread count — the charging structure never depends on
    // threads, which is what makes the costs bit-identical across them.
    walk_ops_.clear();
    entry_slot_.assign(slot_of_proc_.begin(), slot_of_proc_.end());
    walking_ = true;
    compute_walk(s, n);
    walking_ = false;

    // Pass B: execute every context in place at its entry slot (disjoint
    // memory; Program::step is pure across processors), charging virtual
    // top-of-memory addresses into private shard accounts/trace buffers.
    std::vector<std::size_t> execs;
    for (std::size_t i = 0; i < walk_ops_.size(); ++i) {
        if (walk_ops_[i].kind == ComputeOp::kExec) execs.push_back(i);
    }
    trace::Sink* const sink = machine_.trace();
    std::vector<bt::ShardAccount> accounts(execs.size());
    std::vector<trace::BufferSink> buffers(sink != nullptr ? execs.size() : 0);
    auto exec_one = [&](std::size_t k) {
        const ComputeOp& op = walk_ops_[execs[k]];
        bt::ShardAccount& account = accounts[k];
        const Addr pbase = slot_addr(op.exec_slot);
        model::StepOutcome out;
        if (sink != nullptr) {
            BtShardAccessor<true> acc(machine_, account, &buffers[k], 0, pbase, mu_);
            out = model::run_processor_step(program_, layout_, tree_, s, op.exec_proc, acc);
            buffers[k].charge(static_cast<double>(out.ops));
        } else {
            BtShardAccessor<false> acc(machine_, account, nullptr, 0, pbase, mu_);
            out = model::run_processor_step(program_, layout_, tree_, s, op.exec_proc, acc);
        }
        account.charge(static_cast<double>(out.ops));
    };
    if (threads_ > 1 && execs.size() > 1) {
        util::parallel_for(execs.size(), exec_one, threads_);
    } else {
        for (std::size_t k = 0; k < execs.size(); ++k) exec_one(k);
    }

    // Pass C: replay the serial charge stream in walk order — transfer
    // charges analytically, shard accounts (and their trace mirrors) folded
    // where the serial schedule executed that context.
    std::size_t k = 0;
    for (const ComputeOp& op : walk_ops_) {
        if (op.kind == ComputeOp::kTransfer) {
            machine_.charge_transfer(op.src, op.dst, op.len);
        } else {
            machine_.merge_shard(accounts[k]);
            if (sink != nullptr) sink->merge_replay(buffers[k]);
            ++k;
        }
    }
    DBSP_ASSERT(k == execs.size());
}

std::uint64_t BtSim::stream_chunk(Addr deepest, std::uint64_t share,
                                  std::uint64_t align) const {
    std::uint64_t c = bt::chunk_words(machine_, deepest, share);
    c = std::max<std::uint64_t>(c - c % align, align);
    DBSP_ASSERT(c <= share || share < align);
    return c;
}

ParsedContext BtSim::parse_context(bt::StagedReader& rd) const {
    ParsedContext ctx;
    ctx.data.reserve(d_);
    for (std::size_t i = 0; i < d_; ++i) {
        ctx.data.push_back(rd.peek());
        rd.advance(1);
    }
    const auto out_count = static_cast<std::size_t>(rd.peek());
    rd.advance(1);
    DBSP_ASSERT(out_count <= b_);
    for (std::size_t k = 0; k < b_; ++k) {
        const Word dest = rd.peek();
        rd.advance(1);
        const Word p0 = rd.peek();
        rd.advance(1);
        const Word p1 = rd.peek();
        rd.advance(1);
        if (k < out_count) {
            ctx.outgoing.push_back(model::Message{0, dest, p0, p1});
        }
    }
    std::vector<std::array<Word, 3>> in_records;
    for (std::size_t k = 0; k < b_; ++k) {
        std::array<Word, 3> rec{};
        rec[0] = rd.peek();
        rd.advance(1);
        rec[1] = rd.peek();
        rd.advance(1);
        rec[2] = rd.peek();
        rd.advance(1);
        in_records.push_back(rec);
    }
    const auto in_count = static_cast<std::size_t>(rd.peek());
    rd.advance(1);
    DBSP_ASSERT(in_count <= b_);
    ctx.old_inbox.assign(in_records.begin(),
                         in_records.begin() + static_cast<std::ptrdiff_t>(in_count));
    return ctx;
}

std::uint64_t BtSim::serialize_cluster(ProcId first, std::uint64_t csize, Addr dst) {
    const std::uint64_t ctx_words = csize * mu_;
    const std::uint64_t max_words = rec_region_words(csize);
    const std::uint64_t chunk =
        stream_chunk(std::max(slot_addr(csize), dst + max_words), pad_ / 2, 1);
    bt::StagedReader rd(machine_, slot_addr(0), ctx_words, /*stage=*/0, chunk, 1,
                        /*lane=*/0, /*lanes=*/2);
    bt::StagedWriter wr(machine_, dst, max_words, /*stage=*/0, chunk, 1,
                        /*lane=*/1, /*lanes=*/2);

    std::uint64_t n_rec = 0;
    last_outgoing_ = 0;
    auto emit = [&](Word k0, Word k1, Word w0, Word w1, Word w2) {
        wr.push(k0);
        wr.push(k1);
        wr.push(w0);
        wr.push(w1);
        wr.push(w2);
        ++n_rec;
    };

    for (ProcId p = first; p < first + csize; ++p) {
        const ParsedContext ctx = parse_context(rd);
        for (std::uint64_t i = 0; i < dr_; ++i) {
            const Word w0 = ctx.data[2 * i];
            const Word w1 = (2 * i + 1 < d_) ? ctx.data[2 * i + 1] : 0;
            emit(p, data_key1(i), w0, w1, 0);
        }
        for (std::size_t k = 0; k < ctx.old_inbox.size(); ++k) {
            const auto& rec = ctx.old_inbox[k];
            emit(p, msg_key1(0, 0, k), rec[0], rec[1], rec[2]);
        }
        last_outgoing_ += ctx.outgoing.size();
        for (std::size_t k = 0; k < ctx.outgoing.size(); ++k) {
            const auto& msg = ctx.outgoing[k];
            emit(msg.dest, msg_key1(1, p, k), p, msg.payload0, msg.payload1);
        }
    }
    wr.flush();
    return n_rec;
}

void BtSim::deserialize_cluster(ProcId first, std::uint64_t csize, Addr src,
                                std::uint64_t n_rec) {
    const std::uint64_t ctx_words = csize * mu_;
    const std::uint64_t chunk = stream_chunk(
        std::max(src + n_rec * kRecWords, slot_addr(csize)), pad_ / 2, kRecWords);
    bt::StagedReader rd(machine_, src, n_rec * kRecWords, /*stage=*/0, chunk,
                        /*align=*/kRecWords, /*lane=*/0, /*lanes=*/2);
    bt::StagedWriter wr(machine_, slot_addr(0), ctx_words, /*stage=*/0, chunk,
                        /*align=*/kRecWords, /*lane=*/1, /*lanes=*/2);

    auto read_rec = [&](Word out[kRecWords]) {
        for (std::uint64_t t = 0; t < kRecWords; ++t) out[t] = rd.peek(t);
        rd.advance(kRecWords);
    };

    for (ProcId p = first; p < first + csize; ++p) {
        Word rec[kRecWords];
        // Data records, in pair order.
        for (std::uint64_t i = 0; i < dr_; ++i) {
            read_rec(rec);
            DBSP_ASSERT(rec[0] == p);
            DBSP_ASSERT(rec[1] == data_key1(i));
            wr.push(rec[2]);
            if (2 * i + 1 < d_) wr.push(rec[3]);
        }
        wr.push(0);  // out_count = 0
        for (std::size_t k = 0; k < 3 * b_; ++k) wr.push(0);  // cleared out records
        // Message records: old inbox first, then newly delivered.
        std::size_t cnt = 0;
        while (!rd.done() && rd.peek(0) == p) {
            read_rec(rec);
            DBSP_ASSERT((rec[1] >> kClassShift) == 1);
            DBSP_REQUIRE(cnt < b_);  // inbox capacity (h <= mu discipline)
            wr.push(rec[2]);
            wr.push(rec[3]);
            wr.push(rec[4]);
            ++cnt;
        }
        for (std::size_t k = cnt; k < b_; ++k) {
            wr.push(0);
            wr.push(0);
            wr.push(0);
        }
        wr.push(cnt);  // in_count
    }
    DBSP_ASSERT(rd.done());
    wr.flush();
}

void BtSim::deliver_sort(unsigned label, ProcId first, std::uint64_t csize) {
    ++result_.sort_invocations;
    const std::uint64_t g = gap_slots(csize);
    const std::uint64_t l_words = g * mu_;

    // i_k: the deepest level whose cluster memory still fits the sort space
    // (Fig. 7); 0 if even the whole machine is too small.
    unsigned ik = 0;
    for (unsigned i = (label == 0) ? 0 : label - 1;; --i) {
        if (static_cast<double>(mu_) * static_cast<double>(v_ >> i) >=
            static_cast<double>(l_words)) {
            ik = i;
            break;
        }
        if (i == 0) break;
    }
    if (ik >= label && label > 0) ik = label - 1;

    unpack(label);
    pack(ik);
    const std::uint64_t nk = v_ >> ik;
    shift_slots_right(csize, nk - csize, g);

    const Addr region_a = slot_addr(csize);
    const std::uint64_t n_rec = serialize_cluster(first, csize, region_a);
    const Addr scratch = region_a + rec_region_words(csize);
    bt::merge_sort_records(machine_, region_a, n_rec, kRecWords, scratch,
                           /*stage=*/0, /*stage_words=*/pad_);
    deserialize_cluster(first, csize, region_a, n_rec);

    shift_slots_left(csize + g, nk - csize, g);
    unpack(ik);
    pack(label);
}

bool BtSim::deliver_transpose(ProcId first, std::uint64_t csize, std::uint64_t grain) {
    // The permutation is an independent sqrt(grain)-transpose within each
    // aligned grain-block of the cluster (the blocks coincide with the
    // cluster when the superstep label was not upgraded by smoothing).
    if (grain == 0) grain = csize;
    if (grain < 4 || grain > csize || csize % grain != 0) return false;
    const unsigned lg = ilog2(grain);
    if (lg % 2 != 0) return false;  // needs a square grid
    const std::uint64_t side = std::uint64_t{1} << (lg / 2);
    ++result_.transpose_invocations;
    last_outgoing_ = csize;  // the kTranspose promise: one message per processor

    auto transpose_of = [&](std::uint64_t x) {
        const std::uint64_t block = x - x % grain;
        const std::uint64_t q = x % grain;
        return block + (q % side) * side + q / side;
    };

    // Gather payload arrays X, Y into the free sibling space [csize, 2csize).
    const Addr ax = slot_addr(csize);
    const Addr ay = ax + csize;
    {
        const std::uint64_t chunk = stream_chunk(ay + csize, pad_ / 3, 1);
        bt::StagedReader rd(machine_, slot_addr(0), csize * mu_, /*stage=*/0, chunk, 1,
                            /*lane=*/0, /*lanes=*/3);
        bt::StagedWriter wx(machine_, ax, csize, /*stage=*/0, chunk, 1,
                            /*lane=*/1, /*lanes=*/3);
        bt::StagedWriter wy(machine_, ay, csize, /*stage=*/0, chunk, 1,
                            /*lane=*/2, /*lanes=*/3);
        for (ProcId p = first; p < first + csize; ++p) {
            const ParsedContext ctx = parse_context(rd);
            // The kTranspose promise: exactly one message, to the transposed
            // grid position.
            DBSP_REQUIRE(ctx.outgoing.size() == 1);
            DBSP_REQUIRE(ctx.outgoing[0].dest == first + transpose_of(p - first));
            wx.push(ctx.outgoing[0].payload0);
            wy.push(ctx.outgoing[0].payload1);
        }
        wx.flush();
        wy.flush();
    }

    for (std::uint64_t block = 0; block < csize; block += grain) {
        bt::transpose_square(machine_, ax + block, side, /*stage_base=*/0, pad_);
        bt::transpose_square(machine_, ay + block, side, /*stage_base=*/0, pad_);
    }

    // Rebuild pass: chunked read-modify-write of the contexts, appending the
    // delivered message to each inbox and resetting the outgoing count.
    {
        const std::uint64_t ctx_per_chunk = std::max<std::uint64_t>(1, (pad_ / 2) / mu_);
        const std::uint64_t stage_xy = ctx_per_chunk * mu_;
        const std::uint64_t cx = stream_chunk(ay + csize, pad_ / 5, 1);
        bt::StagedReader rx(machine_, ax, csize, /*stage=*/stage_xy, cx, 1,
                            /*lane=*/0, /*lanes=*/2);
        bt::StagedReader ry(machine_, ay, csize, /*stage=*/stage_xy, cx, 1,
                            /*lane=*/1, /*lanes=*/2);
        for (std::uint64_t q0 = 0; q0 < csize; q0 += ctx_per_chunk) {
            const std::uint64_t nctx = std::min(ctx_per_chunk, csize - q0);
            const Addr chunk_addr = slot_addr(q0);
            machine_.block_copy(chunk_addr, 0, nctx * mu_);
            for (std::uint64_t t = 0; t < nctx; ++t) {
                const std::uint64_t q = q0 + t;
                const Addr base = t * mu_;
                const auto in_count =
                    static_cast<std::size_t>(machine_.read(base + layout_.in_count_offset()));
                DBSP_REQUIRE(in_count < b_);
                const std::size_t off = layout_.in_record_offset(in_count);
                machine_.write(base + off, first + transpose_of(q));  // src
                machine_.write(base + off + 1, rx.peek());
                machine_.write(base + off + 2, ry.peek());
                rx.advance(1);
                ry.advance(1);
                machine_.write(base + layout_.in_count_offset(), in_count + 1);
                machine_.write(base + layout_.out_count_offset(), 0);
            }
            machine_.block_copy(0, chunk_addr, nctx * mu_);
        }
    }
    return true;
}

void BtSim::check_round_invariants(ProcId first, std::uint64_t csize, StepIndex s) const {
    // Map consistency.
    for (ProcId p = 0; p < v_; ++p) {
        DBSP_ASSERT(proc_of_slot_[slot_of_proc_[p]] == static_cast<std::int64_t>(p));
    }
    // Invariant 1: the cluster is s-ready.
    for (ProcId p = first; p < first + csize; ++p) DBSP_ASSERT(sigma_[p] == s);
    // Every cluster at the current level or deeper stays within a window of
    // twice its size (contiguous up to interspersed buffer blocks); coarser
    // clusters may be fragmented while a Step 4 cycle is in flight.
    const unsigned level = program_.label(s);
    for (unsigned i = level; i <= tree_.log_processors(); ++i) {
        const std::uint64_t sz = tree_.cluster_size(i);
        for (std::uint64_t j = 0; j < tree_.num_clusters(i); ++j) {
            const ProcId f0 = tree_.cluster_first(j, i);
            std::uint64_t lo = slot_of_proc_[f0], hi = lo;
            for (ProcId p = f0; p < f0 + sz; ++p) {
                lo = std::min(lo, slot_of_proc_[p]);
                hi = std::max(hi, slot_of_proc_[p]);
            }
            DBSP_ASSERT(hi - lo + 1 <= 2 * sz);
        }
    }
}

BtSimResult BtSim::run() {
    const StepIndex steps = program_.num_supersteps();
    DBSP_REQUIRE(steps > 0);
    DBSP_REQUIRE(program_.label(steps - 1) == 0);
    static auto& metric_runs = report::metric_counter("sim.bt.runs");
    metric_runs.add();
    result_.data_words = d_;
    // The machine is fresh (cost 0); a reused sink must restart its mirror.
    if (options_.trace != nullptr) options_.trace->reset_total();

    // Load the initial memory image: contexts packed in slots [0, v).
    {
        const auto init = model::DbspMachine::initial_contexts(program_);
        auto raw = machine_.raw();
        for (ProcId p = 0; p < v_; ++p) {
            std::copy(init[p].begin(), init[p].end(),
                      raw.begin() + static_cast<std::ptrdiff_t>(slot_addr(p)));
            proc_of_slot_[p] = static_cast<std::int64_t>(p);
            slot_of_proc_[p] = p;
        }
    }
    const double cload = machine_.cost();
    {
        trace::PhaseScope move(options_.trace, trace::Phase::kContextMove, 0);
        unpack(0);  // Step 0 of Fig. 5
    }
    result_.layout_cost += machine_.cost() - cload;

    while (true) {
        const std::int64_t top = proc_of_slot_[0];
        DBSP_ASSERT(top != kEmptySlot);
        const auto top_proc = static_cast<ProcId>(top);
        const StepIndex s = sigma_[top_proc];
        if (s == steps) break;
        const unsigned label = program_.label(s);
        const std::uint64_t csize = tree_.cluster_size(label);
        const ProcId first = tree_.cluster_first(tree_.cluster_of(top_proc, label), label);
        ++result_.rounds;
        static auto& metric_rounds = report::metric_counter("sim.bt.rounds");
        metric_rounds.add();

        if (options_.check_invariants) check_round_invariants(first, csize, s);

        trace::Sink* const sink = options_.trace;
        // Rounds executing a smoothing-inserted dummy superstep attribute all
        // their charges to the dummy-superstep phase.
        const bool dummy_round = sink != nullptr && program_.is_dummy_step(s);
        const auto ph = [dummy_round](trace::Phase p) {
            return dummy_round ? trace::Phase::kDummyStep : p;
        };

        const double c0 = machine_.cost();
        {
            trace::PhaseScope move(sink, ph(trace::Phase::kContextMove), label);
            pack(label);  // Step 1.a
        }
        if (options_.check_invariants) {
            for (std::uint64_t idx = 0; idx < csize; ++idx) {
                DBSP_ASSERT(proc_of_slot_[idx] == static_cast<std::int64_t>(first + idx));
            }
        }

        // Step 2: local computation, then communication.
        const double c1 = machine_.cost();
        result_.layout_cost += c1 - c0;
        {
            trace::PhaseScope exec(sink, ph(trace::Phase::kStepExec), label);
            compute(s, csize);
        }
        const double c2 = machine_.cost();
        result_.compute_cost += c2 - c1;
        bool transposed = false;
        if (options_.use_rational_permutations &&
            program_.permutation_class(s) == model::PermutationClass::kTranspose) {
            trace::PhaseScope deliver(sink, ph(trace::Phase::kDeliverTranspose), label);
            transposed = deliver_transpose(first, csize, program_.permutation_grain(s));
        }
        if (!transposed) {
            trace::PhaseScope deliver(sink, ph(trace::Phase::kDeliverSort), label);
            deliver_sort(label, first, csize);
        }
        // BT delivery bypasses model::deliver_messages (transpose/sort), so it
        // publishes its own batch telemetry under the shared metric names.
        static auto& metric_delivered = report::metric_counter("model.messages_delivered");
        static auto& metric_batch = report::metric_histogram("model.delivery_batch");
        metric_delivered.add(last_outgoing_);
        metric_batch.observe(last_outgoing_);
        if (sink != nullptr) sink->messages(last_outgoing_);
        result_.deliver_cost += machine_.cost() - c2;

        for (ProcId p = first; p < first + csize; ++p) sigma_[p] = s + 1;

        // Step 4 swaps and the Step 5 unpack are both layout maintenance;
        // everything charged from here to the end of the round goes to
        // layout_cost, closing the component attribution (compute_cost +
        // deliver_cost + layout_cost folds back to the full bt_cost).
        const double c3 = machine_.cost();

        // Step 4: rotate sibling clusters when the next label is coarser.
        if (s + 1 < steps) {
            const unsigned next_label = program_.label(s + 1);
            if (next_label < label) {
                trace::PhaseScope move(sink, ph(trace::Phase::kContextMove), next_label);
                const std::uint64_t bsib = std::uint64_t{1} << (label - next_label);
                const std::uint64_t jbar = tree_.cluster_of(top_proc, next_label);
                const ProcId cbar_first = tree_.cluster_first(jbar, next_label);
                const std::uint64_t j =
                    tree_.cluster_of(top_proc, label) - (jbar << (label - next_label));
                if (j > 0) {
                    swap_slot_runs(0, slot_of_proc_[cbar_first], csize, /*buf=*/csize);
                }
                if (j < bsib - 1) {
                    const ProcId cnext_first = cbar_first + (j + 1) * csize;
                    swap_slot_runs(0, slot_of_proc_[cnext_first], csize, /*buf=*/csize);
                }
            }
        }

        {
            trace::PhaseScope move(sink, ph(trace::Phase::kContextMove), label);
            unpack(label);  // Step 5
        }
        result_.layout_cost += machine_.cost() - c3;
    }

    result_.bt_cost = machine_.cost();
    result_.transfer_latency = machine_.transfer_latency_cost();
    result_.transfer_volume = machine_.transfer_volume_cost();
    result_.word_access = machine_.word_access_cost();
    result_.block_transfers = machine_.block_transfers();
    result_.contexts.resize(v_);
    const auto raw = machine_.raw();
    for (ProcId p = 0; p < v_; ++p) {
        const Addr base = slot_addr(slot_of_proc_[p]);
        result_.contexts[p].assign(raw.begin() + static_cast<std::ptrdiff_t>(base),
                                   raw.begin() + static_cast<std::ptrdiff_t>(base + mu_));
    }
    return result_;
}

}  // namespace

std::vector<Word> BtSimResult::data_of(ProcId p) const {
    DBSP_REQUIRE(p < contexts.size());
    const auto& ctx = contexts[p];
    return std::vector<Word>(ctx.begin(),
                             ctx.begin() + static_cast<std::ptrdiff_t>(data_words));
}

BtSimResult BtSimulator::simulate(model::Program& program) const {
    BtSim sim(f_, program, options_);
    return sim.run();
}

}  // namespace dbsp::core
