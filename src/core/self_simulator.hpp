#pragma once

/// \file self_simulator.hpp
/// D-BSP self-simulation — the Brent's-lemma analogue of Section 4
/// (Theorem 10, Corollary 11).
///
/// A program for a guest D-BSP(v, mu, g(x)) is executed on a host
/// D-BSP(v', mu v / v', g(x)), v' <= v, whose processors are g(x)-HMMs: host
/// processor j holds the contexts of guest cluster C_j^(log v') in its local
/// hierarchical memory, one mu-word block per guest processor.
///
/// The program is split into maximal runs of supersteps with labels < log v'
/// ("global" runs, crossing host processors) and labels >= log v' ("local"
/// runs, confined to single host processors):
///  * a global i-superstep is simulated by every host processor cycling its
///    v/v' guest contexts through the top of its local HMM, followed by an
///    exchange charged as an i-superstep plus a (log v')-superstep of the
///    host (message counts per *host* processor);
///  * a local run is simulated independently on each host processor's local
///    HMM with the Section 3 strategy, via a sub-machine window adapter.
///
/// The host time is  sum over phases of (max_j local HMM cost_j  +
/// h_host * g(...)), which Theorem 10 bounds by
/// O( (v/v') (tau + mu sum_i lambda_i g(mu v / 2^i)) ).

#include <vector>

#include "model/access_function.hpp"
#include "model/dbsp_machine.hpp"
#include "model/program.hpp"
#include "trace/sink.hpp"

namespace dbsp::core {

struct SelfSimResult {
    double host_time = 0.0;          ///< total simulated host D-BSP time
    double local_time = 0.0;         ///< sum of max-local-HMM components
    double communication_time = 0.0; ///< sum of h_host * g(...) components
    std::size_t global_supersteps = 0;
    std::size_t local_runs = 0;
    std::size_t data_words = 0;
    std::vector<std::vector<model::Word>> contexts;  ///< final guest contexts

    std::vector<model::Word> data_of(model::ProcId p) const;
};

class SelfSimulator {
public:
    /// Host with v_prime processors; v_prime must be a power of two dividing
    /// the guest's processor count.
    SelfSimulator(model::AccessFunction g, std::uint64_t v_prime)
        : g_(std::move(g)), v_prime_(v_prime) {}

    SelfSimResult simulate(model::Program& program) const;

    std::uint64_t host_processors() const { return v_prime_; }

    /// Attach (or detach, with nullptr) a charge-trace sink. simulate() opens
    /// a local-run scope per maximal local stretch and a global-step scope per
    /// global superstep, charges the sink the exact doubles added to
    /// host_time (the per-phase max-plus-communication terms, so total()
    /// equals host_time bit for bit), and reports message volume per
    /// exchange. The per-window HMM machines are deliberately left untraced:
    /// host time charges the *maximum* over host processors, so summing
    /// their individual costs would overcount. The sink is not owned.
    void set_trace(trace::Sink* sink) { trace_ = sink; }
    trace::Sink* trace() const { return trace_; }

private:
    model::AccessFunction g_;
    std::uint64_t v_prime_;
    trace::Sink* trace_ = nullptr;  ///< not owned; nullptr = tracing off
};

}  // namespace dbsp::core
