#include "core/naive_bt_simulator.hpp"

#include <algorithm>

#include "bt/primitives.hpp"
#include "model/superstep_exec.hpp"
#include "util/contracts.hpp"

namespace dbsp::core {

namespace {

using model::Addr;
using model::ContextAccessor;
using model::Message;
using model::ProcId;
using model::Word;

class BtPinnedAccessor final : public ContextAccessor {
public:
    BtPinnedAccessor(bt::Machine& m, Addr base, std::size_t mu) : m_(m), base_(base), mu_(mu) {}
    Word get(std::size_t i) const override {
        DBSP_REQUIRE(i < mu_);
        return m_.read(base_ + i);
    }
    void set(std::size_t i, Word value) override {
        DBSP_REQUIRE(i < mu_);
        m_.write(base_ + i, value);
    }
    void get_range(std::size_t i, std::span<Word> out) const override {
        DBSP_REQUIRE(i + out.size() <= mu_);
        m_.read_range(base_ + i, out);
    }
    void set_range(std::size_t i, std::span<const Word> values) override {
        DBSP_REQUIRE(i + values.size() <= mu_);
        m_.write_range(base_ + i, values);
    }

private:
    bt::Machine& m_;
    Addr base_;
    std::size_t mu_;
};

}  // namespace

BtSimResult NaiveBtSimulator::simulate(model::Program& program) const {
    const std::uint64_t v = program.num_processors();
    const model::ClusterTree tree(v);
    const model::ContextLayout layout = program.layout();
    const std::size_t mu = layout.context_words();
    const model::StepIndex steps = program.num_supersteps();
    DBSP_REQUIRE(steps > 0);

    // Memory: staging pad at the top, then the v contexts.
    const std::uint64_t ctx_words = static_cast<std::uint64_t>(mu) * v;
    std::uint64_t pad = bt::pow2_at_most(std::max<std::uint64_t>(
        4 * static_cast<std::uint64_t>(std::max(1.0, 2.0 * mu + 0.0)), 64));
    // Chunked staging wants ~f(capacity) words, rounded to whole contexts.
    {
        const model::AccessFunction& f = f_;
        const auto fv = static_cast<std::uint64_t>(std::max(1.0, f.at(2.0 * ctx_words)));
        pad = std::max<std::uint64_t>(pad, 2 * ((fv / mu + 2) * mu));
    }
    bt::Machine machine(f_, pad + ctx_words + 64);
    const Addr ctx0 = pad;
    {
        const auto init = model::DbspMachine::initial_contexts(program);
        auto raw = machine.raw();
        for (ProcId p = 0; p < v; ++p) {
            std::copy(init[p].begin(), init[p].end(),
                      raw.begin() + static_cast<std::ptrdiff_t>(ctx0 + p * mu));
        }
    }

    BtSimResult result;
    result.data_words = program.data_words();

    const bool bulk = model::bulk_access_enabled();
    std::vector<Message> pending;
    std::vector<Word> words;
    for (model::StepIndex s = 0; s < steps; ++s) {
        ++result.rounds;
        pending.clear();
        // Computation: every processor's step runs against its pinned
        // context, paying the access function at its resident depth.
        for (ProcId p = 0; p < v; ++p) {
            const Addr base = ctx0 + p * mu;
            BtPinnedAccessor acc(machine, base, mu);
            const auto out = model::run_processor_step(program, layout, tree, s, p, acc);
            machine.charge(static_cast<double>(out.ops));
            const auto cnt =
                static_cast<std::size_t>(machine.read(base + layout.out_count_offset()));
            if (bulk) {
                // The out records are contiguous: one charged range read
                // covers all 3*cnt words.
                words.resize(3 * cnt);
                machine.read_range(base + layout.out_record_offset(0), words);
                for (std::size_t q = 0; q < cnt; ++q) {
                    pending.push_back(Message{p, words[3 * q], words[3 * q + 1],
                                              words[3 * q + 2]});
                }
            } else {
                for (std::size_t q = 0; q < cnt; ++q) {
                    const Addr off = base + layout.out_record_offset(q);
                    Message m;
                    m.src = p;
                    m.dest = machine.read(off);
                    m.payload0 = machine.read(off + 1);
                    m.payload1 = machine.read(off + 2);
                    pending.push_back(m);
                }
            }
            if (cnt > 0) machine.write(base + layout.out_count_offset(), 0);
        }
        // Naive delivery: direct random-access writes at destination depth.
        for (const Message& m : pending) {
            const Addr base = ctx0 + m.dest * mu;
            const auto cnt =
                static_cast<std::size_t>(machine.read(base + layout.in_count_offset()));
            DBSP_REQUIRE(cnt < layout.max_messages);
            const Addr off = base + layout.in_record_offset(cnt);
            if (bulk) {
                const Word rec[3] = {m.src, m.payload0, m.payload1};
                machine.write_range(off, rec);
            } else {
                machine.write(off, m.src);
                machine.write(off + 1, m.payload0);
                machine.write(off + 2, m.payload1);
            }
            machine.write(base + layout.in_count_offset(), cnt + 1);
        }
    }

    result.bt_cost = machine.cost();
    result.contexts.resize(v);
    const auto raw = machine.raw();
    for (ProcId p = 0; p < v; ++p) {
        result.contexts[p].assign(
            raw.begin() + static_cast<std::ptrdiff_t>(ctx0 + p * mu),
            raw.begin() + static_cast<std::ptrdiff_t>(ctx0 + (p + 1) * mu));
    }
    return result;
}

}  // namespace dbsp::core
