#include "core/hmm_simulator.hpp"

#include <algorithm>

#include "core/hmm_shard.hpp"
#include "model/superstep_exec.hpp"
#include "report/metrics.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace dbsp::core {

namespace {

using model::Addr;
using model::ClusterTree;
using model::ContextAccessor;
using model::ContextLayout;
using model::ProcId;
using model::StepIndex;
using model::Word;

/// Mutable simulation state: the machine plus the block <-> processor maps.
struct SimState {
    hmm::Machine machine;
    std::size_t mu;
    std::vector<std::uint64_t> block_of_proc;  ///< processor -> block index
    std::vector<ProcId> proc_of_block;         ///< block index -> processor

    SimState(model::AccessFunction f, std::uint64_t v, std::size_t mu_words)
        : machine(std::move(f), static_cast<std::uint64_t>(mu_words) * v), mu(mu_words),
          block_of_proc(v), proc_of_block(v) {
        for (std::uint64_t p = 0; p < v; ++p) {
            block_of_proc[p] = p;
            proc_of_block[p] = p;
        }
    }

    Addr block_addr(std::uint64_t block) const { return block * mu; }

    /// Swap two equal-length runs of blocks and update the maps.
    void swap_block_runs(std::uint64_t a, std::uint64_t b, std::uint64_t nblocks) {
        if (a == b || nblocks == 0) return;
        machine.swap_blocks(block_addr(a), block_addr(b), nblocks * mu);
        for (std::uint64_t k = 0; k < nblocks; ++k) {
            std::swap(proc_of_block[a + k], proc_of_block[b + k]);
            block_of_proc[proc_of_block[a + k]] = a + k;
            block_of_proc[proc_of_block[b + k]] = b + k;
        }
    }
};

}  // namespace

std::vector<Word> HmmSimResult::data_of(ProcId p) const {
    DBSP_REQUIRE(p < contexts.size());
    const auto& ctx = contexts[p];
    return std::vector<Word>(ctx.begin(),
                             ctx.begin() + static_cast<std::ptrdiff_t>(data_words));
}

HmmSimResult HmmSimulator::simulate(model::Program& program) const {
    return simulate_with(program, model::DbspMachine::initial_contexts(program));
}

HmmSimResult HmmSimulator::simulate_with(
    model::Program& program, const std::vector<std::vector<Word>>& initial) const {
    const std::uint64_t v = program.num_processors();
    const ClusterTree tree(v);
    const ContextLayout layout = program.layout();
    const std::size_t mu = layout.context_words();
    const StepIndex steps = program.num_supersteps();
    DBSP_REQUIRE(steps > 0);
    DBSP_REQUIRE(program.label(steps - 1) == 0);

    SimState st(f_, v, mu);
    trace::Sink* const sink = options_.trace;
    st.machine.set_trace(sink);
    // The machine is fresh (cost 0); a reused sink must restart its mirror.
    if (sink != nullptr) sink->reset_total();

    // Load the initial contexts (the input configuration; uncharged, as the
    // simulated machine is assumed to start from this memory image).
    DBSP_REQUIRE(initial.size() == v);
    {
        auto raw = st.machine.raw();
        for (ProcId p = 0; p < v; ++p) {
            DBSP_REQUIRE(initial[p].size() == mu);
            std::copy(initial[p].begin(), initial[p].end(),
                      raw.begin() + static_cast<std::ptrdiff_t>(p * mu));
        }
    }

    // sigma[p]: next superstep to simulate for processor p.
    std::vector<StepIndex> sigma(v, 0);

    HmmShardSource<false> contexts_plain(st.machine, mu, &st.block_of_proc);
    HmmShardSource<true> contexts_traced(st.machine, mu, &st.block_of_proc);
    model::AccessorSource& contexts =
        sink != nullptr ? static_cast<model::AccessorSource&>(contexts_traced)
                        : static_cast<model::AccessorSource&>(contexts_plain);
    model::DeliveryScratch scratch;

    // Step 2a shard state, one slot per cluster position; reused each round.
    // Trace buffers exist only when a parallel round can need them — serial
    // rounds deliver events straight to the sink (see Step 2a below).
    const std::size_t threads =
        options_.threads == 0 ? util::default_threads() : options_.threads;
    std::vector<hmm::ShardAccount> exec_accounts(v);
    std::vector<trace::BufferSink> exec_buffers(sink != nullptr && threads > 1 ? v : 0);

    HmmSimResult result;
    result.data_words = program.data_words();

    static auto& metric_runs = report::metric_counter("sim.hmm.runs");
    static auto& metric_rounds = report::metric_counter("sim.hmm.rounds");
    metric_runs.add();

    while (true) {
        // Step 1: pick the processor whose context is on top of memory.
        const ProcId top_proc = st.proc_of_block[0];
        const StepIndex s = sigma[top_proc];
        if (s == steps) break;  // Step 3: the program has finished.
        const unsigned label = program.label(s);
        const std::uint64_t csize = tree.cluster_size(label);
        const ProcId first = tree.cluster_first(tree.cluster_of(top_proc, label), label);
        ++result.rounds;
        metric_rounds.add();
        // Rounds executing a smoothing-inserted dummy superstep attribute all
        // their charges (swaps included) to the dummy-superstep phase.
        const bool dummy_round = sink != nullptr && program.is_dummy_step(s);
        const auto ph = [dummy_round](trace::Phase p) {
            return dummy_round ? trace::Phase::kDummyStep : p;
        };

        if (options_.check_invariants) {
            // Invariant 1: C is s-ready.
            for (ProcId p = first; p < first + csize; ++p) DBSP_ASSERT(sigma[p] == s);
            // Invariant 2 (top part): C's contexts occupy the topmost |C|
            // blocks sorted by processor number.
            for (ProcId p = first; p < first + csize; ++p) {
                DBSP_ASSERT(st.block_of_proc[p] == p - first);
            }
            // Invariant 2 (rest): every cluster at the current level or
            // deeper occupies consecutive memory blocks (possibly permuted
            // internally). Coarser clusters are temporarily fragmented while
            // a Step 4 cycle is in flight, but no round touches them until
            // the cycle completes and restores their home layout.
            for (unsigned i = label; i <= tree.log_processors(); ++i) {
                const std::uint64_t sz = tree.cluster_size(i);
                for (std::uint64_t j = 0; j < tree.num_clusters(i); ++j) {
                    const ProcId f0 = tree.cluster_first(j, i);
                    std::uint64_t lo = st.block_of_proc[f0];
                    std::uint64_t hi = lo;
                    for (ProcId p = f0; p < f0 + sz; ++p) {
                        lo = std::min(lo, st.block_of_proc[p]);
                        hi = std::max(hi, st.block_of_proc[p]);
                    }
                    DBSP_ASSERT(hi - lo + 1 == sz);
                }
            }
        }

        // Step 2a: simulate local computation. The serial schedule of the
        // paper brings each context in turn to the top of memory (block 0),
        // runs the step there, and swaps the context back — a net identity
        // on memory. So the round executes every context of the cluster IN
        // PLACE (possibly concurrently: the submachines are independent),
        // charging virtual block-0 addresses into a private shard account
        // and trace events into a shard sink, and emits the serial charge
        // stream in cluster order: swap-in charge, the shard's charges,
        // swap-out charge. When the round runs on one thread anyway, the
        // shard's step executes at exactly the position where its buffer
        // would have been replayed, so the events go straight to the real
        // sink inside a shard_begin/shard_end bracket — same stream, same
        // totals, no buffer. Identical memory image, identical charges, at
        // every thread count.
        auto exec_one = [&](std::uint64_t idx, trace::Sink* events) {
            DBSP_ASSERT(st.proc_of_block[idx] == first + idx);
            const ProcId p = first + idx;
            hmm::ShardAccount& account = exec_accounts[idx];
            model::StepOutcome out;
            if (events != nullptr) {
                HmmShardAccessor<true> acc(st.machine, account, events,
                                           st.block_addr(0), st.block_addr(idx), mu);
                out = model::run_processor_step(program, layout, tree, s, p, acc);
                events->charge(static_cast<double>(out.ops));
            } else {
                HmmShardAccessor<false> acc(st.machine, account, nullptr,
                                            st.block_addr(0), st.block_addr(idx), mu);
                out = model::run_processor_step(program, layout, tree, s, p, acc);
            }
            account.cost += static_cast<double>(out.ops);  // unit op costs
        };
        const bool parallel_round = threads > 1 && csize > 1;
        if (parallel_round) {
            util::parallel_for(
                csize,
                [&](std::uint64_t idx) {
                    exec_one(idx, sink != nullptr ? &exec_buffers[idx] : nullptr);
                },
                threads);
        }
        for (std::uint64_t idx = 0; idx < csize; ++idx) {
            if (idx > 0) {
                trace::PhaseScope move(sink, ph(trace::Phase::kContextMove), label);
                st.machine.charge_swap_blocks(st.block_addr(0), st.block_addr(idx), mu);
            }
            {
                trace::PhaseScope exec(sink, ph(trace::Phase::kStepExec), label);
                if (!parallel_round) {
                    if (sink != nullptr) {
                        sink->shard_begin();
                        exec_one(idx, sink);
                        sink->shard_end();
                    } else {
                        exec_one(idx, nullptr);
                    }
                } else if (sink != nullptr) {
                    sink->merge_replay(exec_buffers[idx]);
                    exec_buffers[idx].clear();
                }
                st.machine.merge_shard(exec_accounts[idx]);
                exec_accounts[idx].clear();
            }
            if (idx > 0) {
                trace::PhaseScope move(sink, ph(trace::Phase::kContextMove), label);
                st.machine.charge_swap_blocks(st.block_addr(0), st.block_addr(idx), mu);
            }
        }

        // Step 2b: simulate the message exchange by scanning the outgoing
        // buffers and delivering into the incoming buffers; all traffic stays
        // within the topmost mu*|C| cells. The sharded protocol partitions
        // the cluster into fixed-width shards regardless of thread count.
        {
            trace::PhaseScope deliver(sink, ph(trace::Phase::kDeliver), label);
            model::deliver_messages_sharded(layout, first, csize, contexts,
                                            program.proc_id_base(), scratch, threads);
            if (sink != nullptr) sink->messages(scratch.pending.size());
        }

        for (ProcId p = first; p < first + csize; ++p) sigma[p] = s + 1;
        if (s + 1 == steps) continue;  // next iteration exits at Step 3

        // Step 4: when the next superstep is coarser, rotate the sibling
        // clusters of the enclosing i_{s+1}-cluster through the top of memory.
        const unsigned next_label = program.label(s + 1);
        if (next_label < label) {
            trace::PhaseScope move(sink, ph(trace::Phase::kContextMove), next_label);
            const std::uint64_t b = std::uint64_t{1} << (label - next_label);
            const std::uint64_t jbar = tree.cluster_of(top_proc, next_label);
            const ProcId cbar_first = tree.cluster_first(jbar, next_label);
            const std::uint64_t j = tree.cluster_of(top_proc, label) - (jbar << (label - next_label));
            const ProcId c0_first = cbar_first;  // first sibling i_s-cluster
            if (j > 0) {
                // Swap C (on top) with C_0 (at C_j's home position).
                st.swap_block_runs(0, st.block_of_proc[c0_first], csize);
            }
            if (j < b - 1) {
                // Swap C_0 (now on top) with C_{j+1} (at its home position).
                const ProcId cnext_first = cbar_first + (j + 1) * csize;
                st.swap_block_runs(0, st.block_of_proc[cnext_first], csize);
            }
        }
    }

    result.hmm_cost = st.machine.cost();
    result.words_touched = st.machine.words_touched();
    result.contexts.resize(v);
    const auto raw = st.machine.raw();
    for (ProcId p = 0; p < v; ++p) {
        const Addr base = st.block_addr(st.block_of_proc[p]);
        result.contexts[p].assign(raw.begin() + static_cast<std::ptrdiff_t>(base),
                                  raw.begin() + static_cast<std::ptrdiff_t>(base + mu));
    }
    return result;
}

}  // namespace dbsp::core
