#pragma once

/// \file naive_bt_simulator.hpp
/// Baseline: the "trivial step-by-step" simulation of a D-BSP program on the
/// f(x)-BT model discussed in Section 5.3 — a direct port with contexts
/// pinned at their home blocks, mirroring the naive HMM baseline:
///  * local computation of each processor runs against its context at its
///    resident depth, paying f() there per access (no cluster scheduling, no
///    staging) — at least the Fact 2 touching bound per superstep, i.e. the
///    omega(v)-per-superstep cost the paper ascribes to the trivial approach;
///  * message delivery is performed with direct writes at the destination's
///    depth, f(mu v) per message, since without per-cluster scheduling there
///    is no cheap way to batch an arbitrary h-relation.
/// This is the comparison baseline for Experiments E9/E10.

#include "core/bt_simulator.hpp"

namespace dbsp::core {

class NaiveBtSimulator {
public:
    explicit NaiveBtSimulator(model::AccessFunction f) : f_(std::move(f)) {}

    BtSimResult simulate(model::Program& program) const;

private:
    model::AccessFunction f_;
};

}  // namespace dbsp::core
