#include "core/self_simulator.hpp"

#include <algorithm>
#include <set>

#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "hmm/machine.hpp"
#include "model/superstep_exec.hpp"
#include "report/metrics.hpp"
#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::core {

namespace {

using model::Addr;
using model::ClusterTree;
using model::ContextAccessor;
using model::ContextLayout;
using model::Message;
using model::ProcId;
using model::StepIndex;
using model::Word;

constexpr StepIndex kDummy = static_cast<StepIndex>(-1);

/// Sub-machine window: presents guest supersteps [s0, s1) — all with labels
/// >= log v' — restricted to the guest cluster [first, first + v_local) as a
/// standalone D-BSP(v_local, mu, g) program, relabeled by -log v'. A trailing
/// chain of dummy supersteps descends through the window's own label set down
/// to 0, which keeps the windowed program smooth (Def. 3) and guarantees the
/// Figure 1 machinery completes every sub-cluster.
class WindowProgram final : public model::Program {
public:
    WindowProgram(model::Program& base, ProcId first, std::uint64_t v_local,
                  unsigned label_shift, StepIndex s0, StepIndex s1)
        : base_(base), first_(first), v_local_(v_local) {
        DBSP_REQUIRE(is_pow2(v_local));
        DBSP_REQUIRE(s1 > s0);
        for (StepIndex s = s0; s < s1; ++s) {
            const unsigned l = base.label(s);
            DBSP_REQUIRE(l >= label_shift);
            map_.push_back(s);
            labels_.push_back(l - label_shift);
        }
        std::set<unsigned, std::greater<>> below;
        for (unsigned l : labels_) {
            if (l < labels_.back()) below.insert(l);
        }
        for (unsigned l : below) {
            map_.push_back(kDummy);
            labels_.push_back(l);
        }
        if (labels_.back() != 0) {
            map_.push_back(kDummy);
            labels_.push_back(0);
        }
    }

    std::string name() const override { return base_.name() + "/window"; }
    std::uint64_t num_processors() const override { return v_local_; }
    std::size_t data_words() const override { return base_.data_words(); }
    std::size_t max_messages() const override { return base_.max_messages(); }
    StepIndex num_supersteps() const override { return labels_.size(); }
    unsigned label(StepIndex s) const override { return labels_[s]; }
    ProcId proc_id_base() const override { return first_; }

    void init(ProcId p, std::span<Word> data) const override {
        base_.init(first_ + p, data);
    }

    void step(StepIndex s, ProcId p, model::StepContext& ctx) override {
        if (map_[s] == kDummy) return;
        base_.step(map_[s], first_ + p, ctx);
    }

    bool is_dummy_step(StepIndex s) const override {
        return map_[s] == kDummy || base_.is_dummy_step(map_[s]);
    }

private:
    model::Program& base_;
    ProcId first_;
    std::uint64_t v_local_;
    std::vector<StepIndex> map_;
    std::vector<unsigned> labels_;
};

}  // namespace

std::vector<Word> SelfSimResult::data_of(ProcId p) const {
    DBSP_REQUIRE(p < contexts.size());
    const auto& ctx = contexts[p];
    return std::vector<Word>(ctx.begin(),
                             ctx.begin() + static_cast<std::ptrdiff_t>(data_words));
}

SelfSimResult SelfSimulator::simulate(model::Program& program) const {
    const std::uint64_t v = program.num_processors();
    DBSP_REQUIRE(is_pow2(v_prime_));
    DBSP_REQUIRE(v_prime_ <= v);
    const unsigned log_vp = ilog2(v_prime_);
    const std::uint64_t w = v / v_prime_;  // guest processors per host processor
    const ClusterTree tree(v);
    const ContextLayout layout = program.layout();
    const std::size_t mu = layout.context_words();
    const StepIndex steps = program.num_supersteps();
    DBSP_REQUIRE(steps > 0);
    DBSP_REQUIRE(program.label(steps - 1) == 0);

    SelfSimResult result;
    result.data_words = program.data_words();
    static auto& metric_runs = report::metric_counter("sim.self.runs");
    metric_runs.add();
    result.contexts = model::DbspMachine::initial_contexts(program);
    auto& contexts = result.contexts;

    const HmmSimulator local_sim(g_);
    const bool bulk = model::bulk_access_enabled();
    trace::Sink* const sink = trace_;
    if (sink != nullptr) sink->reset_total();
    std::vector<Word> scan;  // reused out-buffer staging for the bulk path

    StepIndex s = 0;
    while (s < steps) {
        if (program.label(s) >= log_vp && log_vp < tree.log_processors() + 1) {
            // --- local run: maximal stretch of labels >= log v' -------------
            StepIndex s_end = s;
            while (s_end < steps && program.label(s_end) >= log_vp) ++s_end;
            ++result.local_runs;
            trace::PhaseScope run_scope(sink, trace::Phase::kLocalRun, log_vp);
            double local_max = 0.0;
            // Each host processor simulates its window with the Section 3
            // strategy; the window is L-smoothed first (Theorem 4's
            // correctness argument needs Definition 3, window or not).
            const auto local_labels =
                hmm_label_set(g_, layout.context_words(), w);
            for (std::uint64_t j = 0; j < v_prime_; ++j) {
                const ProcId first = j * w;
                WindowProgram window(program, first, w, log_vp, s, s_end);
                auto smoothed = smooth(window, local_labels);
                std::vector<std::vector<Word>> initial(
                    contexts.begin() + static_cast<std::ptrdiff_t>(first),
                    contexts.begin() + static_cast<std::ptrdiff_t>(first + w));
                HmmSimResult res = local_sim.simulate_with(*smoothed, initial);
                for (std::uint64_t k = 0; k < w; ++k) {
                    contexts[first + k] = std::move(res.contexts[k]);
                }
                local_max = std::max(local_max, res.hmm_cost);
            }
            const double t = local_max + 1.0;
            result.local_time += t;
            result.host_time += t;
            if (sink != nullptr) sink->charge(t);
            s = s_end;
            continue;
        }

        // --- global i-superstep (i < log v') --------------------------------
        ++result.global_supersteps;
        static auto& metric_supersteps = report::metric_counter("sim.self.global_supersteps");
        metric_supersteps.add();
        const unsigned label = program.label(s);
        trace::PhaseScope step_scope(sink, trace::Phase::kGlobalStep, label);
        double phase1_max = 0.0;
        std::vector<Message> pending;  // canonical (src, seq) order
        std::vector<std::size_t> sent_by_host(v_prime_, 0), recv_by_host(v_prime_, 0);

        for (std::uint64_t j = 0; j < v_prime_; ++j) {
            hmm::Machine mem(g_, w * mu);
            auto raw = mem.raw();
            for (std::uint64_t k = 0; k < w; ++k) {
                std::copy(contexts[j * w + k].begin(), contexts[j * w + k].end(),
                          raw.begin() + static_cast<std::ptrdiff_t>(k * mu));
            }
            for (std::uint64_t k = 0; k < w; ++k) {
                // Cycle each guest context through the top of the local HMM.
                if (k > 0) mem.swap_blocks(0, k * mu, mu);
                hmm::Machine& m = mem;
                class TopAccessor final : public ContextAccessor {
                public:
                    TopAccessor(hmm::Machine& m, std::size_t mu) : m_(m), mu_(mu) {}
                    Word get(std::size_t i) const override {
                        DBSP_REQUIRE(i < mu_);
                        return m_.read(i);
                    }
                    void set(std::size_t i, Word value) override {
                        DBSP_REQUIRE(i < mu_);
                        m_.write(i, value);
                    }
                    void get_range(std::size_t i, std::span<Word> out) const override {
                        DBSP_REQUIRE(i + out.size() <= mu_);
                        m_.read_range(i, out);
                    }
                    void set_range(std::size_t i, std::span<const Word> values) override {
                        DBSP_REQUIRE(i + values.size() <= mu_);
                        m_.write_range(i, values);
                    }

                private:
                    hmm::Machine& m_;
                    std::size_t mu_;
                } acc(m, mu);
                const auto out =
                    model::run_processor_step(program, layout, tree, s, j * w + k, acc);
                mem.charge(static_cast<double>(out.ops));
                if (k > 0) mem.swap_blocks(0, k * mu, mu);
            }
            // Collect outgoing messages (charged scan of the out-buffers).
            for (std::uint64_t k = 0; k < w; ++k) {
                const Addr base = k * mu;
                const auto cnt = static_cast<std::size_t>(
                    mem.read(base + layout.out_count_offset()));
                if (bulk) {
                    scan.resize(3 * cnt);
                    mem.read_range(base + layout.out_record_offset(0), scan);
                    for (std::size_t q = 0; q < cnt; ++q) {
                        const Message msg{j * w + k, scan[3 * q], scan[3 * q + 1],
                                          scan[3 * q + 2]};
                        DBSP_ASSERT(tree.same_cluster(msg.src, msg.dest, label));
                        pending.push_back(msg);
                    }
                } else {
                    for (std::size_t q = 0; q < cnt; ++q) {
                        const Addr off = base + layout.out_record_offset(q);
                        Message msg;
                        msg.src = j * w + k;
                        msg.dest = mem.read(off);
                        msg.payload0 = mem.read(off + 1);
                        msg.payload1 = mem.read(off + 2);
                        DBSP_ASSERT(tree.same_cluster(msg.src, msg.dest, label));
                        pending.push_back(msg);
                    }
                }
                if (cnt > 0) mem.write(base + layout.out_count_offset(), 0);
                sent_by_host[j] += cnt;
            }
            phase1_max = std::max(phase1_max, mem.cost());
            raw = mem.raw();
            for (std::uint64_t k = 0; k < w; ++k) {
                contexts[j * w + k].assign(
                    raw.begin() + static_cast<std::ptrdiff_t>(k * mu),
                    raw.begin() + static_cast<std::ptrdiff_t>((k + 1) * mu));
            }
        }

        // Delivery: each host processor files the messages received by its
        // guest processors into their incoming buffers (the log v'-superstep).
        if (sink != nullptr) sink->messages(pending.size());
        double phase2_max = 0.0;
        {
            trace::PhaseScope deliver_scope(sink, trace::Phase::kDeliver, log_vp);
            for (std::uint64_t j = 0; j < v_prime_; ++j) {
                hmm::Machine mem(g_, w * mu);
                auto raw = mem.raw();
                for (std::uint64_t k = 0; k < w; ++k) {
                    std::copy(contexts[j * w + k].begin(), contexts[j * w + k].end(),
                              raw.begin() + static_cast<std::ptrdiff_t>(k * mu));
                }
                for (const Message& msg : pending) {
                    if (msg.dest / w != j) continue;
                    const Addr base = (msg.dest - j * w) * mu;
                    const auto cnt = static_cast<std::size_t>(
                        mem.read(base + layout.in_count_offset()));
                    DBSP_REQUIRE(cnt < layout.max_messages);
                    const Addr off = base + layout.in_record_offset(cnt);
                    if (bulk) {
                        const Word rec[3] = {msg.src, msg.payload0, msg.payload1};
                        mem.write_range(off, rec);
                    } else {
                        mem.write(off, msg.src);
                        mem.write(off + 1, msg.payload0);
                        mem.write(off + 2, msg.payload1);
                    }
                    mem.write(base + layout.in_count_offset(), cnt + 1);
                    ++recv_by_host[j];
                }
                phase2_max = std::max(phase2_max, mem.cost());
                raw = mem.raw();
                for (std::uint64_t k = 0; k < w; ++k) {
                    contexts[j * w + k].assign(
                        raw.begin() + static_cast<std::ptrdiff_t>(k * mu),
                        raw.begin() + static_cast<std::ptrdiff_t>((k + 1) * mu));
                }
            }
        }

        std::size_t h_host = 0;
        for (std::uint64_t j = 0; j < v_prime_; ++j) {
            h_host = std::max({h_host, sent_by_host[j], recv_by_host[j]});
        }
        const double comm =
            static_cast<double>(h_host) *
            (g_.at(static_cast<double>(mu) * static_cast<double>(tree.cluster_size(label))) +
             g_.at(static_cast<double>(mu) * static_cast<double>(w)));
        result.local_time += phase1_max + phase2_max;
        result.communication_time += comm;
        const double t = phase1_max + phase2_max + comm + 1.0;
        result.host_time += t;
        if (sink != nullptr) sink->charge(t);
        ++s;
    }

    return result;
}

}  // namespace dbsp::core
