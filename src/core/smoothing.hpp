#pragma once

/// \file smoothing.hpp
/// The L-smoothing transformation (Definition 3 and the label-set
/// constructions of Sections 3 and 5.2.2).
///
/// A program is L-smooth, for a label set L = {0 = l_0 < l_1 < ... < l_m =
/// log v}, when (1) every superstep label belongs to L and (2) whenever a
/// superstep with label l_i directly follows one with label l_j > l_i, then
/// i = j - 1 (labels descend one L-index at a time). The simulators' cluster
/// scheduling and its amortized analysis rely on both properties.
///
/// Any program is made L-smooth by (a) upgrading each i-superstep to the
/// largest l in L with l <= i (a superset cluster, so the communication
/// discipline still holds) and (b) inserting dummy supersteps with the
/// missing intermediate labels before each descending transition.

#include <memory>
#include <vector>

#include "model/access_function.hpp"
#include "model/program.hpp"

namespace dbsp::core {

using model::AccessFunction;
using model::Program;
using model::RelabeledProgram;

/// The HMM label set of Section 3: starting from l_0 = 0, the next label is
/// the first l with f(mu v / 2^l) <= c2 * f(mu v / 2^{l_prev}); log v is
/// always the last element. Requires 0 < c2 < 1.
std::vector<unsigned> hmm_label_set(const AccessFunction& f, std::size_t mu,
                                    std::uint64_t v, double c2 = 0.5);

/// The BT label set of Section 5.2.2: geometric decay of log(d1 mu v / 2^l)
/// with ratio c2, additionally capped so that f(mu v / 2^{l_i}) <=
/// d2 * mu v / 2^{l_{i+1}} (property (c), which bounds how much buffer space
/// a cluster swap may need ahead of the next superstep). Requires
/// 0 < c2 < 1, d1 >= 1, d2 >= 1.
std::vector<unsigned> bt_label_set(const AccessFunction& f, std::size_t mu,
                                   std::uint64_t v, double c2 = 0.5, double d1 = 2.0,
                                   double d2 = 2.0);

/// The trivial label set {0, 1, ..., log v}; with it, smoothing only inserts
/// dummy supersteps for skipped labels (no upgrades).
std::vector<unsigned> full_label_set(std::uint64_t v);

/// Statistics of a smoothing transformation, for the E12 overhead ablation.
struct SmoothingStats {
    std::size_t original_supersteps = 0;
    std::size_t upgraded = 0;  ///< supersteps whose label changed
    std::size_t dummies = 0;   ///< inserted dummy supersteps
};

/// Make \p program L-smooth with respect to \p labels (sorted ascending, must
/// contain 0). The returned program references \p program, which must outlive
/// it. If \p stats is non-null it receives transformation counts.
std::unique_ptr<RelabeledProgram> smooth(Program& program,
                                         const std::vector<unsigned>& labels,
                                         SmoothingStats* stats = nullptr);

/// Verify Definition 3 on a program; used by tests and debug checks.
bool is_smooth(const Program& program, const std::vector<unsigned>& labels);

}  // namespace dbsp::core
