#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

namespace dbsp::core {

double theorem5_bound(const model::DbspResult& run, const model::AccessFunction& f,
                      std::uint64_t v, std::size_t mu) {
    double acc = 0.0;
    for (const auto& s : run.supersteps) {
        acc += static_cast<double>(std::max<std::uint64_t>(s.tau, 1)) +
               static_cast<double>(mu) * f.at(s.comm_arg);
    }
    return static_cast<double>(v) * acc;
}

double theorem10_bound(const model::DbspResult& run, const model::AccessFunction& g,
                       std::uint64_t v, std::uint64_t v_prime, std::size_t mu) {
    double acc = 0.0;
    for (const auto& s : run.supersteps) {
        acc += static_cast<double>(std::max<std::uint64_t>(s.tau, 1)) +
               static_cast<double>(mu) * g.at(s.comm_arg);
    }
    return static_cast<double>(v) / static_cast<double>(v_prime) * acc;
}

double theorem12_bound(const model::DbspResult& run, std::uint64_t v, std::size_t mu) {
    double acc = 0.0;
    for (const auto& s : run.supersteps) {
        acc += static_cast<double>(std::max<std::uint64_t>(s.tau, 1)) +
               static_cast<double>(mu) * std::log2(std::max(2.0, s.comm_arg));
    }
    return static_cast<double>(v) * acc;
}

double fact1_bound(const model::AccessFunction& f, std::uint64_t n) {
    return static_cast<double>(n) * f(n);
}

double fact2_bound(const model::AccessFunction& f, std::uint64_t n) {
    return static_cast<double>(n) * std::max(1u, f.star(static_cast<double>(n)));
}

}  // namespace dbsp::core
