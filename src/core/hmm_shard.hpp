#pragma once

/// \file hmm_shard.hpp
/// Shard-private context accessors over hmm::Machine memory, shared by the
/// HMM simulators' parallel superstep drive.
///
/// A shard accessor reads/writes the machine's words directly (uncharged raw
/// storage) while folding every charge into a private hmm::ShardAccount —
/// with exactly the machine's accumulation procedure — and every trace event
/// into a trace::Sink (a private trace::BufferSink when shards run
/// concurrently; the real sink, inside a shard_begin/shard_end bracket, when
/// the simulator delivers a serial shard's events directly). Charging and data placement are
/// decoupled: charges use the *virtual* base address (where the serial
/// schedule would have placed the context, e.g. block 0 for step execution)
/// while the data moves at the *physical* base (where the context actually
/// sits). This is what lets a simulation round execute all contexts of a
/// cluster in place, concurrently, and still charge the exact serial stream:
/// the serial swap-to-top/run/swap-back schedule is a net identity on
/// memory, so only its charges need replaying, which the merging thread does
/// in cluster order (Machine::charge_swap_blocks + merge_shard +
/// Sink::merge_replay).

#include <cstddef>
#include <memory>
#include <vector>

#include "hmm/machine.hpp"
#include "model/superstep_exec.hpp"
#include "trace/sink.hpp"
#include "util/contracts.hpp"

namespace dbsp::core {

/// Context accessor charging into a shard account (and trace buffer when
/// Traced) instead of the machine. Mirrors hmm::Machine's read/write/
/// read_range/write_range accounting bit for bit, at the virtual address.
template <bool Traced>
class HmmShardAccessor final : public model::ContextAccessor {
public:
    HmmShardAccessor(hmm::Machine& m, hmm::ShardAccount& account, trace::Sink* buffer,
                     model::Addr vbase, model::Addr pbase, std::size_t mu)
        : m_(m), account_(account), buffer_(buffer), vbase_(vbase), pbase_(pbase),
          mu_(mu) {}

    model::Word get(std::size_t index) const override {
        DBSP_REQUIRE(index < mu_);
        const model::Addr vx = vbase_ + index;
        DBSP_REQUIRE(vx < m_.capacity() && pbase_ + index < m_.capacity());
        const double delta = m_.table().cost(vx);
        account_.cost += delta;
        ++account_.words_touched;
        if constexpr (Traced) buffer_->access(vx, delta);
        return m_.raw()[pbase_ + index];
    }

    void set(std::size_t index, model::Word value) override {
        DBSP_REQUIRE(index < mu_);
        const model::Addr vx = vbase_ + index;
        DBSP_REQUIRE(vx < m_.capacity() && pbase_ + index < m_.capacity());
        const double delta = m_.table().cost(vx);
        account_.cost += delta;
        ++account_.words_touched;
        if constexpr (Traced) buffer_->access(vx, delta);
        m_.raw()[pbase_ + index] = value;
    }

    void get_range(std::size_t index, std::span<model::Word> out) const override {
        DBSP_REQUIRE(index + out.size() <= mu_);
        if (out.empty()) return;
        const model::Addr vx = vbase_ + index;
        DBSP_REQUIRE(vx + out.size() <= m_.capacity() &&
                     pbase_ + index + out.size() <= m_.capacity());
        account_.cost = m_.table().accumulate(vx, vx + out.size(), account_.cost);
        account_.words_touched += out.size();
        if constexpr (Traced) buffer_->access_range(m_.table().prefix(), vx, vx + out.size());
        account_.note_bulk(vx + out.size() - 1, out.size());
        const auto raw = m_.raw();
        std::copy_n(raw.begin() + static_cast<std::ptrdiff_t>(pbase_ + index), out.size(),
                    out.begin());
    }

    void set_range(std::size_t index, std::span<const model::Word> values) override {
        DBSP_REQUIRE(index + values.size() <= mu_);
        if (values.empty()) return;
        const model::Addr vx = vbase_ + index;
        DBSP_REQUIRE(vx + values.size() <= m_.capacity() &&
                     pbase_ + index + values.size() <= m_.capacity());
        account_.cost = m_.table().accumulate(vx, vx + values.size(), account_.cost);
        account_.words_touched += values.size();
        if constexpr (Traced) {
            buffer_->access_range(m_.table().prefix(), vx, vx + values.size());
        }
        account_.note_bulk(vx + values.size() - 1, values.size());
        const auto raw = m_.raw();
        std::copy_n(values.begin(), values.size(),
                    raw.begin() + static_cast<std::ptrdiff_t>(pbase_ + index));
    }

    void rebind(model::Addr vbase, model::Addr pbase) {
        vbase_ = vbase;
        pbase_ = pbase;
    }

private:
    hmm::Machine& m_;
    hmm::ShardAccount& account_;
    trace::Sink* buffer_;  ///< non-null iff Traced; a private BufferSink for
                           ///< parallel shards, the real sink for serial
                           ///< direct delivery (shard_begin/shard_end)
    model::Addr vbase_;    ///< charged addresses
    model::Addr pbase_;    ///< data addresses
    std::size_t mu_;
};

/// Sharding accessor source over HMM memory for the delivery protocol.
/// Processor p's context lives at block_of_proc[p] * mu (or identity blocks
/// when \p block_of_proc is nullptr — the pinned naive layout); delivery
/// traffic charges at the physical address, so vbase == pbase here. Each
/// shard folds into its own account/buffer; merge_shard folds them into the
/// machine (and its attached sink) on the merging thread.
template <bool Traced>
class HmmShardSource final : public model::AccessorSource {
public:
    HmmShardSource(hmm::Machine& m, std::size_t mu,
                   const std::vector<std::uint64_t>* block_of_proc)
        : m_(m), mu_(mu), block_of_proc_(block_of_proc),
          acc_(m, account_, Traced ? &buffer_ : nullptr, 0, 0, mu) {}

    model::ContextAccessor& at(model::ProcId p) override {
        const model::Addr base =
            (block_of_proc_ != nullptr ? (*block_of_proc_)[p] : p) * mu_;
        acc_.rebind(base, base);
        return acc_;
    }

    std::unique_ptr<model::AccessorSource> make_shard() override {
        return std::make_unique<HmmShardSource>(m_, mu_, block_of_proc_);
    }

    void merge_shard(model::AccessorSource& shard) override {
        auto& sh = static_cast<HmmShardSource&>(shard);
        m_.merge_shard(sh.account_);
        sh.account_.clear();
        if constexpr (Traced) {
            if (m_.trace() != nullptr) m_.trace()->merge_replay(sh.buffer_);
            sh.buffer_.clear();
        }
    }

private:
    hmm::Machine& m_;
    std::size_t mu_;
    const std::vector<std::uint64_t>* block_of_proc_;  ///< nullptr = identity
    hmm::ShardAccount account_;
    trace::BufferSink buffer_;
    HmmShardAccessor<Traced> acc_;
};

}  // namespace dbsp::core
