#pragma once

/// \file bounds.hpp
/// Closed-form cost predictions from the paper's theorems, evaluated on the
/// actual superstep profile of an executed program. The benchmark harness
/// prints measured simulated cost next to these predictions; a ratio that
/// stays within a constant band across a parameter sweep is the empirical
/// signature of the claimed Theta()/O() bound.

#include "model/access_function.hpp"
#include "model/dbsp_machine.hpp"

namespace dbsp::core {

/// Theorem 5: simulating a fine-grained D-BSP(v, mu, g) program on f(x)-HMM
/// costs O( v * (tau + mu * sum_i lambda_i f(mu v / 2^i)) ). Evaluated from
/// the per-superstep records of a direct execution.
double theorem5_bound(const model::DbspResult& run, const model::AccessFunction& f,
                      std::uint64_t v, std::size_t mu);

/// Theorem 10: simulating on a D-BSP(v', mu v / v', g) host costs
/// O( (v/v') * (tau + mu * sum_i lambda_i g(mu v / 2^i)) ).
double theorem10_bound(const model::DbspResult& run, const model::AccessFunction& g,
                       std::uint64_t v, std::uint64_t v_prime, std::size_t mu);

/// Theorem 12: simulating on f(x)-BT costs
/// O( v * (tau + mu * sum_i lambda_i log(mu v / 2^i)) ) — independent of f.
double theorem12_bound(const model::DbspResult& run, std::uint64_t v, std::size_t mu);

/// Fact 1: touching the first n cells of f(x)-HMM costs Theta(n f(n)).
double fact1_bound(const model::AccessFunction& f, std::uint64_t n);

/// Fact 2: the touching problem on f(x)-BT costs Theta(n f*(n)).
double fact2_bound(const model::AccessFunction& f, std::uint64_t n);

}  // namespace dbsp::core
