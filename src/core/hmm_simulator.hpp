#pragma once

/// \file hmm_simulator.hpp
/// Simulation of D-BSP programs on the f(x)-HMM — the paper's core result
/// (Section 3, Figure 1, Theorem 5, Corollary 6).
///
/// The HMM memory is divided into v blocks of mu cells; block j initially
/// holds the context of processor P_j. The simulation proceeds in rounds:
/// each round simulates one superstep for the cluster whose context sits on
/// top of memory, then performs the cyclic cluster swaps of Step 4 when the
/// next label is coarser. Submachine locality thus becomes temporal locality:
/// a cluster's supersteps are simulated while its contexts occupy the top
/// (cheap) region of the hierarchy.
///
/// Two invariants hold at the start of every round (proved in Theorem 4):
///  1. the selected cluster C is s-ready (all its processors are exactly at
///     superstep s);
///  2. C's contexts occupy the topmost |C| blocks sorted by processor number,
///     and every other cluster's contexts are contiguous in memory.
/// Debug builds (or check_invariants = true) verify both each round.

#include <vector>

#include "hmm/machine.hpp"
#include "model/dbsp_machine.hpp"
#include "model/program.hpp"
#include "trace/sink.hpp"

namespace dbsp::core {

/// Result of a D-BSP -> HMM simulation.
struct HmmSimResult {
    double hmm_cost = 0.0;            ///< total charged f(x)-HMM time
    std::uint64_t rounds = 0;         ///< simulation rounds executed
    std::uint64_t words_touched = 0;  ///< charged word accesses on the HMM
    std::size_t data_words = 0;
    std::vector<std::vector<model::Word>> contexts;  ///< final, processor order

    std::vector<model::Word> data_of(model::ProcId p) const;
};

class HmmSimulator {
public:
    struct Options {
        /// Verify Invariants 1-2 every round (quadratic overhead; tests only).
        bool check_invariants =
#ifdef DBSP_CHECK_INVARIANTS
            true;
#else
            false;
#endif
        /// Charge-trace sink (not owned; must outlive simulate()). Every HMM
        /// charge is attributed to a phase: step execution, context movement
        /// (block swaps/rotations), message delivery — or dummy-superstep for
        /// rounds executing a smoothing-inserted dummy. The sink's total()
        /// equals HmmSimResult::hmm_cost bit for bit.
        trace::Sink* trace = nullptr;
        /// Worker threads for the independent submachines of a round: 1
        /// (default) = serial execution, 0 = util::default_threads()
        /// (DBSP_THREADS env), N = exactly N. The charging structure is
        /// shared by all settings — per-context/per-shard accumulators
        /// merged in cluster order — so hmm_cost, telemetry, the trace
        /// mirror, and the final contexts are bit-identical at every thread
        /// count (the fuzz oracle's threads axis asserts this).
        std::size_t threads = 1;
    };

    explicit HmmSimulator(model::AccessFunction f)
        : HmmSimulator(std::move(f), Options{}) {}
    HmmSimulator(model::AccessFunction f, Options options)
        : f_(std::move(f)), options_(options) {}

    /// Simulate \p program to completion from its init()-defined input. The
    /// program must be L-smooth with respect to its own label set (Def. 3) —
    /// apply core::smooth first; both correctness (Theorem 4's invariants)
    /// and the Theorem 5 cost bound rely on it.
    HmmSimResult simulate(model::Program& program) const;

    /// Same, but starting from the given full context images (one mu-word
    /// vector per processor) instead of the program's init(). Used by the
    /// Section 4 self-simulation, where the processor state persists in host
    /// memory between superstep runs.
    HmmSimResult simulate_with(model::Program& program,
                               const std::vector<std::vector<model::Word>>& initial) const;

    const model::AccessFunction& function() const { return f_; }

private:
    model::AccessFunction f_;
    Options options_;
};

}  // namespace dbsp::core
