#pragma once

/// \file bt_simulator.hpp
/// Simulation of D-BSP programs on the f(x)-BT model — Section 5 of the paper
/// (Figures 5, 6, 7; Theorem 12).
///
/// The overall cluster scheduling is the same as the HMM simulation, but every
/// data movement is restructured to exploit block transfer:
///
///  * PACK/UNPACK maintain empty buffer blocks interspersed with the contexts
///    (Fig. 4), so cluster swaps need at most three block transfers and at
///    most double any context's address;
///  * COMPUTE(n) (Fig. 6) simulates local computation by recursively cycling
///    chunks of c(n) = max pow2 <= min(f(mu n)/mu, n/2) contexts through the
///    top of memory;
///  * message delivery serializes the cluster's contexts into constant-size
///    tagged records, sorts them with the BT merge sort (Approx-Median-Sort
///    substitute, DESIGN.md §5), and streams the sorted records back into
///    rebuilt contexts — the buffer space for sorting is created with the
///    UNPACK/PACK/shift dance of Fig. 7;
///  * when a superstep declares a transpose pattern (PermutationClass::
///    kTranspose) and rational permutations are enabled, delivery instead
///    uses the tiled BT transpose (Section 6), dropping the sort's log factor.
///
/// Deviation from the paper's literal text (documented in DESIGN.md): a small
/// permanent staging pad occupies the top of memory and all block addresses
/// are offset by it. Chunked streaming needs scratch at the cheap end of the
/// hierarchy; the pad is O(f(capacity)^2 + f(capacity)) words, which changes
/// every access cost by at most the (2,c)-uniformity constant.

#include <vector>

#include "bt/machine.hpp"
#include "model/dbsp_machine.hpp"
#include "model/program.hpp"
#include "trace/sink.hpp"

namespace dbsp::core {

struct BtSimResult {
    double bt_cost = 0.0;       ///< total charged f(x)-BT time
    double transfer_latency = 0.0;  ///< f()-latency part of block transfers
    double transfer_volume = 0.0;   ///< per-cell part of block transfers
    double word_access = 0.0;       ///< charged single-word accesses
    std::uint64_t block_transfers = 0;
    double compute_cost = 0.0;   ///< COMPUTE phases (Fig. 6)
    double deliver_cost = 0.0;   ///< message delivery (sort or transpose)
    double layout_cost = 0.0;    ///< PACK/UNPACK/Step-4 swaps
    std::uint64_t rounds = 0;   ///< simulation rounds
    std::size_t data_words = 0;
    std::uint64_t sort_invocations = 0;       ///< general (sort) deliveries
    std::uint64_t transpose_invocations = 0;  ///< rational-permutation deliveries
    std::vector<std::vector<model::Word>> contexts;  ///< final, processor order

    std::vector<model::Word> data_of(model::ProcId p) const;
};

class BtSimulator {
public:
    struct Options {
        /// Use the transpose primitive for supersteps declared kTranspose.
        bool use_rational_permutations = false;
        /// Verify layout invariants every round (tests only).
        bool check_invariants =
#ifdef DBSP_CHECK_INVARIANTS
            true;
#else
            false;
#endif
        /// Charge-trace sink (not owned; must outlive simulate()). BT charges
        /// are attributed to step execution (COMPUTE), context movement
        /// (PACK/UNPACK/Step-4 swaps), sort-based or transpose-based delivery
        /// — or dummy-superstep for smoothing-inserted rounds. The sink's
        /// total() equals BtSimResult::bt_cost bit for bit.
        trace::Sink* trace = nullptr;
        /// Worker threads for COMPUTE's independent context executions: 1
        /// (default) = serial, 0 = util::default_threads() (DBSP_THREADS
        /// env), N = exactly N. COMPUTE always runs as a charge walk plus
        /// in-place executions merged in walk order, so bt_cost, its
        /// decomposition, the trace mirror, and the final contexts are
        /// bit-identical at every thread count. Delivery (sort/transpose)
        /// stays serial: the merge sort charges per key comparison, which is
        /// data-dependent and cannot be sharded without changing the stream.
        std::size_t threads = 1;
    };

    explicit BtSimulator(model::AccessFunction f) : BtSimulator(std::move(f), Options{}) {}
    BtSimulator(model::AccessFunction f, Options options)
        : f_(std::move(f)), options_(options) {}

    /// Simulate \p program to completion; the program should be L-smooth with
    /// respect to a BT label set (core::bt_label_set) for the Theorem 12
    /// bound to apply.
    BtSimResult simulate(model::Program& program) const;

    const model::AccessFunction& function() const { return f_; }

private:
    model::AccessFunction f_;
    Options options_;
};

}  // namespace dbsp::core
