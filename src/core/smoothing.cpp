#include "core/smoothing.hpp"

#include <algorithm>
#include <cmath>

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::core {

namespace {

double cluster_memory(std::size_t mu, std::uint64_t v, unsigned l) {
    return static_cast<double>(mu) * static_cast<double>(v >> l);
}

}  // namespace

std::vector<unsigned> hmm_label_set(const AccessFunction& f, std::size_t mu,
                                    std::uint64_t v, double c2) {
    DBSP_REQUIRE(is_pow2(v));
    DBSP_REQUIRE(c2 > 0.0 && c2 < 1.0);
    const unsigned log_v = ilog2(v);
    std::vector<unsigned> labels{0};
    while (labels.back() < log_v) {
        const double threshold = c2 * f.at(cluster_memory(mu, v, labels.back()));
        unsigned next = labels.back() + 1;
        while (next < log_v && f.at(cluster_memory(mu, v, next)) > threshold) ++next;
        if (next >= log_v || f.at(cluster_memory(mu, v, next)) > threshold) {
            labels.push_back(log_v);  // no qualifying index: close with log v
        } else {
            labels.push_back(next);
        }
    }
    return labels;
}

std::vector<unsigned> bt_label_set(const AccessFunction& f, std::size_t mu,
                                   std::uint64_t v, double c2, double d1, double d2) {
    DBSP_REQUIRE(is_pow2(v));
    DBSP_REQUIRE(c2 > 0.0 && c2 < 1.0);
    DBSP_REQUIRE(d1 >= 1.0 && d2 >= 1.0);
    const unsigned log_v = ilog2(v);
    std::vector<unsigned> labels{0};
    while (labels.back() < log_v) {
        const unsigned prev = labels.back();
        const double log_prev = std::log2(d1 * cluster_memory(mu, v, prev));
        // Property (b): first index where log(d1 mu v / 2^l) decays by c2.
        unsigned next_b = prev + 1;
        while (next_b < log_v &&
               std::log2(d1 * cluster_memory(mu, v, next_b)) > c2 * log_prev) {
            ++next_b;
        }
        bool b_ok = std::log2(d1 * cluster_memory(mu, v, next_b)) <= c2 * log_prev;
        // Property (c): largest index with f(mu v / 2^prev) <= d2 mu v / 2^l.
        const double f_prev = f.at(cluster_memory(mu, v, prev));
        unsigned next_c = prev;
        while (next_c + 1 <= log_v && f_prev <= d2 * cluster_memory(mu, v, next_c + 1)) {
            ++next_c;
        }
        unsigned next;
        if (next_c <= prev) {
            next = prev + 1;  // degenerate (f too large): smallest legal step
        } else if (!b_ok) {
            next = std::min<unsigned>(next_c, log_v);
        } else {
            next = std::min(next_b, next_c);
        }
        next = std::max(next, prev + 1);
        labels.push_back(std::min(next, log_v));
    }
    if (labels.back() != log_v) labels.push_back(log_v);
    return labels;
}

std::vector<unsigned> full_label_set(std::uint64_t v) {
    DBSP_REQUIRE(is_pow2(v));
    std::vector<unsigned> labels(ilog2(v) + 1);
    for (unsigned i = 0; i < labels.size(); ++i) labels[i] = i;
    return labels;
}

std::unique_ptr<RelabeledProgram> smooth(Program& program,
                                         const std::vector<unsigned>& labels,
                                         SmoothingStats* stats) {
    DBSP_REQUIRE(!labels.empty());
    DBSP_REQUIRE(labels.front() == 0);
    DBSP_REQUIRE(std::is_sorted(labels.begin(), labels.end()));

    // Index of the largest label <= l (the upgrade target).
    auto upgrade_index = [&](unsigned l) -> std::size_t {
        auto it = std::upper_bound(labels.begin(), labels.end(), l);
        DBSP_ASSERT(it != labels.begin());
        return static_cast<std::size_t>((it - labels.begin()) - 1);
    };

    SmoothingStats local;
    local.original_supersteps = program.num_supersteps();

    std::vector<model::StepIndex> step_map;
    std::vector<unsigned> new_labels;
    std::size_t prev_index = 0;
    for (model::StepIndex s = 0; s < program.num_supersteps(); ++s) {
        const unsigned raw = program.label(s);
        const std::size_t idx = upgrade_index(raw);
        if (labels[idx] != raw) ++local.upgraded;
        if (s > 0 && idx + 1 < prev_index) {
            // Descending transition skipping L-indices: insert dummies with
            // the intermediate labels l_{prev-1}, ..., l_{idx+1}.
            for (std::size_t k = prev_index - 1; k > idx; --k) {
                step_map.push_back(RelabeledProgram::kDummy);
                new_labels.push_back(labels[k]);
                ++local.dummies;
            }
        }
        step_map.push_back(s);
        new_labels.push_back(labels[idx]);
        prev_index = idx;
    }
    if (stats != nullptr) *stats = local;
    return std::make_unique<RelabeledProgram>(program, std::move(step_map),
                                              std::move(new_labels));
}

bool is_smooth(const Program& program, const std::vector<unsigned>& labels) {
    std::size_t prev_index = 0;
    for (model::StepIndex s = 0; s < program.num_supersteps(); ++s) {
        const unsigned l = program.label(s);
        const auto it = std::lower_bound(labels.begin(), labels.end(), l);
        if (it == labels.end() || *it != l) return false;  // property (1)
        const auto idx = static_cast<std::size_t>(it - labels.begin());
        if (s > 0 && idx < prev_index && idx != prev_index - 1) return false;  // (2)
        prev_index = idx;
    }
    return true;
}

}  // namespace dbsp::core
