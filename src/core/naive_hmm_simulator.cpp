#include "core/naive_hmm_simulator.hpp"

#include <algorithm>

#include "model/superstep_exec.hpp"
#include "util/contracts.hpp"

namespace dbsp::core {

namespace {

using model::Addr;
using model::ContextAccessor;
using model::ProcId;
using model::Word;

/// Pinned-context accessor; the traced instantiation routes word accesses
/// through read_traced/write_traced (identical charging plus the per-word
/// sink event), chosen once per simulation — same discipline as
/// HmmContextAccessorT in hmm_simulator.cpp.
template <bool Traced>
class PinnedAccessor final : public ContextAccessor {
public:
    PinnedAccessor(hmm::Machine& m, Addr base, std::size_t mu) : m_(m), base_(base), mu_(mu) {}
    Word get(std::size_t index) const override {
        DBSP_REQUIRE(index < mu_);
        if constexpr (Traced) return m_.read_traced(base_ + index);
        return m_.read(base_ + index);
    }
    void set(std::size_t index, Word value) override {
        DBSP_REQUIRE(index < mu_);
        if constexpr (Traced) {
            m_.write_traced(base_ + index, value);
        } else {
            m_.write(base_ + index, value);
        }
    }
    void get_range(std::size_t index, std::span<Word> out) const override {
        DBSP_REQUIRE(index + out.size() <= mu_);
        m_.read_range(base_ + index, out);
    }
    void set_range(std::size_t index, std::span<const Word> values) override {
        DBSP_REQUIRE(index + values.size() <= mu_);
        m_.write_range(base_ + index, values);
    }
    void rebind(Addr base) { base_ = base; }

private:
    hmm::Machine& m_;
    Addr base_;
    std::size_t mu_;
};

/// Accessor source over pinned contexts: processor p lives at p * mu forever.
template <bool Traced>
class PinnedSource final : public model::AccessorSource {
public:
    PinnedSource(hmm::Machine& m, std::size_t mu) : acc_(m, 0, mu), mu_(mu) {}
    ContextAccessor& at(ProcId p) override {
        acc_.rebind(p * mu_);
        return acc_;
    }

private:
    PinnedAccessor<Traced> acc_;
    std::size_t mu_;
};

}  // namespace

HmmSimResult NaiveHmmSimulator::simulate(model::Program& program) const {
    const std::uint64_t v = program.num_processors();
    const model::ClusterTree tree(v);
    const model::ContextLayout layout = program.layout();
    const std::size_t mu = layout.context_words();
    const model::StepIndex steps = program.num_supersteps();
    DBSP_REQUIRE(steps > 0);

    hmm::Machine machine(f_, static_cast<std::uint64_t>(mu) * v);
    trace::Sink* const sink = options_.trace;
    machine.set_trace(sink);
    // The machine is fresh (cost 0); a reused sink must restart its mirror.
    if (sink != nullptr) sink->reset_total();
    {
        const auto init = model::DbspMachine::initial_contexts(program);
        auto raw = machine.raw();
        for (ProcId p = 0; p < v; ++p) {
            std::copy(init[p].begin(), init[p].end(),
                      raw.begin() + static_cast<std::ptrdiff_t>(p * mu));
        }
    }

    PinnedSource<false> contexts_plain(machine, mu);
    PinnedSource<true> contexts_traced(machine, mu);
    model::AccessorSource& contexts =
        sink != nullptr ? static_cast<model::AccessorSource&>(contexts_traced)
                        : static_cast<model::AccessorSource&>(contexts_plain);
    model::DeliveryScratch scratch;

    HmmSimResult result;
    result.data_words = program.data_words();
    for (model::StepIndex s = 0; s < steps; ++s) {
        ++result.rounds;
        for (ProcId p = 0; p < v; ++p) {
            const auto out =
                model::run_processor_step(program, layout, tree, s, p, contexts.at(p));
            machine.charge(static_cast<double>(out.ops));
        }
        model::deliver_messages(layout, 0, v, contexts, program.proc_id_base(), &scratch);
    }

    result.hmm_cost = machine.cost();
    result.words_touched = machine.words_touched();
    result.contexts.resize(v);
    const auto raw = machine.raw();
    for (ProcId p = 0; p < v; ++p) {
        result.contexts[p].assign(raw.begin() + static_cast<std::ptrdiff_t>(p * mu),
                                  raw.begin() + static_cast<std::ptrdiff_t>((p + 1) * mu));
    }
    return result;
}

}  // namespace dbsp::core
