#include "core/naive_hmm_simulator.hpp"

#include <algorithm>

#include "core/hmm_shard.hpp"
#include "model/superstep_exec.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace dbsp::core {

namespace {

using model::Addr;
using model::ProcId;
using model::Word;

}  // namespace

HmmSimResult NaiveHmmSimulator::simulate(model::Program& program) const {
    const std::uint64_t v = program.num_processors();
    const model::ClusterTree tree(v);
    const model::ContextLayout layout = program.layout();
    const std::size_t mu = layout.context_words();
    const model::StepIndex steps = program.num_supersteps();
    DBSP_REQUIRE(steps > 0);

    hmm::Machine machine(f_, static_cast<std::uint64_t>(mu) * v);
    trace::Sink* const sink = options_.trace;
    machine.set_trace(sink);
    // The machine is fresh (cost 0); a reused sink must restart its mirror.
    if (sink != nullptr) sink->reset_total();
    {
        const auto init = model::DbspMachine::initial_contexts(program);
        auto raw = machine.raw();
        for (ProcId p = 0; p < v; ++p) {
            std::copy(init[p].begin(), init[p].end(),
                      raw.begin() + static_cast<std::ptrdiff_t>(p * mu));
        }
    }

    // Pinned layout: processor p lives at block p forever, so delivery and
    // step execution both charge at the physical address (vbase == pbase).
    HmmShardSource<false> contexts_plain(machine, mu, nullptr);
    HmmShardSource<true> contexts_traced(machine, mu, nullptr);
    model::AccessorSource& contexts =
        sink != nullptr ? static_cast<model::AccessorSource&>(contexts_traced)
                        : static_cast<model::AccessorSource&>(contexts_plain);
    model::DeliveryScratch scratch;

    // Fixed-width shard state for the step loop; the blocking is part of the
    // charging structure (same at every thread count), threads only decide
    // how many blocks run concurrently.
    const std::size_t threads =
        options_.threads == 0 ? util::default_threads() : options_.threads;
    const std::size_t nblocks =
        static_cast<std::size_t>((v + model::kDeliveryShardProcs - 1) /
                                 model::kDeliveryShardProcs);
    std::vector<hmm::ShardAccount> exec_accounts(nblocks);
    std::vector<trace::BufferSink> exec_buffers(sink != nullptr ? nblocks : 0);

    HmmSimResult result;
    result.data_words = program.data_words();
    for (model::StepIndex s = 0; s < steps; ++s) {
        ++result.rounds;
        auto exec_block = [&](std::size_t begin, std::size_t end) {
            const std::size_t blk = begin / model::kDeliveryShardProcs;
            hmm::ShardAccount& account = exec_accounts[blk];
            trace::BufferSink* const buffer =
                sink != nullptr ? &exec_buffers[blk] : nullptr;
            for (std::size_t p = begin; p < end; ++p) {
                const Addr base = static_cast<Addr>(p) * mu;
                model::StepOutcome out;
                if (sink != nullptr) {
                    HmmShardAccessor<true> acc(machine, account, buffer, base, base, mu);
                    out = model::run_processor_step(program, layout, tree, s,
                                                    static_cast<ProcId>(p), acc);
                    buffer->charge(static_cast<double>(out.ops));
                } else {
                    HmmShardAccessor<false> acc(machine, account, nullptr, base, base, mu);
                    out = model::run_processor_step(program, layout, tree, s,
                                                    static_cast<ProcId>(p), acc);
                }
                account.cost += static_cast<double>(out.ops);  // unit op costs
            }
        };
        util::parallel_for_blocked(v, model::kDeliveryShardProcs, exec_block, threads);
        for (std::size_t blk = 0; blk < nblocks; ++blk) {
            machine.merge_shard(exec_accounts[blk]);
            exec_accounts[blk].clear();
            if (sink != nullptr) {
                sink->merge_replay(exec_buffers[blk]);
                exec_buffers[blk].clear();
            }
        }
        model::deliver_messages_sharded(layout, 0, v, contexts, program.proc_id_base(),
                                        scratch, threads);
    }

    result.hmm_cost = machine.cost();
    result.words_touched = machine.words_touched();
    result.contexts.resize(v);
    const auto raw = machine.raw();
    for (ProcId p = 0; p < v; ++p) {
        result.contexts[p].assign(raw.begin() + static_cast<std::ptrdiff_t>(p * mu),
                                  raw.begin() + static_cast<std::ptrdiff_t>((p + 1) * mu));
    }
    return result;
}

}  // namespace dbsp::core
