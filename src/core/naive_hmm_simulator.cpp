#include "core/naive_hmm_simulator.hpp"

#include <algorithm>

#include "model/superstep_exec.hpp"
#include "util/contracts.hpp"

namespace dbsp::core {

namespace {

using model::Addr;
using model::ContextAccessor;
using model::ProcId;
using model::Word;

class PinnedAccessor final : public ContextAccessor {
public:
    PinnedAccessor(hmm::Machine& m, Addr base, std::size_t mu) : m_(m), base_(base), mu_(mu) {}
    Word get(std::size_t index) const override {
        DBSP_REQUIRE(index < mu_);
        return m_.read(base_ + index);
    }
    void set(std::size_t index, Word value) override {
        DBSP_REQUIRE(index < mu_);
        m_.write(base_ + index, value);
    }

private:
    hmm::Machine& m_;
    Addr base_;
    std::size_t mu_;
};

}  // namespace

HmmSimResult NaiveHmmSimulator::simulate(model::Program& program) const {
    const std::uint64_t v = program.num_processors();
    const model::ClusterTree tree(v);
    const model::ContextLayout layout = program.layout();
    const std::size_t mu = layout.context_words();
    const model::StepIndex steps = program.num_supersteps();
    DBSP_REQUIRE(steps > 0);

    hmm::Machine machine(f_, static_cast<std::uint64_t>(mu) * v);
    {
        const auto init = model::DbspMachine::initial_contexts(program);
        auto raw = machine.raw();
        for (ProcId p = 0; p < v; ++p) {
            std::copy(init[p].begin(), init[p].end(),
                      raw.begin() + static_cast<std::ptrdiff_t>(p * mu));
        }
    }

    const model::AccessorFn with_accessor =
        [&](ProcId p, const std::function<void(ContextAccessor&)>& fn) {
            PinnedAccessor acc(machine, p * mu, mu);
            fn(acc);
        };

    HmmSimResult result;
    result.data_words = program.data_words();
    for (model::StepIndex s = 0; s < steps; ++s) {
        ++result.rounds;
        for (ProcId p = 0; p < v; ++p) {
            PinnedAccessor acc(machine, p * mu, mu);
            const auto out = model::run_processor_step(program, layout, tree, s, p, acc);
            machine.charge(static_cast<double>(out.ops));
        }
        model::deliver_messages(layout, 0, v, with_accessor, program.proc_id_base());
    }

    result.hmm_cost = machine.cost();
    result.contexts.resize(v);
    const auto raw = machine.raw();
    for (ProcId p = 0; p < v; ++p) {
        result.contexts[p].assign(raw.begin() + static_cast<std::ptrdiff_t>(p * mu),
                                  raw.begin() + static_cast<std::ptrdiff_t>((p + 1) * mu));
    }
    return result;
}

}  // namespace dbsp::core
