#pragma once

/// \file naive_hmm_simulator.hpp
/// Baseline: the "trivial" superstep-by-superstep simulation of a D-BSP
/// program on the f(x)-HMM, with every processor context pinned at its home
/// block for the whole run. Each superstep touches all v contexts in place,
/// paying f() at full-memory depth: Theta(v mu f(mu v)) per superstep instead
/// of the cluster-local f(mu |C|) the paper's scheme achieves. This is the
/// comparison baseline in Experiments E3/E9/E10 (the Section 5.3 discussion
/// calls its BT analogue the "trivial step-by-step simulation").

#include "core/hmm_simulator.hpp"

namespace dbsp::core {

class NaiveHmmSimulator {
public:
    explicit NaiveHmmSimulator(model::AccessFunction f) : f_(std::move(f)) {}

    HmmSimResult simulate(model::Program& program) const;

private:
    model::AccessFunction f_;
};

}  // namespace dbsp::core
