#pragma once

/// \file naive_hmm_simulator.hpp
/// Baseline: the "trivial" superstep-by-superstep simulation of a D-BSP
/// program on the f(x)-HMM, with every processor context pinned at its home
/// block for the whole run. Each superstep touches all v contexts in place,
/// paying f() at full-memory depth: Theta(v mu f(mu v)) per superstep instead
/// of the cluster-local f(mu |C|) the paper's scheme achieves. This is the
/// comparison baseline in Experiments E3/E9/E10 (the Section 5.3 discussion
/// calls its BT analogue the "trivial step-by-step simulation").

#include "core/hmm_simulator.hpp"

namespace dbsp::core {

class NaiveHmmSimulator {
public:
    struct Options {
        /// Charge-trace sink (not owned; must outlive simulate()). Same
        /// contract as HmmSimulator::Options::trace: the sink's total()
        /// equals HmmSimResult::hmm_cost bit for bit, and per-word events
        /// exist only on the traced accessor instantiation, so a run with no
        /// sink pays nothing. Used by bench_e14 to profile the flat
        /// baseline's address stream.
        trace::Sink* trace = nullptr;
        /// Worker threads for the per-processor step loop and the sharded
        /// delivery: 1 (default) = serial, 0 = util::default_threads(), N =
        /// exactly N. Same deterministic-merge contract as
        /// HmmSimulator::Options::threads: results are bit-identical at
        /// every thread count.
        std::size_t threads = 1;
    };

    explicit NaiveHmmSimulator(model::AccessFunction f)
        : NaiveHmmSimulator(std::move(f), Options{}) {}
    NaiveHmmSimulator(model::AccessFunction f, Options options)
        : f_(std::move(f)), options_(options) {}

    HmmSimResult simulate(model::Program& program) const;

private:
    model::AccessFunction f_;
    Options options_{};
};

}  // namespace dbsp::core
