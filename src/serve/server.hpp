#pragma once

/// \file server.hpp
/// The dbsp_serve daemon core: a Unix-domain stream-socket server speaking
/// the newline-framed protocol of protocol.hpp. Kept tool-independent so
/// tests can drive it in-process (handle_line for the pure dispatch path, a
/// background serve_forever() thread for full socket round-trips) under the
/// sanitizers.
///
/// Concurrency: one accepting thread (serve_forever) plus one thread per
/// connection. Connections pipeline: a client may write many request lines
/// before reading, and replies come back strictly in request order.
/// Simulations from concurrent connections share the process-wide
/// parallel_for worker pool (top-level jobs are serialized by the pool, so
/// concurrent run requests queue rather than oversubscribe) and share the
/// ResultCache and CostTableCache.
///
/// Failure containment: every malformed request — unparsable JSON,
/// overdeep/oversized documents, bad specs, degenerate sampling rates —
/// produces a structured {"ok":false,...} reply on the same connection.
/// The daemon only exits on op:"shutdown" or request_stop().

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/result_cache.hpp"

namespace dbsp::serve {

class Server {
public:
    struct Options {
        std::string socket_path;
        /// Simulator worker threads per run request: 0 = DBSP_THREADS env.
        std::size_t threads = 0;
        /// ResultCache LRU bound; 0 disables memoization.
        std::size_t cache_entries = 128;
        /// Maximum request-line length; longer lines get a structured error
        /// and the remainder of the line is discarded.
        std::size_t max_request_bytes = 4 << 20;
    };

    explicit Server(Options options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Dispatch one request line to one reply line (no framing, no socket).
    /// This is the entire protocol logic; the socket layer only adds '\n'.
    std::string handle_line(const std::string& line);

    /// Bind + listen on options.socket_path (unlinking a stale socket file
    /// first). Returns false with a message on failure.
    bool start(std::string* error);

    /// Accept/serve until op:"shutdown" or request_stop(). Returns 0 on a
    /// clean stop. start() must have succeeded.
    int serve_forever();

    /// Stop the accept loop and shut down open connections (idempotent,
    /// callable from any thread or from a signal-triggered path).
    void request_stop();

    bool stopping() const { return stop_.load(std::memory_order_relaxed); }

    struct Stats {
        std::uint64_t requests = 0;  ///< lines dispatched, all ops
        std::uint64_t runs = 0;      ///< op:"run" requests accepted
        std::uint64_t errors = 0;    ///< structured error replies
        ResultCache::Stats cache;
    };
    Stats stats() const;

private:
    void serve_connection(int fd);
    void track(int fd, bool add);

    Options options_;
    ResultCache cache_;
    int listen_fd_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> runs_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::mutex connections_mutex_;
    std::vector<int> connection_fds_;
    std::vector<std::thread> connection_threads_;
};

}  // namespace dbsp::serve
