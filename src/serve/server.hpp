#pragma once

/// \file server.hpp
/// The dbsp_serve daemon core: a Unix-domain stream-socket server speaking
/// the newline-framed protocol of protocol.hpp. Kept tool-independent so
/// tests can drive it in-process (handle_line for the pure dispatch path, a
/// background serve_forever() thread for full socket round-trips) under the
/// sanitizers.
///
/// Concurrency: one accepting thread (serve_forever) plus one thread per
/// connection. Connections pipeline: a client may write many request lines
/// before reading, and replies come back strictly in request order.
/// Simulations from concurrent connections share the process-wide
/// parallel_for worker pool (top-level jobs are serialized by the pool, so
/// concurrent run requests queue rather than oversubscribe) and share the
/// ResultCache and CostTableCache.
///
/// Failure containment: every malformed request — unparsable JSON,
/// overdeep/oversized documents, bad specs, degenerate sampling rates —
/// produces a structured {"ok":false,...} reply on the same connection.
/// The daemon only exits on op:"shutdown" or request_stop().

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/result_cache.hpp"
#include "telemetry/logger.hpp"
#include "telemetry/telemetry.hpp"

namespace dbsp::serve {

struct Request;

class Server {
public:
    struct Options {
        std::string socket_path;
        /// Simulator worker threads per run request: 0 = DBSP_THREADS env.
        std::size_t threads = 0;
        /// ResultCache LRU bound; 0 disables memoization.
        std::size_t cache_entries = 128;
        /// Maximum request-line length; longer lines get a structured error
        /// and the remainder of the line is discarded.
        std::size_t max_request_bytes = 4 << 20;
        /// JSONL event log destination: file path, "-" for stdout, empty =
        /// disabled. Logging is strictly off the reply path (bounded queue +
        /// background writer; overflow drops lines and counts them).
        std::string log_path;
        telemetry::LogLevel log_level = telemetry::LogLevel::kInfo;
        /// Log rotation threshold (0 = never rotate).
        std::size_t log_max_bytes = 64u << 20;
        /// Requests at/above this wall-clock duration log their full span
        /// tree at warn level; 0 disables.
        double slow_ms = 0.0;
        /// Recent-request ring served by op:"spans".
        std::size_t span_ring = 256;
    };

    explicit Server(Options options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Dispatch one request line to one reply line (no framing, no socket).
    /// For op:"watch" the "line" is the whole stream, frames joined with
    /// '\n'. This is the entire protocol logic; the socket layer only adds
    /// the trailing '\n' per emitted line.
    std::string handle_line(const std::string& line);

    /// Sink for reply lines (no trailing '\n'); returns false when the
    /// client is gone, which aborts any in-progress stream.
    using WriteFn = std::function<bool(const std::string&)>;

    /// Streaming dispatch: every op emits exactly one line except
    /// op:"watch", which emits `count` telemetry frames at `interval_ms`
    /// cadence. Returns false iff \p emit did.
    bool handle_line_stream(const std::string& line, const WriteFn& emit);

    /// False when options requested a log file that could not be opened
    /// (dbsp_serve exits 1 rather than run silently unlogged).
    bool log_ok() const {
        return options_.log_path.empty() || logger_.active();
    }

    /// Bind + listen on options.socket_path (unlinking a stale socket file
    /// first). Returns false with a message on failure.
    bool start(std::string* error);

    /// Accept/serve until op:"shutdown" or request_stop(). Returns 0 on a
    /// clean stop. start() must have succeeded.
    int serve_forever();

    /// Stop the accept loop and shut down open connections (idempotent,
    /// callable from any thread or from a signal-triggered path).
    void request_stop();

    bool stopping() const { return stop_.load(std::memory_order_relaxed); }

    struct Stats {
        std::uint64_t requests = 0;  ///< lines dispatched, all ops
        std::uint64_t runs = 0;      ///< op:"run" requests accepted
        std::uint64_t errors = 0;    ///< structured error replies
        ResultCache::Stats cache;
    };
    Stats stats() const;

private:
    void serve_connection(int fd);
    void track(int fd, bool add);
    telemetry::ServerVitals vitals() const;
    bool stream_watch(const Request& req, const WriteFn& emit,
                      telemetry::RequestRecord* rec);

    Options options_;
    ResultCache cache_;
    telemetry::Logger logger_;
    telemetry::Telemetry telemetry_;
    int listen_fd_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> runs_{0};
    std::atomic<std::uint64_t> errors_{0};
    mutable std::mutex connections_mutex_;
    std::vector<int> connection_fds_;
    std::vector<std::thread> connection_threads_;
};

}  // namespace dbsp::serve
