#pragma once

/// \file client.hpp
/// Minimal blocking client for the dbsp_serve protocol, used by the
/// dbsp_loadgen tool and the socket round-trip tests. One connection, one
/// reply line per request line; request_batch() writes a whole pipeline of
/// lines before reading any reply (the protocol's batching mode — one
/// socket round-trip amortized over the batch).

#include <string>
#include <vector>

namespace dbsp::serve {

class Client {
public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Connect to a serve socket. Returns false with a message on failure.
    bool connect(const std::string& socket_path, std::string* error);

    bool connected() const { return fd_ >= 0; }
    void close();

    /// One round trip: write \p line + '\n', read one reply line (without
    /// the newline) into \p reply.
    bool request(const std::string& line, std::string* reply, std::string* error);

    /// Pipelined batch: write every line, then read exactly one reply per
    /// line, in order.
    bool request_batch(const std::vector<std::string>& lines,
                       std::vector<std::string>* replies, std::string* error);

    /// Streaming mode, for op:"watch" (the one op whose reply spans multiple
    /// lines): write \p line + '\n' without reading, then call read_reply()
    /// once per expected frame.
    bool send_line(const std::string& line, std::string* error);
    bool read_reply(std::string* reply, std::string* error) {
        return read_line(reply, error);
    }

private:
    bool read_line(std::string* line, std::string* error);

    int fd_ = -1;
    std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace dbsp::serve
