#pragma once

/// \file result_cache.hpp
/// Memoized serve results: fingerprint -> compact "dbsp-serve-result-v1"
/// bytes, bounded by LRU eviction (same discipline as the process-wide
/// CostTableCache, which is the in-repo precedent for a server-lifetime
/// cache). The cache stores the exact serialized string the miss path
/// produced, so a hit replays byte-identical bytes by construction — the
/// serve byte-identity guarantee never depends on re-serialization.
///
/// Thread-safe: concurrent connections share one cache. A racing miss on
/// the same fingerprint wastes one simulation but stays correct (both
/// producers serialize the identical deterministic document).

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace dbsp::serve {

class ResultCache {
public:
    /// \p max_entries = 0 disables caching (every lookup misses, nothing is
    /// stored).
    explicit ResultCache(std::size_t max_entries) : max_entries_(max_entries) {}

    /// The stored document for \p fingerprint, marking it most-recently
    /// used; nullopt on miss.
    std::optional<std::string> get(const std::string& fingerprint);

    /// Store (or refresh) a document, evicting least-recently-used entries
    /// beyond max_entries.
    void put(const std::string& fingerprint, std::string result);

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t entries = 0;  ///< current size
    };
    Stats stats() const;

private:
    struct Entry {
        std::string result;
        std::list<std::string>::iterator lru_pos;
    };

    mutable std::mutex mutex_;
    std::size_t max_entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    /// Fingerprints ordered most- to least-recently used; back() evicts
    /// first.
    std::list<std::string> lru_;
    std::unordered_map<std::string, Entry> entries_;
};

}  // namespace dbsp::serve
