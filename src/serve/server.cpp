#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "report/experiment.hpp"
#include "report/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/runner.hpp"
#include "telemetry/span.hpp"

namespace dbsp::serve {

namespace {

report::Counter& requests_metric() {
    static auto& c = report::metric_counter("serve.requests");
    return c;
}
report::Counter& errors_metric() {
    static auto& c = report::metric_counter("serve.errors");
    return c;
}

const char* op_name(Request::Op op) {
    switch (op) {
        case Request::Op::kRun: return "run";
        case Request::Op::kMetrics: return "metrics";
        case Request::Op::kStats: return "stats";
        case Request::Op::kPing: return "ping";
        case Request::Op::kShutdown: return "shutdown";
        case Request::Op::kWatch: return "watch";
        case Request::Op::kSpans: return "spans";
    }
    return "unknown";
}

telemetry::Logger::Options logger_options(const Server::Options& o) {
    telemetry::Logger::Options lo;
    lo.path = o.log_path;
    lo.level = o.log_level;
    lo.max_bytes = o.log_max_bytes;
    return lo;
}

telemetry::Telemetry::Options telemetry_options(const Server::Options& o,
                                                telemetry::Logger* logger) {
    telemetry::Telemetry::Options to;
    to.span_ring = o.span_ring;
    to.slow_ms = o.slow_ms;
    to.logger = logger;
    return to;
}

/// send() the whole buffer, riding out EINTR and short writes. MSG_NOSIGNAL:
/// a client that disconnects mid-reply must surface as EPIPE here, not as a
/// process-killing SIGPIPE.
bool write_all(int fd, const char* data, std::size_t n) {
    while (n > 0) {
        const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data += static_cast<std::size_t>(w);
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

}  // namespace

Server::Server(Options options)
    : options_(std::move(options)),
      cache_(options_.cache_entries),
      logger_(logger_options(options_)),
      telemetry_(telemetry_options(options_, &logger_)) {}

Server::~Server() {
    request_stop();
    for (std::thread& t : connection_threads_) {
        if (t.joinable()) t.join();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        ::unlink(options_.socket_path.c_str());
    }
}

std::string Server::handle_line(const std::string& line) {
    std::string joined;
    handle_line_stream(line, [&joined](const std::string& reply) {
        if (!joined.empty()) joined += '\n';
        joined += reply;
        return true;
    });
    return joined;
}

bool Server::handle_line_stream(const std::string& line, const WriteFn& emit) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    requests_metric().add();

    // The span tree and the request record are observation only: every
    // reply byte below is computed exactly as before telemetry existed
    // (regression-tested byte identity for run results).
    telemetry::SpanBuilder span;
    telemetry::RequestRecord rec;
    rec.id = telemetry_.next_request_id();
    rec.bytes_in = line.size();

    bool alive = true;
    const auto send = [&](const std::string& reply) {
        span.begin("reply-write");
        alive = emit(reply);
        span.end();
        rec.bytes_out += reply.size() + 1;  // + framing newline
        return alive;
    };
    const auto finish = [&] {
        rec.root = span.finish();
        rec.ms = rec.root.ms();
        if (logger_.enabled(telemetry::LogLevel::kDebug)) {
            report::Json fields = report::Json::object();
            fields.set("id", rec.id);
            fields.set("op", rec.op);
            fields.set("ok", rec.ok);
            fields.set("ms", rec.ms);
            fields.set("bytes_out", rec.bytes_out);
            logger_.log(telemetry::LogLevel::kDebug, "request", std::move(fields));
        }
        telemetry_.record_request(std::move(rec));
        return alive;
    };

    span.begin("parse");
    Request req;
    std::string error;
    const bool parsed = parse_request(line, options_.max_request_bytes, &req, &error);
    span.end();

    if (!parsed) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        errors_metric().add();
        rec.op = "error";
        rec.ok = false;
        if (logger_.enabled(telemetry::LogLevel::kInfo)) {
            report::Json fields = report::Json::object();
            fields.set("id", rec.id);
            fields.set("error", error);
            logger_.log(telemetry::LogLevel::kInfo, "bad-request", std::move(fields));
        }
        send(error_reply(error));
        return finish();
    }

    rec.op = op_name(req.op);

    switch (req.op) {
        case Request::Op::kPing: {
            report::Json pong = report::Json::object();
            pong.set("ok", true);
            pong.set("pong", true);
            send(pong.dump_compact());
            return finish();
        }
        case Request::Op::kShutdown: {
            if (logger_.enabled(telemetry::LogLevel::kInfo)) {
                report::Json fields = report::Json::object();
                fields.set("id", rec.id);
                logger_.log(telemetry::LogLevel::kInfo, "shutdown", std::move(fields));
            }
            request_stop();
            report::Json bye = report::Json::object();
            bye.set("ok", true);
            bye.set("shutdown", true);
            send(bye.dump_compact());
            return finish();
        }
        case Request::Op::kMetrics:
            // Live registry snapshot. Machines flush their telemetry before
            // each run reply returns (publish_metrics at destruction inside
            // run_to_json), so the snapshot equals the sum of all completed
            // requests' counts.
            send(object_reply("metrics", report::metrics_to_json()));
            return finish();
        case Request::Op::kStats: {
            const Stats s = stats();
            report::Json body = report::Json::object();
            body.set("requests", s.requests);
            body.set("runs", s.runs);
            body.set("errors", s.errors);
            report::Json cache = report::Json::object();
            cache.set("hits", s.cache.hits);
            cache.set("misses", s.cache.misses);
            cache.set("evictions", s.cache.evictions);
            cache.set("entries", s.cache.entries);
            body.set("cache", std::move(cache));
            send(object_reply("stats", body));
            return finish();
        }
        case Request::Op::kWatch:
            alive = stream_watch(req, emit, &rec);
            return finish();
        case Request::Op::kSpans:
            send(object_reply("spans", telemetry_.spans_json(req.limit)));
            return finish();
        case Request::Op::kRun:
            break;
    }

    runs_.fetch_add(1, std::memory_order_relaxed);
    req.options.threads = options_.threads;

    span.begin("cache-probe");
    const std::string key = fingerprint(req.spec, req.options);
    auto cached = cache_.get(key);
    span.end();
    telemetry_.record_cache(cached.has_value());
    rec.cached = cached.has_value();

    if (cached.has_value()) {
        send(run_reply(*cached, /*cached=*/true));
        return finish();
    }

    RunObservation obs;
    telemetry::Span legs;  // receives the executor leg spans
    obs.span = &legs;
    obs.t0_ns = span.t0_ns();
    telemetry_.run_begin();
    span.begin("run");
    const std::string result = run_to_json(req.spec, req.options, &obs);
    telemetry::Span& run_span = span.end();
    run_span.children = std::move(legs.children);
    telemetry_.run_end();
    if (obs.thm5_bound > 0.0) rec.hmm_slack = obs.hmm_cost / obs.thm5_bound;
    if (obs.thm12_bound > 0.0) rec.bt_slack = obs.bt_cost / obs.thm12_bound;

    cache_.put(key, result);
    send(run_reply(result, /*cached=*/false));
    return finish();
}

bool Server::stream_watch(const Request& req, const WriteFn& emit,
                          telemetry::RequestRecord* rec) {
    for (std::uint64_t i = 0; i < req.count; ++i) {
        if (i > 0) {
            // Sleep in short stop-aware naps so op:"shutdown" never waits a
            // full interval behind a parked watch stream.
            std::uint64_t remaining = req.interval_ms;
            while (remaining > 0 && !stop_.load(std::memory_order_relaxed)) {
                const std::uint64_t nap = std::min<std::uint64_t>(remaining, 50);
                std::this_thread::sleep_for(std::chrono::milliseconds(nap));
                remaining -= nap;
            }
        }
        if (stop_.load(std::memory_order_relaxed)) break;
        const std::string frame = telemetry_.frame(i, vitals()).dump_compact();
        rec->bytes_out += frame.size() + 1;
        if (!emit(frame)) return false;
    }
    return true;
}

telemetry::ServerVitals Server::vitals() const {
    telemetry::ServerVitals v;
    v.requests = requests_.load(std::memory_order_relaxed);
    v.runs = runs_.load(std::memory_order_relaxed);
    v.errors = errors_.load(std::memory_order_relaxed);
    const ResultCache::Stats cs = cache_.stats();
    v.cache_hits = cs.hits;
    v.cache_misses = cs.misses;
    v.cache_entries = cs.entries;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        v.connections = connection_fds_.size();
    }
    v.threads_opt = options_.threads;
    return v;
}

bool Server::start(std::string* error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.empty() ||
        options_.socket_path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr) *error = "invalid socket path";
        return false;
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (error != nullptr) *error = std::strerror(errno);
        return false;
    }
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(listen_fd_, 64) < 0) {
        if (error != nullptr) *error = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    return true;
}

int Server::serve_forever() {
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        // The timeout bounds how long a stop request waits for the loop to
        // notice; it is not a request deadline.
        const int ready = ::poll(&pfd, 1, 100);
        if (ready < 0 && errno != EINTR) break;
        if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        track(fd, /*add=*/true);
        std::lock_guard<std::mutex> lock(connections_mutex_);
        connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
    }
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread& t : connection_threads_) {
        if (t.joinable()) t.join();
    }
    connection_threads_.clear();
    return 0;
}

void Server::request_stop() { stop_.store(true, std::memory_order_relaxed); }

void Server::serve_connection(int fd) {
    // Connection-lifecycle diagnostics go through the structured logger
    // (level-filtered, atomic lines) instead of raw stderr, which
    // interleaved fragments under concurrent connections.
    if (logger_.enabled(telemetry::LogLevel::kDebug)) {
        report::Json fields = report::Json::object();
        fields.set("fd", static_cast<std::uint64_t>(fd));
        logger_.log(telemetry::LogLevel::kDebug, "connection-open", std::move(fields));
    }
    const auto emit = [fd](const std::string& reply) {
        const std::string framed = reply + "\n";
        return write_all(fd, framed.data(), framed.size());
    };
    std::string buffer;
    char chunk[4096];
    // A line longer than max_request_bytes is answered with one structured
    // error and then discarded up to its newline, so the connection stays
    // usable (oversize_ drops the bytes, not the client).
    bool discarding = false;
    while (!stop_.load(std::memory_order_relaxed)) {
        const ssize_t r = ::read(fd, chunk, sizeof(chunk));
        if (r < 0 && errno == EINTR) continue;
        if (r <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(r));
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = buffer.find('\n', start);
            if (nl == std::string::npos) break;
            if (discarding) {
                discarding = false;
            } else if (!handle_line_stream(buffer.substr(start, nl - start), emit)) {
                start = buffer.size();
                break;
            }
            start = nl + 1;
        }
        buffer.erase(0, start);
        if (!discarding && buffer.size() > options_.max_request_bytes) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            errors_metric().add();
            if (logger_.enabled(telemetry::LogLevel::kWarn)) {
                report::Json fields = report::Json::object();
                fields.set("fd", static_cast<std::uint64_t>(fd));
                fields.set("buffered_bytes", static_cast<std::uint64_t>(buffer.size()));
                logger_.log(telemetry::LogLevel::kWarn, "oversize-request",
                            std::move(fields));
            }
            const std::string reply = error_reply("request line exceeds size limit") + "\n";
            if (!write_all(fd, reply.data(), reply.size())) break;
            buffer.clear();
            discarding = true;
        }
    }
    ::close(fd);
    track(fd, /*add=*/false);
    if (logger_.enabled(telemetry::LogLevel::kDebug)) {
        report::Json fields = report::Json::object();
        fields.set("fd", static_cast<std::uint64_t>(fd));
        logger_.log(telemetry::LogLevel::kDebug, "connection-close", std::move(fields));
    }
}

void Server::track(int fd, bool add) {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (add) {
        connection_fds_.push_back(fd);
    } else {
        connection_fds_.erase(
            std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
            connection_fds_.end());
    }
}

Server::Stats Server::stats() const {
    Stats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.runs = runs_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.cache = cache_.stats();
    return s;
}

}  // namespace dbsp::serve
