#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "report/experiment.hpp"
#include "report/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/runner.hpp"

namespace dbsp::serve {

namespace {

report::Counter& requests_metric() {
    static auto& c = report::metric_counter("serve.requests");
    return c;
}
report::Counter& errors_metric() {
    static auto& c = report::metric_counter("serve.errors");
    return c;
}

/// send() the whole buffer, riding out EINTR and short writes. MSG_NOSIGNAL:
/// a client that disconnects mid-reply must surface as EPIPE here, not as a
/// process-killing SIGPIPE.
bool write_all(int fd, const char* data, std::size_t n) {
    while (n > 0) {
        const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data += static_cast<std::size_t>(w);
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

}  // namespace

Server::Server(Options options)
    : options_(std::move(options)), cache_(options_.cache_entries) {}

Server::~Server() {
    request_stop();
    for (std::thread& t : connection_threads_) {
        if (t.joinable()) t.join();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        ::unlink(options_.socket_path.c_str());
    }
}

std::string Server::handle_line(const std::string& line) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    requests_metric().add();

    Request req;
    std::string error;
    if (!parse_request(line, options_.max_request_bytes, &req, &error)) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        errors_metric().add();
        return error_reply(error);
    }

    switch (req.op) {
        case Request::Op::kPing: {
            report::Json pong = report::Json::object();
            pong.set("ok", true);
            pong.set("pong", true);
            return pong.dump_compact();
        }
        case Request::Op::kShutdown: {
            request_stop();
            report::Json bye = report::Json::object();
            bye.set("ok", true);
            bye.set("shutdown", true);
            return bye.dump_compact();
        }
        case Request::Op::kMetrics:
            // Live registry snapshot. Machines flush their telemetry before
            // each run reply returns (publish_metrics at destruction inside
            // run_to_json), so the snapshot equals the sum of all completed
            // requests' counts.
            return object_reply("metrics", report::metrics_to_json());
        case Request::Op::kStats: {
            const Stats s = stats();
            report::Json body = report::Json::object();
            body.set("requests", s.requests);
            body.set("runs", s.runs);
            body.set("errors", s.errors);
            report::Json cache = report::Json::object();
            cache.set("hits", s.cache.hits);
            cache.set("misses", s.cache.misses);
            cache.set("evictions", s.cache.evictions);
            cache.set("entries", s.cache.entries);
            body.set("cache", std::move(cache));
            return object_reply("stats", body);
        }
        case Request::Op::kRun:
            break;
    }

    runs_.fetch_add(1, std::memory_order_relaxed);
    req.options.threads = options_.threads;
    const std::string key = fingerprint(req.spec, req.options);
    if (auto cached = cache_.get(key); cached.has_value()) {
        return run_reply(*cached, /*cached=*/true);
    }
    const std::string result = run_to_json(req.spec, req.options);
    cache_.put(key, result);
    return run_reply(result, /*cached=*/false);
}

bool Server::start(std::string* error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.empty() ||
        options_.socket_path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr) *error = "invalid socket path";
        return false;
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (error != nullptr) *error = std::strerror(errno);
        return false;
    }
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(listen_fd_, 64) < 0) {
        if (error != nullptr) *error = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    return true;
}

int Server::serve_forever() {
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        // The timeout bounds how long a stop request waits for the loop to
        // notice; it is not a request deadline.
        const int ready = ::poll(&pfd, 1, 100);
        if (ready < 0 && errno != EINTR) break;
        if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        track(fd, /*add=*/true);
        std::lock_guard<std::mutex> lock(connections_mutex_);
        connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
    }
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread& t : connection_threads_) {
        if (t.joinable()) t.join();
    }
    connection_threads_.clear();
    return 0;
}

void Server::request_stop() { stop_.store(true, std::memory_order_relaxed); }

void Server::serve_connection(int fd) {
    std::string buffer;
    char chunk[4096];
    // A line longer than max_request_bytes is answered with one structured
    // error and then discarded up to its newline, so the connection stays
    // usable (oversize_ drops the bytes, not the client).
    bool discarding = false;
    while (!stop_.load(std::memory_order_relaxed)) {
        const ssize_t r = ::read(fd, chunk, sizeof(chunk));
        if (r < 0 && errno == EINTR) continue;
        if (r <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(r));
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = buffer.find('\n', start);
            if (nl == std::string::npos) break;
            if (discarding) {
                discarding = false;
            } else {
                const std::string reply =
                    handle_line(buffer.substr(start, nl - start)) + "\n";
                if (!write_all(fd, reply.data(), reply.size())) {
                    start = buffer.size();
                    break;
                }
            }
            start = nl + 1;
        }
        buffer.erase(0, start);
        if (!discarding && buffer.size() > options_.max_request_bytes) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            errors_metric().add();
            const std::string reply = error_reply("request line exceeds size limit") + "\n";
            if (!write_all(fd, reply.data(), reply.size())) break;
            buffer.clear();
            discarding = true;
        }
    }
    ::close(fd);
    track(fd, /*add=*/false);
}

void Server::track(int fd, bool add) {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (add) {
        connection_fds_.push_back(fd);
    } else {
        connection_fds_.erase(
            std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
            connection_fds_.end());
    }
}

Server::Stats Server::stats() const {
    Stats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.runs = runs_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.cache = cache_.stats();
    return s;
}

}  // namespace dbsp::serve
