#pragma once

/// \file protocol.hpp
/// The dbsp_serve wire protocol: newline-framed request/response over a
/// local stream socket. Each request is ONE line holding one JSON object;
/// each reply is ONE line holding one JSON object. A connection may write
/// any number of request lines before reading (pipelined batching) — the
/// server answers strictly in request order.
///
/// Requests ("dbsp-serve-request-v1", implicit — the object shape IS the
/// version):
///   {"op":"run","spec":"dbsp-spec v1\n...","f":"x^0.5","model":"both",
///    "locality":{"mode":"sampled","rate":0.05}}
///   {"op":"metrics"}   live registry snapshot
///   {"op":"stats"}     server/cache counters
///   {"op":"ping"}      liveness probe
///   {"op":"shutdown"}  clean daemon stop
///   {"op":"watch","interval_ms":1000,"count":5}
///                      stream `count` newline-framed "dbsp-telemetry-v1"
///                      frames, one every `interval_ms` — the ONE op whose
///                      reply spans multiple lines
///   {"op":"spans","limit":16}
///                      recent-request span trees, newest first
///
/// Parsing is strict, exit-2 style translated to the wire: unknown fields,
/// wrong types, degenerate sampling rates, oversized or overdeep JSON and
/// malformed specs all produce {"ok":false,"error":"..."} — a structured
/// error reply, never a dead daemon. The same validation rules as the
/// dbsp_explore CLI flags apply (notably valid_sample_rate for
/// locality.rate; NaN/inf never even parse, the strict JSON reader rejects
/// them as tokens).

#include <string>

#include "check/program_gen.hpp"
#include "report/json.hpp"
#include "serve/runner.hpp"

namespace dbsp::serve {

/// Bounds applied to every request line before/while parsing. A request is
/// a flat object holding one spec string; depth 16 and 4 MiB are far above
/// any legitimate request and far below anything that could hurt.
report::ParseLimits request_limits(std::size_t max_bytes);

struct Request {
    enum class Op { kRun, kMetrics, kStats, kPing, kShutdown, kWatch, kSpans };
    Op op = Op::kPing;
    /// Valid iff op == kRun.
    check::ProgramSpec spec;
    RunOptions options;
    /// Valid iff op == kWatch: frame cadence and stream length. Bounded so a
    /// client typo cannot park a connection thread for hours.
    std::uint64_t interval_ms = 1000;  ///< 0..60000
    std::uint64_t count = 1;           ///< 1..3600 frames
    /// Valid iff op == kSpans.
    std::uint64_t limit = 16;  ///< 1..1024 span trees
};

/// Strict parse + validation of one request line. On failure returns false
/// and stores a human-readable message in \p error.
bool parse_request(const std::string& line, std::size_t max_bytes, Request* out,
                   std::string* error);

/// {"ok":false,"error":"<message>"} — message JSON-escaped.
std::string error_reply(const std::string& message);

/// {"ok":true,"cached":<cached>,"result":<result>} where \p result is an
/// already-serialized compact document, spliced in verbatim — the reply
/// carries the result's exact bytes on hit and miss alike.
std::string run_reply(const std::string& result, bool cached);

/// {"ok":true,"<key>":<body>} for the metrics/stats replies.
std::string object_reply(const std::string& key, const report::Json& body);

}  // namespace dbsp::serve
