#pragma once

/// \file runner.hpp
/// The deterministic request executor behind dbsp_serve: run one
/// `dbsp-spec v1` program through the direct D-BSP executor plus the
/// requested HMM/BT simulations and serialize the costs, theorem bounds,
/// final-image digests and (optionally) locality profiles as one compact
/// JSON document, schema "dbsp-serve-result-v1".
///
/// Determinism contract: the document is a pure function of (spec, options).
/// It contains no timestamps, wall-clock durations, hostnames or thread
/// counts — the executors' charged costs and final images are bit-identical
/// at every `threads` setting (the fuzz oracle's threads axis), so the same
/// request produces the same bytes on a 1-CPU container and a 32-core box.
/// That is what makes the serve result cache sound: a cache hit replays the
/// stored bytes, and `dbsp_explore --spec` reproduces them offline for the
/// byte-identity conformance check.
///
/// The same property keys the cache: fingerprint() hashes the canonical
/// spec serialization together with every option that influences the
/// document (model selection, access function, locality mode/rate) — and
/// deliberately NOT the thread count, which influences nothing.

#include <cstdint>
#include <optional>
#include <string>

#include "check/program_gen.hpp"
#include "model/access_function.hpp"
#include "telemetry/span.hpp"

namespace dbsp::serve {

/// Per-request knobs, all optional in the wire schema.
struct RunOptions {
    /// Which simulations to run: "hmm", "bt", "both" or "none" (direct
    /// D-BSP cost only).
    std::string model = "both";
    /// Access function of the target hierarchical machine.
    model::AccessFunction f = model::AccessFunction::polynomial(0.5);
    /// Attach the address-stream locality profiler to the simulation legs.
    bool locality = false;
    /// SHARDS-sampled profiler instead of the exact engine.
    bool sampled = false;
    /// Sampling rate; must satisfy valid_sample_rate when sampled.
    double sample_rate = 0.01;
    /// Simulator worker threads: 0 = util::default_threads() (DBSP_THREADS
    /// env), N = exactly N. Never part of the result or the fingerprint.
    std::size_t threads = 0;
};

/// The one sampling-rate contract, shared by the dbsp_explore
/// `--locality:sampled@rate` flag and the serve request schema: finite,
/// strictly positive, at most 1. NaN, inf, 0, negatives and rates > 1 are
/// all invalid — degenerate rates are rejected, never clamped.
bool valid_sample_rate(double rate);

/// Strict non-exiting access-function parse: "log" or "x^A" with A a full
/// nonnegative floating-point literal, no trailing garbage. Returns nullopt
/// (and a message) on violation.
std::optional<model::AccessFunction> parse_function(const std::string& text,
                                                    std::string* error);

/// Cache key: FNV-1a over the canonical spec serialization and every
/// result-influencing option. Two requests with equal fingerprints produce
/// byte-identical result documents.
std::string fingerprint(const check::ProgramSpec& spec, const RunOptions& options);

/// Wall-clock observation of one run, collected alongside (never inside)
/// the deterministic result document. When \p span is non-null the executor
/// legs attach a telemetry::SpanSink through the existing trace phase-scope
/// hooks and append one leg span each ("dbsp" / "hmm" / "bt", with
/// superstep-granularity children); the slack fields mirror the cost and
/// bound values the document itself carries, so the telemetry layer can
/// gauge measured-cost-over-theorem-bound without re-parsing the reply.
/// Observation is strictly read-alongside: the returned bytes are
/// byte-identical with and without it (regression-tested).
struct RunObservation {
    telemetry::Span* span = nullptr;  ///< leg spans appended here
    std::uint64_t t0_ns = 0;          ///< request start (span timebase)
    double hmm_cost = 0.0;
    double thm5_bound = 0.0;
    double bt_cost = 0.0;
    double thm12_bound = 0.0;
};

/// Execute the spec and return the compact single-line
/// "dbsp-serve-result-v1" document (no trailing newline). Deterministic;
/// see the file comment. \p obs (optional) receives wall-clock spans and
/// bound-slack inputs and never influences the returned bytes.
std::string run_to_json(const check::ProgramSpec& spec, const RunOptions& options,
                        RunObservation* obs = nullptr);

}  // namespace dbsp::serve
