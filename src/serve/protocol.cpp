#include "serve/protocol.hpp"

#include "check/trace_io.hpp"

namespace dbsp::serve {

namespace {

bool fail(std::string* error, const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
}

bool parse_locality(const report::Json& loc, RunOptions* options, std::string* error) {
    if (!loc.is_object()) return fail(error, "locality: expected an object");
    options->locality = true;
    for (const auto& [key, value] : loc.members()) {
        if (key == "mode") {
            const std::string& mode = value.as_string();
            if (!value.is_string() || (mode != "exact" && mode != "sampled")) {
                return fail(error, "locality.mode: expected \"exact\" or \"sampled\"");
            }
            options->sampled = mode == "sampled";
        } else if (key == "rate") {
            if (!value.is_number() || !valid_sample_rate(value.as_double())) {
                return fail(error, "locality.rate: expected a number in (0, 1]");
            }
            options->sample_rate = value.as_double();
        } else {
            return fail(error, "locality: unknown field \"" + key + "\"");
        }
    }
    if (!options->sampled && loc.contains("rate")) {
        return fail(error, "locality.rate: only valid with mode \"sampled\"");
    }
    return true;
}

/// Strict bounded-integer field: a JSON number that is a whole value within
/// [lo, hi]. Rejects fractions, negatives, and out-of-range values with the
/// field name in the message.
bool parse_bounded_u64(const report::Json& value, const char* name, std::uint64_t lo,
                       std::uint64_t hi, std::uint64_t* out, std::string* error) {
    const double d = value.as_double();
    if (!value.is_number() || d != static_cast<double>(static_cast<std::uint64_t>(d)) ||
        d < static_cast<double>(lo) || d > static_cast<double>(hi)) {
        return fail(error, std::string(name) + ": expected an integer in [" +
                               std::to_string(lo) + ", " + std::to_string(hi) + "]");
    }
    *out = static_cast<std::uint64_t>(d);
    return true;
}

}  // namespace

report::ParseLimits request_limits(std::size_t max_bytes) {
    report::ParseLimits limits;
    limits.max_depth = 16;
    limits.max_bytes = max_bytes;
    return limits;
}

bool parse_request(const std::string& line, std::size_t max_bytes, Request* out,
                   std::string* error) {
    std::string parse_error;
    const auto doc = report::Json::parse(line, &parse_error, request_limits(max_bytes));
    if (!doc.has_value()) return fail(error, "request: " + parse_error);
    if (!doc->is_object()) return fail(error, "request: expected a JSON object");

    const report::Json& op = (*doc)["op"];
    if (!op.is_string()) return fail(error, "request: missing \"op\" string");
    Request req;
    const std::string& name = op.as_string();
    if (name == "run") {
        req.op = Request::Op::kRun;
    } else if (name == "metrics") {
        req.op = Request::Op::kMetrics;
    } else if (name == "stats") {
        req.op = Request::Op::kStats;
    } else if (name == "ping") {
        req.op = Request::Op::kPing;
    } else if (name == "shutdown") {
        req.op = Request::Op::kShutdown;
    } else if (name == "watch") {
        req.op = Request::Op::kWatch;
    } else if (name == "spans") {
        req.op = Request::Op::kSpans;
    } else {
        return fail(error, "request: unknown op \"" + name + "\"");
    }

    if (req.op == Request::Op::kWatch) {
        for (const auto& [key, value] : doc->members()) {
            if (key == "op") continue;
            if (key == "interval_ms") {
                if (!parse_bounded_u64(value, "interval_ms", 0, 60000,
                                       &req.interval_ms, error)) {
                    return false;
                }
            } else if (key == "count") {
                if (!parse_bounded_u64(value, "count", 1, 3600, &req.count, error)) {
                    return false;
                }
            } else {
                return fail(error, "request: unknown field \"" + key + "\"");
            }
        }
        *out = std::move(req);
        return true;
    }

    if (req.op == Request::Op::kSpans) {
        for (const auto& [key, value] : doc->members()) {
            if (key == "op") continue;
            if (key == "limit") {
                if (!parse_bounded_u64(value, "limit", 1, 1024, &req.limit, error)) {
                    return false;
                }
            } else {
                return fail(error, "request: unknown field \"" + key + "\"");
            }
        }
        *out = std::move(req);
        return true;
    }

    if (req.op != Request::Op::kRun) {
        // Non-run ops carry no other fields — reject stragglers so typos
        // ("spec" on a ping) fail loudly.
        for (const auto& [key, value] : doc->members()) {
            (void)value;
            if (key != "op") return fail(error, "request: unknown field \"" + key + "\"");
        }
        *out = std::move(req);
        return true;
    }

    bool have_spec = false;
    for (const auto& [key, value] : doc->members()) {
        if (key == "op") continue;
        if (key == "spec") {
            if (!value.is_string()) return fail(error, "spec: expected a string");
            std::string spec_error;
            if (!check::parse_spec(value.as_string(), &req.spec, &spec_error)) {
                return fail(error, "spec: " + spec_error);
            }
            have_spec = true;
        } else if (key == "f") {
            if (!value.is_string()) return fail(error, "f: expected a string");
            std::string f_error;
            auto f = parse_function(value.as_string(), &f_error);
            if (!f.has_value()) return fail(error, "f: " + f_error);
            req.options.f = *std::move(f);
        } else if (key == "model") {
            const std::string& model = value.as_string();
            if (!value.is_string() || (model != "hmm" && model != "bt" &&
                                       model != "both" && model != "none")) {
                return fail(error, "model: expected hmm, bt, both, or none");
            }
            req.options.model = model;
        } else if (key == "locality") {
            if (!parse_locality(value, &req.options, error)) return false;
        } else {
            return fail(error, "request: unknown field \"" + key + "\"");
        }
    }
    if (!have_spec) return fail(error, "request: run requires a \"spec\" string");
    *out = std::move(req);
    return true;
}

std::string error_reply(const std::string& message) {
    report::Json reply = report::Json::object();
    reply.set("ok", false);
    reply.set("error", message);
    return reply.dump_compact();
}

std::string run_reply(const std::string& result, bool cached) {
    std::string reply = "{\"ok\":true,\"cached\":";
    reply += cached ? "true" : "false";
    reply += ",\"result\":";
    reply += result;
    reply += "}";
    return reply;
}

std::string object_reply(const std::string& key, const report::Json& body) {
    report::Json reply = report::Json::object();
    reply.set("ok", true);
    reply.set(key, body);
    return reply.dump_compact();
}

}  // namespace dbsp::serve
