#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dbsp::serve {

namespace {

bool fail(std::string* error, const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
}

}  // namespace

bool Client::connect(const std::string& socket_path, std::string* error) {
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
        return fail(error, "invalid socket path");
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return fail(error, std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        const std::string message = std::strerror(errno);
        close();
        return fail(error, message);
    }
    return true;
}

void Client::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool Client::request(const std::string& line, std::string* reply, std::string* error) {
    return request_batch({line}, nullptr, error) ? read_line(reply, error) : false;
}

bool Client::request_batch(const std::vector<std::string>& lines,
                           std::vector<std::string>* replies, std::string* error) {
    if (fd_ < 0) return fail(error, "not connected");
    std::string wire;
    for (const std::string& line : lines) {
        wire += line;
        wire += '\n';
    }
    const char* data = wire.data();
    std::size_t n = wire.size();
    while (n > 0) {
        const ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            return fail(error, std::strerror(errno));
        }
        data += static_cast<std::size_t>(w);
        n -= static_cast<std::size_t>(w);
    }
    if (replies == nullptr) return true;
    replies->clear();
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::string reply;
        if (!read_line(&reply, error)) return false;
        replies->push_back(std::move(reply));
    }
    return true;
}

bool Client::send_line(const std::string& line, std::string* error) {
    return request_batch({line}, nullptr, error);
}

bool Client::read_line(std::string* line, std::string* error) {
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            if (line != nullptr) *line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        const ssize_t r = ::read(fd_, chunk, sizeof(chunk));
        if (r < 0 && errno == EINTR) continue;
        if (r < 0) return fail(error, std::strerror(errno));
        if (r == 0) return fail(error, "connection closed by server");
        buffer_.append(chunk, static_cast<std::size_t>(r));
    }
}

}  // namespace dbsp::serve
