#include "serve/result_cache.hpp"

#include "report/metrics.hpp"

namespace dbsp::serve {

namespace {

report::Counter& hits_metric() {
    static auto& c = report::metric_counter("serve.cache_hits");
    return c;
}
report::Counter& misses_metric() {
    static auto& c = report::metric_counter("serve.cache_misses");
    return c;
}
report::Counter& evictions_metric() {
    static auto& c = report::metric_counter("serve.cache_evictions");
    return c;
}

}  // namespace

std::optional<std::string> ResultCache::get(const std::string& fingerprint) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(fingerprint);
    if (it == entries_.end()) {
        ++misses_;
        misses_metric().add();
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    ++hits_;
    hits_metric().add();
    return it->second.result;
}

void ResultCache::put(const std::string& fingerprint, std::string result) {
    if (max_entries_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(fingerprint);
    if (inserted) {
        it->second.lru_pos = lru_.insert(lru_.begin(), it->first);
    } else {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    }
    it->second.result = std::move(result);
    while (entries_.size() > max_entries_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
        evictions_metric().add();
    }
}

ResultCache::Stats ResultCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = entries_.size();
    return s;
}

}  // namespace dbsp::serve
