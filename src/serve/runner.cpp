#include "serve/runner.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "check/trace_io.hpp"
#include "core/bounds.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "locality/sink.hpp"
#include "model/dbsp_machine.hpp"
#include "report/json.hpp"
#include "telemetry/clock.hpp"

namespace dbsp::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) h = (h ^ bytes[i]) * kFnvPrime;
    return h;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
    // The terminator participates so concatenated fields cannot alias
    // ("ab" + "c" vs "a" + "bc").
    return fnv1a(h, s.data(), s.size() + 1);
}

std::string hex64(std::uint64_t h) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
    return buf;
}

/// Digest of the final memory images in processor order — the same
/// observable the differential oracle compares across executors.
template <typename Result>
std::string image_digest(const Result& res, std::uint64_t v) {
    std::uint64_t h = kFnvOffset;
    for (model::ProcId p = 0; p < v; ++p) {
        const std::vector<model::Word> data = res.data_of(p);
        h = fnv1a(h, data.data(), data.size() * sizeof(model::Word));
    }
    return hex64(h);
}

}  // namespace

bool valid_sample_rate(double rate) {
    return std::isfinite(rate) && rate > 0.0 && rate <= 1.0;
}

std::optional<model::AccessFunction> parse_function(const std::string& text,
                                                    std::string* error) {
    if (text == "log") return model::AccessFunction::logarithmic();
    if (text.rfind("x^", 0) == 0 && text.size() > 2) {
        char* end = nullptr;
        const double alpha = std::strtod(text.c_str() + 2, &end);
        if (end != nullptr && *end == '\0' && std::isfinite(alpha) && alpha >= 0.0) {
            return model::AccessFunction::polynomial(alpha);
        }
    }
    if (error != nullptr) {
        *error = "invalid access function \"" + text +
                 "\" (expected x^A with A a nonnegative number, or log)";
    }
    return std::nullopt;
}

std::string fingerprint(const check::ProgramSpec& spec, const RunOptions& options) {
    std::uint64_t h = kFnvOffset;
    h = fnv1a(h, check::serialize_spec(spec));
    h = fnv1a(h, options.model);
    h = fnv1a(h, options.f.key());
    if (options.locality) {
        h = fnv1a(h, options.sampled ? std::string("sampled") : std::string("exact"));
        if (options.sampled) {
            h = fnv1a(h, &options.sample_rate, sizeof(options.sample_rate));
        }
    }
    return hex64(h);
}

std::string run_to_json(const check::ProgramSpec& spec, const RunOptions& options,
                        RunObservation* obs) {
    // Telemetry scaffolding: sinks see phase scopes and superstep events
    // only; every charged cost and serialized byte below is computed exactly
    // as in the unobserved run.
    if (obs != nullptr && obs->t0_ns == 0) obs->t0_ns = telemetry::steady_now_ns();
    auto finish_leg = [&](const char* name, telemetry::SpanSink& sink,
                          std::uint64_t begin_ns) {
        if (obs == nullptr || obs->span == nullptr) return;
        telemetry::Span leg = sink.take(name);
        leg.start_ns = begin_ns - obs->t0_ns;
        leg.dur_ns = telemetry::steady_now_ns() - begin_ns;
        obs->span->children.push_back(std::move(leg));
    };

    report::Json doc = report::Json::object();
    doc.set("schema", "dbsp-serve-result-v1");
    doc.set("fingerprint", fingerprint(spec, options));
    doc.set("program", spec.describe());
    doc.set("f", options.f.name());
    doc.set("model", options.model);

    check::GeneratedProgram direct_prog(spec);
    const std::uint64_t v = spec.processors;
    const std::size_t mu = direct_prog.context_words();
    doc.set("v", v);
    doc.set("mu", static_cast<std::uint64_t>(mu));

    model::DbspMachine machine(options.f);
    telemetry::SpanSink direct_sink(obs != nullptr ? obs->t0_ns : 0);
    const std::uint64_t direct_begin_ns = telemetry::steady_now_ns();
    if (obs != nullptr && obs->span != nullptr) machine.set_trace(&direct_sink);
    const model::DbspResult direct = machine.run(direct_prog);
    machine.set_trace(nullptr);
    finish_leg("dbsp", direct_sink, direct_begin_ns);
    doc.set("supersteps", static_cast<std::uint64_t>(direct.supersteps.size()));
    report::Json dbsp = report::Json::object();
    dbsp.set("time", direct.time);
    dbsp.set("compute", direct.computation_time());
    dbsp.set("communicate", direct.communication_time());
    doc.set("dbsp", std::move(dbsp));

    locality::LocalityOptions locality_options;
    if (options.sampled) {
        locality_options.mode = locality::LocalityOptions::Mode::kSampled;
        locality_options.sample_rate = options.sample_rate;
    }
    report::Json profiles = report::Json::object();

    if (options.model == "hmm" || options.model == "both") {
        check::GeneratedProgram prog(spec);
        telemetry::SpanSink span_sink(obs != nullptr ? obs->t0_ns : 0);
        const std::uint64_t begin_ns = telemetry::steady_now_ns();
        auto smoothed = core::smooth(prog, core::hmm_label_set(options.f, mu, v));
        locality::LocalitySink loc(locality_options);
        trace::MultiSink multi{&loc, &span_sink};
        core::HmmSimulator::Options sim;
        sim.threads = options.threads;
        const bool spans = obs != nullptr && obs->span != nullptr;
        if (options.locality && spans) {
            sim.trace = &multi;
        } else if (options.locality) {
            sim.trace = &loc;
        } else if (spans) {
            sim.trace = &span_sink;
        }
        const core::HmmSimResult res =
            core::HmmSimulator(options.f, sim).simulate(*smoothed);
        finish_leg("hmm", span_sink, begin_ns);
        const double bound = core::theorem5_bound(direct, options.f, v, mu);
        if (obs != nullptr) {
            obs->hmm_cost = res.hmm_cost;
            obs->thm5_bound = bound;
        }
        report::Json leg = report::Json::object();
        leg.set("cost", res.hmm_cost);
        leg.set("thm5_bound", bound);
        leg.set("rounds", res.rounds);
        leg.set("words_touched", static_cast<double>(res.words_touched));
        leg.set("image_digest", image_digest(res, v));
        doc.set("hmm", std::move(leg));
        if (options.locality) profiles.set("hmm", loc.profile().to_json());
    }

    if (options.model == "bt" || options.model == "both") {
        check::GeneratedProgram prog(spec);
        telemetry::SpanSink span_sink(obs != nullptr ? obs->t0_ns : 0);
        const std::uint64_t begin_ns = telemetry::steady_now_ns();
        auto smoothed = core::smooth(prog, core::bt_label_set(options.f, mu, v));
        locality::LocalitySink loc(locality_options);
        trace::MultiSink multi{&loc, &span_sink};
        core::BtSimulator::Options sim;
        sim.threads = options.threads;
        const bool spans = obs != nullptr && obs->span != nullptr;
        if (options.locality && spans) {
            sim.trace = &multi;
        } else if (options.locality) {
            sim.trace = &loc;
        } else if (spans) {
            sim.trace = &span_sink;
        }
        const core::BtSimResult res =
            core::BtSimulator(options.f, sim).simulate(*smoothed);
        finish_leg("bt", span_sink, begin_ns);
        const double bound = core::theorem12_bound(direct, v, mu);
        if (obs != nullptr) {
            obs->bt_cost = res.bt_cost;
            obs->thm12_bound = bound;
        }
        report::Json leg = report::Json::object();
        leg.set("cost", res.bt_cost);
        leg.set("thm12_bound", bound);
        leg.set("rounds", res.rounds);
        leg.set("sorts", res.sort_invocations);
        leg.set("transposes", res.transpose_invocations);
        leg.set("block_transfers", static_cast<double>(res.block_transfers));
        leg.set("image_digest", image_digest(res, v));
        doc.set("bt", std::move(leg));
        if (options.locality) profiles.set("bt", loc.profile().to_json());
    }

    if (options.locality) {
        report::Json loc = report::Json::object();
        loc.set("mode", options.sampled ? "sampled" : "exact");
        if (options.sampled) loc.set("sample_rate", options.sample_rate);
        loc.set("profiles", std::move(profiles));
        doc.set("locality", std::move(loc));
    }
    return doc.dump_compact();
}

}  // namespace dbsp::serve
