#include "algos/fft_direct.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::algo {

FftDirectProgram::FftDirectProgram(std::vector<std::complex<double>> input)
    : input_(std::move(input)), log_v_(ilog2(input_.size())) {
    DBSP_REQUIRE(is_pow2(input_.size()));
}

void FftDirectProgram::init(ProcId p, std::span<Word> data) const {
    data[0] = std::bit_cast<Word>(input_[p].real());
    data[1] = std::bit_cast<Word>(input_[p].imag());
}

void FftDirectProgram::butterfly(StepIndex stage, ProcId p, StepContext& ctx) {
    // Combine the partner value received for DIF stage `stage`.
    DBSP_REQUIRE(ctx.inbox_size() == 1);
    const model::Message m = ctx.inbox(0);
    const std::complex<double> theirs(std::bit_cast<double>(m.payload0),
                                      std::bit_cast<double>(m.payload1));
    const std::complex<double> mine(ctx.load_double(0), ctx.load_double(1));

    const std::uint64_t n = input_.size();
    const std::uint64_t block = n >> stage;  // current sub-transform size
    const std::uint64_t half = block >> 1;
    std::complex<double> result;
    if ((p & half) == 0) {
        result = mine + theirs;  // top of the butterfly
    } else {
        const auto j = static_cast<double>(p & (half - 1));
        const double angle = -2.0 * std::numbers::pi * j / static_cast<double>(block);
        const std::complex<double> w(std::cos(angle), std::sin(angle));
        result = (theirs - mine) * w;  // bottom: (top - bottom) * twiddle
    }
    ctx.store_double(0, result.real());
    ctx.store_double(1, result.imag());
    ctx.charge_ops(8);  // complex multiply-add flavour
}

void FftDirectProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    if (s > 0) butterfly(s - 1, p, ctx);
    if (s >= log_v_) return;  // final sync
    // Stage s exchange: partner at distance n / 2^(s+1).
    const std::uint64_t distance = input_.size() >> (s + 1);
    ctx.send_double(p ^ distance, ctx.load_double(0), ctx.load_double(1));
}

}  // namespace dbsp::algo
