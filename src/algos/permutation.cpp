#include "algos/permutation.hpp"

#include <algorithm>
#include <numeric>

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::algo {

namespace {

/// A uniformly random permutation of the processors that fixes every
/// l-cluster setwise (Fisher-Yates within each cluster).
std::vector<ProcId> cluster_permutation(std::uint64_t v, unsigned l, SplitMix64& rng) {
    const std::uint64_t csize = v >> l;
    std::vector<ProcId> out(v);
    for (std::uint64_t first = 0; first < v; first += csize) {
        std::vector<ProcId> perm(csize);
        std::iota(perm.begin(), perm.end(), first);
        for (std::uint64_t i = csize; i > 1; --i) {
            std::swap(perm[i - 1], perm[rng.next_below(i)]);
        }
        for (std::uint64_t i = 0; i < csize; ++i) out[first + i] = perm[i];
    }
    return out;
}

}  // namespace

RandomRoutingProgram::RandomRoutingProgram(std::uint64_t v,
                                           std::vector<unsigned> round_labels,
                                           std::uint64_t seed, std::uint64_t local_ops,
                                           std::size_t fill_messages)
    : v_(v), local_ops_(local_ops), fill_messages_(fill_messages) {
    DBSP_REQUIRE(is_pow2(v));
    const unsigned log_v = ilog2(v);
    SplitMix64 rng(seed);
    // Fillers draw from an independent stream so that adding them never
    // perturbs the value-routing permutations (same seed => same result,
    // regardless of fill_messages).
    SplitMix64 fill_rng(seed ^ 0x9e3779b97f4a7c15ull);

    labels_ = round_labels;
    labels_.push_back(0);  // final global synchronization

    dest_.resize(round_labels.size());
    fill_dest_.resize(round_labels.size());
    for (std::size_t r = 0; r < round_labels.size(); ++r) {
        const unsigned l = round_labels[r];
        DBSP_REQUIRE(l <= log_v);
        dest_[r] = cluster_permutation(v, l, rng);
        if (fill_messages_ > 0) {
            fill_dest_[r] = cluster_permutation(v, l, fill_rng);
        }
    }

    // Track where each initial value ends up: value starts at p and follows
    // the per-round destinations.
    std::vector<ProcId> pos(v);
    std::iota(pos.begin(), pos.end(), 0);
    for (const auto& round : dest_) {
        for (auto& at : pos) at = round[at];
    }
    expected_.assign(v, 0);
    for (std::uint64_t value = 0; value < v; ++value) expected_[pos[value]] = value;
}

void RandomRoutingProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    const std::size_t received = ctx.inbox_size();
    for (std::size_t k = 0; k < received; ++k) {
        const model::Message m = ctx.inbox(k);
        if (m.payload1 == 0) {
            ctx.store(0, m.payload0);  // the routed value; fillers are ignored
        }
    }
    if (s >= dest_.size()) return;  // final sync
    ctx.charge_ops(local_ops_);
    ctx.send(dest_[s][p], ctx.load(0), 0);
    for (std::size_t k = 0; k < fill_messages_; ++k) {
        ctx.send(fill_dest_[s][p], p, 1);
    }
}

}  // namespace dbsp::algo
