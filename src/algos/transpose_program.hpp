#pragma once

/// \file transpose_program.hpp
/// Matrix transposition as a one-superstep D-BSP program: v = s^2 processors
/// hold one element each in row-major order; processor r*s + c sends its
/// value to processor c*s + r. This is the paper's canonical rational
/// permutation (Section 6) in isolation — the minimal program whose BT
/// simulation can choose between sort-based and transpose-based delivery,
/// used by tests and as a microscope on the E11 effect.

#include "model/program.hpp"

namespace dbsp::algo {

using model::ProcId;
using model::Program;
using model::StepContext;
using model::StepIndex;
using model::Word;

class TransposeProgram final : public Program {
public:
    /// \p values: one word per processor; the count must be an even power of
    /// two (a square grid). \p rounds transposes are performed back-to-back
    /// (an even count restores the input).
    TransposeProgram(std::vector<Word> values, std::size_t rounds = 1);

    std::string name() const override { return "transpose"; }
    std::uint64_t num_processors() const override { return values_.size(); }
    std::size_t data_words() const override { return 1; }
    std::size_t max_messages() const override { return 1; }
    StepIndex num_supersteps() const override { return rounds_ + 1; }
    unsigned label(StepIndex) const override { return 0; }
    model::PermutationClass permutation_class(StepIndex s) const override {
        return s < rounds_ ? model::PermutationClass::kTranspose
                           : model::PermutationClass::kGeneral;
    }
    std::uint64_t permutation_grain(StepIndex s) const override {
        return s < rounds_ ? values_.size() : 0;
    }
    void init(ProcId p, std::span<Word> data) const override { data[0] = values_[p]; }
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

private:
    std::vector<Word> values_;
    std::size_t rounds_;
    std::uint64_t side_;
};

}  // namespace dbsp::algo
