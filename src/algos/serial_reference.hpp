#pragma once

/// \file serial_reference.hpp
/// Plain sequential reference implementations used to validate the D-BSP
/// programs (and, through them, every simulator): same conventions, no
/// cleverness.

#include <complex>
#include <cstdint>
#include <vector>

namespace dbsp::algo {

/// In-place radix-2 DIF FFT; output in bit-reversed order (the convention of
/// FftDirectProgram).
void serial_fft_dif_bitrev(std::vector<std::complex<double>>& x);

/// Natural-order DFT X[k] = sum_j x[j] e^(-2 pi i j k / n), O(n^2); the
/// convention of FftRecursiveProgram and the ground truth for both.
std::vector<std::complex<double>> serial_dft_naive(
    const std::vector<std::complex<double>>& x);

/// Natural-order DFT in O(n log n): serial_fft_dif_bitrev followed by the
/// bit-reversal unscramble. Numerically a different (better-conditioned)
/// summation order than serial_dft_naive, so expect agreement to roundoff,
/// not bit-for-bit; SerialReference.FastDftMatchesNaiveDft pins it against
/// the naive sum so large-n tests can use it as ground truth without the
/// O(n^2) wall time.
std::vector<std::complex<double>> serial_dft_fast(
    const std::vector<std::complex<double>>& x);

/// C = A * B over the (mod 2^64) semiring, all three matrices in Morton
/// order with n = s^2 entries (the MatMulProgram layout).
std::vector<std::uint64_t> serial_matmul_morton(const std::vector<std::uint64_t>& a,
                                                const std::vector<std::uint64_t>& b);

/// Exclusive prefix sums mod 2^64.
std::vector<std::uint64_t> serial_exclusive_prefix(const std::vector<std::uint64_t>& in);

}  // namespace dbsp::algo
