#pragma once

/// \file bitonic_sort.hpp
/// Batcher's bitonic sorting network as a fine-grained D-BSP program — the
/// concrete O(n^alpha) sorting algorithm for Proposition 9 (DESIGN.md §5
/// explains the substitution for [24, Prop. 2]).
///
/// n = v keys, one per processor; after execution processor p holds the p-th
/// smallest key. A compare-exchange at distance 2^j is a superstep with label
/// log v - 1 - j (the pair spans a cluster of 2^(j+1) processors), so a merge
/// stage over 2^k-blocks uses labels log v - k .. log v - 1 and the total
/// communication cost on D-BSP(n, O(1), x^alpha) telescopes to
/// sum_k sum_{j<k} (mu 2^(j+1))^alpha = O(n^alpha).

#include "model/program.hpp"

namespace dbsp::algo {

using model::ProcId;
using model::Program;
using model::StepContext;
using model::StepIndex;
using model::Word;

class BitonicSortProgram final : public Program {
public:
    /// \p keys: one per processor (size must be a power of two).
    explicit BitonicSortProgram(std::vector<Word> keys);

    std::string name() const override { return "bitonic-sort"; }
    std::uint64_t num_processors() const override { return keys_.size(); }
    std::size_t data_words() const override { return 1; }
    std::size_t max_messages() const override { return 1; }
    StepIndex num_supersteps() const override { return actions_.size() + 1; }
    unsigned label(StepIndex s) const override;
    void init(ProcId p, std::span<Word> data) const override { data[0] = keys_[p]; }
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

private:
    struct CompareExchange {
        std::uint64_t block;     ///< bitonic block size 2^k (direction period)
        std::uint64_t distance;  ///< partner distance 2^j
    };

    void absorb(const CompareExchange& ce, ProcId p, StepContext& ctx);

    std::vector<Word> keys_;
    unsigned log_v_;
    std::vector<CompareExchange> actions_;
};

}  // namespace dbsp::algo
